"""High-level facade: rotation-schedule a cyclic DFG under resources.

Typical use::

    from repro import DFG, ResourceModel, RotationScheduler

    model = ResourceModel.adders_mults(3, 2, pipelined_mults=True)
    result = RotationScheduler(model).schedule(graph)
    print(result.length, result.depth)
    print(result.render())

The result bundles the best wrapped schedule, its depth-reduced realizing
retiming (Section 3.2 applied once at the end, as the paper prescribes),
and bookkeeping for the experiment harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dfg.graph import DFG
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.schedule.verify import realizing_retiming
from repro.core.engine import BACKENDS, make_engine
from repro.core.phases import HEURISTICS, BestTracker
from repro.core.rotation import RotationState
from repro.core.wrapping import WrappedSchedule
from repro.errors import SchedulingError
from repro.obs import tracer as _obs


@dataclass(frozen=True)
class RotationResult:
    """Outcome of rotation scheduling one DFG under one resource model."""

    graph: DFG
    model: ResourceModel
    heuristic: str
    length: int
    depth: int
    schedule: Schedule
    retiming: Retiming
    wrapped: WrappedSchedule
    initial_length: int
    optimal_count: int
    rotations_performed: int
    elapsed_seconds: float
    alternates: Tuple[WrappedSchedule, ...] = ()
    engine_stats: Optional[dict] = None
    engine_metrics: Optional[dict] = None

    @property
    def improvement(self) -> int:
        """Control steps shaved off the initial (non-pipelined) schedule."""
        return self.initial_length - self.length

    def summary(self) -> str:
        return (
            f"{self.graph.name or 'dfg'} @ {self.model.label()}: "
            f"{self.initial_length} -> {self.length} CS, depth {self.depth}, "
            f"{self.optimal_count} optimal schedule(s), "
            f"{self.rotations_performed} rotations in {self.elapsed_seconds:.3f}s"
        )

    def render(self) -> str:
        """Paper-style CS table of the final schedule (lazy import to keep
        the core free of report dependencies)."""
        from repro.report.tables import render_schedule

        return render_schedule(self.schedule, self.model, retiming=self.retiming)


class RotationScheduler:
    """Configured rotation-scheduling pipeline.

    Args:
        model: functional-unit model.
        heuristic: ``"h1"`` or ``"h2"`` (paper Section 5; results use h2).
        beta: rotations per phase (default ``2 * |V|``).
        sigma: phase-size range (default: initial schedule length - 1).
        priority: list-scheduling priority name or callable.
        cap: number of tied-optimal schedules to retain.
        use_engine: attach an acceleration engine (incremental caches);
            False selects the recompute-everything path the engines are
            parity-tested against.  Kept for backward compatibility —
            ``backend`` is the richer switch.
        workers: process-pool size for heuristic 1's independent phases
            (ignored by heuristic 2, whose phases form a chain).
        backend: ``"flat"`` (integer kernels, default), ``"vector"``
            (numpy kernels + rotation memos; requires numpy), ``"views"``
            (dict engine), or ``"naive"``; ``None`` resolves from
            ``use_engine``.  All four produce bit-identical results.
    """

    def __init__(
        self,
        model: ResourceModel,
        heuristic: str = "h2",
        beta: Optional[int] = None,
        sigma: Optional[int] = None,
        priority="descendants",
        cap: int = 64,
        use_engine: bool = True,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        if heuristic not in HEURISTICS:
            raise SchedulingError(
                f"unknown heuristic {heuristic!r}; choose from {sorted(HEURISTICS)}"
            )
        if backend is None:
            backend = "flat" if use_engine else "naive"
        elif backend not in BACKENDS:
            raise SchedulingError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            )
        self.model = model
        self.heuristic = heuristic
        self.beta = beta
        self.sigma = sigma
        self.priority = priority
        self.cap = cap
        self.backend = backend
        self.use_engine = backend != "naive"
        self.workers = workers

    def schedule(self, graph: DFG, engine=None) -> RotationResult:
        """Run the configured heuristic and post-process the best schedule.

        ``engine`` optionally injects a prebuilt engine for the configured
        backend (the batched solver compiles cohorts up front and hands
        each graph its seeded engine); it must have been built for this
        exact ``(graph, model, priority)`` triple.  ``None`` builds one.
        """
        tr = _obs.active
        traced = tr.enabled
        if traced:
            tr.begin(
                "solve",
                graph=graph.name or "dfg",
                model=self.model.label(),
                heuristic=self.heuristic,
                backend=self.backend,
            )
        try:
            t0 = time.perf_counter()
            if engine is None:
                engine = make_engine(self.backend, graph, self.model, self.priority)
            initial = RotationState.initial(
                graph, self.model, self.priority, engine=engine
            )
            best: BestTracker = HEURISTICS[self.heuristic](
                graph,
                self.model,
                beta=self.beta,
                sigma=self.sigma,
                priority=self.priority,
                cap=self.cap,
                engine=engine,
                workers=self.workers,
            )
            elapsed = time.perf_counter() - t0

            # Depth reduction (Section 3.2) on every optimal schedule found;
            # report the shallowest pipeline (ties: first found).  Engines
            # may provide realize_wrapped — the same pointwise-minimal
            # retiming computed on their own flat representation.
            realize = (
                getattr(engine, "realize_wrapped", None)
                if engine is not False
                else None
            )
            if traced:
                tr.begin("depth_reduction", candidates=len(best.entries))
            try:
                if realize is not None:
                    reduced = [realize(w) for _, w in best.entries]
                else:
                    reduced = [
                        WrappedSchedule(
                            w.schedule, realizing_retiming(w.schedule, w.period), w.period
                        )
                        for _, w in best.entries
                    ]
                final = min(reduced, key=lambda w: w.depth)
            finally:
                if traced:
                    tr.end()
        finally:
            if traced:
                tr.end()
        alternates = tuple(w for w in reduced if w is not final)
        return RotationResult(
            graph=graph,
            model=self.model,
            heuristic=self.heuristic,
            length=final.period,
            depth=final.depth,
            schedule=final.schedule,
            retiming=final.retiming,
            wrapped=final,
            initial_length=initial.length,
            optimal_count=len(best.entries),
            rotations_performed=best.offers - 1,
            elapsed_seconds=elapsed,
            alternates=alternates,
            engine_stats=engine.stats() if engine is not False else None,
            engine_metrics=engine.metrics() if engine is not False else None,
        )


def rotation_schedule(
    graph: DFG,
    model: ResourceModel,
    heuristic: str = "h2",
    beta: Optional[int] = None,
    sigma: Optional[int] = None,
    priority="descendants",
    use_engine: bool = True,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> RotationResult:
    """One-call convenience wrapper around :class:`RotationScheduler`."""
    return RotationScheduler(
        model,
        heuristic=heuristic,
        beta=beta,
        sigma=sigma,
        priority=priority,
        use_engine=use_engine,
        workers=workers,
        backend=backend,
    ).schedule(graph)
