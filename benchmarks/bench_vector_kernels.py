"""Vector backend experiment: numpy kernels, rotation memos, batched solving.

The vector backend (``repro.core.vector``) is the fourth engine behind
``rotation_schedule``; the golden parity suite pins it bit for bit
against flat/views/naive, so — like the flat bench before it — this file
is purely its report card.  Three layers are measured:

* end-to-end heuristic runs, ``backend=vector`` vs ``backend=flat``,
  interleaved A/B so machine drift hits both sides equally;
* the headline acceptance cells: h2 on elliptic @ 3A 2M must clear 3x
  over flat single-solve, and ``solve_batch`` over the fuzz ``--smoke``
  grid must clear 5x over solving the same requests sequentially with
  the flat backend;
* a per-kernel self-time table from the span tracer (the same
  aggregation ``rotsched profile`` prints), flat vs vector side by side.

Timings use ``time.process_time`` with interleaved min-of-N pairs —
the same protocol ``rotsched perfcheck`` replays — because the CI
machine's clock is noisy; recorded ratios are conservative.  Regenerate
the committed snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/bench_vector_kernels.py \
        --benchmark-only --benchmark-json=BENCH_vector.json
"""

import time

import pytest

from repro.core import rotation_schedule
from repro.core.vector import have_numpy
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="vector backend requires numpy"
)


def _warm():
    """Import numpy and JIT-warm the kernels before any timed region."""
    from repro.core.vector.batch import solve_batch

    solve_batch([get_benchmark("biquad")], model_for("2A2M"), heuristic="h1")


def _ab_pairs(run_a, run_b, pairs):
    """Interleaved min-of-N CPU timing: alternate A and B so slow-machine
    windows penalize both sides instead of whichever ran second."""
    best_a = best_b = float("inf")
    out_a = out_b = None
    for _ in range(pairs):
        t0 = time.process_time()
        ra = run_a()
        dt = time.process_time() - t0
        if dt < best_a:
            best_a, out_a = dt, ra
        t0 = time.process_time()
        rb = run_b()
        dt = time.process_time() - t0
        if dt < best_b:
            best_b, out_b = dt, rb
    return best_a, best_b, out_a, out_b


@pytest.mark.parametrize(
    "bench,config,heuristic",
    [
        ("elliptic", "3A2M", "h2"),
        ("elliptic", "2A1Mp", "h2"),
        ("lattice", "2A2M", "h2"),
        ("allpole", "2A2M", "h2"),
    ],
)
def test_vector_end_to_end(benchmark, bench, config, heuristic):
    """Whole-heuristic CPU time, vector vs flat; identical results required."""
    graph = get_benchmark(bench)
    model = model_for(config)

    def cell(backend):
        return rotation_schedule(graph, model, heuristic=heuristic, backend=backend)

    def run():
        _warm()
        return _ab_pairs(lambda: cell("flat"), lambda: cell("vector"), pairs=5)

    flat_s, vector_s, flat, vector = run_once(benchmark, run)
    record(
        benchmark,
        bench=bench,
        config=config,
        heuristic=heuristic,
        length=vector.length,
        rotations=vector.rotations_performed,
        vector_seconds=round(vector_s, 4),
        flat_seconds=round(flat_s, 4),
        vector_vs_flat=round(flat_s / vector_s, 2),
    )
    # Parity before speed: both backends agree bit for bit.
    assert vector.length == flat.length
    assert vector.retiming == flat.retiming
    assert vector.schedule.start_map == flat.schedule.start_map
    assert vector.rotations_performed == flat.rotations_performed


def test_vector_backend_headline(benchmark):
    """Acceptance cell: h2 on elliptic @ 3A 2M — the vector backend must
    be at least 3x faster than the flat backend it shadows (CPU time,
    interleaved min-of-9 per backend)."""
    graph = get_benchmark("elliptic")
    model = model_for("3A2M")

    def cell(backend):
        return rotation_schedule(graph, model, heuristic="h2", backend=backend)

    def run():
        _warm()
        return _ab_pairs(lambda: cell("flat"), lambda: cell("vector"), pairs=9)

    flat_s, vector_s, flat, vector = run_once(benchmark, run)
    extras = vector.engine_metrics["extras"]
    record(
        benchmark,
        headline="single_solve",
        vector_seconds=round(vector_s, 4),
        flat_seconds=round(flat_s, 4),
        speedup=round(flat_s / vector_s, 2),
        length=vector.length,
        rotations=vector.rotations_performed,
        rotation_memo_hits=extras["rotation_memo_hits"],
        wrap_memo_hits=extras["wrap_memo_hits"],
        chain_tip_reuses=extras["chain_tip_reuses"],
    )
    assert vector.length == 16 and flat.length == 16
    assert vector.schedule.start_map == flat.schedule.start_map
    assert vector.retiming == flat.retiming
    # The headline: memoized vector rotations at least triple flat.
    assert vector_s * 3 <= flat_s


def test_batched_smoke_cohort(benchmark):
    """Acceptance cell: ``solve_batch`` over the fuzz ``--smoke`` grid vs
    the same requests solved sequentially with the flat backend — the
    struct-of-arrays cohort (dedup + one stacked initial pass + shared
    memo chains) must clear 5x on CPU time, interleaved min-of-5."""
    from repro.qa import smoke_cases
    from repro.qa.runner import batch_groups, config_model
    from repro.core.vector.batch import solve_batch

    groups = [
        (cfg, config_model(cfg), [g for _, g in pairs])
        for cfg, pairs in batch_groups(smoke_cases())
    ]
    requests = sum(len(gs) for _, _, gs in groups)

    def flat_seq():
        return [
            rotation_schedule(g, model, heuristic="h2", backend="flat")
            for _, model, gs in groups
            for g in gs
        ]

    def batched():
        results = []
        unique = 0
        for _, model, gs in groups:
            stats = {}
            results.extend(solve_batch(gs, model, heuristic="h2", stats=stats))
            unique += stats["unique"]
        return results, unique

    def run():
        _warm()
        return _ab_pairs(flat_seq, batched, pairs=5)

    flat_s, batched_s, flat_results, (vec_results, unique_solves) = run_once(
        benchmark, run
    )
    # Parity before speed: the batched cohort answers every request with
    # the same schedule the sequential flat solver produces.
    assert [r.length for r in vec_results] == [r.length for r in flat_results]
    assert [r.retiming for r in vec_results] == [r.retiming for r in flat_results]
    record(
        benchmark,
        headline="batched_smoke",
        cohort="smoke",
        heuristic="h2",
        requests=requests,
        unique_solves=unique_solves,
        length_sum=sum(r.length for r in vec_results),
        flat_seq_seconds=round(flat_s, 4),
        batched_seconds=round(batched_s, 4),
        speedup=round(flat_s / batched_s, 2),
    )
    assert requests == 189 and unique_solves > 0
    # The headline: the batched cohort at least quintuples sequential flat.
    assert batched_s * 5 <= flat_s


def test_per_kernel_profile_table(benchmark):
    """Per-kernel self-time A/B from the span tracer — the same rows
    ``rotsched profile`` prints, flat vs vector on one traced solve."""
    from repro.obs import profile_of, tracing

    graph = get_benchmark("elliptic")
    model = model_for("3A2M")
    kernels = (
        "kernel.list_schedule",
        "kernel.latest_fit",
        "kernel.wrap_period",
        "rotate.down",
        "rotate.up",
        "depth_reduction",
    )

    def traced(backend):
        with tracing() as tr:
            rotation_schedule(graph, model, heuristic="h2", backend=backend)
        return profile_of(tr)

    def run():
        _warm()
        return traced("flat"), traced("vector")

    flat_prof, vec_prof = run_once(benchmark, run)
    table = {}
    for name in kernels:
        f = flat_prof.rows.get(name)
        v = vec_prof.rows.get(name)
        table[name] = {
            "flat_calls": f.calls if f else 0,
            "flat_self_s": round(f.self_s, 4) if f else 0.0,
            "vector_calls": v.calls if v else 0,
            "vector_self_s": round(v.self_s, 4) if v else 0.0,
        }
        record(benchmark, **{
            f"{name}.flat_calls": table[name]["flat_calls"],
            f"{name}.vector_calls": table[name]["vector_calls"],
            f"{name}.flat_self_s": table[name]["flat_self_s"],
            f"{name}.vector_self_s": table[name]["vector_self_s"],
        })
    # The memos must actually elide kernel work: the vector solve runs
    # strictly fewer list-schedule kernels than flat's one-per-rotation.
    assert table["kernel.list_schedule"]["vector_calls"] < table[
        "kernel.list_schedule"
    ]["flat_calls"]
