"""Unit tests for rotation phases and the two heuristics (Section 5)."""

import pytest

from repro.schedule import ResourceModel
from repro.core import BestTracker, RotationState, heuristic_1, heuristic_2, rotation_phase
from repro.suite import diffeq, biquad


class TestBestTracker:
    def test_tracks_minimum(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        tracker = BestTracker()
        tracker.offer(st)
        assert tracker.length == 8
        st2 = st.down_rotate(1)
        tracker.offer(st2)
        assert tracker.length == 7
        # offering something worse changes nothing
        tracker.offer(st)
        assert tracker.length == 7
        assert tracker.best_state is st2

    def test_collects_distinct_ties(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        tracker = BestTracker()
        tracker.offer(st)
        tracker.offer(st)  # duplicate ignored
        assert len(tracker.entries) == 1

    def test_cap(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        tracker = BestTracker(cap=1)
        tracker.offer(st)
        # craft a distinct same-length state: rotate full cycle of 8 sizes-1
        other = st
        for _ in range(11):
            other = other.down_rotate(1)
        if other.length == tracker.length:
            tracker.offer(other)
            assert len(tracker.entries) == 1  # capped


class TestRotationPhase:
    def test_phase_improves_diffeq(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        tracker = BestTracker()
        tracker.offer(st)
        rotation_phase(st, 1, beta=8, best=tracker)
        assert tracker.length == 6  # the optimum

    def test_size_halving_when_size_reaches_length(self):
        st = RotationState.initial(biquad(), ResourceModel.adders_mults(2, 4))
        tracker = BestTracker()
        tracker.offer(st)
        # nominal size far above the schedule length: must halve, not crash
        out = rotation_phase(st, 50, beta=6, best=tracker)
        assert out.length >= 1
        assert tracker.length <= st.length

    def test_phase_runs_exactly_beta_rotations(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        tracker = BestTracker()
        out = rotation_phase(st, 1, beta=5, best=tracker)
        assert len(out.trace) == 5


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", [heuristic_1, heuristic_2])
    def test_diffeq_reaches_optimum(self, heuristic):
        best = heuristic(diffeq(), ResourceModel.unit_time(1, 1), beta=10, sigma=4)
        assert best.length == 6

    def test_h2_reseeds_from_retimed_graph(self):
        best = heuristic_2(biquad(), ResourceModel.adders_mults(2, 3), beta=10)
        assert best.length == 6  # Table 3: biquad 2A 3M

    def test_h1_independent_phases(self):
        best = heuristic_1(biquad(), ResourceModel.adders_mults(2, 3), beta=10)
        assert best.length <= 7

    def test_offers_counted(self):
        best = heuristic_1(diffeq(), ResourceModel.unit_time(1, 1), beta=3, sigma=2)
        # initial + 2 phases x 3 rotations
        assert best.offers == 1 + 2 * 3

    def test_best_entries_are_wrapped_schedules(self):
        best = heuristic_2(diffeq(), ResourceModel.unit_time(1, 1), beta=6)
        state, wrapped = best.entries[0]
        assert wrapped.period == best.length
        assert wrapped.violations() == []
