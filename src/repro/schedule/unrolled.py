"""Global (unrolled) view of a pipelined loop schedule — paper Figure 4.

A static schedule of length ``L`` realized by a normalized retiming ``R``
describes a software pipeline: body instance ``j`` executes node ``v`` for
loop iteration ``j + R(v)``.  Unrolling places iteration ``i`` of node ``v``
at global control step::

    (i - R(v)) * L + offset(v)          offset(v) = s(v) - first_cs

Executions with ``i < R(v)`` fall before body instance 0 — the *prologue*;
executions past the last full body instance form the *epilogue*.  The
unrolled timeline is what actually runs on the datapath, so its dependence
check (:meth:`UnrolledSchedule.dependence_violations`) is the ground-truth
legality test used by the property tests and the execution simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.schedule import Schedule
from repro.errors import SchedulingError


@dataclass(frozen=True)
class UnrolledEntry:
    """One execution of one node in the global timeline."""

    global_cs: int
    node: NodeId
    iteration: int
    phase: str  # "prologue" | "body" | "epilogue"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CS{self.global_cs}: {self.node}@it{self.iteration} ({self.phase})"


class UnrolledSchedule:
    """The full execution of ``iterations`` loop iterations of a pipeline."""

    def __init__(self, schedule: Schedule, retiming: Retiming, iterations: int):
        graph = schedule.graph
        max_r = max((retiming[v] for v in graph.nodes), default=0)
        min_r = min((retiming[v] for v in graph.nodes), default=0)
        if min_r < 0:
            raise SchedulingError("unrolling expects a normalized retiming (min r = 0)")
        if iterations < max_r + 1:
            raise SchedulingError(
                f"need at least depth={max_r + 1} iterations to fill the pipeline"
            )
        self.schedule = schedule
        self.retiming = retiming
        self.iterations = iterations
        self.period = schedule.length
        self.depth = 1 + max_r
        self._max_r = max_r

        first = schedule.first_cs
        entries: List[UnrolledEntry] = []
        for v in graph.nodes:
            offset = schedule.start(v) - first
            r = retiming[v]
            for i in range(iterations):
                j = i - r  # body index (negative => prologue)
                if j < 0:
                    phase = "prologue"
                elif j > iterations - 1 - max_r:
                    phase = "epilogue"
                else:
                    phase = "body"
                entries.append(UnrolledEntry(j * self.period + offset, v, i, phase))
        entries.sort(key=lambda t: (t.global_cs, str(t.node)))
        self.entries = entries

    # ------------------------------------------------------------------
    def execution_time(self, node: NodeId, iteration: int) -> int:
        """Global start CS of ``node``'s execution for ``iteration``."""
        offset = self.schedule.start(node) - self.schedule.first_cs
        return (iteration - self.retiming[node]) * self.period + offset

    def phase_entries(self, phase: str) -> List[UnrolledEntry]:
        return [e for e in self.entries if e.phase == phase]

    @property
    def prologue_length(self) -> int:
        """Control steps before global CS 0 (body instance 0 start)."""
        pro = self.phase_entries("prologue")
        return -min((e.global_cs for e in pro), default=0)

    @property
    def makespan(self) -> int:
        """Total control steps from the first start to the last finish."""
        lat = lambda v: self.schedule.model.latency(self.schedule.graph.op(v))
        lo = min(e.global_cs for e in self.entries)
        hi = max(e.global_cs + lat(e.node) for e in self.entries)
        return hi - lo

    # ------------------------------------------------------------------
    def dependence_violations(self) -> List[str]:
        """Ground-truth check on the global timeline.

        For every edge ``(u, v)`` with *original* delay ``d`` and every
        iteration ``i >= d``: iteration ``i`` of ``v`` must start at or
        after the finish of iteration ``i - d`` of ``u``.
        """
        graph = self.schedule.graph
        model = self.schedule.model
        out: List[str] = []
        for e in graph.edges:
            t_u = model.latency(graph.op(e.src))
            for i in range(e.delay, self.iterations):
                produced = self.execution_time(e.src, i - e.delay) + t_u
                consumed = self.execution_time(e.dst, i)
                if produced > consumed:
                    out.append(
                        f"{e.src}@it{i - e.delay} finishes {produced} > "
                        f"{e.dst}@it{i} starts {consumed}"
                    )
                    break  # one witness per edge is enough
        return out

    def resource_violations(self) -> List[str]:
        """Unit over-subscription anywhere on the global timeline."""
        model = self.schedule.model
        graph = self.schedule.graph
        busy: Dict[Tuple[str, int], int] = {}
        for entry in self.entries:
            op = graph.op(entry.node)
            unit = model.unit_for_op(op)
            for off in model.busy_offsets(op):
                key = (unit.name, entry.global_cs + off)
                busy[key] = busy.get(key, 0) + 1
        return [
            f"global CS {cs}: {n}/{model.unit(u).count} {u} busy"
            for (u, cs), n in sorted(busy.items(), key=lambda kv: kv[0][1])
            if n > model.unit(u).count
        ]

    def rows(self) -> List[Tuple[int, List[UnrolledEntry]]]:
        """Entries grouped by global CS, for rendering."""
        grouped: Dict[int, List[UnrolledEntry]] = {}
        for e in self.entries:
            grouped.setdefault(e.global_cs, []).append(e)
        return sorted(grouped.items())


def unroll(schedule: Schedule, retiming: Retiming, iterations: int) -> UnrolledSchedule:
    """Convenience constructor mirroring the paper's Figure 4 expansion."""
    return UnrolledSchedule(schedule, retiming, iterations)
