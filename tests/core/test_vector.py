"""Property tests for the numpy scheduling core (``repro.core.vector``).

Each vector kernel is pinned value-identical to its flat integer
counterpart over seeded random graphs — including tuple-id unfolded
graphs and multi-edges with distinct delays — plus engine walks that
exercise the rotation/wrap/initial memos, the lazy schedule/retiming
objects (pickling and survival across ``apply_delta``), the batched
struct-of-arrays solver, and the guarded-numpy degradation path.
"""

import pickle
import random

import pytest

from repro.core.flat import (
    FlatGraph,
    FlatModel,
    flat_priority_columns,
    flat_topological_order,
    flat_wrap_period,
    retimed_delays,
    zero_delay_lists,
)
from repro.core.rotation import RotationState
from repro.core.vector import have_numpy
from repro.dfg.graph import DFG
from repro.dfg.retiming import Retiming
from repro.dfg.unfold import unfold
from repro.errors import ReproError, ZeroDelayCycleError
from repro.schedule.list_scheduler import full_schedule
from repro.schedule.resources import ResourceModel
from repro.suite.random_graphs import random_dfg, random_dsp_kernel

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy unavailable")

MODEL = ResourceModel.adders_mults(2, 1)
PRIORITIES = ("descendants", "height", "combined", "mobility")


def multi_edge_graph() -> DFG:
    g = DFG("multi")
    for name, op in [("a", "add"), ("b", "mul"), ("c", "add")]:
        g.add_node(name, op)
    g.add_edge("a", "b", 0)
    g.add_edge("a", "b", 1)
    g.add_edge("a", "b", 2)
    g.add_edge("a", "b", 0)  # duplicate zero-delay pair: dedup must collapse
    g.add_edge("b", "c", 0)
    g.add_edge("c", "a", 1)
    g.add_edge("c", "a", 3)
    return g


def sample_graphs():
    return [
        ("random8", random_dfg(8, seed=3)),
        ("random14", random_dfg(14, seed=11)),
        ("dsp", random_dsp_kernel(taps=4, seed=5)),
        ("unfolded", unfold(random_dfg(6, seed=7), 3)),  # tuple node ids
        ("multi_edge", multi_edge_graph()),
    ]


def legal_retimings(graph, count=4, seed=0):
    from repro.dfg.analysis import retimed_delay, topological_order

    rng = random.Random(seed)
    out = [Retiming.zero()]
    nodes = graph.nodes
    attempts = 0
    while len(out) < count + 1 and attempts < 120:
        attempts += 1
        r = Retiming({v: rng.randint(0, 1) for v in nodes})
        if any(retimed_delay(e, r) < 0 for e in graph.edges):
            continue
        try:
            topological_order(graph, r)
        except ZeroDelayCycleError:
            continue
        out.append(r)
    return out


def _columns(graph, model=MODEL):
    from repro.core.vector.columns import VectorColumns

    fg = FlatGraph(graph)
    fm = FlatModel(fg, model)
    return fg, fm, VectorColumns(fg, fm)


# ----------------------------------------------------------------------
# kernels vs their flat counterparts
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("tag,graph", sample_graphs())
def test_vec_retimed_delays_matches_flat(tag, graph):
    import numpy as np

    from repro.core.vector.kernels import vec_retimed_delays

    fg, _fm, vc = _columns(graph)
    for r in legal_retimings(graph):
        rv = np.array(fg.rvec(r), dtype=np.int64)
        assert vec_retimed_delays(vc, rv).tolist() == retimed_delays(fg, fg.rvec(r))


@needs_numpy
@pytest.mark.parametrize("tag,graph", sample_graphs())
def test_vec_zero_delay_lists_match_flat(tag, graph):
    import numpy as np

    from repro.core.vector.kernels import (
        vec_retimed_delays,
        vec_zero_delay_lists,
        vec_zero_edges,
    )

    fg, _fm, vc = _columns(graph)
    for r in legal_retimings(graph):
        dr_arr = vec_retimed_delays(vc, np.array(fg.rvec(r), dtype=np.int64))
        zs, zd = vec_zero_edges(vc, dr_arr)
        fsucc, fpred = zero_delay_lists(fg, dr_arr.tolist())
        vsucc, vpred = vec_zero_delay_lists(fg.n, zs, zd)
        assert vsucc == fsucc
        assert vpred == fpred


@needs_numpy
@pytest.mark.parametrize("tag,graph", sample_graphs())
def test_vec_topo_layers_are_valid_and_detect_cycles(tag, graph):
    import numpy as np

    from repro.core.vector.kernels import (
        vec_retimed_delays,
        vec_topo_layers,
        vec_zero_edges,
    )

    fg, _fm, vc = _columns(graph)
    for r in legal_retimings(graph):
        dr_arr = vec_retimed_delays(vc, np.array(fg.rvec(r), dtype=np.int64))
        zs, zd = vec_zero_edges(vc, dr_arr)
        layers = vec_topo_layers(fg.n, zs, zd)
        assert layers is not None
        level = {}
        for i, layer in enumerate(layers):
            for v in layer.tolist():
                level[v] = i
        # every node exactly once, every zero-delay edge strictly downward
        assert sorted(level) == list(range(fg.n))
        for u, w in zip(zs.tolist(), zd.tolist()):
            assert level[u] < level[w]


@needs_numpy
def test_vec_topo_layers_cycle_returns_none():
    import numpy as np

    from repro.core.vector.kernels import vec_topo_layers

    zs = np.array([0, 1], dtype=np.int64)
    zd = np.array([1, 0], dtype=np.int64)
    assert vec_topo_layers(2, zs, zd) is None


@needs_numpy
@pytest.mark.parametrize("priority", PRIORITIES)
@pytest.mark.parametrize("tag,graph", sample_graphs())
def test_vec_priority_columns_match_flat(tag, graph, priority):
    import numpy as np

    from repro.core.vector.kernels import (
        vec_priority_columns,
        vec_retimed_delays,
        vec_zero_edges,
    )

    fg, fm, vc = _columns(graph)
    for r in legal_retimings(graph):
        dr = retimed_delays(fg, fg.rvec(r))
        zsucc, _ = zero_delay_lists(fg, dr)
        order = flat_topological_order(zsucc)
        f_reach, f_heights, f_skey = flat_priority_columns(
            priority, fm.node_time, zsucc, order
        )
        dr_arr = vec_retimed_delays(vc, np.array(fg.rvec(r), dtype=np.int64))
        zs, zd = vec_zero_edges(vc, dr_arr)
        cols = vec_priority_columns(priority, vc.node_time, fg.n, zs, zd)
        assert cols is not None
        v_reach, v_heights, v_skey = cols
        assert v_skey == f_skey
        if f_reach is not None:
            assert v_reach == f_reach
        if f_heights is not None:
            assert v_heights == f_heights


@needs_numpy
def test_vec_priority_columns_rejects_unknown_priority():
    import numpy as np

    from repro.core.vector.kernels import vec_priority_columns

    empty = np.zeros(0, dtype=np.int64)
    with pytest.raises(ValueError, match="no vector sort keys"):
        vec_priority_columns("zigzag", np.ones(2, dtype=np.int64), 2, empty, empty)


@needs_numpy
@pytest.mark.parametrize("tag,graph", sample_graphs())
def test_vec_wrap_period_matches_flat(tag, graph):
    import numpy as np

    from repro.core.vector.kernels import vec_retimed_delays, vec_wrap_period

    fg, fm, vc = _columns(graph)
    for r in legal_retimings(graph, count=2):
        sched = full_schedule(graph, MODEL, r).normalized()
        starts = [sched.start(v) for v in fg.nodes]
        dr = retimed_delays(fg, fg.rvec(r))
        expected = flat_wrap_period(fg, fm, starts, dr)
        got = vec_wrap_period(
            vc,
            np.array(starts, dtype=np.int64),
            vec_retimed_delays(vc, np.array(fg.rvec(r), dtype=np.int64)),
        )
        assert got == expected


# ----------------------------------------------------------------------
# engine walks: memos, laziness, pickling
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("tag,graph", sample_graphs())
def test_vector_rotation_walk_matches_naive(tag, graph):
    from repro.core.engine import make_engine

    fast = RotationState.initial(
        graph, MODEL, engine=make_engine("vector", graph, MODEL)
    )
    slow = RotationState.initial(graph, MODEL, engine=False)
    rng = random.Random(42)
    for _ in range(6):
        if slow.length <= 1:
            break
        size = rng.randint(1, min(3, slow.length - 1))
        fast, slow = fast.down_rotate(size), slow.down_rotate(size)
        assert fast.retiming == slow.retiming
        assert (
            fast.schedule.normalized().start_map
            == slow.schedule.normalized().start_map
        )
        assert fast.wrapped().period == slow.wrapped().period


@needs_numpy
def test_rotation_memo_replays_bit_identically():
    """Replaying the same transition must be a pure cache hit: identical
    state, one more rotation_memo_hits, no extra miss."""
    from repro.core.engine import make_engine

    graph = random_dsp_kernel(taps=4, seed=5)
    engine = make_engine("vector", graph, MODEL)
    s0 = RotationState.initial(graph, MODEL, engine=engine)
    first = s0.down_rotate(2)
    hits0 = engine.metrics()["extras"]["rotation_memo_hits"]
    misses0 = engine.metrics()["extras"]["rotation_memo_misses"]
    again = s0.down_rotate(2)
    extras = engine.metrics()["extras"]
    assert extras["rotation_memo_hits"] == hits0 + 1
    assert extras["rotation_memo_misses"] == misses0
    assert again.retiming == first.retiming
    assert again.schedule.normalized().start_map == first.schedule.normalized().start_map
    assert again.wrapped().period == first.wrapped().period


@needs_numpy
def test_initial_memo_hits_on_reseed():
    from repro.core.engine import make_engine

    graph = random_dfg(10, seed=2)
    engine = make_engine("vector", graph, MODEL)
    a = engine.initial_state()
    before = engine.metrics()["extras"]["initial_memo_hits"]
    b = engine.initial_state()
    assert engine.metrics()["extras"]["initial_memo_hits"] == before + 1
    assert a.schedule.start_map == b.schedule.start_map


@needs_numpy
def test_lazy_state_pickles_and_materializes():
    from repro.core.engine import make_engine

    graph = random_dfg(9, seed=4)
    engine = make_engine("vector", graph, MODEL)
    state = RotationState.initial(graph, MODEL, engine=engine).down_rotate(1)
    blob = pickle.loads(pickle.dumps(state))  # engine stripped by __getstate__
    assert blob.retiming == state.retiming
    assert blob.schedule.start_map == state.schedule.start_map
    # A rebound (engine-less) state can keep rotating through a fresh engine.
    slow = blob.down_rotate(1)
    fast = state.down_rotate(1)
    assert slow.retiming == fast.retiming
    assert (
        slow.schedule.normalized().start_map
        == fast.schedule.normalized().start_map
    )


@needs_numpy
def test_lazy_objects_survive_apply_delta():
    """Regression: lazy schedules/retimings must materialize against the
    node order they were minted under, even after ``apply_delta`` has
    mutated the engine's node list (sessions hold the previous solution
    across edits — repairs diverged from naive before this was pinned)."""
    from repro.core.session import open_session

    graph = random_dsp_kernel(taps=3, seed=0, recursive=True)
    sessions = {
        b: open_session(graph, MODEL, backend=b) for b in ("vector", "naive")
    }
    for s in sessions.values():
        s.resolve()
    victim = graph.nodes[len(graph.nodes) // 2]
    for s in sessions.values():
        s.apply_edit({"edit": "remove_node", "node": victim})
    vec = sessions["vector"].resolve()
    ref = sessions["naive"].resolve()
    assert vec.length == ref.length
    assert vec.retiming == ref.retiming
    assert vec.schedule.start_map == ref.schedule.start_map


@needs_numpy
def test_vector_engine_rejects_callable_priority_eagerly():
    from repro.core.vector.engine import VectorEngine

    with pytest.raises(ValueError):
        VectorEngine(random_dfg(6, seed=1), MODEL, priority=lambda g, t, r: {})


@needs_numpy
def test_make_engine_vector_resolution():
    from repro.core.engine import RotationEngine, make_engine
    from repro.core.vector.engine import VectorEngine

    graph = random_dfg(6, seed=2)
    assert isinstance(make_engine("vector", graph, MODEL), VectorEngine)
    # Callable priorities fall back to the dict engine, like flat.
    fn = lambda g, t, r: {v: (0,) for v in g.nodes}  # noqa: E731
    assert isinstance(make_engine("vector", graph, MODEL, priority=fn), RotationEngine)


# ----------------------------------------------------------------------
# batched solving
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("priority", PRIORITIES)
def test_solve_batch_matches_per_graph_solves(priority):
    from repro.core.scheduler import rotation_schedule
    from repro.core.vector import solve_batch

    graphs = [
        random_dfg(8, seed=3),
        random_dsp_kernel(taps=4, seed=5),
        random_dfg(8, seed=3),  # duplicate of the first
    ]
    stats = {}
    results = solve_batch(graphs, MODEL, priority=priority, stats=stats)
    assert stats["requests"] == 3
    assert stats["unique"] == 2
    assert stats["deduped"] == 1
    assert stats["seeded_views"] == 2
    assert results[0] is results[2]  # duplicates share one solved result
    for g, got in zip(graphs, results):
        ref = rotation_schedule(g, MODEL, priority=priority, backend="flat")
        assert got.length == ref.length
        assert got.retiming == ref.retiming
        assert got.schedule.start_map == ref.schedule.start_map
        assert got.optimal_count == ref.optimal_count
        assert [a.schedule.start_map for a in got.alternates] == [
            a.schedule.start_map for a in ref.alternates
        ]


@needs_numpy
def test_batched_initial_pass_seeds_engines():
    from repro.core.vector.batch import BatchedFlatGraph, graph_signature
    from repro.core.vector.engine import VectorEngine

    graphs = [random_dfg(8, seed=3), random_dsp_kernel(taps=4, seed=5)]
    compiled = []
    for g in graphs:
        fg = FlatGraph(g)
        compiled.append((fg, FlatModel(fg, MODEL)))
    batched = BatchedFlatGraph(compiled)
    assert batched.n_total == sum(fg.n for fg, _ in compiled)
    assert batched.m_total == sum(fg.m for fg, _ in compiled)
    seeds = batched.initial_pass("descendants")
    assert seeds is not None and len(seeds) == 2
    for g, pair, seed in zip(graphs, compiled, seeds):
        seeded = VectorEngine(g, MODEL, precompiled=pair)
        seeded.seed_struct_view(*seed)
        cold = VectorEngine(g, MODEL)
        a = seeded.initial_state()
        b = cold.initial_state()
        assert a.schedule.start_map == b.schedule.start_map
        assert seeded.metrics()["extras"]["batched_seeds"] == 1
        assert seeded.metrics()["extras"]["struct_view_builds"] == 0

    # distinct graphs, distinct signatures; equal graphs, equal signatures
    assert graph_signature(graphs[0]) != graph_signature(graphs[1])
    assert graph_signature(graphs[0]) == graph_signature(random_dfg(8, seed=3))


@needs_numpy
def test_batched_initial_pass_reports_cycles():
    from repro.core.vector.batch import BatchedFlatGraph

    g = DFG("cycle")
    g.add_node("a", "add")
    g.add_node("b", "add")
    g.add_edge("a", "b", 0)
    g.add_edge("b", "a", 0)
    fg = FlatGraph(g)
    batched = BatchedFlatGraph([(fg, FlatModel(fg, MODEL))])
    assert batched.initial_pass("descendants") is None


try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dev dep
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @needs_numpy
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(3, 9),
        edges=st.lists(
            st.tuples(
                st.integers(0, 8), st.integers(0, 8), st.integers(0, 2)
            ),
            min_size=2,
            max_size=20,
        ),
    )
    def test_vec_structural_kernels_on_arbitrary_graphs(n, edges):
        """Arbitrary multigraphs (cycles included): the vector kernels and
        the flat kernels agree edge-for-edge — same dr, same adjacency,
        same cycle verdict, same sort keys when acyclic."""
        import numpy as np

        from repro.core.vector.kernels import (
            vec_priority_columns,
            vec_retimed_delays,
            vec_zero_delay_lists,
            vec_zero_edges,
        )

        g = DFG("hyp")
        for i in range(n):
            g.add_node(f"v{i}", "add" if i % 2 else "mul")
        for a, b, d in edges:
            g.add_edge(f"v{a % n}", f"v{b % n}", d)
        fg, fm, vc = _columns(g)
        rv = fg.rvec(Retiming.zero())
        dr = retimed_delays(fg, rv)
        dr_arr = vec_retimed_delays(vc, np.array(rv, dtype=np.int64))
        assert dr_arr.tolist() == dr
        zs, zd = vec_zero_edges(vc, dr_arr)
        fsucc, fpred = zero_delay_lists(fg, dr)
        vsucc, vpred = vec_zero_delay_lists(fg.n, zs, zd)
        assert (vsucc, vpred) == (fsucc, fpred)
        order = flat_topological_order(fsucc)
        cols = vec_priority_columns("combined", vc.node_time, fg.n, zs, zd)
        if order is None:
            assert cols is None
        else:
            assert cols is not None
            assert cols[2] == flat_priority_columns(
                "combined", fm.node_time, fsucc, order
            )[2]


# ----------------------------------------------------------------------
# guarded numpy import
# ----------------------------------------------------------------------
class TestMissingNumpy:
    def test_vector_backend_raises_clear_error(self, monkeypatch):
        import repro.core.vector._compat as compat
        from repro.core.engine import make_engine
        from repro.core.scheduler import rotation_schedule

        monkeypatch.setattr(compat, "np", None)
        monkeypatch.setattr(compat, "NUMPY_ERROR", ImportError("no module named numpy"))
        assert not have_numpy()
        graph = random_dfg(6, seed=1)
        with pytest.raises(ReproError, match="pip install numpy"):
            make_engine("vector", graph, MODEL)
        with pytest.raises(ReproError, match="backend='flat'"):
            rotation_schedule(graph, MODEL, backend="vector")

    def test_scalar_backends_keep_working(self, monkeypatch):
        import repro.core.vector._compat as compat
        from repro.core.scheduler import rotation_schedule

        monkeypatch.setattr(compat, "np", None)
        graph = random_dfg(6, seed=1)
        results = {
            b: rotation_schedule(graph, MODEL, backend=b)
            for b in ("flat", "views", "naive")
        }
        assert len({r.length for r in results.values()}) == 1

    def test_fuzz_vector_path_skips_clean(self, monkeypatch):
        import repro.core.vector._compat as compat
        from repro.qa.runner import run_cell_on_graph

        monkeypatch.setattr(compat, "np", None)
        failures = run_cell_on_graph(random_dfg(6, seed=1), "1A1M", "vector")
        assert failures == []

    def test_parity_path_still_covers_scalar_backends(self, monkeypatch):
        import repro.core.vector._compat as compat
        from repro.qa.runner import run_cell_on_graph
        from repro.suite.random_graphs import build_case_graph

        monkeypatch.setattr(compat, "np", None)
        # build_case_graph attaches the simulable affine semantics the
        # parity path's certification oracle executes
        graph = build_case_graph("random_dfg", {"num_nodes": 6, "seed": 1})
        failures = run_cell_on_graph(graph, "1A1M", "parity")
        assert failures == []


class TestMissingNumpyBatchAndFuzz:
    """Forced-import-failure coverage for the remaining vector entry points."""

    def test_solve_batch_raises_clear_repro_error(self, monkeypatch):
        import repro.core.vector._compat as compat
        from repro.core.vector.batch import solve_batch

        monkeypatch.setattr(compat, "np", None)
        monkeypatch.setattr(compat, "NUMPY_ERROR", ImportError("forced"))
        with pytest.raises(ReproError, match="numpy"):
            solve_batch([random_dfg(5, seed=2)], MODEL)

    def test_batched_prepass_degrades_to_empty_map(self, monkeypatch):
        import repro.core.vector._compat as compat
        from repro.obs.metrics import MetricsRegistry
        from repro.qa.runner import FuzzReport, smoke_cases, _batched_prepass

        monkeypatch.setattr(compat, "np", None)
        out = _batched_prepass(
            list(smoke_cases()), MetricsRegistry("test"), FuzzReport()
        )
        assert out == {}
