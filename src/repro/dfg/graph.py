"""The cyclic data-flow graph (DFG) at the heart of the library.

A DFG is a directed multigraph ``G = (V, E, d, t)`` (paper, Section 2):

* ``V`` — computation nodes.  Each node carries an *operation type* (a short
  string such as ``"add"`` or ``"mul"``) that resource models and timing
  models key on, plus an optional explicit computation time.
* ``E`` — precedence edges.  Each edge carries a nonnegative *delay count*
  ``d(e)``: an edge ``u -> v`` with ``d(e)`` delays means the computation of
  ``v`` at iteration ``j`` consumes the value produced by ``u`` at iteration
  ``j - d(e)``.  Zero-delay edges are intra-iteration dependences; the
  subgraph of zero-delay edges must be acyclic for a static schedule to
  exist.

Parallel edges are allowed (two edges ``u -> v`` with different delays are
meaningful: they carry values of different iterations), so edges are
identified by an integer edge id assigned at insertion.

The class is deliberately small and explicit; analyses live in
:mod:`repro.dfg.analysis`, retiming in :mod:`repro.dfg.retiming`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import GraphError

NodeId = Hashable

#: Retained edit-log length.  Consumers that fall further behind than this
#: get ``None`` from :meth:`DFG.edits_since` and must rebuild from scratch.
_EDIT_LOG_CAP = 1024


@dataclass(frozen=True)
class GraphEdit:
    """One entry of a DFG's edit log (the versioned-mutation protocol).

    Every mutating operation appends exactly one record and bumps the
    graph's :attr:`DFG.epoch`, so a cache built at epoch ``k`` can ask
    :meth:`DFG.edits_since` for precisely what happened after ``k`` and
    patch itself instead of recompiling.  Only the fields relevant to the
    ``kind`` are set:

    ==================  ====================================================
    ``add_node``         ``node``, ``op``, ``time``
    ``remove_node``      ``node`` (its incident edges are logged as
                         ``remove_edge`` records *before* this one)
    ``add_edge``         ``eid``, ``src``, ``dst``, ``delay``
    ``remove_edge``      ``eid``, ``src``, ``dst``, ``delay`` (old delay)
    ``set_delay``        ``eid``, ``src``, ``dst``, ``delay`` (new delay)
    ``set_exec_time``    ``node``, ``time`` (new explicit time or None)
    ==================  ====================================================
    """

    kind: str
    node: Optional[NodeId] = None
    op: Optional[str] = None
    eid: Optional[int] = None
    src: Optional[NodeId] = None
    dst: Optional[NodeId] = None
    delay: Optional[int] = None
    time: Optional[int] = None


@dataclass(frozen=True)
class Edge:
    """A precedence edge of a DFG.

    Attributes:
        eid: unique integer id within the owning graph (insertion order).
        src: source node id.
        dst: destination node id.
        delay: number of delays (registers) on the edge; ``>= 0``.
    """

    eid: int
    src: NodeId
    dst: NodeId
    delay: int

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise GraphError(f"edge {self.src}->{self.dst}: negative delay {self.delay}")

    def reversed(self, eid: Optional[int] = None) -> "Edge":
        """Return the edge with direction flipped (used by path analyses)."""
        return Edge(self.eid if eid is None else eid, self.dst, self.src, self.delay)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" [{self.delay}D]" if self.delay else ""
        return f"{self.src} -> {self.dst}{tag}"


class Timing(Mapping[str, int]):
    """Maps operation types to computation times (in time units or CS).

    The paper's experiments use ``Timing({"add": 1, "mul": 2})`` for
    non-pipelined multipliers.  A :class:`Timing` may carry a ``default``
    used for unknown op types; by default unknown ops are an error, which
    catches typos early.
    """

    def __init__(self, times: Optional[Mapping[str, int]] = None, default: Optional[int] = None):
        self._times: Dict[str, int] = dict(times or {})
        for op, t in self._times.items():
            if t <= 0:
                raise GraphError(f"op {op!r}: nonpositive time {t}")
        if default is not None and default <= 0:
            raise GraphError(f"nonpositive default time {default}")
        self._default = default

    @classmethod
    def unit(cls) -> "Timing":
        """All operations take one time unit (Figure 2 of the paper)."""
        return cls({}, default=1)

    def __getitem__(self, op: str) -> int:
        if op in self._times:
            return self._times[op]
        if self._default is not None:
            return self._default
        raise KeyError(f"no time for op {op!r} and no default")

    def __iter__(self) -> Iterator[str]:
        return iter(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timing({self._times!r}, default={self._default!r})"


@dataclass
class _NodeRecord:
    op: str
    time: Optional[int]
    label: Optional[str]
    func: Optional[Callable[..., Any]] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class DFG:
    """A cyclic data-flow graph with delayed multi-edges.

    Nodes may be any hashable value.  Iteration order over nodes and edges is
    insertion order, which keeps all algorithms in this library
    deterministic.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._nodes: Dict[NodeId, _NodeRecord] = {}
        self._edges: Dict[int, Edge] = {}
        self._out: Dict[NodeId, List[int]] = {}
        self._in: Dict[NodeId, List[int]] = {}
        self._next_eid = 0
        # Initial register values keyed by edge id; used by the execution
        # simulator (d values per edge, oldest first).
        self._edge_init: Dict[int, Tuple[Any, ...]] = {}
        # Versioned-mutation protocol: every mutation bumps _epoch and
        # appends a GraphEdit.  _log_base is the epoch value of the first
        # retained log entry (the log is capped at _EDIT_LOG_CAP records).
        self._epoch = 0
        self._edit_log: List[GraphEdit] = []
        self._log_base = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: NodeId,
        op: str = "op",
        *,
        time: Optional[int] = None,
        label: Optional[str] = None,
        func: Optional[Callable[..., Any]] = None,
        **attrs: Any,
    ) -> NodeId:
        """Add a computation node.

        Args:
            node: hashable node id.
            op: operation type used by timing and resource models.
            time: explicit computation time; overrides the timing model.
            label: human-readable label for reports.
            func: optional Python callable implementing the node's
                semantics (used by :mod:`repro.sim`); it receives operand
                values in incoming-edge insertion order.
            **attrs: free-form metadata.
        """
        if node in self._nodes:
            raise GraphError(f"duplicate node {node!r}")
        if time is not None and time <= 0:
            raise GraphError(f"node {node!r}: nonpositive time {time}")
        self._nodes[node] = _NodeRecord(op=op, time=time, label=label, func=func, attrs=dict(attrs))
        self._out[node] = []
        self._in[node] = []
        self._log(GraphEdit("add_node", node=node, op=op, time=time))
        return node

    def add_edge(
        self,
        src: NodeId,
        dst: NodeId,
        delay: int = 0,
        *,
        init: Optional[Iterable[Any]] = None,
    ) -> Edge:
        """Add a precedence edge with ``delay`` registers.

        Args:
            src: producing node (must exist).
            dst: consuming node (must exist).
            delay: number of delays; 0 means an intra-iteration dependence.
            init: initial register contents, oldest first; must have exactly
                ``delay`` entries when given.
        """
        for v in (src, dst):
            if v not in self._nodes:
                raise GraphError(f"unknown node {v!r} in edge {src!r}->{dst!r}")
        edge = Edge(self._next_eid, src, dst, delay)
        self._next_eid += 1
        self._edges[edge.eid] = edge
        self._out[src].append(edge.eid)
        self._in[dst].append(edge.eid)
        if init is not None:
            values = tuple(init)
            if len(values) != delay:
                raise GraphError(
                    f"edge {src!r}->{dst!r}: {len(values)} initial values for {delay} delays"
                )
            self._edge_init[edge.eid] = values
        self._log(GraphEdit("add_edge", eid=edge.eid, src=src, dst=dst, delay=delay))
        return edge

    def remove_edge(self, edge: Edge) -> None:
        """Remove an edge previously returned by :meth:`add_edge`."""
        if edge.eid not in self._edges:
            raise GraphError(f"edge {edge} not in graph")
        old = self._edges.pop(edge.eid)
        self._out[old.src].remove(old.eid)
        self._in[old.dst].remove(old.eid)
        self._edge_init.pop(old.eid, None)
        self._log(GraphEdit("remove_edge", eid=old.eid, src=old.src, dst=old.dst, delay=old.delay))

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all incident edges."""
        if node not in self._nodes:
            raise GraphError(f"node {node!r} not in graph")
        for eid in list(self._in[node]) + list(self._out[node]):
            if eid in self._edges:
                self.remove_edge(self._edges[eid])
        del self._nodes[node]
        del self._out[node]
        del self._in[node]
        self._log(GraphEdit("remove_node", node=node))

    def set_delay(self, edge: "Edge | int", delay: int) -> Edge:
        """Replace an edge's delay in place.

        The edge keeps its id and its position in insertion order; a stored
        ``init`` whose length no longer matches the new delay is dropped
        (the register chain it described no longer exists).  Accepts the
        :class:`Edge` object or its integer id; returns the new edge.
        """
        eid = edge.eid if isinstance(edge, Edge) else edge
        old = self.edge_by_id(eid)
        if delay < 0:
            raise GraphError(f"edge {old}: negative delay {delay}")
        if delay == old.delay:
            return old
        new = Edge(eid, old.src, old.dst, delay)
        self._edges[eid] = new
        init = self._edge_init.get(eid)
        if init is not None and len(init) != delay:
            del self._edge_init[eid]
        self._log(GraphEdit("set_delay", eid=eid, src=new.src, dst=new.dst, delay=delay))
        return new

    def set_exec_time(self, node: NodeId, time: Optional[int]) -> None:
        """Set/clear a node's explicit computation time (None = timing model)."""
        if time is not None and time <= 0:
            raise GraphError(f"node {node!r}: nonpositive time {time}")
        rec = self._record(node)
        if rec.time == time:
            return
        rec.time = time
        self._log(GraphEdit("set_exec_time", node=node, time=time))

    # ------------------------------------------------------------------
    # versioned-mutation protocol
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; bumps on every structural/attr edit."""
        return self._epoch

    def edits_since(self, epoch: int) -> Optional[List[GraphEdit]]:
        """The edits applied after ``epoch``, oldest first.

        Returns ``[]`` when the graph is unchanged, or ``None`` when
        ``epoch`` predates the retained log (or lies in the future) — the
        caller must then resynchronize from scratch.
        """
        if epoch == self._epoch:
            return []
        if epoch < self._log_base or epoch > self._epoch:
            return None
        return list(self._edit_log[epoch - self._log_base :])

    def _log(self, edit: GraphEdit) -> None:
        self._epoch += 1
        log = self._edit_log
        log.append(edit)
        if len(log) > _EDIT_LOG_CAP:
            drop = len(log) - _EDIT_LOG_CAP
            del log[:drop]
            self._log_base += drop

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        """Node ids in insertion order."""
        return list(self._nodes)

    @property
    def edges(self) -> List[Edge]:
        """Edges in insertion order."""
        return list(self._edges.values())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Whether at least one edge ``src -> dst`` exists (any delay)."""
        return any(self._edges[eid].dst == dst for eid in self._out.get(src, ()))

    def edge_by_id(self, eid: int) -> Edge:
        """Look an edge up by its integer id."""
        try:
            return self._edges[eid]
        except KeyError:
            raise GraphError(f"no edge with id {eid}") from None

    def out_edges(self, node: NodeId) -> List[Edge]:
        """Outgoing edges of ``node`` in insertion order."""
        self._require(node)
        return [self._edges[eid] for eid in self._out[node]]

    def in_edges(self, node: NodeId) -> List[Edge]:
        """Incoming edges of ``node`` in insertion order (operand order)."""
        self._require(node)
        return [self._edges[eid] for eid in self._in[node]]

    def successors(self, node: NodeId) -> List[NodeId]:
        """Distinct successor nodes, in first-edge order."""
        seen, out = set(), []
        for e in self.out_edges(node):
            if e.dst not in seen:
                seen.add(e.dst)
                out.append(e.dst)
        return out

    def predecessors(self, node: NodeId) -> List[NodeId]:
        """Distinct predecessor nodes, in first-edge order."""
        seen, out = set(), []
        for e in self.in_edges(node):
            if e.src not in seen:
                seen.add(e.src)
                out.append(e.src)
        return out

    def op(self, node: NodeId) -> str:
        """Operation type of ``node``."""
        return self._record(node).op

    def label(self, node: NodeId) -> str:
        """Human-readable label (defaults to the node id)."""
        rec = self._record(node)
        return rec.label if rec.label is not None else str(node)

    def func(self, node: NodeId) -> Optional[Callable[..., Any]]:
        """The node's semantic callable, if attached (see :mod:`repro.sim`)."""
        return self._record(node).func

    def set_func(self, node: NodeId, func: Callable[..., Any]) -> None:
        """Attach/replace the node's semantic callable."""
        self._record(node).func = func

    def attrs(self, node: NodeId) -> Dict[str, Any]:
        """Mutable free-form metadata dict of ``node``."""
        return self._record(node).attrs

    def explicit_time(self, node: NodeId) -> Optional[int]:
        """The per-node time override, or None when the timing model rules."""
        return self._record(node).time

    def time(self, node: NodeId, timing: Optional[Timing] = None) -> int:
        """Resolve the computation time of ``node``.

        An explicit per-node time wins; otherwise ``timing[op]``; a bare
        graph with neither defaults to 1.
        """
        rec = self._record(node)
        if rec.time is not None:
            return rec.time
        if timing is not None:
            return timing[rec.op]
        return 1

    def edge_init(self, edge: Edge) -> Optional[Tuple[Any, ...]]:
        """Initial register contents of an edge (oldest first), if declared."""
        return self._edge_init.get(edge.eid)

    def set_edge_init(self, edge: Edge, values: Iterable[Any]) -> None:
        """Set an edge's initial register contents (oldest first)."""
        values = tuple(values)
        if len(values) != edge.delay:
            raise GraphError(
                f"edge {edge}: {len(values)} initial values for {edge.delay} delays"
            )
        self._edge_init[edge.eid] = values

    def total_delay(self) -> int:
        """Sum of delays over all edges (the loop's register count)."""
        return sum(e.delay for e in self._edges.values())

    def ops_histogram(self) -> Dict[str, int]:
        """Count of nodes per operation type."""
        hist: Dict[str, int] = {}
        for rec in self._nodes.values():
            hist[rec.op] = hist.get(rec.op, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "DFG":
        """Deep-enough copy: fresh structure, shared node funcs."""
        g = DFG(self.name if name is None else name)
        for node, rec in self._nodes.items():
            g.add_node(node, rec.op, time=rec.time, label=rec.label, func=rec.func, **rec.attrs)
        for e in self._edges.values():
            new = g.add_edge(e.src, e.dst, e.delay)
            if e.eid in self._edge_init:
                g.set_edge_init(new, self._edge_init[e.eid])
        return g

    def reversed(self) -> "DFG":
        """The graph with every edge flipped (delays preserved)."""
        g = DFG(self.name + ".rev")
        for node, rec in self._nodes.items():
            g.add_node(node, rec.op, time=rec.time, label=rec.label, func=rec.func, **rec.attrs)
        for e in self._edges.values():
            g.add_edge(e.dst, e.src, e.delay)
        return g

    def to_networkx(self):
        """Export to a :class:`networkx.MultiDiGraph` (delay as edge attr)."""
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for node, rec in self._nodes.items():
            g.add_node(node, op=rec.op, time=rec.time, label=rec.label)
        for e in self._edges.values():
            g.add_edge(e.src, e.dst, key=e.eid, delay=e.delay)
        return g

    @classmethod
    def from_networkx(cls, g, name: Optional[str] = None) -> "DFG":
        """Import from any networkx directed graph with ``delay`` edge attrs.

        Missing ``op`` defaults to ``"op"``, missing ``delay`` to 0.
        """
        dfg = cls(name if name is not None else (g.name or ""))
        for node, data in g.nodes(data=True):
            dfg.add_node(
                node,
                data.get("op", "op"),
                time=data.get("time"),
                label=data.get("label"),
            )
        if g.is_multigraph():
            edge_iter = ((u, v, data) for u, v, _k, data in g.edges(keys=True, data=True))
        else:
            edge_iter = g.edges(data=True)
        for u, v, data in edge_iter:
            dfg.add_edge(u, v, int(data.get("delay", 0)))
        return dfg

    # ------------------------------------------------------------------
    def _record(self, node: NodeId) -> _NodeRecord:
        try:
            return self._nodes[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def _require(self, node: NodeId) -> None:
        if node not in self._nodes:
            raise GraphError(f"node {node!r} not in graph")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DFG({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges}, "
            f"delays={self.total_delay()})"
        )
