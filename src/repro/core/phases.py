"""Rotation phases and the paper's two heuristics (Section 5).

A *rotation phase* of size ``i`` performs ``beta`` down-rotations of size
``i``, halving the size whenever it reaches the current schedule length
(rotations of size >= length are illegal).  The two heuristics drive
phases differently:

* **Heuristic 1** runs phases of sizes ``1..sigma`` *independently*, each
  restarting from the initial list schedule of the original DFG — more
  predictable, embarrassingly parallel, good for studying the effect of
  rotation size.
* **Heuristic 2** runs phases in *decreasing* size order, each phase
  continuing from the previous phase's rotation function and re-seeding
  its schedule with ``FullSchedule(G_R)`` — the retimed graph "exposes
  more faces" of the DFG.  This is the heuristic behind the paper's
  reported results (it wins on the elliptic filter's 2A 1Mp case).

Schedule quality is the *wrapped* length (Section 4): for single-cycle
graphs it coincides with the span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.dfg.graph import DFG
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.core.engine import make_engine, strip_funcs
from repro.core.rotation import RotationState
from repro.core.wrapping import WrappedSchedule, wrap
from repro.obs import tracer as _obs


@dataclass
class BestTracker:
    """Keeps the shortest wrapped length seen and the states achieving it.

    The paper's ``(Lopt, Q)`` pair: ``Q`` collects distinct optimal
    schedules ("the number of optimal schedules found ranges from 15 to
    35"); ``cap`` bounds memory.
    """

    cap: int = 64
    length: Optional[int] = None
    entries: List[Tuple[RotationState, WrappedSchedule]] = field(default_factory=list)
    _seen: Set[Tuple] = field(default_factory=set)
    offers: int = 0

    def offer(self, state: RotationState) -> WrappedSchedule:
        """Score a state (wrapped length) and record it if it ties or wins."""
        self.offers += 1
        wrapped = state.wrapped()
        if self.length is None or wrapped.period < self.length:
            self.length = wrapped.period
            self.entries = [(state, wrapped)]
            self._seen = {self._key(state)}
        elif wrapped.period == self.length and len(self.entries) < self.cap:
            key = self._key(state)
            if key not in self._seen:
                self._seen.add(key)
                self.entries.append((state, wrapped))
        return wrapped

    @staticmethod
    def _key(state: RotationState) -> Tuple:
        # Normalized start times + rotation counts in node order — the same
        # identity the old frozenset pair expressed, but cached on the state
        # (states are immutable) and cheaper to build and hash.
        return state.fingerprint()

    def merge(self, other: "BestTracker") -> None:
        """Fold another tracker in, as if its offers had been made here.

        Used by the parallel :func:`heuristic_1` path: each worker tracks
        its own phase, and merging the workers' trackers *in phase order*
        reproduces the sequential tracker exactly (a worker tracker with
        the same cap never drops an entry the sequential run would have
        kept, because its duplicates of already-seen schedules only ever
        shrink its entry list relative to the merged one).
        """
        self.offers += other.offers
        if other.length is None:
            return
        if self.length is None or other.length < self.length:
            self.length = other.length
            self.entries = list(other.entries[: self.cap])
            self._seen = {self._key(s) for s, _ in self.entries}
        elif other.length == self.length:
            for state, wrapped in other.entries:
                if len(self.entries) >= self.cap:
                    break
                key = self._key(state)
                if key not in self._seen:
                    self._seen.add(key)
                    self.entries.append((state, wrapped))

    @property
    def best_state(self) -> RotationState:
        return self.entries[0][0]

    @property
    def best_wrapped(self) -> WrappedSchedule:
        return self.entries[0][1]


def rotation_phase(
    state: RotationState,
    size: int,
    beta: int,
    best: BestTracker,
) -> RotationState:
    """The paper's ``RotationPhase``: ``beta`` rotations of (nominal) size
    ``size``, halving the size while it reaches the schedule length."""
    with _obs.active.span("phase", size=size, beta=beta):
        current = size
        for _ in range(beta):
            length = state.length
            while current >= length and current > 1:
                current = (current + 1) // 2  # ceil(i/2)
            if current >= length:
                break  # schedule of length 1 cannot be rotated further
            state = state.down_rotate(current)
            best.offer(state)
        return state


def _h1_phase_worker(payload) -> BestTracker:
    """Run one heuristic-1 phase in a worker process.

    Rebuilds the (deterministic) initial schedule locally rather than
    shipping it, and does *not* offer it — the parent offers the initial
    state exactly once, like the sequential path.
    """
    graph, model, priority, size, beta, cap, backend = payload
    state = RotationState.initial(
        graph, model, priority, engine=make_engine(backend, graph, model, priority)
    )
    local = BestTracker(cap=cap)
    rotation_phase(state, size, beta, local)
    return local


def _rebind_tracker(
    tracker: BestTracker, graph: DFG, model: ResourceModel, priority
) -> BestTracker:
    """Re-anchor a worker tracker's states onto the caller's graph object.

    Workers schedule a func-stripped copy of the graph (node callables do
    not pickle and never affect scheduling); start times and retimings are
    identical, so rebuilding each state on the original graph and
    re-wrapping reproduces the sequential tracker's entries bit for bit.
    """
    out = BestTracker(cap=tracker.cap)
    out.offers = tracker.offers
    out.length = tracker.length
    for state, _wrapped in tracker.entries:
        rebound = RotationState(
            graph,
            model,
            state.retiming,
            Schedule(graph, model, state.schedule.start_map, state.schedule.unit_map),
            priority,
            state.trace,
        )
        out.entries.append((rebound, wrap(rebound.schedule, rebound.retiming)))
        out._seen.add(BestTracker._key(rebound))
    return out


def _run_phases_parallel(
    graph: DFG,
    model: ResourceModel,
    priority,
    beta: int,
    cap: int,
    sizes: Sequence[int],
    workers: int,
    backend: str,
) -> Optional[List[BestTracker]]:
    """Run independent phases across processes; None when the pool or the
    payload cannot be used (caller falls back to the sequential loop)."""
    import pickle

    try:
        from concurrent.futures import ProcessPoolExecutor

        payload_graph = strip_funcs(graph)
        # Fail fast on unpicklable models/priorities before spawning.
        pickle.dumps((payload_graph, model, priority))
        results: List[Optional[BestTracker]] = [None] * len(sizes)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _h1_phase_worker,
                    (payload_graph, model, priority, size, beta, cap, backend),
                ): i
                for i, size in enumerate(sizes)
            }
            for future, i in futures.items():
                results[i] = future.result()
        return results  # type: ignore[return-value]
    except Exception:
        return None


def heuristic_1(
    graph: DFG,
    model: ResourceModel,
    beta: Optional[int] = None,
    sigma: Optional[int] = None,
    priority="descendants",
    cap: int = 64,
    engine=None,
    workers: Optional[int] = None,
) -> BestTracker:
    """Independent phases of sizes ``1..sigma``, each from the initial
    schedule of the original DFG (rotation function reset to zero).

    Args:
        graph: cyclic DFG to schedule.
        model: resource model.
        beta: rotations per phase (default ``2 * |V|``).
        sigma: largest phase size (default: initial schedule length - 1).
        priority: list-scheduling priority.
        cap: max number of tied-optimal schedules retained.
        engine: ``None`` shares one :class:`RotationEngine` across phases,
            ``False`` runs cache-free, or pass a prebuilt engine.
        workers: run the (independent) phases in a process pool of this
            size; results are merged in phase order, so the outcome is
            identical to the sequential run.  Falls back to sequential
            execution when multiprocessing is unavailable.
    """
    if engine is None:
        engine = make_engine(None, graph, model, priority)
    backend = "naive" if engine is False else getattr(engine, "backend_name", "views")
    initial = RotationState.initial(graph, model, priority, engine=engine)
    best = BestTracker(cap=cap)
    best.offer(initial)
    if beta is None:
        beta = max(8, 2 * graph.num_nodes)
    if sigma is None:
        sigma = max(1, initial.length - 1)
    sizes = list(range(1, sigma + 1))
    if workers is not None and workers > 1 and len(sizes) > 1:
        trackers = _run_phases_parallel(
            graph, model, priority, beta, cap, sizes, workers, backend
        )
        if trackers is not None:
            for tracker in trackers:
                best.merge(_rebind_tracker(tracker, graph, model, priority))
            return best
    for size in sizes:
        rotation_phase(initial, size, beta, best)
    return best


def heuristic_2(
    graph: DFG,
    model: ResourceModel,
    beta: Optional[int] = None,
    sigma: Optional[int] = None,
    priority="descendants",
    cap: int = 64,
    engine=None,
    workers: Optional[int] = None,
) -> BestTracker:
    """Cascaded phases in decreasing size order with ``FullSchedule(G_R)``
    re-seeding between phases (the paper's reported heuristic).

    ``engine`` is shared across re-seedings (its per-retiming view cache
    makes the re-seed schedules nearly free when a retiming recurs);
    ``workers`` is accepted for signature parity with :func:`heuristic_1`
    but ignored — the phases form a chain and cannot run concurrently.
    """
    del workers  # phases are sequentially dependent
    if engine is None:
        engine = make_engine(None, graph, model, priority)
    state = RotationState.initial(graph, model, priority, engine=engine)
    best = BestTracker(cap=cap)
    best.offer(state)
    if beta is None:
        beta = max(8, 2 * graph.num_nodes)
    if sigma is None:
        sigma = max(1, state.length - 1)
    for size in range(sigma, 0, -1):
        state = rotation_phase(state, size, beta, best)
        # Re-seed the next phase from a fresh list schedule of G_R.
        state = RotationState.initial(
            graph, model, priority, retiming=state.retiming, engine=engine
        )
        best.offer(state)
    return best


HEURISTICS = {"h1": heuristic_1, "h2": heuristic_2}
