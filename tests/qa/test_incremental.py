"""The incremental-parity oracle and its fuzz-grid wiring."""

import random

from repro import diffeq, elliptic
from repro.core.session import open_session
from repro.qa import (
    PATHS,
    PINNED_EDIT_SCRIPTS,
    check_incremental_session,
    random_edit_script,
)
from repro.qa.incremental import _compare_backends
from repro.qa.runner import config_model, run_cell_on_graph


class TestRandomEditScript:
    def test_deterministic_for_fixed_seed(self):
        g, model = diffeq(), config_model("1A1M")
        a = random_edit_script(g, model, random.Random(5), steps=6)
        b = random_edit_script(g, model, random.Random(5), steps=6)
        assert a == b

    def test_script_replays_through_session(self):
        g, model = elliptic(), config_model("2A1M")
        script = random_edit_script(g, model, random.Random(3), steps=6)
        assert script  # a 6-step walk on elliptic always emits something
        session = open_session(g, model)
        for op in script:
            session.apply_edit(op)  # must never dead-end
        assert session.resolve().length > 0

    def test_scratch_copy_leaves_input_untouched(self):
        g, model = diffeq(), config_model("1A1M")
        epoch = g.epoch
        random_edit_script(g, model, random.Random(1), steps=8)
        assert g.epoch == epoch


class TestOracle:
    def test_benchmarks_certify_clean(self):
        assert check_incremental_session(diffeq(), config_model("1A1M")) == []
        assert check_incremental_session(elliptic(), config_model("2A1M")) == []

    def test_divergent_results_are_flagged(self):
        # Different models produce different schedules; the comparator must
        # report them as incremental-parity failures, not raise.
        tight = open_session(diffeq(), config_model("1A1M")).resolve()
        loose = open_session(diffeq(), config_model("2A1M")).resolve()
        failures = _compare_backends(
            {"flat": tight, "views": loose, "naive": loose}, "synthetic"
        )
        assert failures
        assert all(f.oracle == "incremental-parity" for f in failures)


class TestGridWiring:
    def test_incremental_in_paths(self):
        assert "incremental" in PATHS

    def test_run_cell_on_graph_dispatches_incremental(self):
        assert run_cell_on_graph(diffeq(), "1A1M", "incremental") == []


class TestPinnedScripts:
    def test_pinned_scripts_replay_on_elliptic(self):
        model = config_model("3A2M")
        for name, script in PINNED_EDIT_SCRIPTS.items():
            s = open_session(elliptic(), model)
            s.resolve()
            for op in script:
                s.apply_edit(op)
            result = s.resolve()
            assert result.length > 0, name
            assert s.metrics["repairs"] == 1, name
