"""Unit tests for the exact (branch-and-bound) modulo scheduler."""

import pytest

from repro.schedule import ResourceModel, is_legal_modulo_schedule
from repro.baselines.exact import exact_modulo_schedule
from repro.core import rotation_schedule
from repro.bounds import lower_bound
from repro.suite import biquad, diffeq, lattice
from repro.errors import SchedulingError


class TestExactSearch:
    @pytest.mark.parametrize("adders,mults,pipelined,expected", [
        (1, 1, True, 6),
        (1, 2, False, 6),
        (1, 1, False, 12),
    ])
    def test_diffeq_optima_proven(self, adders, mults, pipelined, expected):
        """The Table 3 diffeq values are true optima, not heuristic luck."""
        g = diffeq()
        model = ResourceModel.adders_mults(adders, mults, pipelined_mults=pipelined)
        res = exact_modulo_schedule(g, model)
        assert res.ii == expected
        assert res.proven_optimal
        assert is_legal_modulo_schedule(g, model, res.start, res.ii, res.retiming)

    def test_lattice_period_2_proven(self):
        """The headline of EXPERIMENTS.md deviation #2: period 2 exists on
        our lattice reconstruction — proven exhaustively, not just found
        by a heuristic."""
        g = lattice()
        for pipelined, mults in ((True, 8), (False, 15)):
            model = ResourceModel.adders_mults(6, mults, pipelined_mults=pipelined)
            res = exact_modulo_schedule(g, model)
            assert res.ii == 2
            assert all(0 <= s < 2 for s in res.start.values())

    def test_result_slots_within_period(self):
        res = exact_modulo_schedule(biquad(), ResourceModel.adders_mults(2, 4))
        assert res.ii == 4
        assert all(0 <= s < res.ii for s in res.start.values())

    def test_rotation_never_beats_exact(self):
        """Soundness cross-check: RS results sit at or above the proven
        optimum."""
        cases = [
            (diffeq(), ResourceModel.adders_mults(1, 1)),
            (biquad(), ResourceModel.adders_mults(2, 3)),
        ]
        for g, model in cases:
            exact = exact_modulo_schedule(g, model)
            rs = rotation_schedule(g, model)
            assert rs.length >= exact.ii
            assert exact.ii >= lower_bound(g, model)

    def test_node_limit_guard(self):
        from repro.suite import random_dfg

        g = random_dfg(50, seed=1)
        with pytest.raises(SchedulingError, match="node"):
            exact_modulo_schedule(g, ResourceModel.adders_mults(2, 2), node_limit=40)

    def test_step_limit_guard(self):
        from repro.suite import allpole

        with pytest.raises(SchedulingError, match="steps"):
            exact_modulo_schedule(
                allpole(), ResourceModel.adders_mults(2, 1), step_limit=50
            )

    def test_first_node_pinned_to_slot_zero(self):
        res = exact_modulo_schedule(diffeq(), ResourceModel.adders_mults(1, 2))
        assert 0 in res.start.values()
