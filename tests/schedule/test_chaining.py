"""Unit tests for operation chaining (time-unit control steps)."""

import pytest

from repro.dfg import DFG, Retiming, Timing
from repro.schedule.chaining import (
    ChainedSchedule,
    chained_full_schedule,
    paper_technology,
)
from repro.suite import diffeq
from repro.errors import ResourceError, SchedulingError


def _simple_chain_graph() -> DFG:
    """a1 -> a2 -> a3 adds feeding one multiply, plus a loop-carried edge."""
    g = DFG("chains")
    for n in ("a1", "a2", "a3"):
        g.add_node(n, "add")
    g.add_node("m", "mul")
    g.add_edge("a1", "a2", 0)
    g.add_edge("a2", "a3", 0)
    g.add_edge("a3", "m", 0)
    g.add_edge("m", "a1", 1)
    return g


class TestPaperTechnology:
    def test_50ns_clock_no_chaining(self):
        """40 + 40 > 50: two adds never share a control step in series."""
        timing, cs, units, binding = paper_technology(50)
        sched = chained_full_schedule(_simple_chain_graph(), timing, cs, units, binding)
        assert sched.violations() == []
        assert sched.chains() == []
        # a1@0, a2@1, a3@2, m spans 2 steps: total 5 CS
        assert sched.length == 5

    def test_100ns_clock_chains_two_adds(self):
        """At 100 ns, two 40 ns adds chain and the 80 ns multiply fits one
        step — the schedule collapses."""
        timing, _, units, binding = paper_technology()
        sched = chained_full_schedule(_simple_chain_graph(), timing, 100, units, binding)
        assert sched.violations() == []
        chains = sched.chains()
        assert any(len(c) >= 2 for c in chains)
        assert sched.length <= 3

    def test_diffeq_on_paper_clock(self):
        timing, cs, units, binding = paper_technology(50)
        sched = chained_full_schedule(diffeq(), timing, cs, units, binding)
        assert sched.violations() == []
        # equivalent to the integral 1A 1M model: 14 CS initial schedule
        assert sched.length == 14


class TestMechanics:
    def test_multicycle_aligns_to_step_boundary(self):
        timing, cs, units, binding = paper_technology(50)
        sched = chained_full_schedule(_simple_chain_graph(), timing, cs, units, binding)
        assert sched.entry("m").offset == 0

    def test_start_finish_times(self):
        timing, _, units, binding = paper_technology()
        sched = chained_full_schedule(_simple_chain_graph(), timing, 100, units, binding)
        assert sched.finish_time("a1") - sched.start_time("a1") == 40

    def test_under_retiming(self):
        timing, cs, units, binding = paper_technology(50)
        g = _simple_chain_graph()
        r = Retiming.of_set(["a1"])
        sched = chained_full_schedule(g, timing, cs, units, binding, r)
        assert sched.violations(r) == []

    def test_resource_contention_serializes(self):
        g = DFG()
        g.add_node("x", "add")
        g.add_node("y", "add")
        timing = Timing({"add": 40})
        sched = chained_full_schedule(
            g, timing, 50, {"adder": 1}, {"add": "adder"}
        )
        starts = sorted(sched.start_time(v) for v in g.nodes)
        assert starts[1] >= starts[0] + 40  # one adder: no overlap

    def test_two_units_parallelize(self):
        g = DFG()
        g.add_node("x", "add")
        g.add_node("y", "add")
        timing = Timing({"add": 40})
        sched = chained_full_schedule(
            g, timing, 50, {"adder": 2}, {"add": "adder"}
        )
        assert sched.start_time("x") == sched.start_time("y") == 0

    def test_missing_binding_rejected(self):
        g = DFG()
        g.add_node("x", "fft")
        with pytest.raises(ResourceError):
            chained_full_schedule(g, Timing({"fft": 10}), 50, {"adder": 1}, {})

    def test_nonpositive_cs_rejected(self):
        g = DFG()
        g.add_node("x", "add")
        with pytest.raises(SchedulingError):
            chained_full_schedule(g, Timing({"add": 1}), 0, {"adder": 1}, {"add": "adder"})

    def test_violation_detection(self):
        """Hand-built illegal chained schedules are caught."""
        from repro.schedule.chaining import ChainedScheduleEntry

        g = _simple_chain_graph()
        timing, cs, units, binding = paper_technology(50)
        entries = {
            "a1": ChainedScheduleEntry("a1", 0, 0, "adder", 0),
            "a2": ChainedScheduleEntry("a2", 0, 20, "adder", 0),  # too early + overlap
            "a3": ChainedScheduleEntry("a3", 1, 0, "adder", 0),
            "m": ChainedScheduleEntry("m", 2, 0, "mult", 0),
        }
        sched = ChainedSchedule(g, timing, cs, units, binding, entries)
        bad = sched.violations()
        assert any("too early" in v for v in bad)
        assert any("double-booked" in v for v in bad)
