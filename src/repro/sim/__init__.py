"""Execution simulators: reference loop, software pipeline, machine model."""

from repro.sim.reference import ReferenceExecutor, reference_run
from repro.sim.executor import PipelineExecutor, PipelineRunReport, verify_pipeline
from repro.sim.machine import MachineReport, MachineSimulator, UnitUtilization, simulate_machine

__all__ = [
    "MachineReport",
    "MachineSimulator",
    "PipelineExecutor",
    "PipelineRunReport",
    "ReferenceExecutor",
    "UnitUtilization",
    "reference_run",
    "simulate_machine",
    "verify_pipeline",
]
