"""Unit tests for the incremental rotation engine's internals."""

import pickle
import random

import pytest

from repro.dfg.graph import DFG
from repro.dfg.retiming import Retiming
from repro.core.engine import RotationEngine, ViewCache, strip_funcs
from repro.core.phases import BestTracker, heuristic_1
from repro.core.rotation import RotationState
from repro.core.scheduler import rotation_schedule
from repro.schedule.resources import ResourceModel
from repro.suite import diffeq, elliptic
from repro.errors import RotationError


def random_cyclic_dfg(seed: int) -> DFG:
    """A random DFG whose every cycle carries a delay (legal for rotation)."""
    rng = random.Random(seed)
    n = rng.randint(8, 14)
    g = DFG(f"rand{seed}")
    for i in range(n):
        g.add_node(i, "mul" if rng.random() < 0.35 else "add")
    for i in range(n - 1):
        g.add_edge(i, i + 1, 0 if rng.random() < 0.6 else 1)
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u < v:
            g.add_edge(u, v, 0 if rng.random() < 0.5 else 1)
        else:
            g.add_edge(u, v, rng.randint(1, 2))  # back edges must carry delay
    return g


class TestViewDerivation:
    @pytest.mark.parametrize("seed", range(6))
    def test_derived_views_match_full_builds(self, seed):
        """After every rotation of a random walk, the incrementally derived
        view equals a from-scratch build of the same retiming."""
        graph = random_cyclic_dfg(seed)
        model = ResourceModel.adders_mults(2, 2)
        engine = RotationEngine(graph, model)
        state = RotationState.initial(graph, model, engine=engine)
        rng = random.Random(seed + 1000)
        for _ in range(25):
            if state.length <= 1:
                break
            state = state.down_rotate(rng.randint(1, state.length - 1))
            view = engine.views.get(state.retiming)
            fresh = ViewCache(graph, model.timing())._build(state.retiming)
            assert view.dr == fresh.dr
            assert {v: sorted(map(str, view.zsucc[v])) for v in graph.nodes} == {
                v: sorted(map(str, fresh.zsucc[v])) for v in graph.nodes
            }
            assert {v: sorted(map(str, view.zpred[v])) for v in graph.nodes} == {
                v: sorted(map(str, fresh.zpred[v])) for v in graph.nodes
            }
            assert view.prio == fresh.prio
            assert view.reach == fresh.reach
        assert engine.stats()["view_derives"] > 0

    @pytest.mark.parametrize("priority", ["height", "combined", "mobility"])
    def test_other_priorities_stay_consistent(self, priority):
        graph = diffeq()
        model = ResourceModel.unit_time(1, 1)
        state = RotationState.initial(graph, model, priority=priority)
        naive = RotationState.initial(graph, model, priority=priority, engine=False)
        for _ in range(6):
            state = state.down_rotate(1)
            naive = naive.down_rotate(1)
            assert state.schedule.normalized().start_map == naive.schedule.normalized().start_map


class TestEngineStats:
    def test_h2_run_populates_counters(self):
        result = rotation_schedule(elliptic(), ResourceModel.adders_mults(3, 2), "h2")
        stats = result.engine_stats
        assert stats["rotations"] > 0
        assert stats["view_derives"] > 0
        assert stats["view_builds"] >= 1
        assert stats["initial_schedules"] > 1  # h2 re-seeds between phases
        # Chained rotations ride the delta grid; re-seeds only happen when
        # rotating a state that is no longer the engine's chain tip.
        assert stats["grid_delta_rotations"] > 0
        assert stats["priority_entries_reused"] > 0

    def test_rotating_an_old_state_reseeds_the_grid(self):
        graph = diffeq()
        model = ResourceModel.unit_time(1, 1)
        engine = RotationEngine(graph, model)
        s0 = RotationState.initial(graph, model, engine=engine)
        s0.down_rotate(1)  # moves the chain tip past s0
        s0.down_rotate(1)  # rotating s0 again must reseed, not corrupt
        assert engine.stats()["grid_reseeds"] >= 1
        # and the reseeded result still matches the naive path
        naive = RotationState.initial(graph, model, engine=False).down_rotate(1)
        again = s0.down_rotate(1)
        assert again.schedule.normalized().start_map == naive.schedule.normalized().start_map

    def test_incompatible_engine_is_rejected(self):
        graph, other = diffeq(), elliptic()
        model = ResourceModel.unit_time(1, 1)
        engine = RotationEngine(other, model)
        with pytest.raises(RotationError):
            RotationState.initial(graph, model, engine=engine)


class TestParallelHeuristic1:
    def test_workers_match_sequential(self):
        graph = diffeq()
        model = ResourceModel.adders_mults(2, 2)
        seq = heuristic_1(graph, model)
        par = heuristic_1(graph, model, workers=2)
        assert par.length == seq.length
        assert par.offers == seq.offers
        assert [s.schedule.normalized().start_map for s, _ in par.entries] == [
            s.schedule.normalized().start_map for s, _ in seq.entries
        ]
        assert [s.retiming for s, _ in par.entries] == [s.retiming for s, _ in seq.entries]
        # rebound states live on the caller's graph, not the worker copy
        assert all(s.graph is graph for s, _ in par.entries)

    def test_tracker_merge_equals_sequential_offers(self):
        graph = diffeq()
        model = ResourceModel.unit_time(1, 1)
        states = [RotationState.initial(graph, model, engine=False)]
        for _ in range(7):
            states.append(states[-1].down_rotate(1))
        merged, split_a, split_b = BestTracker(), BestTracker(), BestTracker()
        for s in states:
            merged.offer(s)
        for s in states[:4]:
            split_a.offer(s)
        for s in states[4:]:
            split_b.offer(s)
        split_a.merge(split_b)
        assert split_a.length == merged.length
        assert split_a.offers == merged.offers
        assert [s.fingerprint() for s, _ in split_a.entries] == [
            s.fingerprint() for s, _ in merged.entries
        ]


class TestPickling:
    def test_strip_funcs_makes_graphs_picklable(self):
        graph = elliptic()  # node funcs are local closures
        with pytest.raises(Exception):
            pickle.dumps(graph)
        stripped = strip_funcs(graph)
        clone = pickle.loads(pickle.dumps(stripped))
        assert clone.nodes == graph.nodes
        assert [(e.src, e.dst, e.delay) for e in clone.edges] == [
            (e.src, e.dst, e.delay) for e in graph.edges
        ]

    def test_states_pickle_without_their_engine(self):
        graph = strip_funcs(diffeq())
        state = RotationState.initial(graph, ResourceModel.unit_time(1, 1))
        assert state.engine is not None
        clone = pickle.loads(pickle.dumps(state))
        assert clone.engine is None and clone.engine_token is None
        assert clone.schedule.start_map == state.schedule.start_map
        # and the clone still rotates (it just rebuilds caches lazily)
        assert clone.down_rotate(1).length == state.down_rotate(1).length
