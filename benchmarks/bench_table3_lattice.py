"""Regenerates **Table 3 (4-stage lattice filter)**: 12 resource configs.

10 of 12 rows match the paper exactly; the two deepest-pipelining rows
(6A 8Mp / 6A 15M) reach 3 instead of the paper's 2 — period 2 is feasible
on this reconstruction (the modulo baseline proves it below) but the
rotation heuristic stops one control step short.
"""

import pytest

from repro.bounds import combined_lower_bound
from repro.core import rotation_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

#: tag -> (paper LB, paper RS, paper depth, our expected RS)
ROWS = {
    "6A8Mp": (2, 2, 6, 3),
    "4A5Mp": (3, 3, 4, 3),
    "3A4Mp": (4, 4, 3, 4),
    "3A3Mp": (5, 5, 2, 5),
    "2A3Mp": (6, 6, 2, 6),
    "2A2Mp": (8, 8, 2, 8),
    "6A15M": (2, 2, 5, 3),
    "4A10M": (3, 3, 5, 3),
    "3A8M": (4, 4, 3, 4),
    "3A6M": (5, 5, 4, 5),
    "2A5M": (6, 6, 2, 6),
    "2A4M": (8, 8, 2, 8),
}


@pytest.mark.parametrize("tag", list(ROWS))
def test_table3_lattice_row(benchmark, tag):
    paper_lb, paper_rs, paper_depth, expected = ROWS[tag]
    graph = get_benchmark("lattice")
    model = model_for(tag)
    result = run_once(benchmark, rotation_schedule, graph, model)
    lb = combined_lower_bound(graph, model)
    record(
        benchmark,
        resources=model.label(),
        paper_LB=paper_lb,
        our_LB=lb.combined,
        paper_RS=f"{paper_rs} ({paper_depth})",
        measured_RS=f"{result.length} ({result.depth})",
    )
    assert result.length == expected
    assert result.length >= lb.combined


@pytest.mark.parametrize("tag", ["6A8Mp", "6A15M"])
def test_period_2_is_feasible_via_modulo(benchmark, tag):
    """Cross-check on the two deviating rows: iterative modulo scheduling
    reaches the paper's period 2 on this reconstruction."""
    from repro.baselines import modulo_schedule

    graph = get_benchmark("lattice")
    model = model_for(tag)
    result = run_once(benchmark, modulo_schedule, graph, model)
    record(benchmark, resources=model.label(), modulo_II=result.ii, paper_RS=2)
    assert result.ii == 2
