"""Shared helpers for the experiment benches.

Every bench regenerates one paper table or figure: it runs the real
experiment once under pytest-benchmark timing (rounds=1 — these are
experiments, not micro-benchmarks), asserts this reproduction's expected
outcome, and records paper-vs-measured values in ``extra_info`` so
``pytest benchmarks/ --benchmark-only`` doubles as the experiment log.
"""

from __future__ import annotations

import pytest

from repro.schedule import ResourceModel


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def record(benchmark, **info):
    """Attach paper-vs-measured info to the benchmark JSON/record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def model_for(tag: str) -> ResourceModel:
    """'3A2M' / '2A1Mp' -> ResourceModel (same parser as the CLI)."""
    from repro.cli import parse_config

    return parse_config(tag)[0]
