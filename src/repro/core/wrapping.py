"""Schedule wrapping for multi-cycle operations and pipelined units (Sec. 4).

With multi-cycle operations, rotations can leave execution *tails* hanging
past the last "useful" control step (paper Figure 6: node 0's tail 0').
Wrapping moves such tails around the cylinder to the schedule's first
control steps, provided (1) spare resources exist there and (2) the new
zero-delay precedence constraints hold — which is exactly legality of the
schedule as a *modulo schedule* with the shorter period.

A wrapped schedule of period ``P`` keeps every *start* inside the window
``[0, P)`` while occupancy and results may spill into the next repetition.
``wrap`` finds the minimum legal period; ``reroot`` re-indexes the cylinder
so any control step becomes the first one (paper: "we can consider any
control step i as the first control step of the cylinder"), turning a
wrapped schedule back into an unwrapped one when possible.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.schedule.verify import (
    modulo_precedence_violations,
    modulo_resource_conflicts,
    realizing_retiming,
)
from repro.errors import SchedulingError
from repro.obs import tracer as _obs


@dataclass(frozen=True)
class WrappedSchedule:
    """A static schedule with an explicit initiation interval (period).

    ``schedule`` is normalized (first CS 0) and every start lies in
    ``[0, period)``; tails may wrap.  ``retiming`` realizes it as a modulo
    schedule.
    """

    schedule: Schedule
    retiming: Retiming
    period: int

    @property
    def length(self) -> int:
        """The paper's schedule length for multi-cycle DFGs: the period."""
        return self.period

    @property
    def depth(self) -> int:
        return self.retiming.depth(self.schedule.graph)

    def wrapped_nodes(self) -> List[NodeId]:
        """Nodes whose execution spills past the period boundary."""
        sched = self.schedule
        return [
            v
            for v in sched.graph.nodes
            if sched.start(v) + _busy_span(sched, v) > self.period
        ]

    def violations(self) -> List[str]:
        """Re-check modulo legality (empty for objects built by wrap())."""
        sched = self.schedule
        return modulo_resource_conflicts(
            sched.graph, sched.model, sched.start_map, self.period
        ) + modulo_precedence_violations(
            sched.graph, sched.model, sched.start_map, self.period, self.retiming
        )


def _busy_span(schedule: Schedule, node: NodeId) -> int:
    """Unit-occupancy span of a node (1 for pipelined ops)."""
    offsets = schedule.model.busy_offsets(schedule.graph.op(node))
    return (max(offsets) + 1) if len(offsets) else 1


def wrapped_length(schedule: Schedule, retiming: Retiming) -> int:
    """Minimum legal period of the schedule seen as a cylinder.

    This is the paper's "length of the wrapped schedule", the quality
    measure the heuristics optimize for multi-cycle DFGs.  The span of the
    schedule is always legal, so the result is at most ``schedule.length``.
    """
    return wrap(schedule, retiming).period


#: graph -> {id(model): (model, graph epoch, node facts, edge facts,
#: min occupancy)}.  The strong model reference inside the value keeps the
#: id stable for the lifetime of the entry; the outer keys die with their
#: graphs.  The stored epoch invalidates the entry after in-place graph
#: mutation (see the DFG versioned-mutation protocol) — without it a
#: MutableSchedulingSession would wrap against stale node/edge facts.
_WRAP_STATIC: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _wrap_static(graph: DFG, model: ResourceModel):
    """Schedule-independent inputs of :func:`wrap`, cached per graph+model."""
    per_graph = _WRAP_STATIC.get(graph)
    if per_graph is None:
        per_graph = {}
        _WRAP_STATIC[graph] = per_graph
    entry = per_graph.get(id(model))
    if entry is None or entry[0] is not model or entry[1] != graph.epoch:
        min_occ = 1
        nodes = []
        for v in graph.nodes:
            op = graph.op(v)
            unit = model.unit_for_op(op)
            if not unit.pipelined and unit.latency > min_occ:
                min_occ = unit.latency
            nodes.append((v, tuple(model.busy_offsets(op)), unit.name, unit.count))
        edges = [
            (e.src, e.dst, e.delay, model.latency(graph.op(e.src)))
            for e in graph.edges
        ]
        entry = (model, graph.epoch, nodes, edges, min_occ)
        per_graph[id(model)] = entry
    return entry[2], entry[3], entry[4]


def wrap(schedule: Schedule, retiming: Retiming) -> WrappedSchedule:
    """Wrap trailing tails around the cylinder to minimize the period.

    Searches periods from the smallest window containing every *start*
    (plus the largest non-pipelined occupancy requirement) up to the plain
    span; the first legal one wins.  The span itself is always legal, so
    this never fails on a legal DAG schedule of ``G_R``.
    """
    tr = _obs.active
    if tr.enabled:
        tr.begin("wrap_period")
        try:
            return _wrap_inner(schedule, retiming)
        finally:
            tr.end()
    return _wrap_inner(schedule, retiming)


def _wrap_inner(schedule: Schedule, retiming: Retiming) -> WrappedSchedule:
    sched = schedule.normalized()
    graph, model = sched.graph, sched.model
    span = sched.length
    start_map = sched.start_map

    # Per-node and per-edge facts are period-independent (and the graph/
    # model parts are schedule-independent — cached across calls), so the
    # period search below is pure integer arithmetic (wrap() runs once per
    # rotation — it is on the heuristics' hot path).
    nodes_static, edges_static, min_occ = _wrap_static(graph, model)
    starts_span = 0
    node_info = []
    for v, offsets, name, count in nodes_static:
        s = start_map[v]
        if s + 1 > starts_span:
            starts_span = s + 1
        node_info.append((s, offsets, name, count))
    edge_info = [
        (start_map[src] + lat_src, start_map[dst], delay + retiming[src] - retiming[dst])
        for src, dst, delay, lat_src in edges_static
    ]

    lo = max(starts_span, min_occ, 1)
    for period in range(lo, span + 1):
        # Same predicate as modulo_resource_conflicts +
        # modulo_precedence_violations (which wrap() previously called),
        # minus the diagnostic strings.
        counts: Dict[Tuple[str, int], int] = {}
        ok = True
        for s, offsets, name, count in node_info:
            for off in offsets:
                key = (name, (s + off) % period)
                c = counts.get(key, 0) + 1
                if c > count:
                    ok = False
                    break
                counts[key] = c
            if not ok:
                break
        if ok:
            for lhs, s_dst, dr in edge_info:
                if lhs > s_dst + period * dr:
                    ok = False
                    break
        if ok:
            return WrappedSchedule(sched, retiming, period)
    raise SchedulingError(
        f"schedule of span {span} is not modulo-legal at its own span — "
        "the input was not a legal DAG schedule of G_R"
    )  # pragma: no cover - impossible for legal inputs


def reroot(wrapped: WrappedSchedule, pivot: int) -> WrappedSchedule:
    """View control step ``pivot`` as the cylinder's first control step.

    Nodes starting before ``pivot`` move to the end of the window (their
    rotation count increases by one — a down-rotation *without*
    rescheduling); the period is unchanged.  Paper Section 4 uses this to
    turn the wrapped Figure 8-(b) schedule into an unwrapped one.
    """
    sched = wrapped.schedule
    graph = sched.graph
    if not 0 <= pivot < wrapped.period:
        raise SchedulingError(f"pivot {pivot} outside period window [0, {wrapped.period})")
    if pivot == 0:
        return wrapped
    new_start: Dict[NodeId, int] = {}
    bumped: List[NodeId] = []
    for v in graph.nodes:
        s = sched.start(v)
        if s < pivot:
            new_start[v] = s - pivot + wrapped.period
            bumped.append(v)
        else:
            new_start[v] = s - pivot
    new_r = wrapped.retiming + Retiming.of_set(bumped)
    new_sched = Schedule(graph, sched.model, new_start, sched.unit_map)
    out = WrappedSchedule(new_sched, new_r.normalized(graph), wrapped.period)
    bad = out.violations()
    if bad:  # pragma: no cover - rerooting preserves modulo legality
        raise SchedulingError("reroot produced an illegal schedule: " + "; ".join(bad[:3]))
    return out


def unwrap_if_possible(wrapped: WrappedSchedule) -> WrappedSchedule:
    """Try every pivot; return a rerooting whose tails no longer wrap.

    Falls back to the input when no pivot removes all wrapping (then the
    schedule is intrinsically wrapped).
    """
    if not wrapped.wrapped_nodes():
        return wrapped
    for pivot in range(1, wrapped.period):
        candidate = reroot(wrapped, pivot)
        if not candidate.wrapped_nodes():
            return candidate
    return wrapped
