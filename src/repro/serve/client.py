"""Blocking client + load generator for the scheduling service.

:class:`ServeClient` speaks the ``repro.serve/v1`` HTTP/JSON protocol
over a persistent ``http.client`` connection (stdlib only, keep-alive).
:func:`run_loadgen` drives a workload through N client threads and
reports latency percentiles, cache-level mix and solves/sec — the same
numbers ``BENCH_serve.json`` pins.
"""

from __future__ import annotations

import http.client
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.serve.protocol import ServeError


class ServeClient:
    """A persistent HTTP/JSON connection to one serve daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8347, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, payload: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
                return json.loads(data.decode("utf-8"))
            except (http.client.HTTPException, ConnectionError, OSError):
                # One transparent reconnect (the server may have dropped an
                # idle keep-alive connection); then give up loudly.
                self.close()
                if attempt:
                    raise
        raise ServeError("unreachable")  # pragma: no cover

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def solve(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/solve", payload)

    def solve_batch(self, payloads: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        out = self._request("POST", "/solve/batch", {"requests": list(payloads)})
        if "error" in out:
            raise ServeError(out["error"].get("message", "batch request failed"))
        return out["responses"]

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None


# ----------------------------------------------------------------------
# workloads + load generation
# ----------------------------------------------------------------------
def demo_workload(
    benchmarks: Sequence[str] = ("diffeq", "biquad", "allpole"),
    configs: Sequence[str] = ("2A1M", "2A1Mp"),
    repeats: int = 8,
    heuristic: str = "h2",
) -> List[Dict[str, Any]]:
    """A deterministic repeated-graph workload: each (benchmark, config)
    cell appears ``repeats`` times, round-robin interleaved so identical
    requests arrive both back-to-back (single-flight territory) and far
    apart (cache-hit territory)."""
    cells = [
        {
            "graph": {"benchmark": bench},
            "config": config,
            "options": {"heuristic": heuristic},
        }
        for bench in benchmarks
        for config in configs
    ]
    return [cells[i % len(cells)] for i in range(repeats * len(cells))]


@dataclass
class LoadgenReport:
    """Aggregate verdict of one load-generation run."""

    requests: int = 0
    errors: int = 0
    seconds: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    cache_levels: Dict[str, int] = field(default_factory=dict)
    #: Per-cache-tier latency attribution: every successful request's
    #: latency, keyed by the cache level that served it — so warm-path
    #: wins (memory/disk hits vs fresh solves) show up as numbers, not
    #: just counts.
    level_latencies_ms: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def solves_per_sec(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        hits = sum(
            self.cache_levels.get(k, 0) for k in ("memory", "disk", "coalesced")
        )
        return hits / self.requests if self.requests else 0.0

    def percentile(self, q: float, latencies: Optional[List[float]] = None) -> float:
        """Latency percentile in milliseconds (nearest-rank); pass a
        per-tier list from ``level_latencies_ms`` to attribute by tier."""
        sample = self.latencies_ms if latencies is None else latencies
        if not sample:
            return 0.0
        ordered = sorted(sample)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def tier_summary(self) -> str:
        """Per-cache-tier latency attribution, one clause per tier."""
        if not self.level_latencies_ms:
            return "no per-tier data"
        clauses = []
        for level in sorted(self.level_latencies_ms):
            sample = self.level_latencies_ms[level]
            clauses.append(
                f"{level} n={len(sample)} "
                f"p50={self.percentile(50, sample):.1f}ms "
                f"max={max(sample):.1f}ms"
            )
        return ", ".join(clauses)

    def summary(self) -> str:
        return (
            f"{self.requests} requests in {self.seconds:.3f}s "
            f"({self.solves_per_sec:.1f} solves/sec), "
            f"hit rate {self.hit_rate:.0%}, "
            f"p50 {self.percentile(50):.1f}ms, p99 {self.percentile(99):.1f}ms, "
            f"{self.errors} error(s); levels {dict(sorted(self.cache_levels.items()))}; "
            f"tiers: {self.tier_summary()}"
        )


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8347,
    workload: Optional[Sequence[Mapping[str, Any]]] = None,
    concurrency: int = 4,
) -> LoadgenReport:
    """Drive ``workload`` through ``concurrency`` client threads."""
    payloads = list(workload if workload is not None else demo_workload())
    jobs: "queue.Queue" = queue.Queue()
    for p in payloads:
        jobs.put(p)
    report = LoadgenReport(requests=len(payloads))
    lock = threading.Lock()

    def worker() -> None:
        client = ServeClient(host, port)
        try:
            while True:
                try:
                    payload = jobs.get_nowait()
                except queue.Empty:
                    return
                t0 = time.perf_counter()
                try:
                    envelope = client.solve(payload)
                except Exception:
                    envelope = {"error": {"type": "ClientError"}}
                latency = (time.perf_counter() - t0) * 1000.0
                with lock:
                    report.latencies_ms.append(latency)
                    if "error" in envelope:
                        report.errors += 1
                    else:
                        level = envelope.get("cache", "?")
                        report.cache_levels[level] = report.cache_levels.get(level, 0) + 1
                        report.level_latencies_ms.setdefault(level, []).append(latency)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(max(1, concurrency))]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.seconds = time.perf_counter() - t0
    return report
