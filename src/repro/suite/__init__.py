"""Benchmark DFGs: the paper's five filters plus synthetic generators."""

from repro.suite.diffeq import diffeq
from repro.suite.elliptic import elliptic
from repro.suite.lattice import lattice
from repro.suite.allpole import allpole
from repro.suite.biquad import biquad
from repro.suite.registry import (
    BENCHMARKS,
    PAPER_TIMING,
    UNIT_TIMING,
    BenchmarkInfo,
    all_benchmarks,
    data_path,
    get_benchmark,
    load_benchmark_json,
)
from repro.suite.random_graphs import random_chain_loop, random_dfg, random_dsp_kernel

__all__ = [
    "BENCHMARKS",
    "PAPER_TIMING",
    "UNIT_TIMING",
    "BenchmarkInfo",
    "all_benchmarks",
    "data_path",
    "allpole",
    "biquad",
    "diffeq",
    "elliptic",
    "get_benchmark",
    "load_benchmark_json",
    "lattice",
    "random_chain_loop",
    "random_dfg",
    "random_dsp_kernel",
]
