"""Unit tests for structural validation."""

import pytest

from repro.dfg import DFG, Timing, assert_valid, validate
from repro.suite import all_benchmarks
from repro.errors import GraphError


class TestValidate:
    def test_clean_benchmarks(self):
        for g in all_benchmarks():
            assert validate(g) == [], g.name

    def test_zero_delay_cycle_is_error(self):
        g = DFG()
        for n in "ab":
            g.add_node(n)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        issues = validate(g)
        assert any(i.severity == "error" and "zero-delay cycle" in i.message for i in issues)
        with pytest.raises(GraphError, match="zero-delay cycle"):
            assert_valid(g)

    def test_missing_timing_is_error(self):
        g = DFG()
        g.add_node("a", "exotic")
        g.add_node("b", "add")
        g.add_edge("a", "b", 0)
        issues = validate(g, timing=Timing({"add": 1}))
        assert any("no time" in i.message for i in issues)
        with pytest.raises(GraphError):
            assert_valid(g, timing=Timing({"add": 1}))

    def test_unknown_op_is_warning_only(self):
        g = DFG()
        g.add_node("a", "exotic")
        g.add_node("b", "add")
        g.add_edge("a", "b", 0)
        issues = validate(g, known_ops=["add", "mul"])
        assert any(i.severity == "warning" and "unknown op" in i.message for i in issues)
        assert_valid(g, known_ops=["add", "mul"])  # warnings don't raise

    def test_isolated_node_warning(self):
        g = DFG()
        g.add_node("alone")
        issues = validate(g)
        assert any("isolated" in i.message for i in issues)

    def test_empty_graph_warning(self):
        issues = validate(DFG())
        assert len(issues) == 1 and issues[0].severity == "warning"

    def test_issue_str(self):
        g = DFG()
        g.add_node("alone")
        text = str(validate(g)[0])
        assert text.startswith("[warning]")
