"""Data-flow graph substrate: graphs, retiming, analyses, iteration bound."""

from repro.dfg.graph import DFG, Edge, NodeId, Timing
from repro.dfg.builder import DFGBuilder
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import (
    alap_times,
    asap_times,
    critical_path_length,
    critical_path_nodes,
    descendant_counts,
    height_times,
    is_down_rotatable,
    is_up_rotatable,
    is_zero_delay_acyclic,
    leaves,
    roots,
    topological_order,
    zero_delay_edges,
    zero_delay_predecessors,
    zero_delay_successors,
)
from repro.dfg.iteration_bound import (
    critical_cycle,
    cycle_ratios,
    iteration_bound,
    iteration_bound_ceil,
)
from repro.dfg.unfold import fold_node, unfold, unfolded_name
from repro.dfg.validate import Issue, assert_valid, validate

__all__ = [
    "DFG",
    "DFGBuilder",
    "Edge",
    "Issue",
    "NodeId",
    "Retiming",
    "Timing",
    "alap_times",
    "asap_times",
    "assert_valid",
    "critical_cycle",
    "critical_path_length",
    "critical_path_nodes",
    "cycle_ratios",
    "descendant_counts",
    "fold_node",
    "height_times",
    "is_down_rotatable",
    "is_up_rotatable",
    "is_zero_delay_acyclic",
    "iteration_bound",
    "iteration_bound_ceil",
    "leaves",
    "roots",
    "topological_order",
    "unfold",
    "unfolded_name",
    "validate",
    "zero_delay_edges",
    "zero_delay_predecessors",
    "zero_delay_successors",
]
