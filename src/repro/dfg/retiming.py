"""Retiming functions over data-flow graphs.

A retiming ``r`` maps nodes to integers.  Following the paper's sign
convention (Section 2, footnote 1 — *not* the Leiserson–Saxe convention),
``r(v)`` is the number of delays pushed *through* ``v`` from its incoming
edges to its outgoing edges, so the retimed delay count of edge
``e = (u, v)`` is::

    dr(e) = d(e) + r(u) - r(v)

``r`` is *legal* for ``G`` when ``dr(e) >= 0`` on every edge.  A rotation of
a schedule prefix is exactly the composition of the current retiming with
the 0/1 indicator retiming of the rotated node set.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.dfg.graph import DFG, Edge, NodeId
from repro.errors import RetimingError


class Retiming(Mapping[NodeId, int]):
    """An integer node-labelling with default value 0.

    Immutable by convention: all operations return new instances.  The
    mapping interface only exposes explicitly set nodes; ``r[v]`` for an
    unset node returns 0 (every retiming is total over any graph).
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Optional[Mapping[NodeId, int]] = None):
        self._values: Dict[NodeId, int] = {
            v: int(k) for v, k in (values or {}).items() if int(k) != 0
        }
        self._hash: Optional[int] = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def zero(cls) -> "Retiming":
        """The identity retiming (all zeros)."""
        return cls()

    @classmethod
    def of_set(cls, nodes: Iterable[NodeId]) -> "Retiming":
        """The 0/1 indicator retiming of a node set (a down-rotation step)."""
        return cls({v: 1 for v in nodes})

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, node: NodeId) -> int:
        return self._values.get(node, 0)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Retiming):
            return self._values == other._values
        return NotImplemented

    def __hash__(self) -> int:
        # Instances are immutable; retiming-keyed caches (the rotation
        # engine's view cache) hash the same object repeatedly.
        if self._hash is None:
            self._hash = hash(frozenset(self._values.items()))
        return self._hash

    # -- algebra ----------------------------------------------------------
    def compose(self, other: "Retiming") -> "Retiming":
        """Pointwise sum ``r1 (+) r2`` — the paper's composite of rotations."""
        values = dict(self._values)
        for v, k in other._values.items():
            values[v] = values.get(v, 0) + k
        return Retiming(values)

    def __add__(self, other: "Retiming") -> "Retiming":
        return self.compose(other)

    def bumped(self, nodes: Iterable[NodeId], step: int = 1) -> "Retiming":
        """``self (+) step * indicator(nodes)`` without the intermediate.

        Equivalent to ``self + Retiming.of_set(nodes)`` for ``step=1`` (a
        down-rotation) and to adding its negation for ``step=-1`` (an
        up-rotation); the rotation engines call this once per rotation, so
        it skips the indicator retiming and the re-normalizing ``__init__``.
        """
        values = dict(self._values)
        for v in nodes:
            k = values.get(v, 0) + step
            if k:
                values[v] = k
            else:
                del values[v]
        out = Retiming.__new__(Retiming)
        out._values = values
        out._hash = None
        return out

    def negated(self) -> "Retiming":
        """Pointwise negation (turns a down-rotation into an up-rotation)."""
        return Retiming({v: -k for v, k in self._values.items()})

    def shifted(self, offset: int) -> "Retiming":
        """Add a constant to every *explicitly set* node — rarely what you
        want on its own; used by :meth:`normalized`."""
        return Retiming({v: k + offset for v, k in self._values.items()})

    def normalized(self, graph: DFG) -> "Retiming":
        """Shift so that ``min over graph nodes == 0`` (paper Section 2).

        Normalization subtracts the graph-wide minimum from every node of
        the graph, so unset nodes (implicit 0) are shifted too.
        """
        lo = min((self[v] for v in graph.nodes), default=0)
        if lo == 0:
            return self
        return Retiming({v: self[v] - lo for v in graph.nodes})

    def restricted(self, nodes: Iterable[NodeId]) -> "Retiming":
        """Keep only the given nodes (others reset to 0)."""
        keep = set(nodes)
        return Retiming({v: k for v, k in self._values.items() if v in keep})

    # -- graph interaction --------------------------------------------------
    def dr(self, edge: Edge) -> int:
        """Retimed delay count ``d(e) + r(src) - r(dst)``."""
        return edge.delay + self[edge.src] - self[edge.dst]

    def is_legal(self, graph: DFG) -> bool:
        """True when ``dr(e) >= 0`` on every edge of ``graph``."""
        return all(self.dr(e) >= 0 for e in graph.edges)

    def illegal_edges(self, graph: DFG) -> List[Edge]:
        """Edges whose retimed delay would be negative."""
        return [e for e in graph.edges if self.dr(e) < 0]

    def check_legal(self, graph: DFG) -> None:
        """Raise :class:`RetimingError` unless legal for ``graph``."""
        bad = self.illegal_edges(graph)
        if bad:
            worst = ", ".join(f"{e} (dr={self.dr(e)})" for e in bad[:5])
            raise RetimingError(
                f"illegal retiming on {graph.name or 'graph'}: {len(bad)} "
                f"negative-delay edge(s): {worst}"
            )

    def depth(self, graph: DFG) -> int:
        """Pipeline depth ``1 + max r - min r`` over the graph (Property 2)."""
        if graph.num_nodes == 0:
            return 1
        values = [self[v] for v in graph.nodes]
        return 1 + max(values) - min(values)

    def stages(self, graph: DFG) -> Dict[int, List[NodeId]]:
        """Group the graph's nodes by retiming value (pipeline stage).

        Stage ``max r`` executes the earliest iterations (first pipeline
        stage in the paper's Figure 3-(b) reading).
        """
        groups: Dict[int, List[NodeId]] = {}
        for v in graph.nodes:
            groups.setdefault(self[v], []).append(v)
        return dict(sorted(groups.items(), reverse=True))

    def retime(self, graph: DFG, name: Optional[str] = None) -> DFG:
        """Materialize the retimed graph ``Gr`` with ``dr`` delay counts.

        The paper's algorithms never need this (that is their selling
        point); it exists for visualisation, the simulator and for tests
        that cross-check the on-the-fly ``dr`` arithmetic.
        """
        self.check_legal(graph)
        g = DFG(name if name is not None else f"{graph.name}@r")
        for node in graph.nodes:
            g.add_node(
                node,
                graph.op(node),
                time=graph.explicit_time(node),
                label=graph.label(node),
                func=graph.func(node),
                **graph.attrs(node),
            )
        for e in graph.edges:
            g.add_edge(e.src, e.dst, self.dr(e))
        return g

    def as_dict(self, graph: Optional[DFG] = None) -> Dict[NodeId, int]:
        """Plain-dict view; with a graph, includes all of its nodes."""
        if graph is None:
            return dict(self._values)
        return {v: self[v] for v in graph.nodes}

    def items_nonzero(self) -> List[Tuple[NodeId, int]]:
        return sorted(self._values.items(), key=lambda kv: str(kv[0]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{v}:{k}" for v, k in self.items_nonzero())
        return f"Retiming({{{inner}}})"
