"""Repro bundle write / load / replay round-trips."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.qa import (
    OracleFailure,
    load_bundle,
    replay_bundle,
    run_cell_on_graph,
    write_bundle,
)
from repro.suite.random_graphs import attach_affine_funcs, random_dsp_kernel

CASE = {
    "generator": "random_dsp_kernel",
    "params": {"taps": 3, "seed": 4, "recursive": False},
    "config": "2A1M",
    "path": "h2",
}


def _graph():
    return attach_affine_funcs(random_dsp_kernel(3, seed=4, recursive=False), seed=4)


class TestWriteLoad:
    def test_roundtrip(self, tmp_path):
        fails = [OracleFailure("semantics", "streams diverge")]
        path = write_bundle(str(tmp_path), _graph(), CASE, fails)
        assert os.path.isdir(path)
        assert "random_dsp_kernel" in path and "s4" in path and "semantics" in path

        bundle = load_bundle(path)
        assert bundle.case["config"] == "2A1M"
        assert bundle.case["params"]["taps"] == 3
        assert bundle.failures == fails
        # funcs were rebuilt from attrs — the graph is executable as-is
        g = bundle.graph
        v = next(iter(g.nodes))
        assert g.func(v) is not None

    def test_name_collisions_get_suffixed(self, tmp_path):
        p1 = write_bundle(str(tmp_path), _graph(), CASE, [])
        p2 = write_bundle(str(tmp_path), _graph(), CASE, [])
        assert p1 != p2
        assert p2.endswith(".1")

    def test_rejects_non_bundle_dir(self, tmp_path):
        d = tmp_path / "notabundle"
        d.mkdir()
        (d / "case.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ReproError, match="not a repro.qa.bundle"):
            load_bundle(str(d))


class TestReplay:
    def test_replay_clean_graph_reports_no_failures(self, tmp_path):
        g = _graph()
        recorded = run_cell_on_graph(g, CASE["config"], CASE["path"])
        assert recorded == []  # sanity: this cell is green
        path = write_bundle(str(tmp_path), g, CASE, recorded)
        bundle, now = replay_bundle(path)
        assert now == []
        assert bundle.graph.num_nodes == g.num_nodes

    def test_replay_still_reproduces_recorded_failure(self, tmp_path, monkeypatch):
        # Inject a deterministic graph-shape "bug" that survives
        # serialization, so the replay observes the same oracle verdict.
        import repro.qa.runner as runner_mod

        def fake_path(graph, model, path, precomputed=None):
            return [OracleFailure("semantics", f"injected on {graph.num_nodes} nodes")]

        monkeypatch.setattr(runner_mod, "_run_path", fake_path)
        g = _graph()
        recorded = run_cell_on_graph(g, CASE["config"], CASE["path"])
        assert [f.oracle for f in recorded] == ["semantics"]
        path = write_bundle(str(tmp_path), g, CASE, recorded)
        bundle, now = replay_bundle(path)
        assert [f.oracle for f in now] == ["semantics"]
        assert bundle.failures[0].oracle == "semantics"
