"""Numpy copies of the flat CSR columns (plus flattened occupancy rows).

:class:`VectorColumns` re-materializes the integer columns of one
``(FlatGraph, FlatModel)`` pair as ``int64`` numpy arrays.  The values are
*copied*, never aliased: ``np.frombuffer`` views over the live
``array('q')`` columns would pin their buffers and make
``FlatGraph.apply_delta``'s in-place appends raise ``BufferError``, so a
snapshot costs one copy and the engine rebuilds it after a delta (the
compile is O(V+E) and a solve dwarfs it).

On top of the straight copies it flattens the per-node busy-offset tuples
into three parallel rows (``occ_node`` / ``occ_off`` / ``occ_uid``) so the
wrap-period kernel can bucket every occupied slot of a candidate period
with one ``bincount`` instead of a per-node Python loop.
"""

from __future__ import annotations

from repro.core.vector._compat import require_numpy


class VectorColumns:
    """``int64`` array mirror of a compiled ``(FlatGraph, FlatModel)``."""

    __slots__ = (
        "n", "m", "esrc", "edst", "edelay",
        "node_time", "node_latency", "node_unit", "caps", "nunits",
        "occ_node", "occ_off", "occ_uid", "min_occ",
    )

    def __init__(self, fg, fm):
        np = require_numpy()
        self.n = fg.n
        self.m = fg.m
        self.esrc = np.array(fg.esrc, dtype=np.int64)
        self.edst = np.array(fg.edst, dtype=np.int64)
        self.edelay = np.array(fg.edelay, dtype=np.int64)
        self.node_time = np.array(fm.node_time, dtype=np.int64)
        self.node_latency = np.array(fm.node_latency, dtype=np.int64)
        self.node_unit = np.array(fm.node_unit, dtype=np.int64)
        self.caps = np.array(fm.unit_count, dtype=np.int64)
        self.nunits = len(fm.unit_count)
        occ_node = []
        occ_off = []
        for v in range(fg.n):
            for off in fm.node_offsets[v]:
                occ_node.append(v)
                occ_off.append(off)
        self.occ_node = np.array(occ_node, dtype=np.int64)
        self.occ_off = np.array(occ_off, dtype=np.int64)
        self.occ_uid = self.node_unit[self.occ_node] if occ_node else self.node_unit[:0]
        self.min_occ = fm.min_occ
