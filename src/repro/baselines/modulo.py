"""Baseline: iterative modulo scheduling (Rau-style software pipelining).

Stands in for the VLIW software-pipelining comparators the paper cites
(Lam's Warp scheduler, Ebcioglu & Nakatani).  The algorithm:

1. ``MII = max(ResMII, RecMII)`` — resource and recurrence minimum
   initiation intervals;
2. for each candidate ``II`` from MII upward, try to place all operations
   into a modulo reservation table (MRT): operations are prioritized by
   *height* (longest latency path to any sink through edges weighted
   ``t(u) - II * d(e)``); each op scans ``II`` consecutive start slots from
   its precedence-earliest start; when no slot is free the op is placed
   anyway and the conflicting ops are *evicted* and rescheduled, within a
   global budget;
3. the first ``II`` whose placement converges wins.

Start times are unbounded integers: ``s(v)`` encodes the iteration skew
directly and legality is ``s(u) + t(u) <= s(v) + II * d(e)`` plus the MRT
(checked by :mod:`repro.schedule.verify`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.schedule.verify import (
    is_legal_modulo_schedule,
    realizing_retiming,
)
from repro.bounds.lower_bounds import resource_bound
from repro.dfg.iteration_bound import iteration_bound
from repro.errors import SchedulingError


@dataclass(frozen=True)
class ModuloResult:
    """Outcome of iterative modulo scheduling."""

    graph: DFG
    model: ResourceModel
    ii: int
    start: Dict[NodeId, int]
    mii: int
    attempts: int

    @property
    def length(self) -> int:
        """Initiation interval — comparable to RS's wrapped length."""
        return self.ii

    def kernel_schedule(self) -> Tuple[Schedule, Retiming, int]:
        """Fold the flat schedule into a kernel: starts mod II plus the
        realizing retiming (for simulation and depth accounting)."""
        folded = {v: s % self.ii for v, s in self.start.items()}
        sched = Schedule(self.graph, self.model, folded)
        r = realizing_retiming(sched, self.ii)
        return sched, r, self.ii

    @property
    def depth(self) -> int:
        _, r, _ = self.kernel_schedule()
        return r.depth(self.graph)


def min_initiation_interval(graph: DFG, model: ResourceModel) -> int:
    """``max(ResMII, RecMII)``."""
    res_mii = max(resource_bound(graph, model).values(), default=1)
    ib = iteration_bound(graph, model.timing())
    rec_mii = -(-ib.numerator // ib.denominator)
    return max(1, res_mii, rec_mii)


def _heights(graph: DFG, model: ResourceModel, ii: int) -> Dict[NodeId, int]:
    """Longest path to any sink with edge weight ``t(u) - II * d(e)``.

    Computed by |V| rounds of relaxation (values are bounded because no
    cycle is positive once ``II >= RecMII``).
    """
    h: Dict[NodeId, int] = {v: model.latency(graph.op(v)) for v in graph.nodes}
    for _ in range(graph.num_nodes):
        changed = False
        for e in graph.edges:
            cand = h[e.dst] + model.latency(graph.op(e.src)) - ii * e.delay
            if cand > h[e.src]:
                h[e.src] = cand
                changed = True
        if not changed:
            break
    return h


class _MRT:
    """Modulo reservation table for one candidate II."""

    def __init__(self, model: ResourceModel, ii: int):
        self.model = model
        self.ii = ii
        self.rows: Dict[Tuple[str, int], List[NodeId]] = {}

    def conflicts(self, op: str, start: int) -> List[NodeId]:
        unit = self.model.unit_for_op(op)
        out: List[NodeId] = []
        for off in self.model.busy_offsets(op):
            row = self.rows.get((unit.name, (start + off) % self.ii), [])
            if len(row) >= unit.count:
                out.extend(row)
        return out

    def place(self, node: NodeId, op: str, start: int) -> None:
        unit = self.model.unit_for_op(op)
        for off in self.model.busy_offsets(op):
            self.rows.setdefault((unit.name, (start + off) % self.ii), []).append(node)

    def remove(self, node: NodeId, op: str, start: int) -> None:
        unit = self.model.unit_for_op(op)
        for off in self.model.busy_offsets(op):
            self.rows[(unit.name, (start + off) % self.ii)].remove(node)


def _try_ii(
    graph: DFG,
    model: ResourceModel,
    ii: int,
    budget: int,
) -> Optional[Dict[NodeId, int]]:
    """One iterative-modulo-scheduling attempt at a fixed II."""
    heights = _heights(graph, model, ii)
    order_key = {v: (-heights[v], i) for i, v in enumerate(graph.nodes)}
    start: Dict[NodeId, int] = {}
    last_tried: Dict[NodeId, int] = {}
    mrt = _MRT(model, ii)
    worklist = sorted(graph.nodes, key=lambda v: order_key[v])
    ops_left = budget

    while worklist:
        if ops_left <= 0:
            return None
        ops_left -= 1
        v = worklist.pop(0)
        op = graph.op(v)
        # precedence-earliest start from currently placed predecessors
        est = 0
        for e in graph.in_edges(v):
            if e.src in start:
                est = max(est, start[e.src] + model.latency(graph.op(e.src)) - ii * e.delay)
        lo = max(est, last_tried.get(v, -1) + 1)
        chosen = None
        for s in range(lo, lo + ii):
            if not mrt.conflicts(op, s):
                chosen = s
                break
        if chosen is None:
            chosen = max(est, last_tried.get(v, est) + 1)  # force placement
        last_tried[v] = chosen

        evicted = set(mrt.conflicts(op, chosen))
        # successors whose precedence the new placement breaks must move too
        for e in graph.out_edges(v):
            w = e.dst
            if w in start and w != v:
                if chosen + model.latency(op) > start[w] + ii * e.delay:
                    evicted.add(w)
        for w in evicted:
            if w in start:
                mrt.remove(w, graph.op(w), start.pop(w))
                worklist.append(w)
        mrt.place(v, op, chosen)
        start[v] = chosen
        worklist.sort(key=lambda u: order_key[u])
    return start


def modulo_schedule(
    graph: DFG,
    model: ResourceModel,
    max_ii: Optional[int] = None,
    budget_ratio: int = 12,
) -> ModuloResult:
    """Iterative modulo scheduling.

    Args:
        graph: cyclic DFG.
        model: resource model.
        max_ii: stop trying past this II (default: non-pipelined list
            schedule length — that fallback is always achievable).
        budget_ratio: per-II placement budget of ``budget_ratio * |V|``.
    """
    mii = min_initiation_interval(graph, model)
    if max_ii is None:
        from repro.schedule.list_scheduler import full_schedule

        max_ii = max(mii, full_schedule(graph, model).length)
    attempts = 0
    for ii in range(mii, max_ii + 1):
        attempts += 1
        start = _try_ii(graph, model, ii, budget_ratio * graph.num_nodes)
        if start is None:
            continue
        lo = min(start.values())
        start = {v: s - lo for v, s in start.items()}
        if not is_legal_modulo_schedule(graph, model, start, ii):
            raise SchedulingError(
                f"modulo scheduler produced an illegal schedule at II={ii}"
            )  # pragma: no cover - internal consistency
        return ModuloResult(graph, model, ii, start, mii, attempts)
    raise SchedulingError(f"no modulo schedule found up to II={max_ii}")
