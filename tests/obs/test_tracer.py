"""Unit tests for repro.obs.tracer: spans, activation, overhead."""

import time

import pytest

from repro.core.scheduler import rotation_schedule
from repro.obs import NULL, NullTracer, Tracer, activate, current, deactivate, tracing
from repro.obs import tracer as tracer_mod
from repro.qa.runner import config_model
from repro.suite import get_benchmark


class TestTracer:
    def test_nesting_and_fields(self):
        tr = Tracer()
        tr.begin("outer", k=1)
        tr.begin("inner")
        tr.end()
        tr.end()
        assert tr.open_spans == 0
        outer, inner = tr.events[0], tr.events[1]
        assert outer.name == "outer" and outer.parent == -1 and outer.depth == 0
        assert inner.name == "inner" and inner.parent == 0 and inner.depth == 1
        assert outer.attrs == {"k": 1}
        assert inner.dur_ns >= 0 and outer.dur_ns >= inner.dur_ns

    def test_span_context_manager(self):
        tr = Tracer()
        with tr.span("a", n=2):
            with tr.span("b"):
                pass
        assert [e.name for e in tr.events] == ["a", "b"]
        assert tr.events[1].parent == 0

    def test_span_closes_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert tr.open_spans == 0
        assert tr.events[0].dur_ns >= 0

    def test_end_without_begin_raises(self):
        tr = Tracer()
        with pytest.raises(Exception):
            tr.end()

    def test_t0_offsets_relative_to_first_span(self):
        tr = Tracer()
        tr.begin("first")
        tr.end()
        tr.begin("second")
        tr.end()
        assert tr.events[0].t0_ns == 0
        assert tr.events[1].t0_ns >= tr.events[0].dur_ns

    def test_shape_is_timing_free(self):
        def run():
            tr = Tracer()
            with tr.span("a", n=1):
                time.sleep(0.001)
                with tr.span("b"):
                    pass
            return tr.shape()

        assert run() == run()


class TestNullTracer:
    def test_is_disabled_noop(self):
        nt = NullTracer()
        assert nt.enabled is False
        nt.begin("x", a=1)
        nt.end()
        with nt.span("y"):
            pass
        assert nt.open_spans == 0

    def test_null_span_is_shared_singleton(self):
        assert NULL.span("a") is NULL.span("b")


class TestActivation:
    def test_default_is_null(self):
        assert current() is NULL
        assert tracer_mod.active is NULL

    def test_activate_deactivate(self):
        tr = Tracer()
        assert activate(tr) is tr
        try:
            assert current() is tr
        finally:
            deactivate()
        assert current() is NULL

    def test_tracing_context_restores_previous(self):
        with tracing(meta={"k": "v"}) as tr:
            assert current() is tr
            assert tr.meta == {"k": "v"}
        assert current() is NULL

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("x")
        assert current() is NULL


class TestTracedRuns:
    @pytest.mark.parametrize("backend", ["flat", "views", "naive"])
    def test_traced_run_bit_identical_to_untraced(self, backend):
        graph = get_benchmark("biquad")
        model = config_model("2A2M")
        plain = rotation_schedule(graph, model, heuristic="h2", backend=backend)
        with tracing() as tr:
            traced = rotation_schedule(graph, model, heuristic="h2", backend=backend)
        assert tr.events, "tracer captured no spans"
        assert tr.open_spans == 0
        assert traced.length == plain.length
        assert traced.schedule.start_map == plain.schedule.start_map
        assert traced.retiming == plain.retiming
        assert traced.rotations_performed == plain.rotations_performed

    def test_trace_shape_deterministic_across_runs(self):
        graph = get_benchmark("diffeq")
        model = config_model("2A2M")

        def shape():
            with tracing() as tr:
                rotation_schedule(graph, model, heuristic="h1", backend="flat")
            return tr.shape()

        assert shape() == shape()

    def test_expected_span_names_present(self):
        graph = get_benchmark("biquad")
        model = config_model("2A2M")
        with tracing() as tr:
            rotation_schedule(graph, model, heuristic="h2", backend="flat")
        names = {e.name for e in tr.events}
        for expected in (
            "solve",
            "phase",
            "schedule.initial",
            "rotate.down",
            "flat.build",
            "flat.derive",
            "kernel.list_schedule",
            "kernel.wrap_period",
        ):
            assert expected in names, f"missing span {expected!r}"


class TestDisabledOverhead:
    def test_disabled_tracer_overhead_small(self):
        """With tracing off, a guarded site costs ~an attribute load.

        Micro-benchmark the guard pattern itself rather than a full solve
        (which would be dominated by scheduling noise): the guarded loop
        must stay within 3x of the bare loop — generous, but catches an
        accidentally-enabled tracer or allocation on the disabled path.
        """
        active = tracer_mod.active
        assert active.enabled is False

        n = 200_000

        def bare():
            acc = 0
            for i in range(n):
                acc += i
            return acc

        def guarded():
            acc = 0
            for i in range(n):
                tr = tracer_mod.active
                if tr.enabled:
                    tr.begin("x")
                acc += i
                if tr.enabled:
                    tr.end()
            return acc

        def best_of(fn, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        bare_s = best_of(bare)
        guarded_s = best_of(guarded)
        assert guarded_s < bare_s * 3.0, (
            f"disabled-tracer guard too slow: {guarded_s:.4f}s vs bare {bare_s:.4f}s"
        )
