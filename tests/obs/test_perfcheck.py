"""Unit tests for repro.obs.perfcheck: golden cells and the envelope gate."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    load_golden_cells,
    load_incremental_cells,
    load_vector_cells,
    run_perfcheck,
)
from repro.obs.perfcheck import (
    BASELINE_SPECS,
    INCREMENTAL_BASELINE,
    MIN_BATCH_SPEEDUP,
    MIN_REPAIR_SPEEDUP,
    MIN_VECTOR_SPEEDUP,
    VECTOR_BASELINE,
    _measure_incremental_cell,
    _measure_vector_headline,
)


def _write_baseline(path, cells):
    payload = {"benchmarks": [{"extra_info": info} for info in cells]}
    path.write_text(json.dumps(payload))


def _diffeq_cell(seconds, length=6, rotations=154):
    return {
        "bench": "diffeq",
        "config": "2A2M",
        "heuristic": "h1",
        "length": length,
        "rotations": rotations,
        "flat_seconds": seconds,
    }


class TestLoadGoldenCells:
    def test_loads_committed_flat_baseline(self):
        cells = load_golden_cells("BENCH_flat.json", "flat", "flat_seconds")
        assert cells
        for cell in cells:
            assert cell.backend == "flat"
            assert cell.baseline_seconds > 0
            assert cell.length > 0

    def test_missing_key_raises(self, tmp_path):
        path = tmp_path / "b.json"
        _write_baseline(path, [{"bench": "diffeq", "config": "2A2M"}])
        with pytest.raises(ReproError):
            load_golden_cells(str(path), "flat", "flat_seconds")


class TestRunPerfcheck:
    def test_passes_with_generous_envelope(self, tmp_path):
        _write_baseline(tmp_path / "b.json", [_diffeq_cell(seconds=30.0)])
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(("b.json", "flat", "flat_seconds"),),
            repeats=1,
        )
        assert report.ok
        assert len(report.results) == 1
        assert report.results[0].measured_seconds < 30.0

    def test_detects_wall_time_regression(self, tmp_path):
        _write_baseline(tmp_path / "b.json", [_diffeq_cell(seconds=1e-9)])
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(("b.json", "flat", "flat_seconds"),),
            repeats=1,
        )
        assert not report.ok
        assert any("wall-time regression" in p for p in report.results[0].problems)

    def test_detects_counter_delta(self, tmp_path):
        _write_baseline(tmp_path / "b.json", [_diffeq_cell(seconds=30.0, length=99)])
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(("b.json", "flat", "flat_seconds"),),
            repeats=1,
        )
        assert not report.ok
        assert any("length" in p for p in report.results[0].problems)

    def test_missing_baseline_is_skipped_not_fatal(self, tmp_path):
        _write_baseline(tmp_path / "b.json", [_diffeq_cell(seconds=30.0)])
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(
                ("b.json", "flat", "flat_seconds"),
                ("nope.json", "views", "views_seconds"),
            ),
            repeats=1,
        )
        assert report.ok
        assert "nope.json" in report.skipped_baselines

    def test_all_baselines_missing_means_not_ok(self, tmp_path):
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(("nope.json", "flat", "flat_seconds"),),
            repeats=1,
        )
        assert not report.ok

    def test_render_mentions_every_cell(self, tmp_path):
        _write_baseline(tmp_path / "b.json", [_diffeq_cell(seconds=30.0)])
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(("b.json", "flat", "flat_seconds"),),
            repeats=1,
        )
        text = report.render()
        assert "diffeq@2A2M/h1/flat" in text
        assert "golden cells" in text


class TestIncrementalCells:
    def test_loads_committed_incremental_baseline(self):
        cells = load_incremental_cells(INCREMENTAL_BASELINE)
        assert cells
        for cell in cells:
            assert cell.bench == "elliptic"
            assert cell.edits
            assert cell.speedup >= MIN_REPAIR_SPEEDUP
            assert cell.repair_seconds < cell.scratch_seconds

    def test_missing_incremental_baseline_is_skipped(self, tmp_path):
        _write_baseline(tmp_path / "b.json", [_diffeq_cell(seconds=30.0)])
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(("b.json", "flat", "flat_seconds"),),
            repeats=1,
        )
        assert report.ok
        assert INCREMENTAL_BASELINE in report.skipped_baselines
        assert report.incremental == []

    def test_counter_drift_flags_cell(self):
        cells = load_incremental_cells(INCREMENTAL_BASELINE)
        import dataclasses

        bad = dataclasses.replace(cells[0], length=cells[0].length + 1)
        result = _measure_incremental_cell(bad, repeats=1, tolerance=10.0)
        assert not result.ok
        assert any("length" in p for p in result.problems)

    def test_measured_cell_within_envelope(self):
        cells = load_incremental_cells(INCREMENTAL_BASELINE)
        result = _measure_incremental_cell(cells[0], repeats=2, tolerance=2.0)
        assert result.ok, result.problems
        assert result.speedup >= MIN_REPAIR_SPEEDUP

    def test_report_summary_mentions_incremental(self):
        report = run_perfcheck(
            root=".",
            baselines=(),
            repeats=1,
            tolerance=2.0,
        )
        assert "incremental" in report.summary()
        assert len(report.incremental) == 3


class TestVectorCells:
    def test_loads_committed_vector_baseline(self):
        headline, batch = load_vector_cells(VECTOR_BASELINE)
        assert headline is not None and batch is not None
        assert headline.bench == "elliptic" and headline.config == "3A2M"
        assert headline.speedup >= MIN_VECTOR_SPEEDUP
        assert batch.cohort == "smoke"
        assert batch.speedup >= MIN_BATCH_SPEEDUP
        assert batch.requests == 189
        assert batch.unique_solves < batch.requests  # dedup must bite

    def test_vector_golden_cells_load_via_baseline_specs(self):
        cells = load_golden_cells(VECTOR_BASELINE, "vector", "vector_seconds")
        assert cells
        for cell in cells:
            assert cell.backend == "vector"
            assert cell.baseline_seconds > 0

    def test_no_acceptance_cells_raises(self, tmp_path):
        path = tmp_path / "v.json"
        _write_baseline(path, [_diffeq_cell(seconds=30.0)])
        with pytest.raises(ReproError):
            load_vector_cells(str(path))

    def test_headline_counter_drift_flags_cell(self):
        import dataclasses

        headline, _ = load_vector_cells(VECTOR_BASELINE)
        bad = dataclasses.replace(headline, length=headline.length + 1)
        result = _measure_vector_headline(bad, repeats=1, tolerance=10.0)
        assert not result.ok
        assert any("length" in p for p in result.problems)

    def test_headline_within_envelope(self):
        headline, _ = load_vector_cells(VECTOR_BASELINE)
        result = _measure_vector_headline(headline, repeats=2, tolerance=2.0)
        assert result.ok, result.problems
        assert result.speedup >= MIN_VECTOR_SPEEDUP / 3.0

    def test_missing_vector_baseline_is_skipped(self, tmp_path):
        _write_baseline(tmp_path / "b.json", [_diffeq_cell(seconds=30.0)])
        report = run_perfcheck(
            root=str(tmp_path),
            baselines=(("b.json", "flat", "flat_seconds"),),
            repeats=1,
        )
        assert report.ok
        assert VECTOR_BASELINE in report.skipped_baselines
        assert report.vector == []


class TestCommittedEnvelopes:
    def test_smoke_against_committed_baselines(self):
        """The envelope shipped in-repo must hold on the shipping code.

        Tolerance is widened to +200% here because this runs inside a
        loaded pytest process where tiny cells jitter; the strict +50%
        smoke runs in a fresh process via ``rotsched gate``.
        """
        report = run_perfcheck(root=".", smoke=True, tolerance=2.0)
        assert report.ok, report.render()
        # smoke restricts to the flat and vector backends
        assert {r.cell.backend for r in report.results} == {"flat", "vector"}
        # and replays both vector acceptance cells
        assert len(report.vector) == 2

    def test_specs_cover_all_fast_backends(self):
        backends = {backend for _, backend, _ in BASELINE_SPECS}
        assert backends == {"flat", "views", "vector"}
