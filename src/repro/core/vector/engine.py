"""The vector rotation engine (``backend="vector"``).

:class:`VectorEngine` subclasses :class:`~repro.core.flat.engine.FlatEngine`
(inheriting delta resynchronization, ``repair`` and the token protocol) but
drives rotations from a different representation: every state it produces
is a tuple record — normalized starts, unit instances, per-edge ``dr``,
dense retiming vector — keyed by the state's ``engine_token``.  On top of
the numpy struct-view kernels (:mod:`repro.core.vector.kernels`) it adds
the optimization that actually pays on the paper-sized graphs, where
per-solve numpy dispatch overhead would otherwise eat the win:

*rotation outcomes are pure functions of* ``(starts, units, dr, size)``.

The placement kernels are deterministic given the occupancy and the
sort keys (a function of ``dr``), and rotation-count vectors only shift
the key space (``rv`` enters through ``dr``, never directly), so a
rotation seen once replays as a tuple lookup.  Heuristic 2 revisits the
same few hundred transitions thousands of times (about 85% of the
down-rotations on the elliptic filter at 3A 2M repeat a prior key), and
the same argument memoizes the wrap-period search (a function of
``(starts, dr)``) and the re-seeding initial schedules (a function of
``dr`` alone).  Misses fall through to the numpy kernels for the
structural work — or, below the :data:`_SCALAR_WORK` size threshold
where per-call numpy dispatch overhead dominates, to the bit-identical
scalar flat kernels — and to the scalar placement kernels (inherently
sequential: each placement changes what the next probe reads).

Schedules and retimings are materialized lazily (:class:`_LazySchedule`,
:class:`_LazyRetiming`): the hot loop only ever needs the tuple records,
so the per-node dicts are built when a winner is actually inspected.

The golden parity suite and the QA engine-parity oracle pin this engine
bit-identical to flat/views/naive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import _find_zero_delay_cycle
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.core.engine import _STRUCTURAL_PRIORITIES
from repro.core.wrapping import WrappedSchedule
from repro.core.flat.engine import FlatEngine
from repro.core.flat.kernels import (
    FlatGrid,
    flat_latest_fit,
    flat_list_schedule,
    flat_priority_columns,
    flat_topological_order,
    flat_wrap_period,
    retimed_delays,
    seed_grid,
    zero_delay_lists,
)
from repro.core.vector._compat import require_numpy
from repro.core.vector.columns import VectorColumns
from repro.core.vector.kernels import (
    vec_priority_columns,
    vec_retimed_delays,
    vec_wrap_period,
    vec_zero_delay_lists,
    vec_zero_edges,
)
from repro.errors import RotationError, ZeroDelayCycleError
from repro.obs import tracer as _obs
from repro.obs.metrics import engine_metrics


class _LazyRetiming(Retiming):
    """A retiming backed by a dense ``rv`` tuple, materialized on demand.

    Equality, hashing, ``bumped`` — the whole :class:`Retiming` surface —
    work through the inherited code the moment ``_values`` is first
    touched; until then the object is three shared references.  ``rv``
    covers the graph's nodes in flat order; ``phantom`` carries any
    non-graph entries of a user-supplied initial retiming so the
    materialized mapping matches the scalar engines' ``bumped`` chains
    exactly.
    """

    __slots__ = ("_lz_nodes", "_lz_rv", "_lz_phantom")

    def __init__(self, nodes, rv, phantom):
        # No super().__init__: _values/_hash stay unset until __getattr__.
        self._lz_nodes = nodes
        self._lz_rv = rv
        self._lz_phantom = phantom

    def __getattr__(self, name):
        if name == "_values":
            values = {v: k for v, k in zip(self._lz_nodes, self._lz_rv) if k}
            if self._lz_phantom:
                values.update(self._lz_phantom)
            self._values = values
            return values
        if name == "_hash":
            self._hash = None
            return None
        raise AttributeError(name)


class _LazySchedule(Schedule):
    """A complete schedule backed by flat vectors, materialized on demand.

    Span endpoints are preset (the record knows them), so ``length`` /
    ``normalized()`` — the only things the rotation loop reads — never
    build the per-node dicts; any other access materializes them through
    ``__getattr__`` and proceeds on the inherited code.
    """

    @classmethod
    def from_vectors(cls, graph, model, nodes, starts, units, last) -> "_LazySchedule":
        self = cls.__new__(cls)
        d = self.__dict__
        d["graph"] = graph
        d["model"] = model
        d["_first"] = 0
        d["_last"] = last
        d["_lz_nodes"] = nodes
        d["_lz_starts"] = starts
        d["_lz_units"] = units
        return self

    def __getattr__(self, name):
        if name == "_start":
            value = dict(zip(self._lz_nodes, self._lz_starts))
        elif name == "_units":
            value = dict(zip(self._lz_nodes, self._lz_units))
        else:
            raise AttributeError(name)
        self.__dict__[name] = value
        return value


def _mk_wrapped(sched, r, period) -> WrappedSchedule:
    """Build a WrappedSchedule without the frozen-dataclass ``__init__``
    (three ``object.__setattr__`` round-trips per offer add up)."""
    w = WrappedSchedule.__new__(WrappedSchedule)
    d = w.__dict__
    d["schedule"] = sched
    d["retiming"] = r
    d["period"] = period
    return w


_ROT_CLASSES = None


def _rot_classes():
    """Cached ``(RotationState, RotationStep)``.

    ``repro.core.rotation`` imports this module, so the import cannot live
    at module scope; caching it here spares the ``sys.modules`` hop the
    in-function ``import`` statement pays on every single rotation."""
    global _ROT_CLASSES
    if _ROT_CLASSES is None:
        from repro.core.rotation import RotationState, RotationStep

        _ROT_CLASSES = (RotationState, RotationStep)
    return _ROT_CLASSES


class _Key:
    """Memo-key tuple with its hash computed once.

    The rotation and wrap memos key on large int tuples; plain tuple keys
    re-hash every element on every lookup *and* every insert.  Records
    cache one ``_Key`` per memo and the dicts hash it in O(1) afterwards
    (bucket collisions still compare the underlying tuples, which is
    cheap: memo hits share the element tuples, so equality short-circuits
    on identity).
    """

    __slots__ = ("t", "h")

    def __init__(self, t):
        self.t = t
        self.h = hash(t)

    def __hash__(self):
        return self.h

    def __eq__(self, other):
        return self.t == other.t


class _VecState:
    """Tuple record of one engine-produced state (all normalized).

    ``hk`` / ``wk`` lazily cache the rotation-memo and wrap-memo keys
    (see :class:`_Key`).
    """

    __slots__ = ("starts", "units", "dr", "rv", "last", "phantom", "hk", "wk")

    def __init__(self, starts, units, dr, rv, last, phantom):
        self.starts: Tuple[int, ...] = starts
        self.units: Tuple[int, ...] = units
        self.dr: Tuple[int, ...] = dr
        self.rv: Tuple[int, ...] = rv
        self.last: int = last
        self.phantom: dict = phantom
        self.hk = None
        self.wk = None


class _StructView:
    """Caches of one retimed structure, keyed by its ``dr`` tuple.

    The vector analogue of :class:`~repro.core.flat.engine.FlatView`, but
    keyed by what the placement actually depends on — the ``dr`` vector —
    instead of the retiming, so every rotation-count shift of the same
    structure shares one entry and incremental view derivation disappears
    entirely.
    """

    __slots__ = ("dr_arr", "zsucc", "zpred", "skey", "reach", "heights")

    def __init__(self, dr_arr, zsucc, zpred, skey, reach=None, heights=None):
        self.dr_arr = dr_arr
        self.zsucc: List[List[int]] = zsucc
        self.zpred: List[List[int]] = zpred
        self.skey: List[Tuple[int, ...]] = skey
        # Priority columns (kept only by the scalar build path) so rotation
        # misses can derive the child view incrementally; ``None`` means
        # "derive must rebuild from scratch".
        self.reach: Optional[List[int]] = reach
        self.heights: Optional[List[int]] = heights


# Backstop bounds for the per-engine caches.  A single solve stays far
# below them (a few hundred distinct transitions); only a very long-lived
# session could accumulate enough to matter, and clearing is always safe —
# any state rebuilds cold from its schedule.
_MEMO_LIMIT = 1 << 17

# Below this problem size (``n + m``) memo *misses* run the scalar flat
# kernels instead of the numpy ones: per-call dispatch overhead dominates
# numpy's throughput until roughly this many elements (measured crossover
# ~8k on random DFGs; the paper benchmarks sit near 100).  Both kernel
# families are pinned bit-identical by the property suite, so the switch
# is invisible to everything but the clock.  The stacked batched pass
# (:class:`~repro.core.vector.batch.BatchedFlatGraph`) always uses the
# numpy kernels — there the dispatch is amortized over the whole cohort.
_SCALAR_WORK = 8192


class VectorEngine(FlatEngine):
    """Numpy + transition-memo rotation engine (``backend="vector"``).

    Args:
        precompiled: optional ``(FlatGraph, FlatModel)`` pair compiled
            elsewhere (the batched solver compiles whole cohorts in one
            struct-of-arrays pass and hands each engine its segment).
    """

    backend_name = "vector"

    def __init__(
        self,
        graph: DFG,
        model: ResourceModel,
        priority="descendants",
        max_views: int = 4096,
        precompiled=None,
    ):
        if priority not in _STRUCTURAL_PRIORITIES:
            raise ValueError(
                f"vector backend supports priorities {sorted(_STRUCTURAL_PRIORITIES)}, "
                f"got {priority!r}"
            )
        self._np = require_numpy()
        super().__init__(graph, model, priority, max_views, precompiled=precompiled)
        self._vc = VectorColumns(self.fg, self.fm)
        self._scalar_misses = (self.fg.n + self.fg.m) <= _SCALAR_WORK
        # Engine-owned node-list snapshot handed to lazy schedules and
        # retimings.  fg.nodes is mutated *in place* by apply_delta, so
        # lazies must hold a list that is replaced (never mutated) when
        # the graph changes — outstanding lazies then still materialize
        # against the node order they were minted under.
        self._node_list: List = list(self.fg.nodes)
        # dr tuple -> _StructView (replaces incremental FlatView derivation).
        self._svs: Dict[Tuple[int, ...], _StructView] = {}
        # engine_token -> _VecState for every state this engine produced.
        self._vstates: Dict[int, _VecState] = {}
        # Transition memos (see module docstring for the purity argument).
        self._rot_memo: Dict[tuple, tuple] = {}
        self._wrap_memo: Dict[tuple, int] = {}
        self._init_memo: Dict[tuple, tuple] = {}
        self._realize_memo: Dict[tuple, Retiming] = {}
        # Live chain-tip occupancy grid (same trick as the flat engine):
        # a rotation miss whose parent is the last-placed state frees the
        # moved slots and O(1)-shifts instead of reseeding from scratch.
        self._tip_grid: Optional[FlatGrid] = None
        self._tip_gtoken: Optional[int] = None
        self._pending_tip: Optional[FlatGrid] = None
        self._extras.update(
            rotation_memo_hits=0,
            rotation_memo_misses=0,
            wrap_memo_hits=0,
            initial_memo_hits=0,
            struct_view_builds=0,
            struct_view_derives=0,
            batched_seeds=0,
        )

    def metrics(self) -> Dict[str, object]:
        return engine_metrics(
            self.stats(), self.backend_name, "repro.core.vector.engine",
            extras=dict(self._extras),
        )

    # -- delta resynchronization ---------------------------------------
    def apply_delta(self, edits, model: Optional[ResourceModel] = None) -> Dict[str, int]:
        out = super().apply_delta(edits, model)
        self._vc = VectorColumns(self.fg, self.fm)
        self._scalar_misses = (self.fg.n + self.fg.m) <= _SCALAR_WORK
        self._node_list = list(self.fg.nodes)
        self._svs.clear()
        self._vstates.clear()
        self._rot_memo.clear()
        self._wrap_memo.clear()
        self._init_memo.clear()
        self._realize_memo.clear()
        self._tip_grid = None
        self._tip_gtoken = None
        self._pending_tip = None
        return out

    # -- internals -----------------------------------------------------
    def _new_token(self) -> int:
        # Shares FlatEngine's counter: inherited repair() mints chain-tip
        # tokens through _finish, and a repair token must never collide
        # with a _vstates key.
        self._next_token += 1
        if len(self._vstates) > _MEMO_LIMIT:  # pragma: no cover - backstop
            self._vstates.clear()
        return self._next_token

    def _rv_phantom(self, r: Retiming) -> Tuple[Tuple[int, ...], dict]:
        """Dense rotation counts + non-graph entries of a retiming."""
        if type(r) is _LazyRetiming and r._lz_nodes is self._node_list:
            return r._lz_rv, r._lz_phantom
        fg = self.fg
        rv = tuple(fg.rvec(r))
        index = fg.index
        phantom = {v: c for v, c in r.items() if v not in index}
        return rv, phantom

    def _dr_of(self, rv) -> Tuple[int, ...]:
        """``dr`` tuple of a dense rotation vector (scalar below threshold)."""
        if self._scalar_misses:
            return tuple(retimed_delays(self.fg, rv))
        np = self._np
        return tuple(
            vec_retimed_delays(self._vc, np.array(rv, dtype=np.int64)).tolist()
        )

    def _rec_for(self, state) -> _VecState:
        """The tuple record of a state — tracked, or rebuilt cold.

        States minted by this engine resolve by token; anything else
        (inherited ``repair`` output, rebound or unpickled states) is
        reconstructed from its normalized schedule and retiming.
        """
        token = state.engine_token
        if token is not None:
            rec = self._vstates.get(token)
            if rec is not None:
                return rec
        fg = self.fg
        sched = state.schedule.normalized()
        rv, phantom = self._rv_phantom(state.retiming)
        dr = self._dr_of(rv)
        if isinstance(sched, _LazySchedule) and sched.__dict__.get("_lz_nodes") is self._node_list:
            starts = sched.__dict__["_lz_starts"]
            units = sched.__dict__["_lz_units"]
            last = sched.__dict__["_last"]
        else:
            starts = tuple(sched.start(v) for v in fg.nodes)
            units = tuple(sched.unit_index(v) for v in fg.nodes)
            last = sched.last_cs
        return _VecState(starts, units, dr, rv, last, phantom)

    def _sv_for(self, dr_key: Tuple[int, ...], dr_arr=None, r_factory=None) -> _StructView:
        """The struct view of a ``dr`` vector (built once per structure)."""
        sv = self._svs.get(dr_key)
        if sv is not None:
            self._stats.view_hits += 1
            return sv
        vc = self._vc
        tr = _obs.active
        traced = tr.enabled
        if traced:
            tr.begin("vector.build")
        try:
            self._stats.view_builds += 1
            self._stats.edges_rescanned += self.fg.m
            self._extras["struct_view_builds"] += 1
            if self._scalar_misses:
                zsucc, zpred = zero_delay_lists(self.fg, dr_key)
                order = flat_topological_order(zsucc)
                if order is None:
                    r = r_factory() if r_factory is not None else Retiming.zero()
                    raise ZeroDelayCycleError(
                        _find_zero_delay_cycle(self.fg.graph, r)
                    )
                if self.priority == "mobility":
                    self._stats.priority_full_rebuilds += 1
                reach, heights, skey = flat_priority_columns(
                    self.priority, self.fm.node_time, zsucc, order
                )
                sv = _StructView(dr_arr, zsucc, zpred, skey, reach, heights)
            else:
                np = self._np
                if dr_arr is None:
                    dr_arr = np.array(dr_key, dtype=np.int64)
                zs, zd = vec_zero_edges(vc, dr_arr)
                cols = vec_priority_columns(
                    self.priority, vc.node_time, vc.n, zs, zd
                )
                if cols is None:
                    r = r_factory() if r_factory is not None else Retiming.zero()
                    raise ZeroDelayCycleError(
                        _find_zero_delay_cycle(self.fg.graph, r)
                    )
                if self.priority == "mobility":
                    self._stats.priority_full_rebuilds += 1
                _, _, skey = cols
                zsucc, zpred = vec_zero_delay_lists(vc.n, zs, zd)
                sv = _StructView(dr_arr, zsucc, zpred, skey)
        finally:
            if traced:
                tr.end()
        if len(self._svs) >= self.max_views:
            self._svs.clear()
            self._stats.view_evictions += 1
        self._svs[dr_key] = sv
        return sv

    def seed_struct_view(self, dr_key: Tuple[int, ...], sv: _StructView) -> None:
        """Adopt a struct view computed by the batched stacked pass."""
        self._svs[dr_key] = sv
        self._extras["batched_seeds"] += 1

    def _sv_derive(
        self,
        parent_dr: Tuple[int, ...],
        dr_key: Tuple[int, ...],
        moved_idx: Tuple[int, ...],
        r_factory=None,
    ) -> _StructView:
        """The struct view after a rotation, derived from the parent's.

        The scalar mirror of :meth:`FlatEngine._derive_inner`, keyed by
        ``dr`` instead of the retiming: only edges incident to moved nodes
        can change zero-delay status, so most rotations reuse the parent's
        adjacency and priority columns outright (when no status flips, the
        child ``dr`` simply aliases the parent view).  Falls back to the
        full :meth:`_sv_for` build when derivation has nothing to start
        from (numpy path, evicted or column-less parent, mobility).
        Rotations preserve legality, so no cycle check is needed on the
        repair path — exactly as in the flat engine, whose parity suite
        pins this same repair bit-for-bit against full rebuilds.
        """
        sv = self._svs.get(dr_key)
        if sv is not None:
            self._stats.view_hits += 1
            return sv
        parent = self._svs.get(parent_dr)
        if (
            not self._scalar_misses
            or self.priority == "mobility"
            or parent is None
            or (parent.reach is None and parent.heights is None)
        ):
            return self._sv_for(dr_key, None, r_factory=r_factory)
        fg = self.fg
        self._stats.view_derives += 1
        self._extras["struct_view_derives"] += 1
        inc_at = fg.inc_at
        esrc, edst = fg.esrc, fg.edst
        changed_src: set = set()
        changed_dst: set = set()
        scanned = 0
        # An edge with both ends moved is visited twice; the status compare
        # and set.add are idempotent, so no dedup mask is needed.
        for i in moved_idx:
            inc = inc_at[i]
            scanned += len(inc)
            for k in inc:
                if (parent_dr[k] == 0) != (dr_key[k] == 0):
                    changed_src.add(esrc[k])
                    changed_dst.add(edst[k])
        self._stats.edges_rescanned += scanned

        if not changed_src and not changed_dst:
            self._stats.priority_entries_reused += fg.n
            sv = parent  # identical structure: alias under the new key
        else:
            zsucc = list(parent.zsucc)
            zpred = list(parent.zpred)
            out_at, in_at = fg.out_at, fg.in_at
            for u in changed_src:
                lst: List[int] = []
                for k in out_at[u]:
                    if dr_key[k] == 0:
                        w = edst[k]
                        if w not in lst:
                            lst.append(w)
                zsucc[u] = lst
            for v in changed_dst:
                lst = []
                for k in in_at[v]:
                    if dr_key[k] == 0:
                        u = esrc[k]
                        if u not in lst:
                            lst.append(u)
                zpred[v] = lst

            times = self.fm.node_time
            # Dirty set: changed sources plus all their zero-delay
            # ancestors in either DAG; rebuild wholesale past half the
            # graph (same abort rule as the flat engine).
            limit = fg.n // 2
            dirty = set(changed_src)
            stack = list(changed_src)
            while stack and len(dirty) <= limit:
                nidx = stack.pop()
                for u in parent.zpred[nidx]:
                    if u not in dirty:
                        dirty.add(u)
                        stack.append(u)
                for u in zpred[nidx]:
                    if u not in dirty:
                        dirty.add(u)
                        stack.append(u)
            if stack:
                order = flat_topological_order(zsucc)
                if order is None:  # pragma: no cover - rotations preserve legality
                    r = r_factory() if r_factory is not None else Retiming.zero()
                    raise ZeroDelayCycleError(_find_zero_delay_cycle(fg.graph, r))
                reach, heights, skey = flat_priority_columns(
                    self.priority, times, zsucc, order
                )
                self._stats.priority_full_rebuilds += 1
                sv = _StructView(None, zsucc, zpred, skey, reach, heights)
            else:
                self._stats.dirty_priority_nodes += len(dirty)
                self._stats.priority_entries_reused += fg.n - len(dirty)
                # Children-first walk of the dirty set (postorder DFS
                # restricted to dirty nodes of the acyclic zero-delay DAG).
                post: List[int] = []
                visited: set = set()
                for root in dirty:
                    if root in visited:
                        continue
                    visited.add(root)
                    dfs = [(root, iter(zsucc[root]))]
                    while dfs:
                        node, it = dfs[-1]
                        descended = False
                        for w in it:
                            if w in dirty and w not in visited:
                                visited.add(w)
                                dfs.append((w, iter(zsucc[w])))
                                descended = True
                                break
                        if not descended:
                            post.append(node)
                            dfs.pop()
                reach = heights = None
                if parent.reach is not None:
                    reach = list(parent.reach)
                    for v in post:
                        acc = 0
                        for w in zsucc[v]:
                            acc |= (1 << w) | reach[w]
                        reach[v] = acc
                if parent.heights is not None:
                    heights = list(parent.heights)
                    for v in post:
                        best = 0
                        for w in zsucc[v]:
                            hw = heights[w]
                            if hw > best:
                                best = hw
                        heights[v] = best + times[v]
                skey = list(parent.skey)
                priority = self.priority
                if priority == "descendants":
                    for v in dirty:
                        skey[v] = (-reach[v].bit_count(), v)
                elif priority == "height":
                    for v in dirty:
                        skey[v] = (-heights[v], v)
                else:  # combined
                    for v in dirty:
                        skey[v] = (-heights[v], -reach[v].bit_count(), v)
                sv = _StructView(None, zsucc, zpred, skey, reach, heights)
        if len(self._svs) >= self.max_views:
            self._svs.clear()
            self._stats.view_evictions += 1
        self._svs[dr_key] = sv
        return sv

    def _mint(self, starts, units, dr, rv, last, phantom, r, state, step):
        """Register a fresh record and wrap it as a RotationState.

        The state is built through ``__new__`` + direct ``__dict__`` fill:
        ``RotationState`` is a frozen dataclass with no ``__post_init__``,
        so this is identical to calling the constructor minus eight
        ``object.__setattr__`` round-trips per rotation.
        """
        RotationState = _rot_classes()[0]
        token = self._new_token()
        tip = self._pending_tip
        if tip is not None:
            self._pending_tip = None
            self._tip_grid = tip
            self._tip_gtoken = token
        self._vstates[token] = _VecState(starts, units, dr, rv, last, phantom)
        sched = _LazySchedule.from_vectors(
            self.graph, self.model, self._node_list, starts, units, last
        )
        st = RotationState.__new__(RotationState)
        d = st.__dict__
        d["graph"] = self.graph
        d["model"] = self.model
        d["retiming"] = r
        d["schedule"] = sched
        d["priority"] = state.priority if state is not None else self.priority
        d["trace"] = state.trace + (step,) if step is not None else ()
        d["engine"] = self
        d["engine_token"] = token
        return st

    # -- engine-backed RotationState operations ------------------------
    def initial_state(self, retiming: Optional[Retiming] = None):
        """Engine-backed ``RotationState.initial`` — memoized on ``dr``."""
        r = retiming if retiming is not None else Retiming.zero()
        rv, phantom = self._rv_phantom(r)
        dr = self._dr_of(rv)
        self._stats.initial_schedules += 1
        hit = self._init_memo.get(dr)
        if hit is not None:
            self._extras["initial_memo_hits"] += 1
            starts, units, last = hit
        else:
            sv = self._sv_for(dr, None, r_factory=lambda: r)
            fg, fm = self.fg, self.fm
            start: List[Optional[int]] = [None] * fg.n
            units_l: List[Optional[int]] = [None] * fg.n
            grid = FlatGrid(fm)
            tr = _obs.active
            if tr.enabled:
                tr.begin("kernel.list_schedule", todo=fg.n)
                try:
                    flat_list_schedule(
                        fg, fm, sv.zsucc, sv.zpred, sv.skey,
                        start, units_l, range(fg.n), 0, grid,
                    )
                finally:
                    tr.end()
            else:
                flat_list_schedule(
                    fg, fm, sv.zsucc, sv.zpred, sv.skey,
                    start, units_l, range(fg.n), 0, grid,
                )
            starts, units, last, lo = self._normalized(start, units_l)
            if lo:
                grid.shift(-lo)
            self._pending_tip = grid
            if len(self._init_memo) > _MEMO_LIMIT:  # pragma: no cover - backstop
                self._init_memo.clear()
            self._init_memo[dr] = (starts, units, last)
        return self._mint(starts, units, dr, rv, last, phantom, r, None, None)

    def _normalized(self, start: List[int], units: List[int]):
        """Normalize a placed start vector.

        Returns ``(starts, units, last, lo)`` — ``lo`` is the shift that
        was applied, so callers adopting the occupancy grid as the new
        chain tip can shift it to match.
        """
        lo = min(start)
        if lo:
            start = [s - lo for s in start]
        lat = self.fm.node_latency
        last = max([s + lat[i] for i, s in enumerate(start)]) - 1
        return tuple(start), tuple(units), last, lo

    def down_rotate(self, state, size: int):
        """Engine-backed ``DownRotate`` — one tuple lookup when the
        transition has been seen before, numpy + scalar placement when not."""
        RotationState, RotationStep = _rot_classes()
        if size < 1:
            raise RotationError(f"rotation size must be >= 1, got {size}")
        rec = self._rec_for(state)
        if size > rec.last:
            raise RotationError(
                f"rotation of size {size} is illegal on a schedule of length {rec.last + 1}"
            )
        hk = rec.hk
        if hk is None:
            hk = rec.hk = _Key((rec.starts, rec.units, rec.dr))
        key = ("d", hk, size)
        self._stats.rotations += 1
        hit = self._rot_memo.get(key)
        if hit is not None:
            self._extras["rotation_memo_hits"] += 1
            moved_idx, moved_nodes, starts, units, dr, last = hit
        else:
            self._extras["rotation_memo_misses"] += 1
            fg, vc = self.fg, self._vc
            hi = size - 1
            moved_idx = tuple([i for i, s in enumerate(rec.starts) if s <= hi])
            moved_list = [fg.nodes[i] for i in moved_idx]
            if not moved_idx:  # pragma: no cover - impossible on a normalized schedule
                sched = state.schedule.normalized().shifted(-size).normalized()
                step = RotationStep("down", size, (), rec.last + 1, sched.length)
                new_r = state.retiming.bumped(moved_list)
                return RotationState(
                    self.graph, self.model, new_r, sched, state.priority,
                    state.trace + (step,), engine=self, engine_token=None,
                )
            if self._scalar_misses:
                # Only edges incident to moved nodes can change; recomputing
                # them from the bumped dense rv is idempotent, so an edge
                # with both ends moved may be visited twice without a mask.
                nrv = list(rec.rv)
                for i in moved_idx:
                    nrv[i] += 1
                dr_l = list(rec.dr)
                esrc, edst, edelay, inc_at = fg.esrc, fg.edst, fg.edelay, fg.inc_at
                for i in moved_idx:
                    for k in inc_at[i]:
                        nd = edelay[k] + nrv[esrc[k]] - nrv[edst[k]]
                        if nd < 0:
                            raise RotationError(
                                f"schedule prefix {moved_list!r} is not down-rotatable — "
                                "the current schedule is not a legal DAG schedule of G_R"
                            )  # pragma: no cover - guarded by construction
                        dr_l[k] = nd
                dr = tuple(dr_l)
                new_dr_arr = None
            else:
                np = self._np
                dr_arr = np.array(rec.dr, dtype=np.int64)
                moved_mask = np.zeros(vc.n, dtype=bool)
                moved_mask[list(moved_idx)] = True
                msrc = moved_mask[vc.esrc]
                mdst = moved_mask[vc.edst]
                if bool(((dr_arr < 1) & mdst & ~msrc).any()):
                    raise RotationError(
                        f"schedule prefix {moved_list!r} is not down-rotatable — "
                        "the current schedule is not a legal DAG schedule of G_R"
                    )  # pragma: no cover - guarded by construction
                new_dr_arr = dr_arr + msrc - mdst
                dr = tuple(new_dr_arr.tolist())
            r_factory = lambda: state.retiming.bumped(moved_list)
            if new_dr_arr is None:
                sv = self._sv_derive(rec.dr, dr, moved_idx, r_factory=r_factory)
            else:
                sv = self._sv_for(dr, new_dr_arr, r_factory=r_factory)
            start = [s - size for s in rec.starts]
            units_l: List[Optional[int]] = list(rec.units)
            for i in moved_idx:
                start[i] = None
                units_l[i] = None
            if self._tip_grid is not None and state.engine_token == self._tip_gtoken:
                grid = self._tip_grid
                self._tip_grid = None
                grid.release_many(moved_idx, rec.starts, rec.units)
                self._stats.grid_released_slots += len(moved_idx)
                grid.shift(-size)
                self._stats.grid_delta_rotations += 1
                self._extras["chain_tip_reuses"] += 1
            else:
                grid = seed_grid(self.fg, self.fm, start, units_l)
                self._stats.grid_reseeds += 1
            tr = _obs.active
            if tr.enabled:
                tr.begin("kernel.list_schedule", todo=len(moved_idx))
                try:
                    flat_list_schedule(
                        self.fg, self.fm, sv.zsucc, sv.zpred, sv.skey,
                        start, units_l, list(moved_idx), 0, grid,
                    )
                finally:
                    tr.end()
            else:
                flat_list_schedule(
                    self.fg, self.fm, sv.zsucc, sv.zpred, sv.skey,
                    start, units_l, list(moved_idx), 0, grid,
                )
            starts, units, last, lo = self._normalized(start, units_l)
            if lo:
                grid.shift(-lo)
            self._pending_tip = grid
            moved_nodes = tuple(moved_list)
            if len(self._rot_memo) > _MEMO_LIMIT:  # pragma: no cover - backstop
                self._rot_memo.clear()
            self._rot_memo[key] = (moved_idx, moved_nodes, starts, units, dr, last)
        new_rv = list(rec.rv)
        for i in moved_idx:
            new_rv[i] += 1
        rv = tuple(new_rv)
        new_r = _LazyRetiming(self._node_list, rv, rec.phantom)
        step = RotationStep("down", size, moved_nodes, rec.last + 1, last + 1)
        return self._mint(starts, units, dr, rv, last, rec.phantom, new_r, state, step)

    def up_rotate(self, state, size: int):
        """Engine-backed up-rotation (latest-fit), same memo discipline."""
        RotationStep = _rot_classes()[1]
        if size < 1:
            raise RotationError(f"rotation size must be >= 1, got {size}")
        rec = self._rec_for(state)
        if size > rec.last:
            raise RotationError(
                f"rotation of size {size} is illegal on a schedule of length {rec.last + 1}"
            )
        hk = rec.hk
        if hk is None:
            hk = rec.hk = _Key((rec.starts, rec.units, rec.dr))
        key = ("u", hk, size)
        self._stats.rotations += 1
        hit = self._rot_memo.get(key)
        if hit is not None:
            self._extras["rotation_memo_hits"] += 1
            moved_idx, moved_nodes, starts, units, dr, last = hit
        else:
            self._extras["rotation_memo_misses"] += 1
            fg, vc = self.fg, self._vc
            ceiling = rec.last
            lo = ceiling - size + 1
            moved_idx = tuple(
                [i for i, s in enumerate(rec.starts) if lo <= s <= ceiling]
            )
            moved_list = [fg.nodes[i] for i in moved_idx]
            if self._scalar_misses:
                # Same incident-edge recompute as down_rotate, rv bumped down.
                nrv = list(rec.rv)
                for i in moved_idx:
                    nrv[i] -= 1
                dr_l = list(rec.dr)
                esrc, edst, edelay, inc_at = fg.esrc, fg.edst, fg.edelay, fg.inc_at
                for i in moved_idx:
                    for k in inc_at[i]:
                        nd = edelay[k] + nrv[esrc[k]] - nrv[edst[k]]
                        if nd < 0:
                            raise RotationError(
                                f"suffix {moved_list!r} is not up-rotatable"
                            )
                        dr_l[k] = nd
                dr = tuple(dr_l)
                new_dr_arr = None
            else:
                np = self._np
                dr_arr = np.array(rec.dr, dtype=np.int64)
                moved_mask = np.zeros(vc.n, dtype=bool)
                moved_mask[list(moved_idx)] = True
                msrc = moved_mask[vc.esrc]
                mdst = moved_mask[vc.edst]
                if bool(((dr_arr < 1) & msrc & ~mdst).any()):
                    raise RotationError(f"suffix {moved_list!r} is not up-rotatable")
                new_dr_arr = dr_arr - msrc + mdst
                dr = tuple(new_dr_arr.tolist())
            r_factory = lambda: state.retiming.bumped(moved_list, -1)
            if new_dr_arr is None:
                sv = self._sv_derive(rec.dr, dr, moved_idx, r_factory=r_factory)
            else:
                sv = self._sv_for(dr, new_dr_arr, r_factory=r_factory)
            start: List[Optional[int]] = list(rec.starts)
            units_l: List[Optional[int]] = list(rec.units)
            for i in moved_idx:
                start[i] = None
                units_l[i] = None
            if self._tip_grid is not None and state.engine_token == self._tip_gtoken:
                grid = self._tip_grid
                self._tip_grid = None
                grid.release_many(moved_idx, rec.starts, rec.units)
                self._stats.grid_released_slots += len(moved_idx)
                self._stats.grid_delta_rotations += 1
                self._extras["chain_tip_reuses"] += 1
            else:
                grid = seed_grid(self.fg, self.fm, start, units_l)
                self._stats.grid_reseeds += 1
            tr = _obs.active
            if tr.enabled:
                tr.begin("kernel.latest_fit", todo=len(moved_idx))
                try:
                    flat_latest_fit(
                        self.fg, self.fm, sv.zsucc, sv.zpred,
                        start, units_l, list(moved_idx), ceiling, grid,
                    )
                finally:
                    tr.end()
            else:
                flat_latest_fit(
                    self.fg, self.fm, sv.zsucc, sv.zpred,
                    start, units_l, list(moved_idx), ceiling, grid,
                )
            starts, units, last, lo = self._normalized(start, units_l)
            if lo:
                grid.shift(-lo)
            self._pending_tip = grid
            moved_nodes = tuple(moved_list)
            if len(self._rot_memo) > _MEMO_LIMIT:  # pragma: no cover - backstop
                self._rot_memo.clear()
            self._rot_memo[key] = (moved_idx, moved_nodes, starts, units, dr, last)
        new_rv = list(rec.rv)
        for i in moved_idx:
            new_rv[i] -= 1
        rv = tuple(new_rv)
        new_r = _LazyRetiming(self._node_list, rv, rec.phantom)
        step = RotationStep("up", size, moved_nodes, rec.last + 1, last + 1)
        return self._mint(starts, units, dr, rv, last, rec.phantom, new_r, state, step)

    def fp_state(self, state) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Engine-backed fingerprint: the record *is* the key."""
        token = state.engine_token
        if token is not None:
            rec = self._vstates.get(token)
            if rec is not None:
                return rec.starts, rec.rv
        return super().fp_state(state)

    def wrap_state(self, state) -> WrappedSchedule:
        """Engine-backed wrap — memoized on ``(starts, dr)``."""
        token = state.engine_token
        rec = self._vstates.get(token) if token is not None else None
        if rec is None:
            return super().wrap_state(state)
        key = rec.wk
        if key is None:
            key = rec.wk = _Key((rec.starts, rec.dr))
        period = self._wrap_memo.get(key)
        if period is not None:
            self._extras["wrap_memo_hits"] += 1
        else:
            if self._scalar_misses:
                tr = _obs.active
                if tr.enabled:
                    tr.begin("kernel.wrap_period")
                    try:
                        period = flat_wrap_period(
                            self.fg, self.fm, rec.starts, rec.dr, self._extras
                        )
                    finally:
                        tr.end()
                else:
                    period = flat_wrap_period(
                        self.fg, self.fm, rec.starts, rec.dr, self._extras
                    )
            else:
                np = self._np
                starts_arr = np.array(rec.starts, dtype=np.int64)
                dr_arr = np.array(rec.dr, dtype=np.int64)
                tr = _obs.active
                if tr.enabled:
                    tr.begin("kernel.wrap_period")
                    try:
                        period = vec_wrap_period(
                            self._vc, starts_arr, dr_arr, self._extras
                        )
                    finally:
                        tr.end()
                else:
                    period = vec_wrap_period(
                        self._vc, starts_arr, dr_arr, self._extras
                    )
            if len(self._wrap_memo) > _MEMO_LIMIT:  # pragma: no cover - backstop
                self._wrap_memo.clear()
            self._wrap_memo[key] = period
        return _mk_wrapped(state.schedule.normalized(), state.retiming, period)

    def realize_wrapped(self, w: WrappedSchedule) -> WrappedSchedule:
        """Depth reduction on one tracker entry, from the flat vectors.

        Computes the same pointwise-minimal realizing retiming as
        :func:`repro.schedule.verify.realizing_retiming` — the converged
        Bellman-Ford distances are the unique pointwise-maximal solution
        of the difference constraints, so running them over index columns
        instead of node dicts changes nothing but the clock.  Schedules
        this engine did not mint (and the never-taken negative-cycle
        case) fall back to the generic path.
        """
        from repro.schedule.verify import realizing_retiming

        sched = w.schedule
        if not (
            type(sched) is _LazySchedule
            and sched.__dict__.get("_lz_nodes") is self._node_list
        ):
            return WrappedSchedule(sched, realizing_retiming(sched, w.period), w.period)
        tr = _obs.active
        traced = tr.enabled
        if traced:
            tr.begin("retiming.realize")
        try:
            starts = sched.__dict__["_lz_starts"]
            period = w.period
            # The realizing retiming depends only on (starts, period) —
            # tracker entries reaching the same schedule through different
            # rotation counts share one solve.
            rk = (starts, period)
            r = self._realize_memo.get(rk)
            if r is not None:
                return _mk_wrapped(sched, r, period)
            fg, fm = self.fg, self.fm
            lat = fm.node_latency
            esrc, edst, edelay = fg.esrc, fg.edst, fg.edelay
            m = fg.m
            bounds = [0] * m
            for k in range(m):
                u = esrc[k]
                overrun = starts[u] + lat[u] - starts[edst[k]]
                need = -(-overrun // period) if overrun > 0 else 0
                bounds[k] = edelay[k] - need
            dist = [0] * fg.n
            for _ in range(fg.n):
                changed = False
                for k in range(m):
                    nd = dist[esrc[k]] + bounds[k]
                    v = edst[k]
                    if nd < dist[v]:
                        dist[v] = nd
                        changed = True
                if not changed:
                    break
            else:  # pragma: no cover - unrealizable schedules never reach here
                return WrappedSchedule(
                    sched, realizing_retiming(sched, period), period
                )
            lo = min(dist, default=0)
            if lo:
                dist = [d - lo for d in dist]
            r = Retiming(dict(zip(self._node_list, dist)))
            if len(self._realize_memo) > _MEMO_LIMIT:  # pragma: no cover - backstop
                self._realize_memo.clear()
            self._realize_memo[rk] = r
        finally:
            if traced:
                tr.end()
        return _mk_wrapped(sched, r, w.period)
