"""The fuzz runner: grid shape, budgets, and the failure->bundle loop."""

import os

import pytest

from repro.qa import (
    DEFAULT_CONFIGS,
    PATHS,
    FuzzCase,
    OracleFailure,
    config_model,
    grid_cases,
    replay_bundle,
    run_cell,
    run_fuzz,
    smoke_cases,
)
from repro.errors import ReproError


class TestConfigModel:
    def test_parses_paper_style_tags(self):
        m = config_model("2A1Mp")
        assert m.unit_for_op("add").count == 2
        assert m.unit_for_op("mul").count == 1
        assert m.unit_for_op("mul").pipelined
        assert not config_model("1A1M").unit_for_op("mul").pipelined

    def test_rejects_garbage(self):
        with pytest.raises(ReproError, match="bad resource config"):
            config_model("3X")


class TestGrid:
    def test_smoke_grid_is_big_enough_and_deterministic(self):
        cases = smoke_cases()
        assert len(cases) >= 200
        assert [c.tag() for c in cases] == [c.tag() for c in smoke_cases()]
        generators = {c.generator for c in cases}
        assert "unfolded_dfg" in generators  # tuple ids are fuzzed
        assert {c.config for c in cases} == set(DEFAULT_CONFIGS)
        assert {c.path for c in cases} == set(PATHS)

    def test_case_tag_and_dict(self):
        c = FuzzCase("random_dfg", {"num_nodes": 8, "seed": 1}, "1A1M", "h2")
        assert c.tag() == "random_dfg(num_nodes=8,seed=1) @ 1A1M / h2"
        assert c.as_dict()["params"] == {"num_nodes": 8, "seed": 1}


class TestFuzzSmoke:
    def test_fixed_seed_slice_certifies_clean(self, tmp_path):
        # the tier-1 deterministic smoke: one seed, every generator,
        # every scheduler path, tight resource set
        cases = grid_cases(seeds=[0], configs=("1A1M",))
        report = run_fuzz(cases, out_dir=str(tmp_path))
        assert report.clean == report.cells == len(cases)
        assert report.failures == []
        assert os.listdir(str(tmp_path)) == []  # no bundles for clean runs

    def test_max_cells_budget_skips_rest(self, tmp_path):
        cases = grid_cases(seeds=[0], configs=("1A1M",))
        report = run_fuzz(cases, max_cells=3, out_dir=str(tmp_path))
        assert report.cells == 3
        assert report.skipped == len(cases) - 3
        assert "skipped by budget" in report.summary()

    def test_time_budget_skips_rest(self, tmp_path):
        cases = grid_cases(seeds=[0], configs=("1A1M",))
        report = run_fuzz(cases, budget_seconds=0.0, out_dir=str(tmp_path))
        assert report.cells <= 1
        assert report.skipped >= len(cases) - 1

    def test_single_cell_runner(self):
        case = FuzzCase(
            "random_chain_loop",
            {"num_stages": 3, "stage_len": 2, "seed": 1},
            "2A1M",
            "h1",
        )
        assert run_cell(case) == []


class TestInjectedFailure:
    def test_failure_is_shrunk_bundled_and_replayable(self, tmp_path, monkeypatch):
        # Revert-the-fix drill: make the roundtrip oracle fire whenever a
        # graph still contains node n0, then check the whole pipeline —
        # detect, delta-debug, bundle, replay.
        import repro.qa.runner as runner_mod

        def broken_roundtrip(graph):
            if any(v == "n0" for v in graph.nodes):
                return [OracleFailure("roundtrip", "injected: n0 survives")]
            return []

        monkeypatch.setattr(runner_mod, "check_roundtrip", broken_roundtrip)
        cases = [
            FuzzCase("random_dfg", {"num_nodes": 8, "seed": 0}, "1A1M", "h2")
        ]
        report = run_fuzz(cases, out_dir=str(tmp_path))
        assert report.clean == 0 and len(report.failures) == 1
        rec = report.failures[0]
        assert rec.failures[0].oracle == "roundtrip"
        # delta-debugging got us to the 1-minimal witness: just n0
        assert rec.shrunk_nodes == 1
        assert rec.bundle_path and os.path.isdir(rec.bundle_path)
        assert "FAILING" in report.summary()

        # the bundle replays: with the monkeypatch still active the bug
        # reproduces; on the fixed code (fresh oracle) it comes back clean
        bundle, now = replay_bundle(rec.bundle_path)
        assert [f.oracle for f in now] == ["roundtrip"]
        monkeypatch.undo()
        _, after_fix = replay_bundle(rec.bundle_path)
        assert after_fix == []

class TestParallelFuzz:
    def test_jobs_verdict_matches_sequential(self, tmp_path):
        # --jobs is pure speed: same cells, same verdict, same (empty)
        # failure list, reported in the same deterministic case order.
        cases = grid_cases(seeds=[1], configs=("1A1M",), paths=("h2",))
        seq = run_fuzz(cases, out_dir=str(tmp_path / "seq"))
        par = run_fuzz(cases, out_dir=str(tmp_path / "par"), jobs=2)
        assert (par.cells, par.clean, par.skipped) == (
            seq.cells,
            seq.clean,
            seq.skipped,
        )
        assert [f.case.tag() for f in par.failures] == [
            f.case.tag() for f in seq.failures
        ]

    def test_jobs_respects_max_cells(self, tmp_path):
        cases = grid_cases(seeds=[1], configs=("1A1M",), paths=("h1", "h2"))
        report = run_fuzz(cases, out_dir=str(tmp_path), jobs=2, max_cells=3)
        assert report.cells == 3
        assert report.skipped == len(cases) - 3
