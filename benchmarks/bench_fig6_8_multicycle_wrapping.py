"""Regenerates **Figures 6-8**: rotations with the 2-stage multiplier.

Multi-cycle tails lengthen the unwrapped schedule during rotation
(Figure 6); wrapping the tails around the cylinder recovers the paper's
length-6 schedule after 8 size-1 rotations (Figure 8), and re-rooting can
turn the wrapped schedule back into an unwrapped one (Section 4's
cylinder rotation).
"""

from repro.schedule import ResourceModel
from repro.core import RotationState, unwrap_if_possible, wrap
from repro.report import render_schedule
from repro.suite import get_benchmark

from conftest import record, run_once


def test_fig6_8_wrapping(benchmark):
    graph = get_benchmark("diffeq")
    model = ResourceModel.adders_mults(1, 1, pipelined_mults=True)

    def run():
        st = RotationState.initial(graph, model)
        spans = [st.length]
        for _ in range(8):
            st = st.down_rotate(1)
            spans.append(st.length)
        wrapped = wrap(st.schedule, st.retiming)
        return st, spans, wrapped

    st, spans, wrapped = run_once(benchmark, run)
    record(
        benchmark,
        unwrapped_spans=spans,
        paper_wrapped_length=6,
        measured_wrapped_length=wrapped.period,
        wrapped_nodes=[str(v) for v in wrapped.wrapped_nodes()],
        schedule=render_schedule(wrapped.schedule, model),
    )
    assert wrapped.period == 6           # Figure 8-(b)
    assert st.length > wrapped.period    # tails made the span longer (Fig 6)
    assert wrapped.violations() == []

    rerooted = unwrap_if_possible(wrapped)
    assert rerooted.period == wrapped.period
    assert rerooted.violations() == []
