"""Priority (weight) functions for list scheduling.

The paper uses "the number of descendants as the weight of a node in the
list" for both ``FullSchedule`` and ``PartialSchedule``.  Alternatives are
provided for experiments: height (longest path to a sink), mobility
(ALAP - ASAP slack, lower is more urgent) and combinations.

A priority function maps ``(graph, timing, r)`` to a dict of comparable
keys; *larger* keys are scheduled first.  All functions return tuples so
combinations stay lexicographic, and the schedulers add a deterministic
node-index tiebreak.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.dfg.graph import DFG, NodeId, Timing
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import (
    alap_times,
    asap_times,
    critical_path_length,
    descendant_counts,
    height_times,
)

PriorityFn = Callable[[DFG, Optional[Timing], Optional[Retiming]], Dict[NodeId, Tuple]]


def descendant_priority(
    graph: DFG, timing: Optional[Timing] = None, r: Optional[Retiming] = None
) -> Dict[NodeId, Tuple]:
    """Paper default: number of zero-delay descendants (bigger first)."""
    counts = descendant_counts(graph, r)
    return {v: (counts[v],) for v in graph.nodes}


def height_priority(
    graph: DFG, timing: Optional[Timing] = None, r: Optional[Retiming] = None
) -> Dict[NodeId, Tuple]:
    """Longest zero-delay path from the node to any sink (bigger first)."""
    heights = height_times(graph, timing, r)
    return {v: (heights[v],) for v in graph.nodes}


def mobility_priority(
    graph: DFG, timing: Optional[Timing] = None, r: Optional[Retiming] = None
) -> Dict[NodeId, Tuple]:
    """Negated slack: critical nodes (slack 0) first."""
    asap = asap_times(graph, timing, r)
    deadline = critical_path_length(graph, timing, r)
    alap = alap_times(graph, deadline, timing, r)
    return {v: (-(alap[v] - asap[v]),) for v in graph.nodes}


def combined_priority(
    graph: DFG, timing: Optional[Timing] = None, r: Optional[Retiming] = None
) -> Dict[NodeId, Tuple]:
    """Height first, descendant count as tiebreak — a strong general choice."""
    heights = height_times(graph, timing, r)
    counts = descendant_counts(graph, r)
    return {v: (heights[v], counts[v]) for v in graph.nodes}


PRIORITIES: Dict[str, PriorityFn] = {
    "descendants": descendant_priority,
    "height": height_priority,
    "mobility": mobility_priority,
    "combined": combined_priority,
}


def get_priority(name_or_fn) -> PriorityFn:
    """Resolve a priority by name or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return PRIORITIES[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown priority {name_or_fn!r}; choose from {sorted(PRIORITIES)}"
        ) from None
