"""Ablation for the **Section 5 discussion**: effect of the rotation size
on convergence speed ("the convergence speed is faster when the rotation
size is large ... some irregularities exist ... if the rotation size is
too small, the phase may never converge").

For each phase size, run Heuristic 1 restricted to that single size and
count rotations until the optimum first appears.
"""

import pytest

from repro.schedule import ResourceModel
from repro.core import BestTracker, RotationState, rotation_phase
from repro.suite import get_benchmark

from conftest import record, run_once


@pytest.mark.parametrize("bench,tag,optimum", [
    ("diffeq", "unit", 6),
    ("elliptic", "3A2M", 16),
])
def test_rotations_to_converge_by_size(benchmark, bench, tag, optimum):
    graph = get_benchmark(bench)
    model = (
        ResourceModel.unit_time(1, 1) if tag == "unit"
        else ResourceModel.adders_mults(3, 2)
    )

    def sweep():
        initial = RotationState.initial(graph, model)
        out = {}
        for size in range(1, min(10, initial.length)):
            tracker = BestTracker()
            tracker.offer(initial)
            state, count = initial, None
            for j in range(1, 61):
                if state.length <= 1:
                    break
                state = state.down_rotate(min(size, state.length - 1))
                tracker.offer(state)
                if tracker.length == optimum:
                    count = j
                    break
            out[size] = count  # None = did not converge in 60 rotations
        return out

    convergence = run_once(benchmark, sweep)
    record(benchmark, rotations_until_optimal_by_size=convergence, optimum=optimum)
    assert any(c is not None for c in convergence.values())
    converged = {s: c for s, c in convergence.items() if c is not None}
    # larger sizes tend to converge at least as fast as size 1 (when size 1
    # converges at all) — the paper's trend, allowing its "irregularities"
    if 1 in converged:
        assert min(converged.values()) <= converged[1]
