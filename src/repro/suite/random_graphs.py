"""Synthetic cyclic-DFG generators for property tests and scalability runs.

All generators are deterministic given a seed and always produce *legal*
DFGs (every cycle carries at least one delay), which they guarantee by
construction: zero-delay edges only go forward in a hidden topological
order; backward edges always carry delays.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.errors import GraphError


def random_dfg(
    num_nodes: int = 20,
    *,
    seed: int = 0,
    ops: Sequence[str] = ("add", "mul"),
    op_weights: Optional[Sequence[float]] = None,
    forward_density: float = 0.15,
    backward_density: float = 0.08,
    max_delay: int = 2,
    name: Optional[str] = None,
) -> DFG:
    """A random legal cyclic DFG.

    Nodes ``n0 .. n{k-1}`` sit in a hidden topological order; forward pairs
    get zero-delay edges with probability ``forward_density``, backward
    pairs get delayed edges (1..max_delay) with ``backward_density``.
    Every node is wired to at least one neighbour so nothing is isolated.

    Args:
        num_nodes: node count (>= 2).
        seed: RNG seed; equal seeds give identical graphs.
        ops: op types to draw from.
        op_weights: relative frequencies of ``ops`` (uniform by default).
        forward_density: zero-delay edge probability per forward pair.
        backward_density: delayed edge probability per backward pair.
        max_delay: maximum delay on backward edges.
        name: graph name (defaults to a seed-derived tag).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    g = DFG(name if name is not None else f"random[{num_nodes}n,s{seed}]")
    labels: List[NodeId] = [f"n{i}" for i in range(num_nodes)]
    for label in labels:
        g.add_node(label, rng.choices(list(ops), weights=op_weights)[0])

    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < forward_density:
                g.add_edge(labels[i], labels[j], 0)
        for j in range(i):
            if rng.random() < backward_density:
                g.add_edge(labels[i], labels[j], rng.randint(1, max_delay))

    # connect stragglers forward (or backward with a delay for the last node)
    for i, label in enumerate(labels):
        if not g.in_edges(label) and not g.out_edges(label):
            if i + 1 < num_nodes:
                g.add_edge(label, labels[rng.randrange(i + 1, num_nodes)], 0)
            else:
                g.add_edge(label, labels[rng.randrange(0, i)], 1)
    return g


def random_chain_loop(
    num_stages: int = 4,
    stage_len: int = 3,
    *,
    seed: int = 0,
    name: Optional[str] = None,
) -> DFG:
    """A ring of pipeline stages — cyclic, loosely coupled, deeply retimable.

    Stage ``i`` is a zero-delay chain of ``stage_len`` nodes; consecutive
    stages are joined by single-delay edges, and the ring closes with a
    delay, so the iteration bound stays near ``stage_len`` time units while
    the critical path covers one stage only.
    """
    rng = random.Random(seed)
    g = DFG(name if name is not None else f"ring[{num_stages}x{stage_len},s{seed}]")
    for i in range(num_stages):
        for j in range(stage_len):
            g.add_node(f"s{i}_{j}", rng.choice(["add", "mul"]))
        for j in range(stage_len - 1):
            g.add_edge(f"s{i}_{j}", f"s{i}_{j + 1}", 0)
    for i in range(num_stages):
        g.add_edge(
            f"s{i}_{stage_len - 1}", f"s{(i + 1) % num_stages}_0", 1
        )
    return g


def random_dsp_kernel(
    taps: int = 6,
    *,
    seed: int = 0,
    recursive: bool = True,
    name: Optional[str] = None,
) -> DFG:
    """A direct-form filter kernel: ``taps`` coefficient multipliers feeding
    an adder tree, optionally with a recursive (IIR) feedback multiplier.

    A realistic mid-size workload for examples and scalability benches.
    """
    if taps < 2:
        raise ValueError("need at least 2 taps")
    rng = random.Random(seed)
    g = DFG(name if name is not None else f"fir{taps}{'-iir' if recursive else ''}[s{seed}]")
    acc_prev = None
    for i in range(taps):
        coef = round(rng.uniform(-1, 1), 3)
        g.add_node(f"m{i}", "mul", func=lambda x, _c=coef: _c * x)
        g.add_node(f"a{i}", "add", func=lambda *xs: sum(xs))
        g.add_edge(f"m{i}", f"a{i}", 0)
        if acc_prev is not None:
            g.add_edge(acc_prev, f"a{i}", 0)
        acc_prev = f"a{i}"
    # tapped delay line: each multiplier reads the accumulator i+1 back
    for i in range(taps):
        g.add_edge(acc_prev, f"m{i}", i + 1, init=[0.0] * i + [1.0])
    if recursive:
        g.add_node("fb", "mul", func=lambda x: 0.5 * x)
        g.add_edge(acc_prev, "fb", 1, init=[0.0])
        g.add_edge("fb", "a0", 0)
    return g


# ----------------------------------------------------------------------
# deterministic semantics + the fuzzer's parameter grid
# ----------------------------------------------------------------------
def _affine_func(bias: float, gain: float):
    """``bias + gain * mean(operands)`` — contractive for |gain| < 1, so
    value streams stay bounded (no inf/NaN) over any iteration count."""

    def func(*xs: float) -> float:
        return bias + gain * (sum(xs) / len(xs)) if xs else bias

    return func


def attach_affine_funcs(graph: DFG, seed: int = 0) -> DFG:
    """Attach deterministic, numerically tame semantics to every node.

    Coefficients are drawn from ``seed`` and *stored as node attrs*
    (``qa_bias`` / ``qa_gain``), so a graph serialized with
    :mod:`repro.dfg.io` can have identical semantics re-attached after
    loading via :func:`rebuild_funcs` — the property repro bundles rely
    on.  Existing funcs and coefficients are overwritten.
    """
    rng = random.Random(seed)
    for v in graph.nodes:
        attrs = graph.attrs(v)
        attrs["qa_bias"] = round(rng.uniform(-1.0, 1.0), 6)
        attrs["qa_gain"] = round(rng.uniform(-0.9, 0.9), 6)
    return rebuild_funcs(graph)


def rebuild_funcs(graph: DFG) -> DFG:
    """Re-attach semantics from the ``qa_bias``/``qa_gain`` node attrs
    written by :func:`attach_affine_funcs` (e.g. after a JSON round-trip)."""
    for v in graph.nodes:
        attrs = graph.attrs(v)
        if "qa_bias" not in attrs or "qa_gain" not in attrs:
            raise GraphError(f"node {v!r} carries no qa coefficients to rebuild from")
        graph.set_func(v, _affine_func(attrs["qa_bias"], attrs["qa_gain"]))
    return graph


def unfolded_dfg(
    num_nodes: int = 6,
    *,
    factor: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
) -> DFG:
    """A random DFG unfolded by ``factor`` — exercises tuple node ids
    (``(original, copy)``) through every scheduler and serialization path."""
    from repro.dfg.unfold import unfold

    return unfold(random_dfg(num_nodes, seed=seed), factor, name=name)


#: generator name -> callable, as referenced by fuzz cases and bundles.
GENERATORS = {
    "random_dfg": random_dfg,
    "random_chain_loop": random_chain_loop,
    "random_dsp_kernel": random_dsp_kernel,
    "unfolded_dfg": unfolded_dfg,
}


def build_case_graph(generator: str, params: Dict[str, Any]) -> DFG:
    """Instantiate a generator cell and attach deterministic semantics."""
    try:
        gen = GENERATORS[generator]
    except KeyError:
        raise GraphError(f"unknown graph generator {generator!r}") from None
    graph = gen(**params)
    return attach_affine_funcs(graph, seed=params.get("seed", 0))


def generator_grid(
    seeds: Iterable[int],
    *,
    dfg_sizes: Sequence[int] = (8, 12),
    ring_shapes: Sequence[Tuple[int, int]] = ((3, 2), (3, 3)),
    dsp_taps: Sequence[int] = (3, 4),
    unfold_sizes: Sequence[int] = (5,),
) -> List[Tuple[str, Dict[str, Any]]]:
    """The fuzzer's graph parameter grid: ``(generator, kwargs)`` cells.

    Deterministic order; every cell is buildable by
    :func:`build_case_graph`.  ``random_dfg`` varies node count,
    ``random_chain_loop`` stage shape, ``random_dsp_kernel`` tap count
    (both recursive and non-recursive), and ``unfolded_dfg`` covers
    tuple node ids.
    """
    cells: List[Tuple[str, Dict[str, Any]]] = []
    seeds = list(seeds)
    for seed in seeds:
        for n in dfg_sizes:
            cells.append(("random_dfg", {"num_nodes": n, "seed": seed}))
        for stages, length in ring_shapes:
            cells.append(
                ("random_chain_loop", {"num_stages": stages, "stage_len": length, "seed": seed})
            )
        for taps in dsp_taps:
            cells.append(
                ("random_dsp_kernel", {"taps": taps, "seed": seed, "recursive": seed % 2 == 0})
            )
        for n in unfold_sizes:
            cells.append(("unfolded_dfg", {"num_nodes": n, "factor": 2, "seed": seed}))
    return cells
