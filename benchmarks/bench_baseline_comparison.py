"""Extension experiment: RS vs re-implemented open baselines.

The paper compares against closed systems (PBS, MARS, Lee et al.) by
quoting their published numbers.  Here the same comparison axis is
exercised with re-implemented baselines: non-pipelined DAG list
scheduling, iterative modulo scheduling (for the VLIW software-pipelining
line of work) and retime-then-schedule (for the Cathedral-II line).
"""

import pytest

from repro.baselines import dag_list_schedule, modulo_schedule, retime_then_schedule
from repro.bounds import lower_bound
from repro.core import rotation_schedule
from repro.suite import BENCHMARKS, get_benchmark

from conftest import model_for, record, run_once

CONFIGS = ["2A2M", "2A1Mp", "3A2M"]


@pytest.mark.parametrize("bench", list(BENCHMARKS))
@pytest.mark.parametrize("tag", CONFIGS)
def test_rs_vs_baselines(benchmark, bench, tag):
    graph = get_benchmark(bench)
    model = model_for(tag)

    def run():
        return {
            "LB": lower_bound(graph, model),
            "DAG-list": dag_list_schedule(graph, model).length,
            "Modulo": modulo_schedule(graph, model).ii,
            "Retime+LS": retime_then_schedule(graph, model).length,
            "RS": rotation_schedule(graph, model).length,
        }

    row = run_once(benchmark, run)
    record(benchmark, bench=bench, resources=model.label(), **row)
    # RS always beats the non-pipelining baseline or ties it, and never
    # loses to retime-then-schedule (the paper's structural argument)
    assert row["RS"] <= row["DAG-list"]
    assert row["RS"] <= row["Retime+LS"]
    assert row["RS"] >= row["LB"]
