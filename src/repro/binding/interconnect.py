"""Interconnect cost of a bound pipelined schedule.

Paper Section 8 names interconnection cost ([22]: *communication
sensitive rotation scheduling*) as the natural next constraint after
schedule length.  With a schedule, a unit assignment and a register
binding fixed, the datapath's multiplexing is determined:

* each functional-unit operand port reads, over the period's control
  steps, from some set of distinct sources (registers) — a multiplexer of
  that width;
* each register is written by some set of distinct unit instances —
  another multiplexer.

The interconnect cost used here is the total number of *extra* mux inputs
``sum(max(0, width - 1))`` over all ports — zero for a datapath where
every port has a single dedicated source.  Like the register requirement,
this cost varies across the tied-optimal schedule set Q, so it plugs into
:func:`repro.binding.selection.select_schedule` as an alternative
selection objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.dfg.graph import NodeId
from repro.core.wrapping import WrappedSchedule
from repro.binding.lifetimes import LifetimeAnalyzer
from repro.binding.left_edge import bind_schedule


@dataclass(frozen=True)
class InterconnectReport:
    """Mux structure of one bound datapath."""

    port_sources: Dict[Tuple[str, int, int], FrozenSet[int]]  # (unit, inst, port) -> regs
    register_writers: Dict[int, FrozenSet[Tuple[str, int]]]   # reg -> unit instances
    cost: int

    @property
    def widest_mux(self) -> int:
        widths = [len(s) for s in self.port_sources.values()] + [
            len(s) for s in self.register_writers.values()
        ]
        return max(widths, default=0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"interconnect: cost {self.cost}, widest mux {self.widest_mux}, "
            f"{len(self.port_sources)} unit ports, "
            f"{len(self.register_writers)} registers written"
        )


def interconnect_report(wrapped: WrappedSchedule) -> InterconnectReport:
    """Analyze the mux structure implied by a wrapped schedule.

    Uses the schedule's recorded unit instances (greedy fallback when
    absent) and a left-edge register binding of the steady window.
    """
    sched = wrapped.schedule.normalized()
    graph = sched.graph
    model = sched.model
    binding = bind_schedule(sched, wrapped.retiming, wrapped.period)
    analyzer = LifetimeAnalyzer(sched, wrapped.retiming, wrapped.period)
    mid_iter = analyzer.depth + 2

    def reg_of(node: NodeId, iteration: int) -> int:
        return binding.assignment.get((node, iteration), -1)

    fallback: Dict[str, int] = {}
    instance: Dict[NodeId, int] = {}
    for v in graph.nodes:
        unit = model.unit_for_op(graph.op(v))
        k = sched.unit_index(v)
        if k is None:
            k = fallback.get(unit.name, 0)
            fallback[unit.name] = (k + 1) % unit.count
        instance[v] = k

    port_sources: Dict[Tuple[str, int, int], set] = {}
    register_writers: Dict[int, set] = {}
    for v in graph.nodes:
        unit = model.unit_for_op(graph.op(v))
        key_base = (unit.name, instance[v])
        for port, e in enumerate(graph.in_edges(v)):
            src_reg = reg_of(e.src, mid_iter - e.delay)
            if src_reg < 0:
                continue
            port_sources.setdefault((*key_base, port), set()).add(src_reg)
        out_reg = reg_of(v, mid_iter)
        if out_reg >= 0:
            register_writers.setdefault(out_reg, set()).add(key_base)

    cost = sum(max(0, len(s) - 1) for s in port_sources.values()) + sum(
        max(0, len(s) - 1) for s in register_writers.values()
    )
    return InterconnectReport(
        port_sources={k: frozenset(v) for k, v in port_sources.items()},
        register_writers={k: frozenset(v) for k, v in register_writers.items()},
        cost=cost,
    )


def interconnect_cost(wrapped: WrappedSchedule) -> int:
    """Selection-ready scalar cost (see ``select_schedule(cost=...)``)."""
    return interconnect_report(wrapped).cost
