"""The perf-regression gate: re-run pinned golden cells, compare envelopes.

``BENCH_flat.json`` and ``BENCH_engine.json`` pin the repo's performance
trajectory: each end-to-end entry records a (benchmark, config, heuristic,
backend) cell with its wall time and its deterministic outcome counters
(schedule length, rotations performed, and for some cells the engine's
grid counters).  :func:`run_perfcheck` re-runs those cells on the current
tree and fails when

* a *counter delta* appears — the deterministic outcome (length,
  rotations, pinned engine counters) no longer matches the envelope; or
* the *wall time* regresses past the tolerance band
  (``measured > baseline * (1 + tolerance)``).

``BENCH_incremental.json`` extends the envelope to the
MutableSchedulingSession repair path: each cell pins a single-edit script
on a golden cell and fails when the repaired schedule's length or
invalidation count drifts, the repair wall time regresses, or the
repair-vs-scratch speedup drops below :data:`MIN_REPAIR_SPEEDUP`.

Timing uses ``time.process_time`` with a min-of-N inner loop, the same
methodology the committed baselines were recorded with, so the comparison
is CPU time against CPU time.  ``rotsched gate`` runs the ``--smoke``
variant (flat cells only, generous ±50% tolerance) before every merge.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Engine counters a baseline entry may pin exactly (deterministic).
_PINNED_COUNTERS = ("view_derives", "grid_delta_rotations", "grid_reseeds")

#: Baseline files perfcheck knows how to read, with the backend their
#: end-to-end cells exercise and the extra_info key holding the timing.
BASELINE_SPECS: Tuple[Tuple[str, str, str], ...] = (
    ("BENCH_flat.json", "flat", "flat_seconds"),
    ("BENCH_engine.json", "views", "views_seconds"),
    ("BENCH_vector.json", "vector", "vector_seconds"),
)

#: Committed envelope for session repair vs from-scratch solve
#: (written by ``benchmarks/bench_incremental.py``).
INCREMENTAL_BASELINE = "BENCH_incremental.json"

#: Session repair must stay at least this many times faster than a
#: from-scratch solve on every pinned single-edit script.
MIN_REPAIR_SPEEDUP = 3.0

#: Committed vector-backend envelope, including the batched cohort cell
#: (written by ``benchmarks/bench_vector_kernels.py``).
VECTOR_BASELINE = "BENCH_vector.json"

#: The vector backend must stay at least this many times faster than the
#: flat backend on its single-solve headline cell (h2, elliptic @ 3A2M).
MIN_VECTOR_SPEEDUP = 3.0

#: ``solve_batch`` over the fuzz ``--smoke`` grid must stay at least this
#: many times faster than solving the same requests sequentially with
#: the flat backend.  Both speedup floors are divided by the run's
#: ``1 + tolerance`` before gating — the margin over the floor is small
#: enough that CI clock noise would otherwise flake the gate, and the
#: committed envelope already pins the honestly measured ratio.
MIN_BATCH_SPEEDUP = 5.0

#: Committed serve-daemon envelope (written by ``benchmarks/bench_serve.py``).
SERVE_BASELINE = "BENCH_serve.json"

#: The cached service must answer a repeated-graph workload at least this
#: many times faster than solving every request sequentially, uncached.
MIN_SERVE_SPEEDUP = 5.0

#: Committed design-space-explorer envelope (written by
#: ``benchmarks/bench_explore.py``).
EXPLORE_BASELINE = "BENCH_explore.json"

#: The feedback-guided explorer must reach the exhaustive sweep's exact
#: Pareto frontiers at least this many times faster on the headline grid.
MIN_EXPLORE_SPEEDUP = 3.0


@dataclass(frozen=True)
class GoldenCell:
    """One pinned cell of a committed benchmark envelope."""

    source: str
    bench: str
    config: str
    heuristic: str
    backend: str
    baseline_seconds: float
    length: int
    rotations: int
    pinned: Tuple[Tuple[str, int], ...] = ()

    def label(self) -> str:
        return f"{self.bench}@{self.config}/{self.heuristic}/{self.backend}"


@dataclass
class CellResult:
    """Outcome of re-running one golden cell."""

    cell: GoldenCell
    measured_seconds: float = 0.0
    length: Optional[int] = None
    rotations: Optional[int] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def ratio(self) -> float:
        base = self.cell.baseline_seconds
        return self.measured_seconds / base if base else float("inf")


@dataclass(frozen=True)
class IncrementalCell:
    """One pinned repair-vs-scratch cell of ``BENCH_incremental.json``."""

    source: str
    bench: str
    config: str
    heuristic: str
    script: str
    edits: Tuple[Any, ...]
    repair_seconds: float
    scratch_seconds: float
    speedup: float
    length: int
    invalidated: int

    def label(self) -> str:
        return f"{self.bench}@{self.config}/{self.heuristic}/{self.script}"


@dataclass
class IncrementalResult:
    """Outcome of re-running one pinned edit script through a session."""

    cell: IncrementalCell
    repair_seconds: float = 0.0
    scratch_seconds: float = 0.0
    length: Optional[int] = None
    invalidated: Optional[int] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def speedup(self) -> float:
        return self.scratch_seconds / self.repair_seconds if self.repair_seconds else float("inf")


@dataclass(frozen=True)
class VectorHeadlineCell:
    """The pinned single-solve vector-vs-flat acceptance cell."""

    source: str
    bench: str
    config: str
    heuristic: str
    vector_seconds: float
    flat_seconds: float
    speedup: float
    length: int
    rotations: int

    def label(self) -> str:
        return f"{self.bench}@{self.config}/{self.heuristic}/vector-vs-flat"


@dataclass
class VectorHeadlineResult:
    """Outcome of replaying the single-solve vector headline A/B."""

    cell: VectorHeadlineCell
    vector_seconds: float = 0.0
    flat_seconds: float = 0.0
    length: Optional[int] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def speedup(self) -> float:
        return self.flat_seconds / self.vector_seconds if self.vector_seconds else float("inf")


@dataclass(frozen=True)
class BatchCell:
    """The pinned batched-cohort acceptance cell (fuzz ``--smoke`` grid)."""

    source: str
    cohort: str
    heuristic: str
    requests: int
    unique_solves: int
    flat_seq_seconds: float
    batched_seconds: float
    speedup: float
    length_sum: int

    def label(self) -> str:
        return f"batch:{self.cohort}/{self.heuristic}"


@dataclass
class BatchResult:
    """Outcome of replaying the batched cohort against sequential flat."""

    cell: BatchCell
    flat_seq_seconds: float = 0.0
    batched_seconds: float = 0.0
    requests: Optional[int] = None
    unique_solves: Optional[int] = None
    length_sum: Optional[int] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def speedup(self) -> float:
        return self.flat_seq_seconds / self.batched_seconds if self.batched_seconds else float("inf")


@dataclass(frozen=True)
class ServeCell:
    """The pinned serve-vs-uncached acceptance cell of ``BENCH_serve.json``."""

    source: str
    workload: str
    requests: int
    distinct: int
    workload_repeats: int
    serve_seconds: float
    uncached_seconds: float
    speedup: float
    hit_rate: float

    def label(self) -> str:
        return f"serve:{self.workload}x{self.workload_repeats}"


@dataclass
class ServeResult:
    """Outcome of replaying the serve workload against uncached solving."""

    cell: ServeCell
    serve_seconds: float = 0.0
    uncached_seconds: float = 0.0
    requests: Optional[int] = None
    distinct: Optional[int] = None
    hit_rate: float = 0.0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def speedup(self) -> float:
        return self.uncached_seconds / self.serve_seconds if self.serve_seconds else float("inf")


@dataclass(frozen=True)
class ExploreCell:
    """The pinned explore-vs-exhaustive acceptance cell of
    ``BENCH_explore.json``.

    ``cells`` holds the headline grid itself (one canonical JSON string
    per :class:`~repro.explore.CellSpec`) so perfcheck replays exactly
    the committed design space; ``frontiers`` pins the per-benchmark
    Pareto point lists both passes must reproduce — the equality oracle.
    """

    source: str
    grid: str
    cells: Tuple[str, ...]
    explore_seconds: float
    exhaustive_seconds: float
    speedup: float
    counters: Tuple[Tuple[str, int], ...]
    frontiers: str

    def label(self) -> str:
        return f"explore:{self.grid}[{len(self.cells)} cells]"


@dataclass
class ExploreResult:
    """Outcome of replaying the explorer against the exhaustive sweep."""

    cell: ExploreCell
    explore_seconds: float = 0.0
    exhaustive_seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def speedup(self) -> float:
        return (
            self.exhaustive_seconds / self.explore_seconds
            if self.explore_seconds
            else float("inf")
        )


@dataclass
class PerfReport:
    """Aggregate perfcheck outcome."""

    results: List[CellResult] = field(default_factory=list)
    tolerance: float = 0.5
    repeats: int = 3
    elapsed: float = 0.0
    skipped_baselines: List[str] = field(default_factory=list)
    incremental: List[IncrementalResult] = field(default_factory=list)
    vector: List[Any] = field(default_factory=list)
    serve: List[ServeResult] = field(default_factory=list)
    explore: List[ExploreResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            all(r.ok for r in self.results)
            and all(r.ok for r in self.incremental)
            and all(r.ok for r in self.vector)
            and all(r.ok for r in self.serve)
            and all(r.ok for r in self.explore)
            and bool(self.results)
        )

    def summary(self) -> str:
        bad = sum(1 for r in self.results if not r.ok)
        head = (
            f"perfcheck: {len(self.results) - bad}/{len(self.results)} golden "
            f"cells within envelope (tolerance +{self.tolerance:.0%}, "
            f"min-of-{self.repeats}) in {self.elapsed:.1f}s"
        )
        if self.incremental:
            ibad = sum(1 for r in self.incremental if not r.ok)
            head += (
                f"; incremental {len(self.incremental) - ibad}/"
                f"{len(self.incremental)} repair cells ok"
            )
        if self.vector:
            vbad = sum(1 for r in self.vector if not r.ok)
            head += (
                f"; vector {len(self.vector) - vbad}/"
                f"{len(self.vector)} speedup cells ok"
            )
        if self.serve:
            sbad = sum(1 for r in self.serve if not r.ok)
            head += (
                f"; serve {len(self.serve) - sbad}/{len(self.serve)} "
                f"cache cells ok"
            )
        if self.explore:
            ebad = sum(1 for r in self.explore if not r.ok)
            head += (
                f"; explore {len(self.explore) - ebad}/{len(self.explore)} "
                f"grid cells ok"
            )
        if self.skipped_baselines:
            head += f"; missing baselines skipped: {', '.join(self.skipped_baselines)}"
        if bad:
            head += f"; {bad} REGRESSED cell(s)"
        if not self.results:
            head += "; NO CELLS RUN"
        return head

    def render(self) -> str:
        lines = [self.summary()]
        for r in self.results:
            status = "ok" if r.ok else "FAIL"
            lines.append(
                f"  {status:<4} {r.cell.label():<28} "
                f"baseline {r.cell.baseline_seconds:.4f}s  "
                f"measured {r.measured_seconds:.4f}s  (x{r.ratio:.2f})"
            )
            for p in r.problems:
                lines.append(f"       - {p}")
        for r in self.incremental:
            status = "ok" if r.ok else "FAIL"
            lines.append(
                f"  {status:<4} {r.cell.label():<28} "
                f"repair {r.repair_seconds:.4f}s  "
                f"scratch {r.scratch_seconds:.4f}s  ({r.speedup:.1f}x)"
            )
            for p in r.problems:
                lines.append(f"       - {p}")
        for r in self.vector:
            status = "ok" if r.ok else "FAIL"
            if isinstance(r, BatchResult):
                lines.append(
                    f"  {status:<4} {r.cell.label():<28} "
                    f"batched {r.batched_seconds:.4f}s  "
                    f"flat-seq {r.flat_seq_seconds:.4f}s  ({r.speedup:.1f}x)"
                )
            else:
                lines.append(
                    f"  {status:<4} {r.cell.label():<28} "
                    f"vector {r.vector_seconds:.4f}s  "
                    f"flat {r.flat_seconds:.4f}s  ({r.speedup:.1f}x)"
                )
            for p in r.problems:
                lines.append(f"       - {p}")
        for r in self.serve:
            status = "ok" if r.ok else "FAIL"
            lines.append(
                f"  {status:<4} {r.cell.label():<28} "
                f"served {r.serve_seconds:.4f}s  "
                f"uncached {r.uncached_seconds:.4f}s  ({r.speedup:.1f}x, "
                f"hit rate {r.hit_rate:.0%})"
            )
            for p in r.problems:
                lines.append(f"       - {p}")
        for r in self.explore:
            status = "ok" if r.ok else "FAIL"
            lines.append(
                f"  {status:<4} {r.cell.label():<28} "
                f"explored {r.explore_seconds:.4f}s  "
                f"exhaustive {r.exhaustive_seconds:.4f}s  ({r.speedup:.1f}x)"
            )
            for p in r.problems:
                lines.append(f"       - {p}")
        return "\n".join(lines)


def load_golden_cells(
    path: str, backend: str, seconds_key: str
) -> List[GoldenCell]:
    """Extract pinned cells from one committed pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    cells: List[GoldenCell] = []
    source = os.path.basename(path)
    for entry in data.get("benchmarks", ()):
        info = entry.get("extra_info") or {}
        if not {"bench", "config", "heuristic", seconds_key} <= info.keys():
            continue
        pinned = tuple(
            (k, int(info[k])) for k in _PINNED_COUNTERS if k in info
        )
        cells.append(
            GoldenCell(
                source=source,
                bench=info["bench"],
                config=info["config"],
                heuristic=info["heuristic"],
                backend=backend,
                baseline_seconds=float(info[seconds_key]),
                length=int(info["length"]),
                rotations=int(info["rotations"]),
                pinned=pinned,
            )
        )
    if not cells:
        raise ReproError(f"no golden cells with '{seconds_key}' found in {path}")
    return cells


def load_incremental_cells(path: str) -> List[IncrementalCell]:
    """Extract pinned repair cells from ``BENCH_incremental.json``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    cells: List[IncrementalCell] = []
    source = os.path.basename(path)
    needed = {"bench", "config", "heuristic", "script", "edits",
              "repair_seconds", "scratch_seconds", "length", "invalidated"}
    for entry in data.get("benchmarks", ()):
        info = entry.get("extra_info") or {}
        if not needed <= info.keys():
            continue
        cells.append(
            IncrementalCell(
                source=source,
                bench=info["bench"],
                config=info["config"],
                heuristic=info["heuristic"],
                script=info["script"],
                edits=tuple(info["edits"]),
                repair_seconds=float(info["repair_seconds"]),
                scratch_seconds=float(info["scratch_seconds"]),
                speedup=float(info.get("speedup", 0.0)),
                length=int(info["length"]),
                invalidated=int(info["invalidated"]),
            )
        )
    if not cells:
        raise ReproError(f"no incremental repair cells found in {path}")
    return cells


def load_vector_cells(
    path: str,
) -> Tuple[Optional[VectorHeadlineCell], Optional[BatchCell]]:
    """Extract the two acceptance cells from ``BENCH_vector.json``.

    The single-solve cell is the entry marked ``headline: single_solve``
    (h2 on elliptic @ 3A2M), the cohort cell the ``batched_smoke`` entry;
    the remaining end-to-end entries are ordinary golden cells and flow
    through :func:`load_golden_cells` via :data:`BASELINE_SPECS`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    source = os.path.basename(path)
    headline: Optional[VectorHeadlineCell] = None
    batch: Optional[BatchCell] = None
    for entry in data.get("benchmarks", ()):
        info = entry.get("extra_info") or {}
        kind = info.get("headline")
        if kind == "single_solve":
            headline = VectorHeadlineCell(
                source=source,
                bench=info.get("bench", "elliptic"),
                config=info.get("config", "3A2M"),
                heuristic=info.get("heuristic", "h2"),
                vector_seconds=float(info["vector_seconds"]),
                flat_seconds=float(info["flat_seconds"]),
                speedup=float(info["speedup"]),
                length=int(info["length"]),
                rotations=int(info["rotations"]),
            )
        elif kind == "batched_smoke":
            batch = BatchCell(
                source=source,
                cohort=info["cohort"],
                heuristic=info["heuristic"],
                requests=int(info["requests"]),
                unique_solves=int(info["unique_solves"]),
                flat_seq_seconds=float(info["flat_seq_seconds"]),
                batched_seconds=float(info["batched_seconds"]),
                speedup=float(info["speedup"]),
                length_sum=int(info["length_sum"]),
            )
    if headline is None and batch is None:
        raise ReproError(f"no vector acceptance cells found in {path}")
    return headline, batch


def load_serve_cells(path: str) -> List[ServeCell]:
    """Extract pinned serve cells from ``BENCH_serve.json``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    cells: List[ServeCell] = []
    source = os.path.basename(path)
    needed = {"workload", "requests", "distinct", "workload_repeats",
              "serve_seconds", "uncached_seconds", "speedup", "hit_rate"}
    for entry in data.get("benchmarks", ()):
        info = entry.get("extra_info") or {}
        if info.get("headline") != "serve_cached" or not needed <= info.keys():
            continue
        cells.append(
            ServeCell(
                source=source,
                workload=info["workload"],
                requests=int(info["requests"]),
                distinct=int(info["distinct"]),
                workload_repeats=int(info["workload_repeats"]),
                serve_seconds=float(info["serve_seconds"]),
                uncached_seconds=float(info["uncached_seconds"]),
                speedup=float(info["speedup"]),
                hit_rate=float(info["hit_rate"]),
            )
        )
    if not cells:
        raise ReproError(f"no serve acceptance cells found in {path}")
    return cells


def load_explore_cells(path: str) -> List[ExploreCell]:
    """Extract the pinned headline grid cell from ``BENCH_explore.json``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    cells: List[ExploreCell] = []
    source = os.path.basename(path)
    needed = {"grid", "cells", "explore_seconds", "exhaustive_seconds",
              "speedup", "counters", "frontiers"}
    for entry in data.get("benchmarks", ()):
        info = entry.get("extra_info") or {}
        if info.get("headline") != "explore_grid" or not needed <= info.keys():
            continue
        cells.append(
            ExploreCell(
                source=source,
                grid=info["grid"],
                cells=tuple(
                    json.dumps(c, sort_keys=True) for c in info["cells"]
                ),
                explore_seconds=float(info["explore_seconds"]),
                exhaustive_seconds=float(info["exhaustive_seconds"]),
                speedup=float(info["speedup"]),
                counters=tuple(
                    (k, int(v)) for k, v in sorted(info["counters"].items())
                ),
                frontiers=json.dumps(info["frontiers"], sort_keys=True),
            )
        )
    if not cells:
        raise ReproError(f"no explore acceptance cells found in {path}")
    return cells


def measure_explore_grid(specs, repeats: int):
    """Run the explorer and the exhaustive sweep over one grid of cells.

    Returns ``(explore_seconds, exhaustive_seconds, explore_report,
    exhaustive_report)`` — min-of-N *wall clock* on both sides (the
    explorer is an orchestration layer: warm-chain hops, cohort stacking
    and pool plumbing are real elapsed time, not just CPU).  Every repeat
    starts from cleared bound/graph caches and a fresh solver so later
    runs cannot ride earlier runs' memos.  Shared by
    ``benchmarks/bench_explore.py`` (which commits the envelope) and
    :func:`run_perfcheck` (which replays it).
    """
    from repro.explore import explore
    from repro.explore.bounds import clear_caches

    explore_best = exhaustive_best = float("inf")
    explore_report = exhaustive_report = None
    for _ in range(max(repeats, 1)):
        clear_caches()
        rep = explore(specs, mode="exhaustive", workers=1)
        if rep.elapsed < exhaustive_best:
            exhaustive_best = rep.elapsed
            exhaustive_report = rep
        clear_caches()
        rep = explore(specs, mode="explore", workers=1)
        if rep.elapsed < explore_best:
            explore_best = rep.elapsed
            explore_report = rep
    return explore_best, exhaustive_best, explore_report, exhaustive_report


def _measure_explore_cell(
    cell: ExploreCell, repeats: int, tolerance: float
) -> ExploreResult:
    """Replay the headline grid and re-run the frontier-equality oracle."""
    from repro.explore import CellSpec

    specs = [CellSpec.from_json(json.loads(raw)) for raw in cell.cells]
    explore_s, exhaustive_s, erep, xrep = measure_explore_grid(specs, repeats)
    er = ExploreResult(
        cell,
        explore_seconds=explore_s,
        exhaustive_seconds=exhaustive_s,
        counters=dict(erep.counters),
    )
    pinned = dict(cell.counters)
    for name in sorted(pinned):
        measured = erep.counters.get(name, 0)
        if measured != pinned[name]:
            er.problems.append(
                f"counter delta: {name} {measured} != pinned {pinned[name]}"
            )
    explored = {
        bench: [p.as_json() for p in erep.frontier_points(bench)]
        for bench in sorted(erep.frontiers)
    }
    exhausted = {
        bench: [p.as_json() for p in xrep.frontier_points(bench)]
        for bench in sorted(xrep.frontiers)
    }
    if explored != exhausted:
        er.problems.append(
            "oracle: explored frontier != exhaustive frontier "
            f"(benches {sorted(set(explored) ^ set(exhausted)) or 'same, points differ'})"
        )
    if json.dumps(explored, sort_keys=True) != cell.frontiers:
        er.problems.append("counter delta: frontiers drifted from the pinned point lists")
    required = MIN_EXPLORE_SPEEDUP / (1.0 + tolerance)
    if er.speedup < required:
        er.problems.append(
            f"explore speedup {er.speedup:.2f}x below required "
            f"{MIN_EXPLORE_SPEEDUP:.1f}x/{1.0 + tolerance:.2f} = {required:.2f}x "
            f"(explored {explore_s:.4f}s, exhaustive {exhaustive_s:.4f}s)"
        )
    limit = cell.explore_seconds * (1.0 + tolerance)
    if explore_s > limit:
        er.problems.append(
            f"wall-time regression: explored {explore_s:.4f}s > "
            f"{cell.explore_seconds:.4f}s * {1.0 + tolerance:.2f} = {limit:.4f}s"
        )
    return er


def measure_serve_workload(workload_repeats: int, repeats: int):
    """Serve a repeated-graph workload vs solving it sequentially, uncached.

    Returns ``(serve_seconds, uncached_seconds, envelopes, fresh_by_fp,
    distinct)`` — min-of-N ``process_time`` on both sides, same
    methodology as every other golden cell.  The served side runs an
    in-process (inline-pool) service and submits the workload as one
    sequential request stream, so the cache-hit pattern is deterministic:
    each distinct cell misses once and hits thereafter.  The uncached
    side re-parses and re-solves every request — what answering without
    the daemon would cost.  Shared by ``benchmarks/bench_serve.py`` (which
    commits the envelope) and :func:`run_perfcheck` (which replays it).
    """
    import asyncio

    from repro.serve import build_service, demo_workload
    from repro.serve.protocol import (
        canonical_request,
        fingerprint,
        parse_request,
        solve_canonical,
    )

    workload = demo_workload(repeats=workload_repeats)

    uncached_best = float("inf")
    fresh_by_fp: Dict[str, Any] = {}
    for _ in range(max(repeats, 1)):
        t0 = time.process_time()
        solved = {}
        for payload in workload:
            canonical = canonical_request(parse_request(payload))
            solved[fingerprint(canonical)] = solve_canonical(canonical)
        dt = time.process_time() - t0
        if dt < uncached_best:
            uncached_best = dt
            fresh_by_fp = solved

    async def drive(service):
        return [await service.solve(p) for p in workload]

    serve_best = float("inf")
    envelopes: List[Dict[str, Any]] = []
    for _ in range(max(repeats, 1)):
        service = build_service(inline=True)
        try:
            t0 = time.process_time()
            envs = asyncio.run(drive(service))
            dt = time.process_time() - t0
        finally:
            service.close()
        if dt < serve_best:
            serve_best = dt
            envelopes = envs
    return serve_best, uncached_best, envelopes, fresh_by_fp, len(fresh_by_fp)


def _measure_serve_cell(
    cell: ServeCell, repeats: int, tolerance: float
) -> ServeResult:
    """Replay the serve acceptance cell and re-run the cached==fresh oracle."""
    from repro.serve.protocol import schedule_bits

    serve_s, uncached_s, envelopes, fresh_by_fp, distinct = measure_serve_workload(
        cell.workload_repeats, repeats
    )
    hits = sum(1 for e in envelopes if e.get("cache") in ("memory", "disk", "coalesced"))
    sr = ServeResult(
        cell,
        serve_seconds=serve_s,
        uncached_seconds=uncached_s,
        requests=len(envelopes),
        distinct=distinct,
        hit_rate=hits / len(envelopes) if envelopes else 0.0,
    )
    for name, measured, pinned in (
        ("requests", sr.requests, cell.requests),
        ("distinct", sr.distinct, cell.distinct),
    ):
        if measured != pinned:
            sr.problems.append(f"counter delta: {name} {measured} != pinned {pinned}")
    if abs(sr.hit_rate - cell.hit_rate) > 1e-9:
        sr.problems.append(
            f"counter delta: hit rate {sr.hit_rate:.4f} != pinned {cell.hit_rate:.4f}"
        )
    for envelope in envelopes:
        if "error" in envelope:
            sr.problems.append(f"error envelope: {envelope['error']}")
            continue
        fresh = fresh_by_fp.get(envelope["fingerprint"])
        if fresh is None:
            sr.problems.append(
                f"fingerprint drift: served {envelope['fingerprint'][:12]} "
                f"never produced by the uncached pass"
            )
        elif schedule_bits(envelope["result"]) != schedule_bits(fresh):
            sr.problems.append(
                f"oracle: cached != fresh for {envelope['fingerprint'][:12]} "
                f"(level {envelope.get('cache')!r})"
            )
    required = MIN_SERVE_SPEEDUP / (1.0 + tolerance)
    if sr.speedup < required:
        sr.problems.append(
            f"serve speedup {sr.speedup:.2f}x below required "
            f"{MIN_SERVE_SPEEDUP:.1f}x/{1.0 + tolerance:.2f} = {required:.2f}x "
            f"(served {serve_s:.4f}s, uncached {uncached_s:.4f}s)"
        )
    limit = cell.serve_seconds * (1.0 + tolerance)
    if serve_s > limit:
        sr.problems.append(
            f"wall-time regression: served {serve_s:.4f}s > "
            f"{cell.serve_seconds:.4f}s * {1.0 + tolerance:.2f} = {limit:.4f}s"
        )
    return sr


def _measure_vector_headline(
    cell: VectorHeadlineCell, repeats: int, tolerance: float
) -> VectorHeadlineResult:
    """Replay the single-solve A/B: vector vs flat, interleaved min-of-N."""
    from repro.core.scheduler import rotation_schedule
    from repro.qa.runner import config_model
    from repro.suite.registry import get_benchmark

    graph = get_benchmark(cell.bench)
    model = config_model(cell.config)
    flat_best = vector_best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        t0 = time.process_time()
        rotation_schedule(graph, model, heuristic=cell.heuristic, backend="flat")
        flat_best = min(flat_best, time.process_time() - t0)
        t0 = time.process_time()
        out = rotation_schedule(
            graph, model, heuristic=cell.heuristic, backend="vector"
        )
        dt = time.process_time() - t0
        if dt < vector_best:
            vector_best = dt
            result = out
    vr = VectorHeadlineResult(
        cell,
        vector_seconds=vector_best,
        flat_seconds=flat_best,
        length=result.length,
    )
    if result.length != cell.length:
        vr.problems.append(
            f"counter delta: length {result.length} != pinned {cell.length}"
        )
    if result.rotations_performed != cell.rotations:
        vr.problems.append(
            f"counter delta: rotations {result.rotations_performed} "
            f"!= pinned {cell.rotations}"
        )
    required = MIN_VECTOR_SPEEDUP / (1.0 + tolerance)
    if vr.speedup < required:
        vr.problems.append(
            f"vector speedup {vr.speedup:.2f}x below required "
            f"{MIN_VECTOR_SPEEDUP:.1f}x/{1.0 + tolerance:.2f} = {required:.2f}x "
            f"(vector {vector_best:.4f}s, flat {flat_best:.4f}s)"
        )
    limit = cell.vector_seconds * (1.0 + tolerance)
    if vector_best > limit:
        vr.problems.append(
            f"wall-time regression: vector {vector_best:.4f}s > "
            f"{cell.vector_seconds:.4f}s * {1.0 + tolerance:.2f} = {limit:.4f}s"
        )
    return vr


def _measure_batch_cell(
    cell: BatchCell, repeats: int, tolerance: float
) -> BatchResult:
    """Replay the batched cohort: ``solve_batch`` per config group vs the
    same requests solved sequentially with the flat backend, interleaved
    min-of-N pairs (the committed protocol)."""
    from repro.core.scheduler import rotation_schedule
    from repro.core.vector.batch import solve_batch
    from repro.qa import smoke_cases
    from repro.qa.runner import batch_groups, config_model

    groups = [
        (cfg, config_model(cfg), [g for _, g in pairs])
        for cfg, pairs in batch_groups(smoke_cases())
    ]
    flat_best = batched_best = float("inf")
    outcome = None
    for _ in range(max(repeats, 1)):
        t0 = time.process_time()
        for _cfg, model, gs in groups:
            for g in gs:
                rotation_schedule(g, model, heuristic=cell.heuristic, backend="flat")
        flat_best = min(flat_best, time.process_time() - t0)
        t0 = time.process_time()
        results = []
        unique = 0
        for _cfg, model, gs in groups:
            stats: Dict[str, Any] = {}
            results.extend(
                solve_batch(gs, model, heuristic=cell.heuristic, stats=stats)
            )
            unique += stats["unique"]
        dt = time.process_time() - t0
        if dt < batched_best:
            batched_best = dt
            outcome = (len(results), unique, sum(r.length for r in results))
    br = BatchResult(
        cell,
        flat_seq_seconds=flat_best,
        batched_seconds=batched_best,
        requests=outcome[0],
        unique_solves=outcome[1],
        length_sum=outcome[2],
    )
    for name, measured, pinned in (
        ("requests", br.requests, cell.requests),
        ("unique_solves", br.unique_solves, cell.unique_solves),
        ("length_sum", br.length_sum, cell.length_sum),
    ):
        if measured != pinned:
            br.problems.append(
                f"counter delta: {name} {measured} != pinned {pinned}"
            )
    required = MIN_BATCH_SPEEDUP / (1.0 + tolerance)
    if br.speedup < required:
        br.problems.append(
            f"batched speedup {br.speedup:.2f}x below required "
            f"{MIN_BATCH_SPEEDUP:.1f}x/{1.0 + tolerance:.2f} = {required:.2f}x "
            f"(batched {batched_best:.4f}s, flat-seq {flat_best:.4f}s)"
        )
    limit = cell.batched_seconds * (1.0 + tolerance)
    if batched_best > limit:
        br.problems.append(
            f"wall-time regression: batched {batched_best:.4f}s > "
            f"{cell.batched_seconds:.4f}s * {1.0 + tolerance:.2f} = {limit:.4f}s"
        )
    return br


def _measure_incremental_cell(
    cell: IncrementalCell, repeats: int, tolerance: float
) -> IncrementalResult:
    """Replay one pinned edit script: repaired resolve vs scratch solve.

    Each repeat opens a fresh session (flat backend, matching the
    committed baseline), solves untimed, then times only the repairing
    ``resolve()`` after the script is applied; the from-scratch side times
    ``rotation_schedule`` on the edited graph.  Both are min-of-N
    ``process_time``, the same methodology as the golden cells.
    """
    from repro.core.scheduler import rotation_schedule
    from repro.core.session import open_session
    from repro.qa.runner import config_model
    from repro.suite.registry import get_benchmark

    graph = get_benchmark(cell.bench)
    model = config_model(cell.config)
    repair_best = float("inf")
    result = session = None
    for _ in range(max(repeats, 1)):
        session = open_session(
            graph, model, heuristic=cell.heuristic, backend="flat"
        )
        session.resolve()
        for op in cell.edits:
            session.apply_edit(op)
        t0 = time.process_time()
        out = session.resolve()
        dt = time.process_time() - t0
        if dt < repair_best:
            repair_best = dt
            result = out
    scratch_best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.process_time()
        rotation_schedule(
            session.graph, session.model, heuristic=cell.heuristic, backend="flat"
        )
        scratch_best = min(scratch_best, time.process_time() - t0)
    ir = IncrementalResult(
        cell,
        repair_seconds=repair_best,
        scratch_seconds=scratch_best,
        length=result.length,
        invalidated=session.metrics["nodes_invalidated"],
    )
    if result.length != cell.length:
        ir.problems.append(
            f"counter delta: repaired length {result.length} != pinned {cell.length}"
        )
    if ir.invalidated != cell.invalidated:
        ir.problems.append(
            f"counter delta: invalidated {ir.invalidated} != pinned {cell.invalidated}"
        )
    if ir.speedup < MIN_REPAIR_SPEEDUP:
        ir.problems.append(
            f"repair speedup {ir.speedup:.2f}x below required "
            f"{MIN_REPAIR_SPEEDUP:.1f}x (repair {repair_best:.4f}s, "
            f"scratch {scratch_best:.4f}s)"
        )
    limit = cell.repair_seconds * (1.0 + tolerance)
    if repair_best > limit:
        ir.problems.append(
            f"wall-time regression: repair {repair_best:.4f}s > "
            f"{cell.repair_seconds:.4f}s * {1.0 + tolerance:.2f} = {limit:.4f}s"
        )
    return ir


def _measure_cell(cell: GoldenCell, repeats: int) -> CellResult:
    from repro.core.scheduler import rotation_schedule
    from repro.qa.runner import config_model
    from repro.suite.registry import get_benchmark

    graph = get_benchmark(cell.bench)
    model = config_model(cell.config)
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        t0 = time.process_time()
        out = rotation_schedule(
            graph, model, heuristic=cell.heuristic, backend=cell.backend
        )
        dt = time.process_time() - t0
        if dt < best:
            best = dt
            result = out
    cr = CellResult(
        cell,
        measured_seconds=best,
        length=result.length,
        rotations=result.rotations_performed,
    )
    if result.length != cell.length:
        cr.problems.append(
            f"counter delta: length {result.length} != pinned {cell.length}"
        )
    if result.rotations_performed != cell.rotations:
        cr.problems.append(
            f"counter delta: rotations {result.rotations_performed} "
            f"!= pinned {cell.rotations}"
        )
    stats = result.engine_stats or {}
    for name, pinned_value in cell.pinned:
        if stats.get(name) != pinned_value:
            cr.problems.append(
                f"counter delta: {name} {stats.get(name)} != pinned {pinned_value}"
            )
    return cr


def run_perfcheck(
    root: str = ".",
    baselines: Sequence[Tuple[str, str, str]] = BASELINE_SPECS,
    tolerance: float = 0.5,
    repeats: int = 3,
    smoke: bool = False,
    incremental_baseline: Optional[str] = INCREMENTAL_BASELINE,
    vector_baseline: Optional[str] = VECTOR_BASELINE,
    serve_baseline: Optional[str] = SERVE_BASELINE,
    explore_baseline: Optional[str] = EXPLORE_BASELINE,
) -> PerfReport:
    """Re-run every pinned golden cell and compare against its envelope.

    Args:
        root: directory holding the committed ``BENCH_*.json`` files.
        baselines: ``(filename, backend, seconds_key)`` triples to read.
        tolerance: allowed wall-time slack as a fraction of the baseline
            (0.5 == fail past +50%).
        repeats: min-of-N timing runs per cell.
        smoke: the pre-merge tier — flat and vector cells only,
            ``min(repeats, 2)`` timing runs, and tolerance floored at
            ±50% so CI noise does not flake the gate.
        incremental_baseline: filename of the committed session-repair
            envelope (``None`` disables the incremental tier).  Repair
            cells gate the ``MIN_REPAIR_SPEEDUP`` floor on top of the
            usual counter pins and wall tolerance.
        vector_baseline: filename of the committed vector-backend
            envelope (``None`` disables the vector tier).  Its headline
            cells gate the ``MIN_VECTOR_SPEEDUP`` single-solve floor and
            the ``MIN_BATCH_SPEEDUP`` cohort floor; all vector cells are
            skipped (not failed) when numpy is unavailable.
        serve_baseline: filename of the committed serve-daemon envelope
            (``None`` disables the serve tier).  Its cells gate the
            ``MIN_SERVE_SPEEDUP`` cached-vs-uncached floor, pin the
            deterministic hit rate, and re-run the cached==fresh
            differential oracle on every served envelope.
        explore_baseline: filename of the committed design-space-explorer
            envelope (``None`` disables the explore tier).  Its headline
            grid gates the ``MIN_EXPLORE_SPEEDUP`` explored-vs-exhaustive
            wall-time floor with per-benchmark frontier equality as the
            oracle and the exploration counters pinned exactly.  The
            tier replays the full committed grid, so it is skipped on
            ``--smoke`` (``rotsched gate`` runs its own small explore
            smoke instead) and skipped (not failed) without numpy — the
            pinned counters assume the vector backend's cohort stacking.
    """
    from repro.core.vector import have_numpy

    t0 = time.perf_counter()
    if smoke:
        baselines = [spec for spec in baselines if spec[1] in ("flat", "vector")]
        repeats = min(repeats, 2)
        tolerance = max(tolerance, 0.5)
    report = PerfReport(tolerance=tolerance, repeats=repeats)
    numpy_ok = have_numpy()
    for filename, backend, seconds_key in baselines:
        path = os.path.join(root, filename)
        if not os.path.exists(path):
            report.skipped_baselines.append(filename)
            continue
        if backend == "vector" and not numpy_ok:
            report.skipped_baselines.append(f"{filename} (numpy unavailable)")
            continue
        for cell in load_golden_cells(path, backend, seconds_key):
            cr = _measure_cell(cell, repeats)
            limit = cell.baseline_seconds * (1.0 + tolerance)
            if cr.measured_seconds > limit:
                cr.problems.append(
                    f"wall-time regression: {cr.measured_seconds:.4f}s > "
                    f"{cell.baseline_seconds:.4f}s * {1.0 + tolerance:.2f} "
                    f"= {limit:.4f}s"
                )
            report.results.append(cr)
    if incremental_baseline is not None:
        path = os.path.join(root, incremental_baseline)
        if not os.path.exists(path):
            report.skipped_baselines.append(incremental_baseline)
        else:
            for icell in load_incremental_cells(path):
                report.incremental.append(
                    _measure_incremental_cell(icell, repeats, tolerance)
                )
    if vector_baseline is not None:
        path = os.path.join(root, vector_baseline)
        if not os.path.exists(path):
            if vector_baseline not in report.skipped_baselines:
                report.skipped_baselines.append(vector_baseline)
        elif not numpy_ok:
            skip = f"{vector_baseline} (numpy unavailable)"
            if skip not in report.skipped_baselines:
                report.skipped_baselines.append(skip)
        else:
            headline, batch = load_vector_cells(path)
            if headline is not None:
                report.vector.append(
                    _measure_vector_headline(headline, repeats, tolerance)
                )
            if batch is not None:
                report.vector.append(_measure_batch_cell(batch, repeats, tolerance))
    if serve_baseline is not None:
        path = os.path.join(root, serve_baseline)
        if not os.path.exists(path):
            report.skipped_baselines.append(serve_baseline)
        else:
            for scell in load_serve_cells(path):
                report.serve.append(_measure_serve_cell(scell, repeats, tolerance))
    if explore_baseline is not None and not smoke:
        path = os.path.join(root, explore_baseline)
        if not os.path.exists(path):
            report.skipped_baselines.append(explore_baseline)
        elif not numpy_ok:
            report.skipped_baselines.append(f"{explore_baseline} (numpy unavailable)")
        else:
            for ecell in load_explore_cells(path):
                report.explore.append(
                    _measure_explore_cell(ecell, repeats, tolerance)
                )
    report.elapsed = time.perf_counter() - t0
    return report
