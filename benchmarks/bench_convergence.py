"""Regenerates the **Section 5 convergence study** with full trajectories:
best schedule length after every rotation, per phase size and per
heuristic, rendered as an SVG step chart in the benchmark record.
"""

import pytest

from repro.report.convergence import (
    convergence_svg,
    heuristic_sweep,
    phase_size_sweep,
)
from repro.suite import get_benchmark

from conftest import model_for, record, run_once


def test_convergence_by_phase_size(benchmark):
    graph = get_benchmark("elliptic")
    model = model_for("3A2M")
    curves = run_once(
        benchmark, phase_size_sweep, graph, model, sizes=[1, 2, 4, 8], beta=40
    )
    record(
        benchmark,
        finals={c.label: c.final for c in curves},
        rotations_to_16={c.label: c.rotations_to(16) for c in curves},
        svg_chars=len(convergence_svg(curves, title="elliptic 3A2M")),
    )
    assert any(c.final == 16 for c in curves)
    # the paper's trend: some larger size converges no slower than size 1
    by_label = {c.label: c.rotations_to(16) for c in curves}
    converged = {k: v for k, v in by_label.items() if v is not None}
    if "size 1" in converged:
        assert min(converged.values()) <= converged["size 1"]


def test_convergence_h1_vs_h2(benchmark):
    graph = get_benchmark("diffeq")
    model = model_for("1A1Mp")
    curves = run_once(benchmark, heuristic_sweep, graph, model, beta=16)
    record(benchmark, finals={c.label: c.final for c in curves})
    assert all(c.final == 6 for c in curves)
