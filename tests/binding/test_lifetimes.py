"""Unit tests for value lifetime analysis."""

import pytest

from repro.dfg import DFG, Retiming
from repro.schedule import ResourceModel, Schedule
from repro.core import rotation_schedule
from repro.binding import LifetimeAnalyzer, register_requirement
from repro.suite import diffeq
from repro.errors import SchedulingError


@pytest.fixture
def two_node():
    """p -> c with one delay: the value lives one full period."""
    g = DFG("ln")
    g.add_node("p", "add")
    g.add_node("c", "add")
    g.add_edge("p", "c", 1)
    g.add_edge("c", "p", 1)
    return g


class TestLifetimes:
    def test_cross_iteration_lifetime(self, two_node):
        model = ResourceModel.adders_mults(2, 1)
        sched = Schedule(two_node, model, {"p": 0, "c": 1})
        an = LifetimeAnalyzer(sched, Retiming.zero())
        lt = an.lifetime("p", 3, horizon=10)
        # produced at finish of iteration 3, consumed by c at iteration 4
        assert lt.birth == 3 * 2 + 1
        assert lt.death == 4 * 2 + 1
        assert lt.span == 2

    def test_sink_value_zero_span(self, two_node):
        two_node.add_node("sink", "add")
        two_node.add_edge("p", "sink", 0)
        model = ResourceModel.adders_mults(2, 1)
        sched = Schedule(two_node, model, {"p": 0, "c": 1, "sink": 1})
        an = LifetimeAnalyzer(sched, Retiming.zero())
        lt = an.lifetime("sink", 2, horizon=10)
        assert lt.span == 0

    def test_requirement_profile_periodicity(self, two_node):
        model = ResourceModel.adders_mults(2, 1)
        sched = Schedule(two_node, model, {"p": 0, "c": 1})
        report = LifetimeAnalyzer(sched, Retiming.zero()).analyze()
        assert report.period == 2
        assert len(report.profile) == 2
        assert report.requirement == max(report.profile)

    def test_diffeq_requirement_reasonable(self):
        """The pipelined diffeq loop needs at least its loop-carried state
        (x, u, y + in-flight temporaries) and no more than one register
        per node."""
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))
        need = register_requirement(res.schedule, res.retiming, res.length)
        assert 3 <= need <= res.graph.num_nodes

    def test_deeper_pipelines_hold_more_values(self):
        """Pipelining trades registers for speed: at equal resources, the
        pipelined schedule needs at least as many registers as the
        sequential one minus boundary effects (sanity: both positive)."""
        from repro.baselines import dag_list_schedule
        from repro.dfg import Retiming as R

        model = ResourceModel.unit_time(1, 1)
        base = dag_list_schedule(diffeq(), model)
        seq_need = register_requirement(base.schedule, R.zero())
        res = rotation_schedule(diffeq(), model)
        pipe_need = register_requirement(res.schedule, res.retiming, res.length)
        assert seq_need >= 1 and pipe_need >= 1

    def test_nonpositive_period_rejected(self, two_node):
        model = ResourceModel.adders_mults(2, 1)
        sched = Schedule(two_node, model, {"p": 0, "c": 1})
        with pytest.raises(SchedulingError):
            LifetimeAnalyzer(sched, Retiming.zero(), period=0)
