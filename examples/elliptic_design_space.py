#!/usr/bin/env python3
"""Design-space exploration of the 5th-order elliptic wave filter.

The scenario behind the paper's Table 2: an HLS engineer trading
functional units against throughput.  This script sweeps adder and
multiplier counts (pipelined and not), runs rotation scheduling for each
point, compares against the lower bound and the no-pipelining baseline,
and prints the Pareto picture plus a CSV you can plot.

Run:  python examples/elliptic_design_space.py
"""

from repro import (
    ResourceModel,
    combined_lower_bound,
    dag_list_schedule,
    elliptic,
    rotation_schedule,
)
from repro.report import render_results_table, to_csv


def main() -> None:
    graph = elliptic()
    configs = [
        (adders, mults, pipelined)
        for adders in (1, 2, 3)
        for mults in (1, 2, 3)
        for pipelined in (False, True)
    ]

    rows = []
    records = []
    for adders, mults, pipelined in configs:
        model = ResourceModel.adders_mults(adders, mults, pipelined_mults=pipelined)
        lb = combined_lower_bound(graph, model)
        base = dag_list_schedule(graph, model)
        rs = rotation_schedule(graph, model)
        optimal = "yes" if rs.length == lb.combined else ""
        rows.append(
            [
                model.label(),
                lb.combined,
                base.length,
                f"{rs.length} ({rs.depth})",
                f"{base.length / rs.length:.2f}x",
                lb.binding,
                optimal,
            ]
        )
        records.append(
            [model.label(), lb.combined, base.length, rs.length, rs.depth]
        )

    print(
        render_results_table(
            "Elliptic filter design space (add 1 CS, mult 2 CS / 2-stage)",
            ["Resources", "LB", "No pipelining", "RS (depth)", "Speedup", "Binding", "Optimal?"],
            rows,
        )
    )
    print()
    met = sum(1 for row in rows if row[-1] == "yes")
    print(f"{met}/{len(rows)} configurations provably optimal (length == lower bound)")
    print()
    print("CSV for plotting:")
    print(to_csv(["resources", "lb", "baseline", "rs", "depth"], records))


if __name__ == "__main__":
    main()
