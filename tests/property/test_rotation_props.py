"""Property-based tests: rotation invariants on random graphs.

The central claims (paper Section 3): after ANY sequence of down-rotations
of ANY sizes, (1) the schedule is a legal DAG schedule of G_R, (2) R is a
legal retiming, (3) the unrolled global timeline respects every original
dependence and never over-subscribes a unit, and (4) the wrapped length
never beats the combined lower bound.
"""

from hypothesis import given, settings, strategies as st

from repro.schedule import ResourceModel, unroll
from repro.core import RotationState, wrap
from repro.bounds import lower_bound
from repro.suite import random_dfg

graph_seeds = st.integers(0, 10_000)
rotation_sizes = st.lists(st.integers(1, 4), min_size=1, max_size=6)
models = st.sampled_from(
    [
        ResourceModel.adders_mults(1, 1),
        ResourceModel.adders_mults(2, 1),
        ResourceModel.adders_mults(2, 2, pipelined_mults=True),
        ResourceModel.unit_time(1, 1),
    ]
)


def _run_rotations(state: RotationState, sizes):
    for size in sizes:
        if state.length > 1:
            state = state.down_rotate(min(size, state.length - 1))
    return state


class TestRotationInvariants:
    @given(graph_seeds, rotation_sizes, models)
    @settings(max_examples=30, deadline=None)
    def test_schedule_stays_legal(self, seed, sizes, model):
        g = random_dfg(10, seed=seed)
        state = _run_rotations(RotationState.initial(g, model), sizes)
        assert state.retiming.is_legal(g)
        assert state.schedule.is_legal_dag_schedule(state.retiming)

    @given(graph_seeds, rotation_sizes, models)
    @settings(max_examples=25, deadline=None)
    def test_unrolled_ground_truth(self, seed, sizes, model):
        g = random_dfg(10, seed=seed)
        state = _run_rotations(RotationState.initial(g, model), sizes)
        r = state.retiming.normalized(g)
        u = unroll(state.schedule.normalized(), r, iterations=r.depth(g) + 4)
        assert u.dependence_violations() == []
        assert u.resource_violations() == []

    @given(graph_seeds, rotation_sizes, models)
    @settings(max_examples=25, deadline=None)
    def test_wrap_legal_and_bounded(self, seed, sizes, model):
        g = random_dfg(10, seed=seed)
        state = _run_rotations(RotationState.initial(g, model), sizes)
        w = wrap(state.schedule, state.retiming)
        assert w.violations() == []
        assert w.period <= state.length
        assert w.period >= lower_bound(g, model)

    @given(graph_seeds, models)
    @settings(max_examples=25, deadline=None)
    def test_full_cycle_of_size_1_rotations_preserves_nodes(self, seed, model):
        """Rotating one CS at a time never loses or duplicates nodes."""
        g = random_dfg(10, seed=seed)
        state = RotationState.initial(g, model)
        for _ in range(6):
            if state.length > 1:
                state = state.down_rotate(1)
        assert sorted(map(str, state.schedule.start_map)) == sorted(map(str, g.nodes))

    @given(graph_seeds)
    @settings(max_examples=20, deadline=None)
    def test_retiming_counts_match_trace(self, seed):
        """R(v) equals the number of times v was rotated down."""
        g = random_dfg(10, seed=seed)
        state = RotationState.initial(g, ResourceModel.unit_time(1, 1))
        counts = {v: 0 for v in g.nodes}
        for _ in range(5):
            if state.length <= 1:
                break
            state = state.down_rotate(1)
            for v in state.trace[-1].rotated:
                counts[v] += 1
        assert {v: state.retiming[v] for v in g.nodes} == counts
