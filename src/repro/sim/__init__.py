"""Execution simulators: reference loop, software pipeline, machine model."""

from repro.sim.reference import ReferenceExecutor, reference_run, validate_edge_inits
from repro.sim.executor import (
    PipelineExecutor,
    PipelineRunReport,
    compare_streams,
    verify_pipeline,
)
from repro.sim.machine import MachineReport, MachineSimulator, UnitUtilization, simulate_machine

__all__ = [
    "MachineReport",
    "MachineSimulator",
    "PipelineExecutor",
    "PipelineRunReport",
    "ReferenceExecutor",
    "UnitUtilization",
    "compare_streams",
    "reference_run",
    "simulate_machine",
    "validate_edge_inits",
    "verify_pipeline",
]
