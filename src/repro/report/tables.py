"""Paper-style table rendering: schedules and experiment matrices."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule


def render_schedule(
    schedule: Schedule,
    model: Optional[ResourceModel] = None,
    retiming: Optional[Retiming] = None,
    one_based: bool = True,
) -> str:
    """Render a schedule as the paper's CS x unit-class table.

    Multi-cycle operations show their tails as ``<name>'`` (matching the
    paper's Figure 6 notation); the optional retiming adds an ``r`` column
    listing rotated nodes per stage.
    """
    model = model or schedule.model
    graph = schedule.graph
    sched = schedule.normalized()
    unit_names = [u.name for u in model.units]
    rows: Dict[int, Dict[str, List[str]]] = {}
    for v in graph.nodes:
        op = graph.op(v)
        unit = model.unit_for_op(op)
        for off in model.busy_offsets(op):
            tag = str(v) + ("'" * off)
            rows.setdefault(sched.start(v) + off, {}).setdefault(unit.name, []).append(tag)

    header = ["CS"] + [n.capitalize() for n in unit_names]
    body: List[List[str]] = []
    for cs in range(sched.first_cs, sched.last_cs + 1):
        row = [str(cs + (1 if one_based else 0))]
        for name in unit_names:
            row.append(", ".join(rows.get(cs, {}).get(name, [])) or "-")
        body.append(row)
    table = _format_table(header, body)
    if retiming is not None:
        stages = retiming.stages(graph)
        lines = [
            f"  r={r}: " + ", ".join(str(v) for v in nodes)
            for r, nodes in stages.items()
            if r != 0
        ]
        if lines:
            table += "\nrotated stages:\n" + "\n".join(lines)
    return table


def render_results_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Generic experiment matrix (Table 2 / Table 3 style)."""
    header = list(columns)
    body = [[_cell(x) for x in row] for row in rows]
    return f"{title}\n" + _format_table(header, body)


def render_table1(rows: Sequence[Tuple[str, int, int, int, int]]) -> str:
    """The characteristics table: benchmark, #Mults, #Adds, CP, IB."""
    return render_results_table(
        "Table 1: Characteristics of the benchmarks",
        ["Benchmark", "#Mults", "#Adds", "CP", "IB"],
        rows,
    )


def _cell(x: object) -> str:
    if isinstance(x, float):
        return f"{x:.3g}"
    return str(x)


def _format_table(header: List[str], body: List[List[str]]) -> str:
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: List[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(header), sep] + [fmt(r) for r in body])
