"""Wire protocol of the scheduling service: requests, canonical forms,
fingerprints, and the deterministic solve that answers a cache miss.

A request is a JSON object::

    {
      "graph":   {...repro.dfg io v2 dict...} | {"benchmark": "elliptic"},
      "config":  "3A2M" | {"units": [{"name", "count", "latency",
                                      "pipelined"}, ...],
                           "binding": {"add": "adder", ...}},
      "options": {"heuristic", "priority", "backend", "beta", "sigma",
                  "cap", "unfold", "clock", "chain_rotations"},   # partial
      "base":    "<fingerprint hex>",          # optional: warm re-solve
      "edits":   [{"edit": ..., ...}, ...]     # session edit protocol
    }

The **canonical form** of a request is what the cache keys on and what a
worker process solves: the structural signature of the (edit-applied)
graph, the model signature, and the complete, defaulted option surface —
every input that can change a schedule, and nothing else.  The
**fingerprint** is the sha256 of the canonical JSON.  The contract
(see ``docs/serving.md``):

* equal fingerprints ⇒ bit-identical ``result`` payloads, on every
  backend (the golden parity suite is what licenses the backends to
  share the schedule-bits contract; the property test in
  ``tests/property/test_fingerprint.py`` enforces it end to end);
* the graph half is :func:`repro.core.flat.structural_signature` and the
  model half :func:`repro.core.flat.model_signature` — the same keys
  ``solve_batch`` dedups on, so the serve cache and the batch dedup can
  never disagree about which requests are "the same";
* execution-only knobs (``workers``, tracing) are excluded; ``backend``
  *is* included so a response's engine metrics always describe the
  backend that was asked for, even though schedule bits are
  backend-independent.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.dfg.graph import DFG
from repro.dfg.io import _decode_id, _encode_id, from_json_dict
from repro.errors import ReproError
from repro.schedule.resources import ResourceModel, UnitSpec
from repro.core.engine import BACKENDS
from repro.core.flat.graph import model_signature, structural_signature

PROTOCOL = "repro.serve/v1"

#: The complete option surface, with defaults.  Every key participates in
#: the fingerprint; adding a schedule-changing option means adding it here
#: (and nowhere else) — requests fingerprinted before the addition can
#: never collide with requests after it because the canonical form always
#: spells out all keys.
DEFAULT_OPTIONS: Dict[str, Any] = {
    "heuristic": "h2",
    "priority": "descendants",
    "backend": "flat",
    "beta": None,          # rotations per phase (default 2|V|)
    "sigma": None,         # phase-size range (default initial length - 1)
    "cap": 64,             # tied-optimal schedules retained
    "unfold": 1,           # unfolding factor applied before solving
    "clock": None,         # chained mode: control-step length; None = off
    "chain_rotations": 16, # rotation budget in chained mode
}

_HEURISTICS = ("h1", "h2")
_PRIORITIES = ("descendants", "height", "combined", "mobility")


class ServeError(ReproError):
    """A malformed or unsatisfiable service request."""


@dataclass(frozen=True)
class SolveRequest:
    """A parsed, validated request: materialized graph + model + options.

    ``graph`` is the *base* graph with any ``edits`` already applied (the
    canonical form always describes the state actually solved); ``base``
    and ``edits`` are kept so the pool can route warm re-solves to the
    shard holding the base session.
    """

    graph: DFG
    model: ResourceModel
    options: Dict[str, Any]
    base: Optional[str] = None
    edits: Tuple[Mapping[str, Any], ...] = ()


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def parse_model(spec: Any) -> ResourceModel:
    """A resource model from a config tag ("3A2Mp") or a full unit spec."""
    if isinstance(spec, ResourceModel):
        return spec
    if isinstance(spec, str):
        import re

        m = re.fullmatch(r"(\d+)A(\d+)M(p?)", spec.replace(" ", ""))
        if not m:
            raise ServeError(
                f"config tag {spec!r} is not of the form '<n>A<m>M[p]'"
            )
        return ResourceModel.adders_mults(
            int(m.group(1)), int(m.group(2)), pipelined_mults=bool(m.group(3))
        )
    if isinstance(spec, Mapping):
        try:
            units = [
                UnitSpec(
                    str(u["name"]),
                    int(u["count"]),
                    int(u.get("latency", 1)),
                    bool(u.get("pipelined", False)),
                )
                for u in spec["units"]
            ]
            binding = {str(k): str(v) for k, v in spec["binding"].items()}
        except (KeyError, TypeError) as exc:
            raise ServeError(f"malformed model spec: {exc}") from exc
        return ResourceModel(units, binding)
    raise ServeError(f"config must be a tag string or a unit spec, got {type(spec).__name__}")


def parse_graph(spec: Any) -> DFG:
    """A DFG from an io-v2 dict, a ``{"benchmark": key}`` reference, or a key."""
    if isinstance(spec, DFG):
        return spec
    if isinstance(spec, str):
        spec = {"benchmark": spec}
    if not isinstance(spec, Mapping):
        raise ServeError(
            "graph must be a repro.dfg JSON dict, {'benchmark': key}, or a benchmark key"
        )
    if "benchmark" in spec:
        from repro.suite.registry import get_benchmark

        try:
            return get_benchmark(str(spec["benchmark"]))
        except KeyError as exc:
            raise ServeError(str(exc)) from exc
    try:
        return from_json_dict(dict(spec))
    except ReproError:
        raise
    except Exception as exc:
        raise ServeError(f"malformed graph payload: {exc}") from exc


def parse_options(raw: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """The full option surface: defaults filled, values validated."""
    opts = dict(DEFAULT_OPTIONS)
    for key, value in (raw or {}).items():
        if key not in DEFAULT_OPTIONS:
            raise ServeError(
                f"unknown option {key!r}; choose from {sorted(DEFAULT_OPTIONS)}"
            )
        opts[key] = value
    if opts["heuristic"] not in _HEURISTICS:
        raise ServeError(f"unknown heuristic {opts['heuristic']!r}")
    if opts["priority"] not in _PRIORITIES:
        raise ServeError(
            f"priority must be one of {_PRIORITIES} (callables cannot travel over the wire)"
        )
    if opts["backend"] not in BACKENDS:
        raise ServeError(f"unknown backend {opts['backend']!r}; choose from {sorted(BACKENDS)}")
    for key in ("beta", "sigma", "clock"):
        if opts[key] is not None:
            opts[key] = int(opts[key])
            if opts[key] < 1:
                raise ServeError(f"option {key!r} must be >= 1 when set")
    for key in ("cap", "unfold", "chain_rotations"):
        opts[key] = int(opts[key])
        if opts[key] < 1:
            raise ServeError(f"option {key!r} must be >= 1")
    return opts


def parse_request(payload: Mapping[str, Any]) -> SolveRequest:
    """Validate one wire request and materialize its graph and model."""
    if not isinstance(payload, Mapping):
        raise ServeError("request body must be a JSON object")
    unknown = set(payload) - {"graph", "config", "options", "base", "edits"}
    if unknown:
        raise ServeError(f"unknown request field(s) {sorted(unknown)}")
    if "graph" not in payload:
        raise ServeError("request is missing 'graph'")
    if "config" not in payload:
        raise ServeError("request is missing 'config'")
    graph = parse_graph(payload["graph"])
    model = parse_model(payload["config"])
    options = parse_options(payload.get("options"))
    base = payload.get("base")
    edits = tuple(payload.get("edits") or ())
    if edits:
        if options["unfold"] != 1 or options["clock"] is not None:
            raise ServeError("'edits' cannot combine with 'unfold' or 'clock'")
        # Materialize the edited graph so the canonical form (and hence the
        # fingerprint) describes the state actually solved.  Sessions are a
        # *worker-side acceleration*; correctness never depends on them.
        from repro.core.session import MutableSchedulingSession

        session = MutableSchedulingSession(graph, model, copy_graph=True)
        for op in edits:
            session.apply_edit(op)
        graph = session.graph
        model = session.model
    return SolveRequest(
        graph=graph,
        model=model,
        options=options,
        base=str(base) if base is not None else None,
        edits=edits,
    )


# ----------------------------------------------------------------------
# canonical form + fingerprint
# ----------------------------------------------------------------------
def canonical_request(request: SolveRequest) -> Dict[str, Any]:
    """The canonical, JSON-able form the cache keys on.

    Reuses the engine-layer signatures (the FlatEngine/solve_batch dedup
    path) for the graph and model halves, then appends the full option
    surface in sorted key order.
    """
    g_nodes, g_ops, g_times, g_edges = structural_signature(request.graph)
    m_units, m_binding = model_signature(request.model)
    return {
        "protocol": PROTOCOL,
        "graph": {
            "nodes": [_encode_id(v) for v in g_nodes],
            "ops": list(g_ops),
            "times": list(g_times),
            "edges": [
                [_encode_id(s), _encode_id(d), delay] for s, d, delay in g_edges
            ],
        },
        "model": {
            "units": [list(u) for u in m_units],
            "binding": [list(b) for b in m_binding],
        },
        "options": {k: request.options[k] for k in sorted(DEFAULT_OPTIONS)},
    }


def fingerprint(canonical: Mapping[str, Any]) -> str:
    """sha256 hex of the canonical JSON (sorted keys, no whitespace)."""
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def request_fingerprint(payload: Mapping[str, Any]) -> str:
    """Parse + canonicalize + hash one wire request."""
    return fingerprint(canonical_request(parse_request(payload)))


# ----------------------------------------------------------------------
# canonical form -> objects (the worker side)
# ----------------------------------------------------------------------
def graph_from_canonical(canonical: Mapping[str, Any]) -> DFG:
    """Rebuild the scheduling-relevant graph from a canonical form.

    Only what :func:`structural_signature` captures survives (which is the
    point: a worker can never read an input the fingerprint missed).
    """
    g = canonical["graph"]
    out = DFG("serve")
    nodes = [_decode_id(v) for v in g["nodes"]]
    for v, op, time in zip(nodes, g["ops"], g["times"]):
        out.add_node(v, op, time=time)
    for src, dst, delay in g["edges"]:
        out.add_edge(_decode_id(src), _decode_id(dst), delay)
    return out


def model_from_canonical(canonical: Mapping[str, Any]) -> ResourceModel:
    m = canonical["model"]
    return ResourceModel(
        [UnitSpec(name, count, latency, pipelined) for name, count, latency, pipelined in m["units"]],
        dict(m["binding"]),
    )


# ----------------------------------------------------------------------
# solving + result payloads
# ----------------------------------------------------------------------
#: Keys of a result payload that describe *how* the answer was found, not
#: the answer itself.  A warm session repair legitimately reports a
#: different trajectory (e.g. ``rotations: 0``) than a cold search while
#: producing the same schedule bits; the differential oracle strips these
#: before comparing.
TRAJECTORY_KEYS = ("search", "session")


def schedule_bits(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The fingerprint-determined half of a result payload.

    Equal fingerprints guarantee equal ``schedule_bits``; the trajectory
    keys (``search`` stats, warm-path ``session`` meta) may differ between
    a cold search and a warm repair of the same request.
    """
    return {k: v for k, v in payload.items() if k not in TRAJECTORY_KEYS}


def result_payload(result) -> Dict[str, Any]:
    """The semantic half of a response: schedule bits + search stats.

    The schedule bits are a pure function of the fingerprint (the
    differential oracle compares them bit for bit — see
    :func:`schedule_bits`); the ``search`` sub-dict records the trajectory
    that found them.  Execution facts — elapsed time, cache level —
    ride outside, in the response envelope.
    """
    graph = result.graph
    sched = result.schedule
    return {
        "mode": "rotation",
        "length": result.length,
        "depth": result.depth,
        "period": result.wrapped.period,
        "starts": [[_encode_id(v), sched.start(v)] for v in graph.nodes],
        "units": [[_encode_id(v), sched.unit_index(v)] for v in graph.nodes],
        "retiming": [[_encode_id(v), result.retiming[v]] for v in graph.nodes],
        "search": {
            "initial_length": result.initial_length,
            "optimal_count": result.optimal_count,
            "rotations": result.rotations_performed,
        },
    }


def chained_result_payload(state, best_len: int) -> Dict[str, Any]:
    """Semantic payload of a chained-mode solve."""
    graph = state.graph
    sched = state.schedule
    entries = []
    for v in graph.nodes:
        e = sched.entry(v)
        entries.append([_encode_id(v), e.cs, e.offset, e.unit, e.instance])
    return {
        "mode": "chained",
        "length": best_len,
        "cs_length": state.cs_length,
        "entries": entries,
        "retiming": [[_encode_id(v), state.retiming[v]] for v in graph.nodes],
    }


def solve_canonical(canonical: Mapping[str, Any]) -> Dict[str, Any]:
    """Deterministically solve one canonical request — the cache-miss path.

    Pure: same canonical form in, bit-identical ``result`` payload out, on
    any backend.  Runs in worker processes (and inline in tests).
    """
    graph = graph_from_canonical(canonical)
    model = model_from_canonical(canonical)
    opts = canonical["options"]
    if opts["unfold"] > 1:
        from repro.dfg.unfold import unfold

        graph = unfold(graph, opts["unfold"])
    if opts["clock"] is not None:
        from repro.core.chained_rotation import chained_rotation_schedule

        state, best_len = chained_rotation_schedule(
            graph,
            model.timing(),
            opts["clock"],
            {u.name: u.count for u in model.units},
            model.binding,
            rotations=opts["chain_rotations"],
            priority=opts["priority"],
        )
        return chained_result_payload(state, best_len)
    from repro.core.scheduler import RotationScheduler

    result = RotationScheduler(
        model,
        heuristic=opts["heuristic"],
        beta=opts["beta"],
        sigma=opts["sigma"],
        priority=opts["priority"],
        cap=opts["cap"],
        backend=opts["backend"],
    ).schedule(graph)
    return result_payload(result)
