"""Unit tests for the fluent DFG builder."""

import pytest

from repro.dfg import DFGBuilder
from repro.errors import GraphError


class TestBuilder:
    def test_basic_chain(self):
        g = (
            DFGBuilder("t", default_op="add")
            .node("m", "mul")
            .chain("m", "a", "b")
            .build()
        )
        assert g.num_nodes == 3
        assert g.op("a") == "add"
        assert g.has_edge("m", "a") and g.has_edge("a", "b")

    def test_chain_delay_on_last_link(self):
        g = DFGBuilder(default_op="add").chain("a", "b", "c", delay=2).build()
        delays = {(e.src, e.dst): e.delay for e in g.edges}
        assert delays == {("a", "b"): 0, ("b", "c"): 2}

    def test_chain_too_short(self):
        with pytest.raises(GraphError, match="at least two"):
            DFGBuilder().chain("a")

    def test_wire_auto_declares(self):
        g = DFGBuilder(default_op="sub").wire("x", "y", delay=1).build()
        assert g.op("x") == "sub"
        assert g.edges[0].delay == 1

    def test_fan_in_fan_out(self):
        b = DFGBuilder(default_op="add")
        b.fan_in(["a", "b", "c"], "sum")
        b.fan_out("sum", ["p", "q"], delay=1)
        g = b.build()
        assert len(g.in_edges("sum")) == 3
        assert len(g.out_edges("sum")) == 2
        assert all(e.delay == 1 for e in g.out_edges("sum"))

    def test_nodes_bulk_declaration(self):
        g = DFGBuilder().nodes(["a", "b"], "mul").build()
        assert g.op("a") == "mul" and g.op("b") == "mul"

    def test_build_finalizes(self):
        b = DFGBuilder()
        b.node("a")
        b.build()
        with pytest.raises(GraphError, match="finalized"):
            b.node("b")
        with pytest.raises(GraphError, match="finalized"):
            b.build()

    def test_wire_with_init(self):
        b = DFGBuilder(default_op="add")
        b.wire("a", "b", delay=2, init=[1.0, 2.0])
        g = b.build()
        assert g.edge_init(g.edges[0]) == (1.0, 2.0)

    def test_graph_peek(self):
        b = DFGBuilder()
        b.node("a")
        assert "a" in b.graph
