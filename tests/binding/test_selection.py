"""Unit tests for optimal-schedule selection (the paper's Q argument)."""

from repro.binding import register_cost, select_schedule
from repro.core import rotation_schedule
from repro.schedule import ResourceModel
from repro.suite import diffeq, elliptic


class TestSelection:
    def test_best_is_minimum(self):
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))
        sel = select_schedule(res)
        assert sel.best_cost == min(sel.costs)
        assert register_cost(sel.best) == sel.best_cost

    def test_best_keeps_optimal_length(self):
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))
        sel = select_schedule(res)
        assert sel.best.period == res.length
        assert sel.best.violations() == []

    def test_q_exposes_optimization_chances(self):
        """The paper's conclusion, measured: tied-optimal schedules differ
        in downstream register cost, so scanning Q is worthwhile."""
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))
        sel = select_schedule(res)
        assert len(sel.costs) == 1 + len(res.alternates)
        assert sel.spread >= 1  # the set is genuinely heterogeneous

    def test_custom_cost_function(self):
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))
        sel = select_schedule(res, cost=lambda w: w.depth)
        assert sel.best_cost == min(w.depth for w in (res.wrapped, *res.alternates))

    def test_single_candidate(self):
        from repro.core import RotationScheduler

        scheduler = RotationScheduler(ResourceModel.adders_mults(3, 3), cap=1)
        res = scheduler.schedule(elliptic())
        sel = select_schedule(res)
        assert len(sel.costs) == 1
        assert sel.spread == 0
