"""Unit tests for schedule wrapping and cylinder re-rooting (Section 4)."""

import pytest

from repro.dfg import DFG, Retiming
from repro.schedule import ResourceModel, Schedule
from repro.core import RotationState, reroot, unwrap_if_possible, wrap, wrapped_length
from repro.suite import diffeq
from repro.errors import SchedulingError


class TestWrap:
    def test_single_cycle_schedule_wraps_to_span(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        w = wrap(st.schedule, st.retiming)
        assert w.period == st.length
        assert w.wrapped_nodes() == []

    def test_trailing_mult_tail_wraps(self):
        """A 2-cycle multiplier starting in the last CS wraps (Figure 8)."""
        g = DFG()
        g.add_node("a", "add")
        g.add_node("m", "mul")
        g.add_edge("a", "m", 0)
        g.add_edge("m", "a", 2)
        model = ResourceModel.adders_mults(1, 1)
        s = Schedule(g, model, {"a": 0, "m": 1})  # span 3: m occupies 1,2
        w = wrap(s, Retiming.zero())
        assert w.period == 2
        assert w.wrapped_nodes() == ["m"]
        assert w.violations() == []

    def test_wrap_blocked_by_resources(self):
        """Wrapping needs a spare unit in the target CS (paper's first
        condition)."""
        g = DFG()
        g.add_node("m1", "mul")
        g.add_node("m2", "mul")
        model = ResourceModel.adders_mults(1, 1)
        s = Schedule(g, model, {"m1": 0, "m2": 2})  # span 4
        w = wrap(s, Retiming.zero())
        # m2's tail cannot share CS 0-1 with m1 on a single multiplier
        assert w.period == 4

    def test_wrap_blocked_by_precedence(self):
        """The wrapped node's outgoing 1-delay edge becomes a new zero-delay
        constraint (paper's second condition)."""
        g = DFG()
        g.add_node("m", "mul")
        g.add_node("a", "add")
        g.add_edge("m", "a", 1)  # consumer in the NEXT iteration
        g.add_edge("a", "m", 1)
        model = ResourceModel.adders_mults(1, 1)
        s = Schedule(g, model, {"a": 0, "m": 1})
        w = wrap(s, Retiming.zero())
        # period 2 would need m's result (finish 3) by a's next start 0+2*1=2
        assert w.period == 3

    def test_diffeq_multicycle_wraps_to_6(self):
        """Section 4's running example: after 8 rotations of size 1 with the
        two-stage multiplier, the wrapped schedule has length 6.  (The unit
        must be the pipelined multiplier: six multiplications can never fit
        6 CS on one non-pipelined 2-cycle unit — Table 3 gives 12 there.)"""
        st = RotationState.initial(
            diffeq(), ResourceModel.adders_mults(1, 1, pipelined_mults=True)
        )
        for _ in range(8):
            st = st.down_rotate(1)
        assert wrapped_length(st.schedule, st.retiming) == 6
        assert st.length > 6  # the unwrapped span still carries tails

    def test_wrapped_length_shortcut(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        assert wrapped_length(st.schedule, st.retiming) == wrap(st.schedule, st.retiming).period


class TestReroot:
    @pytest.fixture
    def wrapped_example(self):
        g = DFG()
        g.add_node("a", "add")
        g.add_node("m", "mul")
        g.add_edge("a", "m", 0)
        g.add_edge("m", "a", 2)
        model = ResourceModel.adders_mults(1, 1)
        return wrap(Schedule(g, model, {"a": 0, "m": 1}), Retiming.zero())

    def test_reroot_preserves_period_and_legality(self, wrapped_example):
        out = reroot(wrapped_example, 1)
        assert out.period == wrapped_example.period
        assert out.violations() == []

    def test_reroot_bumps_rotation_of_moved_nodes(self, wrapped_example):
        out = reroot(wrapped_example, 1)
        # node 'a' (start 0 < pivot 1) moved to the end: one more rotation
        assert out.schedule.start("a") == 1
        assert out.schedule.start("m") == 0
        # normalized retimings: relative rotation of a increased
        assert out.retiming["a"] - out.retiming["m"] == (
            wrapped_example.retiming["a"] - wrapped_example.retiming["m"] + 1
        )

    def test_reroot_identity(self, wrapped_example):
        assert reroot(wrapped_example, 0) is wrapped_example

    def test_reroot_bad_pivot(self, wrapped_example):
        with pytest.raises(SchedulingError, match="pivot"):
            reroot(wrapped_example, wrapped_example.period)

    def test_unwrap_if_possible(self, wrapped_example):
        """Paper: 'a wrapped schedule can be easily rotated to be an
        unwrapped one' by choosing another first control step."""
        assert wrapped_example.wrapped_nodes() == ["m"]
        out = unwrap_if_possible(wrapped_example)
        assert out.wrapped_nodes() == []
        assert out.period == wrapped_example.period

    def test_unwrap_noop_when_not_wrapped(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        w = wrap(st.schedule, st.retiming)
        assert unwrap_if_possible(w) is w
