"""Unit tests for DFG serialization (JSON, edge list, DOT)."""

import pytest

from repro.dfg import DFG
from repro.dfg import io as dio
from repro.suite import diffeq, elliptic
from repro.errors import GraphError


def _same_structure(a: DFG, b: DFG) -> bool:
    if [str(v) for v in a.nodes] != [str(v) for v in b.nodes]:
        return False
    ea = sorted((str(e.src), str(e.dst), e.delay) for e in a.edges)
    eb = sorted((str(e.src), str(e.dst), e.delay) for e in b.edges)
    return ea == eb


class TestJson:
    def test_round_trip_benchmarks(self):
        for g in (diffeq(), elliptic()):
            back = dio.loads(dio.dumps(g))
            assert _same_structure(g, back)
            assert back.name == g.name

    def test_ops_and_times_survive(self):
        g = DFG("t")
        g.add_node("a", "mul", time=3, label="alpha")
        g.add_node("b", "add")
        g.add_edge("a", "b", 2)
        back = dio.loads(dio.dumps(g))
        assert back.op("a") == "mul"
        assert back.explicit_time("a") == 3
        assert back.label("a") == "alpha"

    def test_rejects_foreign_json(self):
        with pytest.raises(GraphError, match="not a repro.dfg"):
            dio.loads('{"something": "else"}')

    def test_file_round_trip(self, tmp_path):
        g = diffeq()
        path = str(tmp_path / "g.json")
        dio.save(g, path)
        assert _same_structure(g, dio.load(path))


class TestLosslessRoundTrip:
    """Regressions for the lossy serializer: inits, attrs, tuple ids."""

    def test_edge_inits_survive(self):
        g = DFG("init")
        g.add_node("a", "add")
        g.add_node("b", "add")
        g.add_edge("a", "b", 2, init=[0.5, -1.25])
        back = dio.loads(dio.dumps(g))
        (e,) = back.edges
        assert back.edge_init(e) == (0.5, -1.25)

    def test_node_attrs_survive(self):
        g = DFG("attrs")
        g.add_node("a", "add", qa_bias=0.125, stage="front")
        g.add_node("b", "add")
        g.add_edge("a", "b", 1)
        back = dio.loads(dio.dumps(g))
        assert back.attrs("a") == {"qa_bias": 0.125, "stage": "front"}
        assert back.attrs("b") == {}

    def test_tuple_ids_survive_and_fold(self):
        from repro.dfg.unfold import fold_node, unfold
        from repro.suite.random_graphs import random_dfg

        base = random_dfg(5, seed=7)
        g = unfold(base, 2)
        back = dio.loads(dio.dumps(g))
        assert set(back.nodes) == set(g.nodes)
        # the regression: stringified ids broke fold_node after a reload
        assert {fold_node(v)[0] for v in back.nodes} == set(base.nodes)
        assert {fold_node(v)[1] for v in back.nodes} == {0, 1}

    def test_nested_tuple_and_int_ids(self):
        g = DFG("ids")
        g.add_node((("x", 1), 2), "add")
        g.add_node(7, "mul")
        g.add_edge((("x", 1), 2), 7, 1)
        back = dio.loads(dio.dumps(g))
        assert set(back.nodes) == {(("x", 1), 2), 7}

    def test_unencodable_ids_degrade_to_strings(self):
        g = DFG("weird")
        g.add_node(frozenset({"a"}), "add")
        g.add_node("b", "add")
        g.add_edge(frozenset({"a"}), "b", 1)
        back = dio.loads(dio.dumps(g))
        assert set(back.nodes) == {"frozenset({'a'})", "b"}

    def test_v1_files_still_load(self):
        import json

        data = dio.to_json_dict(diffeq())
        data.pop("version", None)
        for nd in data["nodes"]:
            nd.pop("attrs", None)
        for ed in data["edges"]:
            ed.pop("init", None)
        back = dio.loads(json.dumps(data))
        assert _same_structure(diffeq(), back)

    def test_property_random_graphs_round_trip(self):
        from repro.suite.random_graphs import (
            attach_affine_funcs,
            random_dfg,
            random_dsp_kernel,
            unfolded_dfg,
        )

        graphs = [
            attach_affine_funcs(random_dfg(10, seed=s), seed=s) for s in range(4)
        ] + [
            random_dsp_kernel(4, seed=1),  # carries real edge inits
            unfolded_dfg(5, seed=2),  # tuple ids
        ]
        for g in graphs:
            back = dio.loads(dio.dumps(g))
            assert set(back.nodes) == set(g.nodes)
            assert {(v, back.op(v)) for v in back.nodes} == {
                (v, g.op(v)) for v in g.nodes
            }
            assert {v: back.attrs(v) for v in back.nodes} == {
                v: g.attrs(v) for v in g.nodes
            }
            assert sorted(
                (e.src, e.dst, e.delay, back.edge_init(e)) for e in back.edges
            ) == sorted((e.src, e.dst, e.delay, g.edge_init(e)) for e in g.edges)


class TestEdgeList:
    def test_round_trip(self):
        g = DFG("el")
        g.add_node("a", "add")
        g.add_node("m", "mul", time=2)
        g.add_edge("a", "m", 0)
        g.add_edge("m", "a", 1)
        text = dio.to_edge_list(g)
        back = dio.from_edge_list(text, "el")
        assert _same_structure(g, back)
        assert back.explicit_time("m") == 2

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\nnode a add\nnode b add\nedge a b 0\n"
        g = dio.from_edge_list(text)
        assert g.num_nodes == 2 and g.num_edges == 1

    def test_edge_inits_round_trip(self):
        g = DFG("el-init")
        g.add_node("a", "add")
        g.add_node("b", "mul")
        g.add_edge("a", "b", 2, init=[1.0, -0.5])
        g.add_edge("b", "a", 1)
        text = dio.to_edge_list(g)
        assert "init=[1.0,-0.5]" in text
        back = dio.from_edge_list(text, "el-init")
        inits = {(e.src, e.dst): back.edge_init(e) for e in back.edges}
        assert inits == {("a", "b"): (1.0, -0.5), ("b", "a"): None}

    def test_malformed_lines_rejected(self):
        with pytest.raises(GraphError, match="line 1"):
            dio.from_edge_list("node onlyname")
        with pytest.raises(GraphError, match="unknown directive"):
            dio.from_edge_list("vertex a add")
        with pytest.raises(GraphError, match="malformed edge"):
            dio.from_edge_list("node a add\nnode b add\nedge a b")


class TestDot:
    def test_dot_contains_all_elements(self):
        g = diffeq()
        dot = dio.to_dot(g)
        assert dot.startswith("digraph")
        for v in g.nodes:
            assert f'"{v}"' in dot
        # delayed edges are dashed
        assert "style=dashed" in dot
        assert "1D" in dot
