"""Per-span profile aggregation and the ``rotsched profile`` report.

Folds a span tree (live :class:`~repro.obs.tracer.Tracer` or parsed
:class:`~repro.obs.export.Trace`) into per-name rows: call counts,
cumulative time (span durations summed) and *self* time (duration minus
the time spent in child spans) — the per-phase / per-kernel breakdown the
rotation loop's feedback consumers read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.export import Trace
from repro.obs.tracer import SpanEvent, Tracer


@dataclass
class ProfileRow:
    """Aggregated timings of every span sharing one name."""

    name: str
    calls: int = 0
    cum_ns: int = 0
    self_ns: int = 0
    max_ns: int = 0

    @property
    def cum_s(self) -> float:
        return self.cum_ns / 1e9

    @property
    def self_s(self) -> float:
        return self.self_ns / 1e9


@dataclass
class Profile:
    """The full aggregation plus the wall time it covers."""

    rows: Dict[str, ProfileRow] = field(default_factory=dict)
    total_ns: int = 0

    def sorted_rows(self) -> List[ProfileRow]:
        """Rows by descending self time (ties: name, for determinism)."""
        return sorted(self.rows.values(), key=lambda r: (-r.self_ns, r.name))


def aggregate(events: Sequence[SpanEvent]) -> Profile:
    """Fold events into per-name rows; self = dur - sum(child durs)."""
    child_ns = [0] * len(events)
    for ev in events:
        if ev.parent >= 0 and ev.dur_ns > 0:
            child_ns[ev.parent] += ev.dur_ns
    prof = Profile()
    rows = prof.rows
    for ev in events:
        dur = max(ev.dur_ns, 0)
        row = rows.get(ev.name)
        if row is None:
            row = rows[ev.name] = ProfileRow(ev.name)
        row.calls += 1
        row.cum_ns += dur
        row.self_ns += max(dur - child_ns[ev.index], 0)
        if dur > row.max_ns:
            row.max_ns = dur
        if ev.parent < 0:
            prof.total_ns += dur
    return prof


def profile_of(source: Union[Tracer, Trace]) -> Profile:
    """Aggregate a live tracer or a parsed trace file."""
    return aggregate(source.events)


def render_profile(
    profile: Profile, top: Optional[int] = None, title: str = "profile"
) -> str:
    """Fixed-width per-span table: self vs cumulative, call counts, top-N."""
    rows = profile.sorted_rows()
    shown = rows if top is None else rows[:top]
    total = profile.total_ns or 1
    name_w = max([len(r.name) for r in shown] + [len("span")])
    header = (
        f"{'span':<{name_w}}  {'calls':>7}  {'self s':>9}  {'self %':>6}  "
        f"{'cum s':>9}  {'cum %':>6}  {'max ms':>8}"
    )
    lines = [f"{title} — total {profile.total_ns / 1e9:.4f}s", header, "-" * len(header)]
    for r in shown:
        lines.append(
            f"{r.name:<{name_w}}  {r.calls:>7}  {r.self_s:>9.4f}  "
            f"{100.0 * r.self_ns / total:>6.1f}  {r.cum_s:>9.4f}  "
            f"{100.0 * r.cum_ns / total:>6.1f}  {r.max_ns / 1e6:>8.3f}"
        )
    if top is not None and len(rows) > top:
        rest_self = sum(r.self_ns for r in rows[top:])
        lines.append(
            f"... {len(rows) - top} more span name(s), "
            f"{rest_self / 1e9:.4f}s self time"
        )
    return "\n".join(lines)
