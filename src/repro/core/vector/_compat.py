"""Guarded numpy import for the vector backend.

``numpy`` is a declared dependency, but the three scalar backends
(flat / views / naive) must keep working on installs that lack it —
only ``backend=vector`` actually needs arrays.  Everything inside
:mod:`repro.core.vector` that touches numpy goes through this module:
``np`` is either the real package or ``None``, and :func:`require_numpy`
turns the latter into a :class:`~repro.errors.ReproError` with an
install hint at the moment a vector feature is actually requested.

Tests fake a missing install by monkeypatching ``np`` to ``None`` here;
:data:`NUMPY_ERROR` keeps the real import error around for the message.
"""

from __future__ import annotations

from repro.errors import ReproError

try:  # pragma: no cover - exercised via the fake-missing-import test
    import numpy as np

    NUMPY_ERROR: Exception | None = None
except ImportError as exc:  # pragma: no cover - environment-dependent
    np = None  # type: ignore[assignment]
    NUMPY_ERROR = exc


def have_numpy() -> bool:
    """Whether the vector backend can run in this interpreter."""
    return np is not None


def require_numpy():
    """Return the numpy module, or raise a clear install-hint error."""
    if np is None:
        detail = f" ({NUMPY_ERROR})" if NUMPY_ERROR is not None else ""
        raise ReproError(
            "backend='vector' needs numpy, which is not importable in this "
            f"environment{detail} — install it with `pip install numpy>=1.24` "
            "or use backend='flat' (same results, scalar kernels)"
        )
    return np
