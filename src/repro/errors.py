"""Exception hierarchy for the rotation-scheduling library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch the library's failures without
masking genuine programming bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Structural problem in a data-flow graph (unknown node, bad delay...)."""


class ZeroDelayCycleError(GraphError):
    """The zero-delay subgraph contains a cycle, so no static schedule exists.

    A legal DFG must have at least one delay on every cycle; otherwise the
    intra-iteration precedence relation is not a partial order.
    """

    def __init__(self, cycle):
        self.cycle = list(cycle)
        super().__init__(
            "zero-delay cycle: " + " -> ".join(str(v) for v in self.cycle)
        )


class RetimingError(ReproError):
    """A retiming is illegal for the graph it is applied to."""


class RotationError(ReproError):
    """A rotation operation cannot be performed (illegal size / set)."""


class SchedulingError(ReproError):
    """The scheduler could not produce or verify a schedule."""


class ResourceError(ReproError):
    """Problem in a resource model (unknown op, nonpositive count...)."""


class IllegalScheduleError(SchedulingError):
    """A schedule violates precedence or resource constraints.

    Raised by the verifiers in :mod:`repro.schedule.verify` when no legal
    retiming can realize the schedule (Theorem 2 of the paper: the constraint
    graph has a negative cycle).
    """


class SimulationError(ReproError):
    """The execution simulator detected a semantic violation."""
