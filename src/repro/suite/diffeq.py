"""The differential-equation solver benchmark (paper Figure 1).

The loop solves ``y'' + 3xy' + 3y = 0`` by Euler steps::

    while (x < a):
        x1 = x + dx
        u1 = u - (3 * x * u * dx) - (3 * y * dx)
        y1 = y + u * dx
        x = x1; u = u1; y = y1

Reconstruction notes (the paper gives the picture, not a netlist):

* 11 nodes — multipliers {0, 1, 2, 3, 4, 7} and adder-class ops
  {5, 6, 8, 9, 10}, matching Table 1 (6 mults, 5 adds).
* Node 10 is the loop test ``x < a``.  The body's entry operations carry a
  **zero-delay control dependence on node 10** — that is why the
  multiplier column of the paper's Figure 2-(a) is empty at CS 1, why node
  10 is a *root* of the original DAG, and why {1, 8} is not down-rotatable
  on its own while {10} and {10, 8, 1} are (Section 2's examples).
* Loop-carried values ``x, u, y`` come from nodes 8 (x1), 6 (u1) and
  9 (y1) through single-delay edges; 8 and 9 also feed themselves.

With this structure and the paper's list priority (descendant counts,
ties by the node order used here) the initial 1-adder/1-multiplier
unit-time schedule is *exactly* Figure 2-(a) (length 8), and the two
size-1 down-rotations give Figures 2-(b) (7) and 2-(c) (6) — the tests in
``tests/integration/test_paper_figures.py`` pin all three tables
cell-by-cell.

Check against Table 1 (add = 1 CS, mult = 2 CS): CP = 7 (path
``10 -> 1 -> 3 -> 5 -> 6``), IB = 6 (cycle ``6 -> 0 -> 3 -> 5 -> 6``
with one delay).
"""

from __future__ import annotations

from typing import Dict

from repro.dfg.graph import DFG

#: default numeric parameters for simulation
DEFAULT_PARAMS: Dict[str, float] = {"dx": 0.05, "a": 1.0, "x0": 0.0, "u0": 1.0, "y0": 0.3}


def diffeq(params: Dict[str, float] | None = None) -> DFG:
    """Build the differential-equation solver DFG.

    Args:
        params: numeric constants/initial values for the execution
            simulator (keys ``dx``, ``a``, ``x0``, ``u0``, ``y0``);
            defaults to :data:`DEFAULT_PARAMS`.
    """
    p = dict(DEFAULT_PARAMS)
    if params:
        p.update(params)
    dx, a = p["dx"], p["a"]
    x0, u0, y0 = p["x0"], p["u0"], p["y0"]

    g = DFG("diffeq")
    # Node order encodes the paper's tie-breaking (see module docstring).
    g.add_node(10, "cmp", label="x<a", func=lambda x: 1.0 if x < a else 0.0)
    g.add_node(1, "mul", label="3*x", func=lambda _c, x: 3.0 * x)
    g.add_node(0, "mul", label="u*dx", func=lambda _c, u: u * dx)
    g.add_node(3, "mul", label="(3x)*(u dx)", func=lambda m1, m0: m1 * m0)
    g.add_node(2, "mul", label="3*y", func=lambda _c, y: 3.0 * y)
    g.add_node(8, "add", label="x+dx", func=lambda _c, x: x + dx)
    g.add_node(5, "sub", label="u-3xudx", func=lambda u, m3: u - m3)
    g.add_node(4, "mul", label="(3y)*dx", func=lambda m2: m2 * dx)
    g.add_node(7, "mul", label="u*dx'", func=lambda _c, u: u * dx)
    g.add_node(6, "sub", label="u1", func=lambda s1, m4: s1 - m4)
    g.add_node(9, "add", label="y1", func=lambda y, m7: y + m7)

    # loop test reads the previous iteration's x1
    g.add_edge(8, 10, 1, init=[x0])

    # control dependence: the test gates the body's entry operations
    for root in (1, 0, 2, 8, 7):
        g.add_edge(10, root, 0)

    # u1 = u - (3x)(u dx) - (3y)(dx)
    g.add_edge(8, 1, 1, init=[x0])      # x into 3*x
    g.add_edge(6, 0, 1, init=[u0])      # u into u*dx
    g.add_edge(1, 3, 0)
    g.add_edge(0, 3, 0)
    g.add_edge(9, 2, 1, init=[y0])      # y into 3*y
    g.add_edge(6, 5, 1, init=[u0])      # u into the first subtraction
    g.add_edge(3, 5, 0)
    g.add_edge(2, 4, 0)
    g.add_edge(5, 6, 0)
    g.add_edge(4, 6, 0)

    # x1 = x + dx (self-carried)
    g.add_edge(8, 8, 1, init=[x0])

    # y1 = y + u*dx (self-carried y; second u*dx multiplier)
    g.add_edge(6, 7, 1, init=[u0])
    g.add_edge(9, 9, 1, init=[y0])
    g.add_edge(7, 9, 0)

    return g
