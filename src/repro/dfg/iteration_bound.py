"""Iteration bound of a cyclic DFG (Renfors & Neuvo bound).

The iteration bound is the theoretical minimum static-schedule length over
all retimings and unlimited resources::

    IB(G) = max over cycles C of  ceil( t(C) / d(C) )

where ``t(C)`` sums the computation times of the nodes on the cycle and
``d(C)`` sums the delays on its edges.  The paper quotes the *ceiling* in
Table 1; :func:`iteration_bound` returns the exact rational
``max t(C)/d(C)`` and :func:`iteration_bound_ceil` the table value.

Two algorithms are provided and cross-checked in the tests:

* :func:`iteration_bound_enumerate` — enumerate simple cycles (fine for the
  paper's benchmark graphs, exponential in general);
* :func:`iteration_bound_parametric` — parametric shortest paths: a cycle of
  ratio greater than ``lambda`` exists iff the edge weights
  ``lambda * d(e) - t(src)`` admit a negative cycle.  Binary search over
  ``lambda`` plus a rational snap gives the exact bound in
  ``O(V * E * log)`` time.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId, Timing
from repro.dfg.analysis import topological_order  # validates zero-delay acyclicity
from repro.errors import GraphError, ZeroDelayCycleError


#: per-edge integer columns for the parametric probes:
#: ``(num_nodes, src_index, dst_index, delay, t(src))``.
ConstraintArrays = Tuple[int, List[int], List[int], List[int], List[int]]

#: graph -> {id(timing): (timing, graph epoch, arrays)}.  Same shape and
#: same staleness rule as ``repro.core.wrapping._WRAP_STATIC``: the strong
#: timing reference inside the value keeps the id stable for the entry's
#: lifetime, the outer keys die with their graphs, and the stored epoch
#: invalidates the entry after an in-place mutation (DFG versioned-mutation
#: protocol) — without it a MutableSchedulingSession edit followed by a
#: lower-bound check would probe stale constraint columns.
_ARRAYS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _constraint_arrays(graph: DFG, timing: Optional[Timing]) -> ConstraintArrays:
    """Compile the constraint graph once for the whole binary search.

    Every probe needs the same four per-edge numbers — source index,
    destination index, delay, and source computation time — so they are
    extracted from the object graph a single time and each probe becomes
    pure integer array arithmetic.  The compile itself is memoized per
    (graph, timing, epoch), so repeated bound queries on an unchanged
    graph (the QA lower-bound oracle runs once per fuzz cell; sessions
    re-check after every edit) skip the object-graph walk entirely.
    """
    per_graph = _ARRAYS_CACHE.get(graph)
    if per_graph is None:
        per_graph = {}
        _ARRAYS_CACHE[graph] = per_graph
    entry = per_graph.get(id(timing))
    if entry is not None and entry[0] is timing and entry[1] == graph.epoch:
        return entry[2]
    arrays = _compile_constraint_arrays(graph, timing)
    per_graph[id(timing)] = (timing, graph.epoch, arrays)
    return arrays


def _compile_constraint_arrays(graph: DFG, timing: Optional[Timing]) -> ConstraintArrays:
    """The raw object-graph walk behind :func:`_constraint_arrays`."""
    index = {v: i for i, v in enumerate(graph.nodes)}
    esrc: List[int] = []
    edst: List[int] = []
    edelay: List[int] = []
    etsrc: List[int] = []
    for e in graph.edges:
        esrc.append(index[e.src])
        edst.append(index[e.dst])
        edelay.append(e.delay)
        etsrc.append(graph.time(e.src, timing))
    return (graph.num_nodes, esrc, edst, edelay, etsrc)


def _arrays_have_cycle(arrays: ConstraintArrays, lam: Fraction, strict: bool) -> bool:
    """Does a cycle with ratio ``> lam`` (strict) / ``>= lam`` exist?

    Uses Bellman–Ford negative-cycle detection on integer edge weights
    ``a(e) = p * d(e) - q * t(src)`` where ``lam = p / q``:
    a cycle has weight sum ``< 0`` iff its time/delay ratio exceeds ``lam``.
    For the non-strict test, weights are scaled so that integer cycle sums
    ``<= 0`` become strictly negative.
    """
    n, esrc, edst, edelay, etsrc = arrays
    m = len(esrc)
    p, q = lam.numerator, lam.denominator
    scale = 1 if strict else m + 1
    sub = 0 if strict else 1
    weight = [(p * edelay[k] - q * etsrc[k]) * scale - sub for k in range(m)]

    # Bellman-Ford from a virtual source connected to every node (dist 0).
    dist = [0] * n
    for _ in range(n):
        changed = False
        for k in range(m):
            nd = dist[esrc[k]] + weight[k]
            if nd < dist[edst[k]]:
                dist[edst[k]] = nd
                changed = True
        if not changed:
            return False
    # one more pass: any further relaxation proves a negative cycle
    for k in range(m):
        if dist[esrc[k]] + weight[k] < dist[edst[k]]:
            return True
    return False


def _has_cycle_with_ratio(graph: DFG, timing: Optional[Timing], lam: Fraction, strict: bool) -> bool:
    """One-shot form of :func:`_arrays_have_cycle` (compiles, then probes)."""
    return _arrays_have_cycle(_constraint_arrays(graph, timing), lam, strict)


def _cycle_digraph(graph: DFG, timing: Optional[Timing]):
    """Simple digraph with min-delay parallel-edge collapse, for enumeration.

    When maximizing ``t(C)/d(C)``, a cycle always prefers the minimum-delay
    edge between any ordered node pair (node times are fixed), so parallel
    edges collapse without losing the maximum.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for e in graph.edges:
        if g.has_edge(e.src, e.dst):
            g[e.src][e.dst]["delay"] = min(g[e.src][e.dst]["delay"], e.delay)
        else:
            g.add_edge(e.src, e.dst, delay=e.delay)
    return g


def cycle_ratios(graph: DFG, timing: Optional[Timing] = None, limit: int = 100_000) -> List[Tuple[Fraction, List[NodeId]]]:
    """All simple-cycle ratios ``t(C)/d(C)`` with their node sequences.

    Raises :class:`GraphError` if more than ``limit`` cycles are found
    (switch to the parametric algorithm instead).
    """
    import networkx as nx

    topological_order(graph)  # raises ZeroDelayCycleError on illegal graphs
    g = _cycle_digraph(graph, timing)
    out: List[Tuple[Fraction, List[NodeId]]] = []
    for cycle in nx.simple_cycles(g):
        t = sum(graph.time(v, timing) for v in cycle)
        d = sum(
            g[cycle[i]][cycle[(i + 1) % len(cycle)]]["delay"] for i in range(len(cycle))
        )
        if d == 0:  # pragma: no cover - excluded by the zero-delay check
            raise ZeroDelayCycleError(cycle)
        out.append((Fraction(t, d), list(cycle)))
        if len(out) > limit:
            raise GraphError(f"more than {limit} simple cycles; use the parametric bound")
    return out


def iteration_bound_enumerate(graph: DFG, timing: Optional[Timing] = None) -> Fraction:
    """Exact iteration bound by simple-cycle enumeration."""
    ratios = cycle_ratios(graph, timing)
    if not ratios:
        return Fraction(0)
    return max(r for r, _ in ratios)


def critical_cycle(graph: DFG, timing: Optional[Timing] = None) -> Tuple[Fraction, List[NodeId]]:
    """The maximum-ratio cycle (bound, node sequence); ``(0, [])`` if acyclic.

    Ties between maximum-ratio cycles are broken by the lexicographically
    smallest sorted node-name sequence — ``nx.simple_cycles`` iterates
    hash-ordered sets, so without an explicit tie-break the winner would
    vary run to run with ``PYTHONHASHSEED``.
    """
    ratios = cycle_ratios(graph, timing)
    if not ratios:
        return Fraction(0), []
    best = max(r for r, _ in ratios)
    return min(
        ((r, c) for r, c in ratios if r == best),
        key=lambda rc: tuple(sorted(str(v) for v in rc[1])),
    )


def iteration_bound_parametric(graph: DFG, timing: Optional[Timing] = None) -> Fraction:
    """Exact iteration bound by parametric negative-cycle binary search.

    The constraint graph is compiled to integer arrays once
    (:func:`_constraint_arrays`) and reused by every probe — the binary
    search and the rational snap issue ~85 of them, so the object-graph
    walk is hoisted out of the loop entirely.
    """
    topological_order(graph)  # zero-delay legality check
    total_delay = graph.total_delay()
    if total_delay == 0:
        return Fraction(0)
    arrays = _constraint_arrays(graph, timing)
    if not _arrays_have_cycle(arrays, Fraction(0), strict=True):
        # no cycle with positive ratio => acyclic graph (times are positive)
        return Fraction(0)

    hi = sum(graph.time(v, timing) for v in graph.nodes)  # ratio <= total time
    lo_f, hi_f = 0.0, float(hi)
    for _ in range(80):
        mid = (lo_f + hi_f) / 2.0
        if _arrays_have_cycle(arrays, Fraction(mid).limit_denominator(10**9), strict=True):
            lo_f = mid
        else:
            hi_f = mid
    # Snap to an exact rational: lambda* = t(C)/d(C) has denominator <= total_delay.
    estimate = (lo_f + hi_f) / 2.0
    for dmax in (total_delay, 10 * total_delay, 10**6):
        candidate = Fraction(estimate).limit_denominator(dmax)
        if _arrays_exact_bound(arrays, candidate):
            return candidate
        # try the neighbours reachable within the residual interval
        for f in (lo_f, hi_f):
            candidate = Fraction(f).limit_denominator(dmax)
            if _arrays_exact_bound(arrays, candidate):
                return candidate
    raise GraphError("parametric iteration bound failed to converge")  # pragma: no cover


def _arrays_exact_bound(arrays: ConstraintArrays, lam: Fraction) -> bool:
    """``lam`` is the exact bound iff some cycle attains it and none exceeds it."""
    if lam <= 0:
        return False
    return _arrays_have_cycle(arrays, lam, strict=False) and not _arrays_have_cycle(
        arrays, lam, strict=True
    )


def _is_exact_bound(graph: DFG, timing: Optional[Timing], lam: Fraction) -> bool:
    """One-shot form of :func:`_arrays_exact_bound` (compiles, then probes)."""
    return _arrays_exact_bound(_constraint_arrays(graph, timing), lam)


def iteration_bound(
    graph: DFG,
    timing: Optional[Timing] = None,
    method: str = "auto",
) -> Fraction:
    """Exact iteration bound ``max over cycles of t(C)/d(C)``.

    Args:
        graph: the DFG (must have no zero-delay cycle).
        timing: op-type timing model; defaults to per-node times.
        method: ``"auto"`` (enumerate small graphs, else parametric),
            ``"enumerate"`` or ``"parametric"``.
    """
    if method == "enumerate":
        return iteration_bound_enumerate(graph, timing)
    if method == "parametric":
        return iteration_bound_parametric(graph, timing)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    if graph.num_nodes <= 60:
        try:
            return iteration_bound_enumerate(graph, timing)
        except GraphError:
            pass
    return iteration_bound_parametric(graph, timing)


def iteration_bound_ceil(graph: DFG, timing: Optional[Timing] = None, method: str = "auto") -> int:
    """The integer bound quoted in the paper's Table 1: ``ceil(IB)``."""
    bound = iteration_bound(graph, timing, method)
    return -(-bound.numerator // bound.denominator)
