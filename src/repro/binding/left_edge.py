"""Register binding by the left-edge algorithm.

Given the value lifetimes of a pipelined schedule's steady window, assign
each value instance to a concrete register so that no register holds two
overlapping values.  The classic left-edge algorithm (sort by birth,
greedily reuse the register that freed up earliest) is optimal for
interval graphs; applied to the unrolled steady window it yields a valid
binding whose register count matches the lifetime analyzer's requirement
for non-wrapping profiles and is a tight upper bound otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.schedule import Schedule
from repro.binding.lifetimes import Lifetime, LifetimeAnalyzer


@dataclass(frozen=True)
class RegisterBinding:
    """A complete register assignment for a steady window."""

    registers_used: int
    assignment: Dict[Tuple[NodeId, int], int]  # (node, iteration) -> register

    def register_of(self, node: NodeId, iteration: int) -> int:
        return self.assignment[(node, iteration)]

    def values_in_register(self, index: int) -> List[Tuple[NodeId, int]]:
        return sorted(
            (key for key, reg in self.assignment.items() if reg == index),
            key=lambda key: (str(key[0]), key[1]),
        )


def left_edge_binding(lifetimes: List[Lifetime]) -> RegisterBinding:
    """Bind lifetimes to registers with the left-edge algorithm.

    Zero-span lifetimes (values consumed the instant they appear, or
    never) need no register and are assigned -1.
    """
    live = sorted(
        (lt for lt in lifetimes if lt.span > 0),
        key=lambda lt: (lt.birth, lt.death, str(lt.node)),
    )
    assignment: Dict[Tuple[NodeId, int], int] = {
        (lt.node, lt.iteration): -1 for lt in lifetimes if lt.span == 0
    }
    free_at: List[int] = []  # per register: CS at which it becomes free
    for lt in live:
        chosen = None
        for reg, free in enumerate(free_at):
            if free <= lt.birth:
                chosen = reg
                break
        if chosen is None:
            chosen = len(free_at)
            free_at.append(lt.death)
        else:
            free_at[chosen] = lt.death
        assignment[(lt.node, lt.iteration)] = chosen
    return RegisterBinding(registers_used=len(free_at), assignment=assignment)


def bind_schedule(
    schedule: Schedule,
    retiming: Retiming,
    period: Optional[int] = None,
    iterations: Optional[int] = None,
) -> RegisterBinding:
    """Analyze lifetimes and bind the steady window in one call."""
    analyzer = LifetimeAnalyzer(schedule, retiming, period)
    report = analyzer.analyze(iterations)
    # bind only the steady interior: drop the first and last pipeline fill
    lo = analyzer.depth * analyzer.period
    horizon = max(lt.death for lt in report.lifetimes) if report.lifetimes else 0
    interior = [
        lt for lt in report.lifetimes if lt.birth >= lo and lt.death <= horizon
    ]
    return left_edge_binding(interior)
