"""Legality verification of static schedules (paper Lemma 1 / Theorem 2).

A schedule ``s`` is a legal *static* schedule of a cyclic DFG iff some legal
retiming ``r`` makes it a legal DAG schedule of ``Gr``.  Theorem 2 reduces
finding such an ``r`` to a system of difference constraints::

    r(v) - r(u) <= d(u, v)          for every edge
    r(v) - r(u) <= d(u, v) - 1      additionally when s(u) + t(u) > s(v)

which is the dual of a single-source shortest-path problem: build the
constraint graph ``H`` (pseudo-source ``v0`` with 0-length edges to every
node), run Bellman–Ford, and read off ``r(v) = -Sh(v)``.  A negative cycle
in ``H`` proves the schedule illegal.

Because shortest paths produce the *pointwise-minimal* nonnegative solution,
the retiming returned here also has minimal ``max r`` — it is exactly the
paper's Section 3.2 depth-reduction algorithm (re-exported with that name in
:mod:`repro.core.depth`).

The same module hosts the modulo-schedule (wrapped schedule) checks shared
by Section 4's wrapping and the modulo-scheduling baseline.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.errors import IllegalScheduleError
from repro.obs import tracer as _obs


def realizing_retiming(schedule: Schedule, period: Optional[int] = None) -> Retiming:
    """Find a legal retiming realizing ``schedule`` with minimal depth.

    Args:
        schedule: the static schedule to realize.
        period: when given, treat the schedule as *wrapped* with this
            initiation interval — the precedence condition becomes
            ``s(u) + t(u) <= s(v) + period * dr(e)``, so the constraint
            bound is ``d(e) - ceil((finish(u) - s(v)) / period)``.  When
            None the plain Theorem 2 rule applies (bound drops by exactly 1
            when ``finish(u) > s(v)``), which coincides with
            ``period = schedule span``.

    Returns:
        A normalized retiming ``r`` such that the schedule is a legal DAG
        schedule of ``Gr`` and ``1 + max r`` (the pipeline depth) is as
        small as possible (shortest paths give the pointwise-minimal
        nonnegative solution).

    Raises:
        IllegalScheduleError: when the constraint graph has a negative
            cycle, i.e. no retiming realizes the schedule.
    """
    tr = _obs.active
    if tr.enabled:
        tr.begin("retiming.realize")
        try:
            return _realizing_retiming_inner(schedule, period)
        finally:
            tr.end()
    return _realizing_retiming_inner(schedule, period)


def _realizing_retiming_inner(
    schedule: Schedule, period: Optional[int] = None
) -> Retiming:
    graph = schedule.graph
    # Difference constraints r(dst) - r(src) <= bound, as H-edges src->dst.
    h_edges: List[Tuple[NodeId, NodeId, int]] = []
    for e in graph.edges:
        overrun = schedule.finish(e.src) - schedule.start(e.dst)
        if period is None:
            need = 1 if overrun > 0 else 0
        else:
            need = max(0, -(-overrun // period))
        h_edges.append((e.src, e.dst, e.delay - need))

    # Bellman-Ford from the pseudo-source (implicit: all distances start 0).
    dist: Dict[NodeId, int] = {v: 0 for v in graph.nodes}
    for _ in range(graph.num_nodes):
        changed = False
        for u, v, w in h_edges:
            nd = dist[u] + w
            if nd < dist[v]:
                dist[v] = nd
                changed = True
        if not changed:
            break
    else:
        for u, v, w in h_edges:
            if dist[u] + w < dist[v]:
                raise IllegalScheduleError(
                    "no retiming realizes this schedule "
                    f"(negative cycle through edge {u!r}->{v!r})"
                )

    # dist is the pointwise-maximal solution of r(v) - r(u) <= w with r <= 0
    # (Bellman-Ford from an implicit source); normalizing lifts min r to 0.
    return Retiming(dist).normalized(graph)


def is_legal_static_schedule(schedule: Schedule) -> bool:
    """Lemma 1 check: resource-feasible and realizable by some retiming."""
    if not schedule.is_resource_feasible():
        return False
    try:
        realizing_retiming(schedule)
        return True
    except IllegalScheduleError:
        return False


def check_schedule(schedule: Schedule, r: Optional[Retiming] = None) -> List[str]:
    """All problems of a schedule, as human-readable strings.

    With ``r`` given, precedence is checked against that specific retiming;
    otherwise a realizing retiming is searched for.
    """
    problems = [str(c) for c in schedule.resource_conflicts()]
    if r is not None:
        if not r.is_legal(schedule.graph):
            problems.append("retiming itself is illegal for the graph")
        problems.extend(schedule.dag_violations(r))
    else:
        try:
            realizing_retiming(schedule)
        except IllegalScheduleError as exc:
            problems.append(str(exc))
    return problems


# ----------------------------------------------------------------------
# modulo-schedule (wrapped schedule) checks
# ----------------------------------------------------------------------
def modulo_resource_conflicts(
    graph: DFG,
    model: ResourceModel,
    start: Mapping[NodeId, int],
    period: int,
) -> List[str]:
    """Unit over-subscription of the modulo reservation table.

    A node occupying CS ``s + off`` occupies slot ``(s + off) mod period``
    of every repetition of the static schedule.
    """
    if period <= 0:
        raise IllegalScheduleError(f"nonpositive period {period}")
    out: List[str] = []
    table: Dict[Tuple[str, int], List[NodeId]] = {}
    for v in graph.nodes:
        op = graph.op(v)
        unit = model.unit_for_op(op)
        if not unit.pipelined and unit.latency > period:
            # Report it, but keep going: every other latency offender and
            # all reservation-table over-subscriptions matter too.
            out.append(
                f"{v!r}: non-pipelined latency {unit.latency} exceeds period {period}"
            )
        for off in model.busy_offsets(op):
            table.setdefault((unit.name, (start[v] + off) % period), []).append(v)
    for (unit_name, slot), nodes in sorted(table.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        available = model.unit(unit_name).count
        if len(nodes) > available:
            out.append(
                f"slot {slot}: {len(nodes)}/{available} {unit_name} busy "
                f"({', '.join(map(str, nodes))})"
            )
    return out


def modulo_precedence_violations(
    graph: DFG,
    model: ResourceModel,
    start: Mapping[NodeId, int],
    period: int,
    r: Optional[Retiming] = None,
) -> List[str]:
    """Inter-iteration precedence: ``s(u) + t(u) <= s(v) + period * dr(e)``.

    With ``r`` None the original delays are used (the modulo-scheduling
    baseline's convention, where ``start`` values may exceed the period and
    encode the iteration skew directly).
    """
    out = []
    for e in graph.edges:
        dr = e.delay if r is None else r.dr(e)
        lhs = start[e.src] + model.latency(graph.op(e.src))
        rhs = start[e.dst] + period * dr
        if lhs > rhs:
            out.append(f"{e.src}->{e.dst} (dr={dr}): {lhs} > {rhs}")
    return out


def is_legal_modulo_schedule(
    graph: DFG,
    model: ResourceModel,
    start: Mapping[NodeId, int],
    period: int,
    r: Optional[Retiming] = None,
) -> bool:
    """Full wrapped-schedule legality (resources modulo period + precedence)."""
    return not modulo_resource_conflicts(graph, model, start, period) and not (
        modulo_precedence_violations(graph, model, start, period, r)
    )
