"""Numpy kernels over :class:`~repro.core.vector.columns.VectorColumns`.

Array re-implementations of the five flat hot paths — retimed delays,
zero-delay DAG extraction, topological layering, priority columns, and
the wrap-period search — each *value-identical* to its scalar
counterpart in :mod:`repro.core.flat.kernels`:

========================    ==================================================
:func:`vec_retimed_delays`  :func:`repro.core.flat.kernels.retimed_delays`
:func:`vec_zero_edges` /
:func:`vec_zero_delay_lists`  :func:`~repro.core.flat.kernels.zero_delay_lists`
:func:`vec_topo_layers`     :func:`~repro.core.flat.kernels.flat_topological_order`
                            (layers instead of a FIFO order — see below)
:func:`vec_priority_columns`  :func:`~repro.core.flat.kernels.flat_priority_columns`
:func:`vec_wrap_period`     :func:`~repro.core.flat.kernels.flat_wrap_period`
========================    ==================================================

One deliberate divergence: the scalar Kahn produces a specific FIFO
order, the layered Kahn here produces level sets.  Every consumer of an
order in this library (reach, heights, asap/alap, sort keys) is a
fixpoint over *any* valid topological order, so the priority columns,
sort keys and periods still come out bit-identical — the property tests
in ``tests/core/test_vector.py`` pin exactly that.

List-schedule and latest-fit placement are *not* re-implemented: their
inner loop is data-dependent and sequential (each placement changes the
occupancy the next probe reads), so the vector engine reuses the scalar
``flat_list_schedule`` / ``flat_latest_fit`` and instead memoizes whole
rotation outcomes (see :mod:`repro.core.vector.engine`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.core.vector._compat import require_numpy


# ----------------------------------------------------------------------
# kernel 1: retimed edge delays
# ----------------------------------------------------------------------
def vec_retimed_delays(vc, rv_arr):
    """``dr`` per edge position: one gather-add over the edge columns."""
    return vc.edelay + rv_arr[vc.esrc] - rv_arr[vc.edst]


# ----------------------------------------------------------------------
# kernel 2: zero-delay DAG extraction + topological layers
# ----------------------------------------------------------------------
def vec_zero_edges(vc, dr_arr):
    """Deduped ``(src, dst)`` arrays of the zero-delay edges, edge order.

    Multi-edges collapse to their first occurrence — the same pair set,
    in the same order, that ``zero_delay_lists`` keeps.
    """
    np = require_numpy()
    mask = dr_arr == 0
    zs = vc.esrc[mask]
    zd = vc.edst[mask]
    if zs.size > 1:
        pair = zs * vc.n + zd
        _, first = np.unique(pair, return_index=True)
        if first.size != zs.size:
            keep = np.sort(first)
            zs = zs[keep]
            zd = zd[keep]
    return zs, zd


def vec_zero_delay_lists(n, zs, zd) -> Tuple[List[List[int]], List[List[int]]]:
    """``(zsucc, zpred)`` Python index lists from the deduped edge arrays.

    Bit-identical to :func:`~repro.core.flat.kernels.zero_delay_lists`:
    a stable sort by endpoint preserves edge order within each node, so
    every per-node list enumerates neighbours exactly as the scalar
    single-pass build does.  (The output is list-of-lists because the
    scalar placement kernels consume it directly.)
    """
    np = require_numpy()
    zsucc: List[List[int]] = [[] for _ in range(n)]
    zpred: List[List[int]] = [[] for _ in range(n)]
    if zs.size:
        o = np.argsort(zs, kind="stable")
        srcs = zs[o].tolist()
        dsts = zd[o].tolist()
        for u, w in zip(srcs, dsts):
            zsucc[u].append(w)
        o = np.argsort(zd, kind="stable")
        srcs = zs[o].tolist()
        dsts = zd[o].tolist()
        for u, w in zip(srcs, dsts):
            zpred[w].append(u)
    return zsucc, zpred


def vec_topo_layers(n, src, dst):
    """Topological *layers* of the deduped zero-delay edge set.

    Returns a list of index arrays — layer 0 holds the nodes with no
    predecessors, layer k the nodes released when layer k-1 is peeled —
    or ``None`` on a cycle.  Pass ``(dst, src)`` swapped for reverse
    layers (longest-path-to-sink levels).  Concatenating the layers
    yields a valid topological order; it differs from the scalar FIFO
    Kahn's order, which is fine for every fixpoint consumer here.
    """
    np = require_numpy()
    cnt = np.bincount(src, minlength=n)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cnt, out=ptr[1:])
    order = np.argsort(src, kind="stable")
    d_sorted = dst[order]
    indeg = np.bincount(dst, minlength=n)
    frontier = np.flatnonzero(indeg == 0)
    layers = []
    emitted = 0
    while frontier.size:
        layers.append(frontier)
        emitted += frontier.size
        c = cnt[frontier]
        total = int(c.sum())
        if not total:
            break
        csum = np.cumsum(c)
        idx = np.repeat(ptr[frontier] - (csum - c), c) + np.arange(total)
        targets = d_sorted[idx]
        indeg -= np.bincount(targets, minlength=n)
        cand = np.unique(targets)
        frontier = cand[indeg[cand] == 0]
    return layers if emitted == n else None


# ----------------------------------------------------------------------
# kernel 3: priority columns (reach / heights / mobility -> sort keys)
# ----------------------------------------------------------------------
def _edge_groups(np, layers, level_of, endpoints):
    """Edges bucketed by the layer of one endpoint: ``(perm, ptr)``.

    ``perm`` permutes the edge arrays so the edges whose ``endpoints``
    value sits in layer ``l`` occupy ``perm[ptr[l]:ptr[l+1]]``.
    """
    elev = level_of[endpoints]
    perm = np.argsort(elev, kind="stable")
    cnt = np.bincount(elev, minlength=len(layers))
    ptr = np.zeros(len(layers) + 1, dtype=np.int64)
    np.cumsum(cnt, out=ptr[1:])
    return perm, ptr


def _levels(np, n, layers):
    lev = np.zeros(n, dtype=np.int64)
    for i, layer in enumerate(layers):
        lev[layer] = i
    return lev


def vec_reach(n, zs, zd, rlayers) -> List[int]:
    """Zero-delay descendant sets as Python int bitmasks (bit i = node i).

    A dense ``n x ceil(n/64)`` uint64 bit-matrix propagated sinks-up by
    reverse layers; rows convert losslessly to the arbitrary-precision
    masks :func:`~repro.core.flat.kernels.flat_reach` produces.
    """
    np = require_numpy()
    nw = (n + 63) >> 6 or 1
    reach = np.zeros((n, nw), dtype=np.uint64)
    idx = np.arange(n)
    bits = np.zeros((n, nw), dtype=np.uint64)
    bits[idx, idx >> 6] = np.uint64(1) << (idx & 63).astype(np.uint64)
    rlevel = _levels(np, n, rlayers)
    perm, ptr = _edge_groups(np, rlayers, rlevel, zs)
    for l in range(1, len(rlayers)):
        sel = perm[ptr[l]:ptr[l + 1]]
        if sel.size:
            np.bitwise_or.at(reach, zs[sel], reach[zd[sel]] | bits[zd[sel]])
    return [int.from_bytes(row.tobytes(), "little") for row in reach]


def _popcounts(np, masks: Sequence[int]) -> List[int]:
    return [m.bit_count() for m in masks]


def vec_heights(times, n, zs, zd, rlayers) -> List[int]:
    """Longest zero-delay path (inclusive of own time), sinks-up layers."""
    np = require_numpy()
    h = np.zeros(n, dtype=np.int64)
    rlevel = _levels(np, n, rlayers)
    perm, ptr = _edge_groups(np, rlayers, rlevel, zs)
    h[rlayers[0]] = times[rlayers[0]]
    for l in range(1, len(rlayers)):
        sel = perm[ptr[l]:ptr[l + 1]]
        if sel.size:
            np.maximum.at(h, zs[sel], h[zd[sel]])
        layer = rlayers[l]
        h[layer] += times[layer]
    return h.tolist()


def vec_mobility(times, n, zs, zd, rlayers, flayers) -> List[int]:
    """``asap - alap`` per node, propagated by forward + reverse layers."""
    np = require_numpy()
    asap = np.zeros(n, dtype=np.int64)
    flevel = _levels(np, n, flayers)
    fperm, fptr = _edge_groups(np, flayers, flevel, zd)
    for l in range(1, len(flayers)):
        sel = fperm[fptr[l]:fptr[l + 1]]
        if sel.size:
            np.maximum.at(asap, zd[sel], asap[zs[sel]] + times[zs[sel]])
    deadline = int((asap + times).max()) if n else 0
    alap = deadline - times
    rlevel = _levels(np, n, rlayers)
    rperm, rptr = _edge_groups(np, rlayers, rlevel, zs)
    for l in range(1, len(rlayers)):
        sel = rperm[rptr[l]:rptr[l + 1]]
        if sel.size:
            np.minimum.at(alap, zs[sel], alap[zd[sel]] - times[zs[sel]])
    return (asap - alap).tolist()


def vec_priority_columns(priority: str, times, n, zs, zd):
    """``(reach, heights, skey)`` for a named priority — or ``None`` on a
    zero-delay cycle.  Value-identical to
    :func:`~repro.core.flat.kernels.flat_priority_columns` (same masks,
    same heights, same flattened sort-key tuples)."""
    rlayers = vec_topo_layers(n, zd, zs)
    if rlayers is None:
        return None
    if priority == "descendants":
        reach = vec_reach(n, zs, zd, rlayers)
        skey = [(-c, v) for v, c in enumerate(_popcounts(None, reach))]
        return reach, None, skey
    if priority == "height":
        heights = vec_heights(times, n, zs, zd, rlayers)
        return None, heights, [(-h, v) for v, h in enumerate(heights)]
    if priority == "combined":
        reach = vec_reach(n, zs, zd, rlayers)
        heights = vec_heights(times, n, zs, zd, rlayers)
        pops = _popcounts(None, reach)
        return reach, heights, [
            (-heights[v], -pops[v], v) for v in range(n)
        ]
    if priority == "mobility":
        flayers = vec_topo_layers(n, zs, zd)
        assert flayers is not None  # reverse peel already proved acyclicity
        mob = vec_mobility(times, n, zs, zd, rlayers, flayers)
        return None, None, [(-m, v) for v, m in enumerate(mob)]
    raise ValueError(f"no vector sort keys for priority {priority!r}")


# ----------------------------------------------------------------------
# kernel 5: the wrap() period search
# ----------------------------------------------------------------------
def vec_wrap_period(vc, starts, dr, extras=None) -> int:
    """Minimum modulo-legal period of a *normalized* start vector.

    Identical search to :func:`~repro.core.flat.kernels.flat_wrap_period`
    — the precedence system collapses to one feasible interval via
    vectorized ceil/floor divisions, and each candidate period is checked
    by bucketing every occupied slot with one ``bincount`` against the
    per-unit instance caps.
    """
    np = require_numpy()
    n = vc.n
    fin = starts + vc.node_latency
    span = int(fin.max()) if n else 0
    lo = int(starts.max()) + 1 if n else 0
    if vc.min_occ > lo:
        lo = vc.min_occ
    if lo < 1:
        lo = 1
    hi = span
    if vc.m:
        gap = fin[vc.esrc] - starts[vc.edst]
        pos = dr > 0
        if pos.any():
            need = int((-((-gap[pos]) // dr[pos])).max())
            if need > lo:
                lo = need
        neg = dr < 0
        if neg.any():
            cap_p = int((gap[neg] // dr[neg]).min())
            if cap_p < hi:
                hi = cap_p
        if bool(((dr == 0) & (gap > 0)).any()):  # pragma: no cover - illegal input
            hi = lo - 1
            if extras is not None:
                extras["wrap_interval_collapses"] = (
                    extras.get("wrap_interval_collapses", 0) + 1
                )
    occ_uid, caps = vc.occ_uid, vc.caps
    occ_s = starts[vc.occ_node] + vc.occ_off
    nunits = vc.nunits
    for period in range(lo, hi + 1):
        key = occ_uid * period + occ_s % period
        counts = np.bincount(key, minlength=nunits * period)
        if bool((counts.reshape(nunits, period) <= caps[:, None]).all()):
            return period
    raise SchedulingError(
        f"schedule of span {span} is not modulo-legal at its own span — "
        "the input was not a legal DAG schedule of G_R"
    )  # pragma: no cover - impossible for legal inputs
