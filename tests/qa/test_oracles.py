"""Each oracle must fire on a deliberately broken input."""

import pytest

from repro.dfg import DFG
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.qa import (
    check_lower_bound,
    check_modulo,
    check_parity,
    check_retiming,
    check_roundtrip,
    check_semantics,
)
from repro.suite.random_graphs import attach_affine_funcs, random_dsp_kernel


class TestRoundtripOracle:
    def test_clean_on_benchmark(self):
        g = random_dsp_kernel(3, seed=1)
        assert check_roundtrip(g) == []

    def test_fires_on_unencodable_id(self):
        # frozenset ids have no typed encoding; they decode back as strings
        g = DFG("weird")
        g.add_node(frozenset({"a"}), "add")
        fails = check_roundtrip(g)
        assert fails and fails[0].oracle == "roundtrip"

    def test_fires_when_serializer_drops_inits(self, monkeypatch):
        # revert the round-trip fix in spirit: strip inits post-serialization
        from repro.dfg import io as dfg_io

        orig = dfg_io.to_json_dict

        def lossy(graph):
            data = orig(graph)
            for ed in data["edges"]:
                ed.pop("init", None)
            return data

        monkeypatch.setattr(dfg_io, "to_json_dict", lossy)
        fails = check_roundtrip(random_dsp_kernel(3, seed=1))
        assert fails and fails[0].oracle == "roundtrip"
        assert "edges changed" in fails[0].message


class TestRetimingOracle:
    def test_fires_on_negative_dr(self):
        g = DFG()
        g.add_node("a", "add")
        g.add_node("b", "add")
        g.add_edge("a", "b", 0)
        fails = check_retiming(g, Retiming({"b": 3}))
        assert fails and fails[0].oracle == "retiming"
        assert "dr=-3" in fails[0].message

    def test_clean_on_legal(self):
        g = DFG()
        g.add_node("a", "add")
        g.add_node("b", "add")
        g.add_edge("a", "b", 1)
        assert check_retiming(g, Retiming({"b": 1})) == []


class TestLowerBoundOracle:
    def test_fires_when_length_beats_bound(self, tiny_loop):
        model = ResourceModel.adders_mults(1, 1)
        fails = check_lower_bound(tiny_loop, model, 1)
        assert fails and fails[0].oracle == "lower_bound"

    def test_clean_at_bound(self, tiny_loop):
        model = ResourceModel.adders_mults(1, 1)
        assert check_lower_bound(tiny_loop, model, 10) == []


class TestModuloOracle:
    def test_fires_on_oversubscription(self):
        g = DFG()
        g.add_node("m1", "mul")
        g.add_node("m2", "mul")
        model = ResourceModel.adders_mults(1, 1)
        fails = check_modulo(g, model, {"m1": 0, "m2": 2}, 2)
        assert fails and all(f.oracle == "modulo" for f in fails)

    def test_fires_on_broken_precedence(self):
        g = DFG()
        g.add_node("a", "add")
        g.add_node("b", "add")
        g.add_edge("a", "b", 0)
        model = ResourceModel.adders_mults(2, 1)
        # b starts before a finishes with dr = 0
        fails = check_modulo(g, model, {"a": 0, "b": 0}, 4, Retiming.zero())
        assert fails and "precedence" in fails[0].message


class TestSemanticsOracle:
    def test_fires_on_timing_violation(self):
        g = DFG()
        g.add_node("a", "add", func=lambda: 1.0)
        g.add_node("b", "add", func=lambda x: x + 1.0)
        g.add_edge("a", "b", 0)
        model = ResourceModel.adders_mults(2, 1)
        # b reads a in the same CS — the executor must flag it
        sched = Schedule(g, model, {"a": 0, "b": 0})
        fails = check_semantics(sched, Retiming.zero(), 1, iterations=4)
        assert fails and fails[0].oracle == "semantics"
        assert "raised" in fails[0].message

    def test_fires_on_value_divergence(self):
        # Two independent nodes sharing a call counter: the pipeline's
        # global interleaving differs from the reference's per-iteration
        # order, so order-sensitive funcs diverge — a deliberate break of
        # the purity the semantic oracle assumes.
        calls = [0]

        def stateful():
            calls[0] += 1
            return float(calls[0])

        g = DFG()
        g.add_node("p", "add", func=stateful)
        g.add_node("q", "add", func=stateful)
        model = ResourceModel.adders_mults(2, 1)
        sched = Schedule(g, model, {"p": 0, "q": 0})
        fails = check_semantics(sched, Retiming({"p": 1}), 1, iterations=6)
        assert fails and fails[0].oracle == "semantics"
        assert "diverge" in fails[0].message

    def test_clean_on_affine_kernel(self):
        from repro.core.scheduler import rotation_schedule

        g = attach_affine_funcs(random_dsp_kernel(3, seed=2), seed=2)
        model = ResourceModel.adders_mults(2, 1)
        result = rotation_schedule(g, model)
        assert check_semantics(result.schedule, result.retiming, result.length) == []


class TestParityOracle:
    def test_fires_on_any_divergence(self):
        from repro.core.scheduler import rotation_schedule

        g = attach_affine_funcs(random_dsp_kernel(3, seed=0), seed=0)
        model = ResourceModel.adders_mults(2, 1)
        a = rotation_schedule(g, model, use_engine=True)
        b = rotation_schedule(g, model, use_engine=False)
        assert check_parity(a, b) == []  # the engine is parity-clean
        import dataclasses

        skewed = dataclasses.replace(b, length=b.length + 1, depth=b.depth + 2)
        fails = check_parity(a, skewed)
        oracles = {f.oracle for f in fails}
        assert oracles == {"parity"}
        assert any("length" in f.message for f in fails)
        assert any("depth" in f.message for f in fails)
