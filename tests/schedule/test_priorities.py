"""Unit tests for list-scheduling priority functions."""

import pytest

from repro.schedule import (
    PRIORITIES,
    combined_priority,
    descendant_priority,
    get_priority,
    height_priority,
    mobility_priority,
)
from repro.suite import diffeq, PAPER_TIMING


class TestPriorities:
    def test_descendant_priority_matches_paper(self):
        g = diffeq()
        prio = descendant_priority(g)
        assert prio[10] == (10,)
        assert prio[1] == (3,)
        assert prio[8] == (0,)

    def test_height_priority(self):
        g = diffeq()
        prio = height_priority(g, PAPER_TIMING)
        # node 10 heads the longest chain 10-1-3-5-6 = 7
        assert prio[10] == (7,)
        assert prio[6] == (1,)

    def test_mobility_priority_critical_first(self):
        g = diffeq()
        prio = mobility_priority(g, PAPER_TIMING)
        # critical-path nodes have slack 0 (priority key 0, the maximum)
        for v in (10, 1, 3, 5, 6):
            assert prio[v] == (0,)
        # off-critical nodes have negative keys
        assert prio[9] < (0,)

    def test_combined_priority_is_lexicographic(self):
        g = diffeq()
        prio = combined_priority(g, PAPER_TIMING)
        assert len(prio[10]) == 2
        assert prio[10] > prio[1]

    def test_registry_and_lookup(self):
        assert set(PRIORITIES) == {"descendants", "height", "mobility", "combined"}
        assert get_priority("height") is height_priority
        fn = lambda g, t, r: {}
        assert get_priority(fn) is fn
        with pytest.raises(ValueError, match="unknown priority"):
            get_priority("bogus")

    def test_all_priorities_cover_all_nodes(self):
        g = diffeq()
        for name, fn in PRIORITIES.items():
            prio = fn(g, PAPER_TIMING, None)
            assert set(prio) == set(g.nodes), name
