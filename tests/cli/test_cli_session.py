"""The ``rotsched session`` subcommand: edit scripts through the session."""

import json

from repro.cli import main


class TestSessionCommand:
    def test_pinned_script_name(self, capsys):
        assert main(["session", "elliptic", "drop-mult", "-r", "3A2M"]) == 0
        out = capsys.readouterr().out
        assert "base solve" in out
        assert "edit 0 (remove_node)" in out
        assert "repairs 1" in out

    def test_json_script_file(self, tmp_path, capsys):
        script = tmp_path / "edits.json"
        script.write_text(json.dumps([
            {"edit": "set_resource_counts", "counts": {"adder": 2}},
            {"edit": "set_exec_time", "node": "c5", "time": 2},
        ]))
        assert main(["session", "elliptic", str(script), "-r", "3A2M"]) == 0
        out = capsys.readouterr().out
        assert "edit 0 (set_resource_counts)" in out
        assert "edit 1 (set_exec_time)" in out
        assert "repairs 2" in out

    def test_wrapped_edits_object_and_compare(self, tmp_path, capsys):
        script = tmp_path / "edits.json"
        script.write_text(json.dumps(
            {"edits": [{"edit": "remove_node", "node": "M7"}]}
        ))
        assert main([
            "session", "elliptic", str(script), "-r", "3A2M", "--compare",
        ]) == 0
        out = capsys.readouterr().out
        assert "vs scratch" in out
        # repair and scratch agree, so no divergence marker is printed
        assert "scratch length" not in out

    def test_solve_mode_and_render(self, tmp_path, capsys):
        script = tmp_path / "edits.json"
        script.write_text(json.dumps([{"edit": "remove_node", "node": "M7"}]))
        assert main([
            "session", "elliptic", str(script),
            "-r", "3A2M", "--mode", "solve", "--render",
        ]) == 0
        out = capsys.readouterr().out
        assert "full solves 2" in out
        assert "CS" in out

    def test_naive_backend(self, tmp_path, capsys):
        script = tmp_path / "edits.json"
        script.write_text(json.dumps([{"edit": "set_resource_counts", "counts": {"adder": 1}}]))
        assert main([
            "session", "diffeq", str(script), "-r", "2A1M", "--backend", "naive",
        ]) == 0
        out = capsys.readouterr().out
        assert "repairs 1" in out
