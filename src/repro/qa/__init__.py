"""repro.qa — differential fuzzing and schedule certification.

Turns the one-off parity tests into a permanent correctness harness:
seeded random graphs x resource configs x scheduler paths, each certified
against the oracle stack (retiming legality, lower bound, modulo
legality, engine parity, semantic equivalence, serialization round-trip),
with failing cells delta-debugged to minimal repro bundles.

Entry points::

    from repro.qa import run_fuzz, smoke_cases
    report = run_fuzz(smoke_cases(), out_dir="artifacts/qa")
    assert not report.failures, report.summary()

or from the shell: ``rotsched fuzz --smoke``.
"""

from repro.qa.oracles import (
    OracleFailure,
    certify_rotation,
    certify_wrapped,
    check_lower_bound,
    check_modulo,
    check_parity,
    check_retiming,
    check_roundtrip,
    check_semantics,
)
from repro.qa.shrink import shrink_graph
from repro.qa.bundle import ReproBundle, load_bundle, replay_bundle, write_bundle
from repro.qa.incremental import (
    PINNED_EDIT_SCRIPTS,
    check_incremental_session,
    random_edit_script,
)
from repro.qa.serve import (
    GOLDEN_REQUESTS,
    ServeOracleReport,
    check_envelope,
    check_serve_differential,
)
from repro.qa.runner import (
    BATCHED_PATHS,
    DEFAULT_CONFIGS,
    PATHS,
    FailureRecord,
    FuzzCase,
    FuzzReport,
    batch_groups,
    config_model,
    grid_cases,
    run_cell,
    run_cell_on_graph,
    run_fuzz,
    smoke_cases,
)

__all__ = [
    "BATCHED_PATHS",
    "DEFAULT_CONFIGS",
    "FailureRecord",
    "FuzzCase",
    "FuzzReport",
    "GOLDEN_REQUESTS",
    "OracleFailure",
    "PATHS",
    "PINNED_EDIT_SCRIPTS",
    "ReproBundle",
    "ServeOracleReport",
    "batch_groups",
    "certify_rotation",
    "certify_wrapped",
    "check_envelope",
    "check_incremental_session",
    "check_serve_differential",
    "check_lower_bound",
    "check_modulo",
    "check_parity",
    "check_retiming",
    "check_roundtrip",
    "check_semantics",
    "config_model",
    "grid_cases",
    "load_bundle",
    "random_edit_script",
    "replay_bundle",
    "run_cell",
    "run_cell_on_graph",
    "run_fuzz",
    "shrink_graph",
    "smoke_cases",
    "write_bundle",
]
