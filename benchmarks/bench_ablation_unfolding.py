"""Extension ablation: **unfolding before rotation** (the front end the
paper's Section 7 describes: "The unfolding of loops is considered in the
front end of our system to generate a data-flow graph with high execution
rate").

A graph with fractional iteration bound cannot reach its rate bound with
integral schedules; unfolding by J makes the bound integral and rotation
recovers the fractional per-iteration rate.  The J axis is the
explorer's ``unfold`` axis: each factor is a :class:`CellSpec` run
through :func:`repro.explore.run_grid` with a custom ``execute`` (the
fractional graph lives outside the benchmark registry).
"""

import time
from dataclasses import replace

import pytest

from repro.dfg import DFG, Timing, iteration_bound, unfold
from repro.core import rotation_schedule
from repro.explore import CellOutcome, build_grid, objective_point, run_grid
from repro.schedule import ResourceModel

from conftest import record, run_once


def _fractional_graph() -> DFG:
    """Three adds around 2 delays: IB = 3/2 — unreachable unfolded by 1."""
    g = DFG("frac")
    for n in "abc":
        g.add_node(n, "add", func=lambda x: x + 1)
    g.add_edge("a", "b", 0)
    g.add_edge("b", "c", 0)
    g.add_edge("c", "a", 2, init=[0.0, 0.0])
    return g


@pytest.mark.parametrize("factor", [1, 2, 3])
def test_unfolding_recovers_fractional_rate(benchmark, factor):
    model = ResourceModel.adders_mults(4, 1)
    graph = _fractional_graph()
    cells = [
        replace(cell, beta=16)
        for cell in build_grid(["frac"], ["4A1M"], unfolds=[factor])
    ]

    def solve(spec):
        unfolded = unfold(graph, spec.unfold) if spec.unfold > 1 else graph
        t0 = time.perf_counter()
        result = rotation_schedule(unfolded, model, beta=spec.beta)
        return CellOutcome(
            spec=spec,
            point=objective_point(spec, result.length, 0),
            length=result.length,
            registers=0,
            elapsed=time.perf_counter() - t0,
            source="unfolded",
            result=result,
        )

    (outcome,) = run_once(benchmark, run_grid, cells, execute=solve)
    per_iteration = outcome.length / factor
    record(
        benchmark,
        factor=factor,
        ib=str(iteration_bound(graph, Timing.unit())),
        period=outcome.length,
        per_original_iteration=per_iteration,
    )
    # IB = 3/2: factor 1 floors at 2 CS/iter; factor 2 reaches 3/2
    if factor == 1:
        assert outcome.length >= 2
    if factor == 2:
        assert per_iteration == 1.5
