"""Regenerates **Figure 5**: depth reduction of a rotation function.

Paper setting: an optimal diffeq schedule found after 7 rotations of size
2 carries a rotation function of depth 4; the Section 3.2 shortest-path
algorithm realizes the same schedule with depth 2.
"""

from repro.schedule import ResourceModel
from repro.core import RotationState, reduce_depth
from repro.suite import get_benchmark

from conftest import record, run_once


def test_fig5_depth_reduction(benchmark):
    graph = get_benchmark("diffeq")
    model = ResourceModel.unit_time(1, 1)

    def run():
        st = RotationState.initial(graph, model)
        deepest = 1
        for _ in range(7):
            st = st.down_rotate(min(2, st.length - 1))
            deepest = max(deepest, st.retiming.normalized(graph).depth(graph))
        shallow = reduce_depth(st.schedule)
        return st, deepest, shallow

    st, deepest, shallow = run_once(benchmark, run)
    record(
        benchmark,
        schedule_length=st.length,
        paper_deep_depth=4,
        measured_deep_depth=deepest,
        paper_reduced_depth=2,
        measured_reduced_depth=shallow.depth(graph),
    )
    assert st.length == 6
    assert deepest >= 4
    assert shallow.depth(graph) == 2
    assert st.schedule.is_legal_dag_schedule(shallow)
