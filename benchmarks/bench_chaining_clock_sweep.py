"""Extension ablation: **clock-period sweep with operation chaining**
(paper Section 3: the basic algorithm "works for control steps with
chained operations"; Section 6 fixes 50 ns with 40 ns adds / 80 ns
multiplies).

Sweeping the control-step length shows the classic HLS trade-off: longer
steps chain more operations (fewer CS) but each step is slower — total
latency in ns is what matters.  The clock is the explorer's ``clock_ns``
axis: each control-step length is a cell run through
:func:`repro.explore.run_grid` with a chained-scheduling ``execute``
(chaining is ns-granularity semantics, not the integral latency model
the explorer's default solver uses — the same reason ``--via serve``
never sends the ``clock`` option).
"""

import time

import pytest

from repro.explore import CellOutcome, build_grid, objective_point, run_grid
from repro.schedule.chaining import chained_full_schedule, paper_technology
from repro.suite import get_benchmark

from conftest import record, run_once


def _chained(spec):
    timing, _, unit_counts, op_units = paper_technology()
    graph = get_benchmark(spec.bench)
    t0 = time.perf_counter()
    sched = chained_full_schedule(
        graph, timing, spec.clock_ns, unit_counts, op_units
    )
    return CellOutcome(
        spec=spec,
        point=objective_point(spec, sched.length, 0),
        length=sched.length,
        registers=0,
        elapsed=time.perf_counter() - t0,
        source="chained",
        result=sched,
    )


@pytest.mark.parametrize("cs_ns", [50, 80, 100, 120])
def test_clock_sweep_diffeq(benchmark, cs_ns):
    # paper_technology()'s unit template is one adder + one multiplier.
    cells = build_grid(["diffeq"], ["1A1M"], clocks=[cs_ns])

    (outcome,) = run_once(benchmark, run_grid, cells, execute=_chained)
    sched = outcome.result
    record(
        benchmark,
        cs_ns=cs_ns,
        control_steps=outcome.length,
        latency_ns=outcome.length * cs_ns,
        chains=len(sched.chains()),
    )
    assert sched.violations() == []
    if cs_ns >= 80:
        assert sched.chains()  # something chained once the window allows


def test_paper_50ns_matches_integral_model(benchmark):
    """At the paper's 50 ns clock, chained scheduling degenerates to the
    integral 1-CS-add / 2-CS-mult model used everywhere else."""
    from repro.baselines import dag_list_schedule
    from repro.schedule import ResourceModel

    timing, cs, unit_counts, op_units = paper_technology(50)
    graph = get_benchmark("diffeq")

    def run():
        chained = chained_full_schedule(graph, timing, cs, unit_counts, op_units)
        integral = dag_list_schedule(graph, ResourceModel.adders_mults(1, 1))
        return chained.length, integral.length

    chained_len, integral_len = run_once(benchmark, run)
    record(benchmark, chained=chained_len, integral=integral_len)
    assert chained_len == integral_len
