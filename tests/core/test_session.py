"""MutableSchedulingSession: edits, repair parity, caching, protocol errors."""

import pytest

from repro import ResourceModel, diffeq, elliptic, open_session, rotation_schedule
from repro.core.engine import BACKENDS
from repro.core.session import EDIT_KINDS, MutableSchedulingSession
from repro.core.wrapping import _wrap_static
from repro.errors import SchedulingError
from repro.qa.oracles import check_parity


def same_result(a, b, label):
    assert not check_parity(a, b, label)


class TestSolveMode:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_initial_resolve_matches_rotation_schedule(self, backend):
        g = elliptic()
        model = ResourceModel.adders_mults(3, 2)
        session = open_session(g, model, backend=backend)
        got = session.resolve()
        want = rotation_schedule(g, model, heuristic="h2", backend=backend)
        same_result(got, want, f"session solve vs rotation_schedule [{backend}]")

    def test_solve_mode_after_edits_matches_scratch(self):
        g = diffeq()
        model = ResourceModel.adders_mults(1, 1)
        session = open_session(g, model)
        session.resolve()
        session.set_resource_counts({"adder": 2})
        got = session.resolve(mode="solve")
        want = rotation_schedule(session.graph, session.model, heuristic="h2")
        same_result(got, want, "session solve-after-edit")


class TestRepair:
    def test_repair_parity_across_backends(self):
        g = elliptic()
        model = ResourceModel.adders_mults(3, 2)
        sessions = {b: open_session(g, model, backend=b) for b in BACKENDS}
        for s in sessions.values():
            s.resolve()
        edits = [
            {"edit": "set_resource_counts", "counts": {"adder": 2}},
            {"edit": "remove_node", "node": "M7"},
            {"edit": "set_exec_time", "node": "c5", "time": 2},
        ]
        for op in edits:
            results = {}
            for b, s in sessions.items():
                s.apply_edit(op)
                results[b] = s.resolve()
            for b in ("flat", "views"):
                same_result(results[b], results["naive"], f"{op['edit']}:{b}")

    def test_noop_resolve_returns_cached_result(self):
        session = open_session(diffeq(), ResourceModel.adders_mults(1, 1))
        first = session.resolve()
        assert session.resolve() is first

    def test_repair_without_seed_raises(self):
        session = open_session(diffeq(), ResourceModel.adders_mults(1, 1))
        with pytest.raises(SchedulingError, match="nothing to repair"):
            session.resolve(mode="repair")

    def test_repair_tracks_metrics(self):
        session = open_session(elliptic(), ResourceModel.adders_mults(2, 2))
        session.resolve()
        session.set_exec_time("c5", 2)
        session.resolve()
        m = session.metrics
        assert m["full_solves"] == 1
        assert m["repairs"] == 1
        assert m["edits_applied"] == 1
        assert m["nodes_invalidated"] >= 1
        assert m["nodes_kept"] >= 1

    def test_structural_edits_flow_through_engine_patch(self):
        session = open_session(elliptic(), ResourceModel.adders_mults(3, 2), backend="flat")
        session.resolve()
        session.remove_node("M8")
        session.resolve()
        assert session.metrics["engine_patches"] >= 1
        # still bit-identical to a from-scratch solve of the edited graph
        want = rotation_schedule(session.graph, session.model, heuristic="h2", backend="flat")
        same_result(session.resolve(mode="solve"), want, "post-patch solve")

    def test_add_node_repair_schedules_it(self):
        session = open_session(diffeq(), ResourceModel.adders_mults(1, 1))
        session.resolve()
        session.add_node("qx0", "add")
        session.add_edge("qx0", session.graph.nodes[0], 1)
        session.add_edge(session.graph.nodes[1], "qx0", 1)
        result = session.resolve()
        assert "qx0" in result.schedule.start_map


class TestEditProtocol:
    def test_all_edit_kinds_dispatch(self):
        assert set(EDIT_KINDS) == {
            "add_node", "remove_node", "add_edge", "remove_edge",
            "set_delay", "set_exec_time", "set_resource_counts",
        }

    def test_unknown_edit_kind_raises(self):
        session = open_session(diffeq(), ResourceModel.adders_mults(1, 1))
        with pytest.raises(SchedulingError, match="unknown edit kind"):
            session.apply_edit({"edit": "rename_node", "node": "x"})

    def test_unknown_node_raises(self):
        session = open_session(diffeq(), ResourceModel.adders_mults(1, 1))
        with pytest.raises(SchedulingError, match="no node matching"):
            session.apply_edit({"edit": "remove_node", "node": "ghost"})

    def test_unknown_unit_class_raises(self):
        session = open_session(diffeq(), ResourceModel.adders_mults(1, 1))
        with pytest.raises(SchedulingError, match="unknown unit class"):
            session.set_resource_counts({"divider": 1})

    def test_session_copies_caller_graph_by_default(self):
        g = diffeq()
        n0 = g.num_nodes
        session = open_session(g, ResourceModel.adders_mults(1, 1))
        session.add_node("qx0", "add")
        assert g.num_nodes == n0
        assert session.graph.num_nodes == n0 + 1

    def test_bad_heuristic_and_backend_rejected(self):
        g = diffeq()
        model = ResourceModel.adders_mults(1, 1)
        with pytest.raises(SchedulingError):
            MutableSchedulingSession(g, model, heuristic="h3")
        with pytest.raises(SchedulingError):
            MutableSchedulingSession(g, model, backend="gpu")


class TestWrapStaticEpoch:
    """Regression: wrap facts must refresh after in-place graph mutation."""

    def test_wrap_static_invalidated_by_mutation(self):
        g = diffeq()
        model = ResourceModel.adders_mults(1, 1)
        _, edges_before, _ = _wrap_static(g, model)
        e = g.edges[0]
        g.set_delay(e, e.delay + 5)
        _, edges_after, _ = _wrap_static(g, model)
        assert edges_before != edges_after
        assert any(d == e.delay + 5 for (_, _, d, _) in edges_after)

    def test_wrap_static_cache_hit_when_unchanged(self):
        g = diffeq()
        model = ResourceModel.adders_mults(1, 1)
        a = _wrap_static(g, model)
        b = _wrap_static(g, model)
        assert a[0] is b[0] and a[1] is b[1]
