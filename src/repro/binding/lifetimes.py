"""Value lifetime analysis of pipelined loop schedules.

The paper's conclusion points out that the *set* of optimal schedules a
rotation sequence finds "exposes more chances of optimization for the
following stages of high-level synthesis, e.g. connection binding,
allocation or data-path generation".  This module implements the first
such stage: for a wrapped schedule realized by a retiming, compute when
each produced value is born (producer finish) and dies (last consumer
start, across iteration boundaries), and from that the steady-state
register requirement of the pipeline.

Lifetimes are computed on the *global timeline* of the unrolled pipeline:
value ``(v, i)`` — node ``v``'s result for iteration ``i`` — lives from
``finish(v, i)`` to ``max over out-edges (v, w, d) of start(w, i + d)``.
In steady state the live-count profile is periodic with the initiation
interval, so the register requirement is the maximum overlap over one
period deep inside the unrolled window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.schedule import Schedule
from repro.core.wrapping import WrappedSchedule
from repro.errors import SchedulingError


@dataclass(frozen=True)
class Lifetime:
    """One value instance's live range on the global timeline."""

    node: NodeId
    iteration: int
    birth: int  # global CS at which the value becomes available
    death: int  # global CS of the last read (exclusive end of liveness)

    @property
    def span(self) -> int:
        return max(0, self.death - self.birth)


@dataclass(frozen=True)
class RegisterReport:
    """Steady-state register statistics of a pipelined schedule."""

    period: int
    requirement: int
    profile: Tuple[int, ...]  # live values per CS slot over one period
    lifetimes: Tuple[Lifetime, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"registers: {self.requirement} "
            f"(profile per slot: {list(self.profile)})"
        )


class LifetimeAnalyzer:
    """Computes lifetimes and register requirements for one pipeline."""

    def __init__(self, schedule: Schedule, retiming: Retiming, period: Optional[int] = None):
        self.schedule = schedule.normalized()
        self.retiming = retiming
        self.period = self.schedule.length if period is None else period
        if self.period <= 0:
            raise SchedulingError(f"nonpositive period {self.period}")
        self.graph = schedule.graph
        self.model = schedule.model
        self.depth = retiming.depth(self.graph)

    @classmethod
    def from_wrapped(cls, wrapped: WrappedSchedule) -> "LifetimeAnalyzer":
        return cls(wrapped.schedule, wrapped.retiming, wrapped.period)

    # ------------------------------------------------------------------
    def start_time(self, node: NodeId, iteration: int) -> int:
        return (iteration - self.retiming[node]) * self.period + self.schedule.start(node)

    def finish_time(self, node: NodeId, iteration: int) -> int:
        return self.start_time(node, iteration) + self.model.latency(self.graph.op(node))

    def lifetime(self, node: NodeId, iteration: int, horizon: int) -> Optional[Lifetime]:
        """Live range of value ``(node, iteration)``; None if it has no
        consumer within ``horizon`` iterations (a pure sink value dies at
        birth)."""
        birth = self.finish_time(node, iteration)
        death = birth
        for e in self.graph.out_edges(node):
            consumer_iter = iteration + e.delay
            if consumer_iter < horizon:
                death = max(death, self.start_time(e.dst, consumer_iter))
        return Lifetime(node, iteration, birth, death)

    def analyze(self, iterations: Optional[int] = None) -> RegisterReport:
        """Steady-state register requirement over one period.

        Args:
            iterations: unrolling horizon (default: enough to expose the
                steady state — pipeline depth plus the longest edge delay
                plus margin).
        """
        max_delay = max((e.delay for e in self.graph.edges), default=0)
        if iterations is None:
            iterations = self.depth + max_delay + 6
        lifetimes = [
            self.lifetime(v, i, iterations)
            for v in self.graph.nodes
            for i in range(iterations)
        ]
        # steady window: one period, deep inside the unrolled timeline
        mid = (iterations // 2) * self.period
        profile = []
        for slot in range(self.period):
            t = mid + slot
            live = sum(1 for lt in lifetimes if lt.birth <= t < lt.death)
            profile.append(live)
        return RegisterReport(
            period=self.period,
            requirement=max(profile) if profile else 0,
            profile=tuple(profile),
            lifetimes=tuple(lifetimes),
        )


def register_requirement(
    schedule: Schedule,
    retiming: Retiming,
    period: Optional[int] = None,
) -> int:
    """Shortcut: the steady-state register requirement."""
    return LifetimeAnalyzer(schedule, retiming, period).analyze().requirement
