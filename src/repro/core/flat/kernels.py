"""Integer kernels over :class:`~repro.core.flat.graph.FlatGraph` snapshots.

Each function here is a *bit-exact mirror* of a dict-based hot path —
same traversal orders, same guards, same tie-breaks, same error messages —
rewritten to index contiguous arrays instead of hashing node ids:

========================  ====================================================
:func:`retimed_delays`    ``dr(e) = d(e) + r(src) - r(dst)`` per edge
:func:`zero_delay_lists`  :func:`repro.dfg.analysis.zero_delay_adjacency`
:func:`flat_topological_order`  Kahn over the zero-delay DAG
:func:`flat_reach` / :func:`flat_heights` / :func:`flat_mobility`
                          priority intermediates (descendants/height/mobility)
:func:`flat_list_schedule`  :func:`repro.schedule.list_scheduler._list_schedule`
:func:`flat_latest_fit`   :func:`repro.core.rotation._latest_fit_reschedule`
:func:`flat_wrap_period`  the period search of :func:`repro.core.wrapping.wrap`
:class:`FlatGrid`         :class:`repro.schedule.list_scheduler.OccupancyGrid`
                          with per-slot instance *bitmasks*
========================  ====================================================

The golden parity suite and the QA engine-parity oracle pin these against
their dict counterparts across backends; any drift is a bug here, not a
feature.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RotationError, SchedulingError


# ----------------------------------------------------------------------
# kernel 1: retimed edge delays
# ----------------------------------------------------------------------
def retimed_delays(fg, rv: Sequence[int]) -> List[int]:
    """``dr`` for every edge position under the dense retiming vector ``rv``."""
    esrc, edst, edelay = fg.esrc, fg.edst, fg.edelay
    return [edelay[k] + rv[esrc[k]] - rv[edst[k]] for k in range(fg.m)]


# ----------------------------------------------------------------------
# kernel 2: zero-delay adjacency + topological order
# ----------------------------------------------------------------------
def zero_delay_lists(fg, dr: Sequence[int]) -> Tuple[List[List[int]], List[List[int]]]:
    """``(zsucc, zpred)`` index lists; distinct neighbours in edge order.

    Mirrors :func:`repro.dfg.analysis.zero_delay_adjacency`: one pass over
    edges in insertion order, first occurrence wins.  Zero-delay degrees
    are tiny in practice, so a linear ``not in`` beats per-node seen-sets.
    """
    n = fg.n
    zsucc: List[List[int]] = [[] for _ in range(n)]
    zpred: List[List[int]] = [[] for _ in range(n)]
    esrc, edst = fg.esrc, fg.edst
    for k in range(fg.m):
        if dr[k] == 0:
            u, w = esrc[k], edst[k]
            lst = zsucc[u]
            if w not in lst:
                lst.append(w)
            lst = zpred[w]
            if u not in lst:
                lst.append(u)
    return zsucc, zpred


def flat_topological_order(zsucc: List[List[int]]) -> Optional[List[int]]:
    """Kahn's order of the zero-delay DAG, or None on a cycle.

    The queue is seeded in node-index order, matching the dict Kahn's
    ``graph.nodes`` seeding, so the produced order is identical.
    """
    n = len(zsucc)
    indeg = [0] * n
    for ws in zsucc:
        for w in ws:
            indeg[w] += 1
    # The order doubles as its own FIFO queue (read cursor `i`): identical
    # to a deque-based Kahn, without the deque.
    order = [v for v in range(n) if not indeg[v]]
    append = order.append
    i = 0
    while i < len(order):
        for w in zsucc[order[i]]:
            d = indeg[w] - 1
            indeg[w] = d
            if not d:
                append(w)
        i += 1
    return order if len(order) == n else None


# ----------------------------------------------------------------------
# kernel 3: priority intermediates (longest-path / descendant repair)
# ----------------------------------------------------------------------
def flat_reach(zsucc: List[List[int]], order: Sequence[int]) -> List[int]:
    """Zero-delay descendant sets as node bitmasks (bit i = node index i)."""
    reach = [0] * len(zsucc)
    for v in reversed(order):
        acc = 0
        for w in zsucc[v]:
            acc |= (1 << w) | reach[w]
        reach[v] = acc
    return reach


def flat_heights(times: Sequence[int], zsucc: List[List[int]], order: Sequence[int]) -> List[int]:
    """Longest zero-delay path from each node, inclusive of its own time."""
    h = [0] * len(zsucc)
    for v in reversed(order):
        best = 0
        for w in zsucc[v]:
            hw = h[w]
            if hw > best:
                best = hw
        h[v] = best + times[v]
    return h


def flat_mobility(times: Sequence[int], zsucc: List[List[int]], order: Sequence[int]) -> List[int]:
    """``-(alap - asap)`` per node (the mobility priority's only component)."""
    n = len(zsucc)
    asap = [0] * n
    for v in order:
        f = asap[v] + times[v]
        for w in zsucc[v]:
            if f > asap[w]:
                asap[w] = f
    deadline = 0
    for v in range(n):
        f = asap[v] + times[v]
        if f > deadline:
            deadline = f
    alap = [deadline - times[v] for v in range(n)]
    for v in reversed(order):
        tv = times[v]
        for w in zsucc[v]:
            c = alap[w] - tv
            if c < alap[v]:
                alap[v] = c
    return [asap[v] - alap[v] for v in range(n)]


def flat_priority_columns(
    priority: str,
    times: Sequence[int],
    zsucc: List[List[int]],
    order: Sequence[int],
) -> Tuple[Optional[List[int]], Optional[List[int]], List[Tuple[int, ...]]]:
    """``(reach, heights, skey)`` for a named priority, minimal passes.

    Fuses the intermediate columns with the sort-key build (one reversed
    topological sweep for ``descendants`` instead of sweep + listcomp) —
    the engines call this on every full priority rebuild, which on deep
    graphs is nearly every derive.  Values match :func:`flat_reach` /
    :func:`flat_heights` / :func:`flat_mobility` + :func:`flat_sort_keys`
    exactly.
    """
    n = len(zsucc)
    if priority == "descendants":
        reach = [0] * n
        skey: List[Tuple[int, ...]] = [()] * n
        for v in reversed(order):
            acc = 0
            for w in zsucc[v]:
                acc |= (1 << w) | reach[w]
            reach[v] = acc
            skey[v] = (-acc.bit_count(), v)
        return reach, None, skey
    if priority == "height":
        heights = flat_heights(times, zsucc, order)
        return None, heights, [(-heights[v], v) for v in range(n)]
    if priority == "combined":
        reach = flat_reach(zsucc, order)
        heights = flat_heights(times, zsucc, order)
        return reach, heights, [
            (-heights[v], -reach[v].bit_count(), v) for v in range(n)
        ]
    if priority == "mobility":
        mob = flat_mobility(times, zsucc, order)
        return None, None, [(-mob[v], v) for v in range(n)]
    raise ValueError(f"no flat sort keys for priority {priority!r}")


def flat_sort_keys(
    priority: str,
    n: int,
    reach: Optional[Sequence[int]] = None,
    heights: Optional[Sequence[int]] = None,
    mobility: Optional[Sequence[int]] = None,
) -> List[Tuple[int, ...]]:
    """Per-node list-scheduling sort keys, flattened.

    The dict scheduler sorts by ``((-p0, -p1, ...), node_index)``; for a
    fixed priority every tuple has the same arity, so the flattened key
    ``(-p0, -p1, ..., index)`` is order-equivalent and cheaper to compare.
    """
    if priority == "descendants":
        return [(-reach[v].bit_count(), v) for v in range(n)]
    if priority == "height":
        return [(-heights[v], v) for v in range(n)]
    if priority == "combined":
        return [(-heights[v], -reach[v].bit_count(), v) for v in range(n)]
    if priority == "mobility":
        return [(-mobility[v], v) for v in range(n)]
    raise ValueError(f"no flat sort keys for priority {priority!r}")


# ----------------------------------------------------------------------
# the occupancy grid, as per-slot instance bitmasks
# ----------------------------------------------------------------------
class FlatGrid:
    """Occupancy grid over unit ids: ``{stored cs: instance bitmask}``.

    Same semantics as :class:`~repro.schedule.list_scheduler.OccupancyGrid`
    (O(1) :meth:`shift` via a logical offset, lowest-free-instance
    allocation, double-booking errors), but a slot is one machine integer
    and the lowest free instance is a two-op bit trick.
    """

    __slots__ = ("_fm", "_busy", "_offset")

    def __init__(self, fm):
        self._fm = fm
        self._busy: List[Dict[int, int]] = [dict() for _ in fm.unit_count]
        self._offset = 0

    def shift(self, delta: int) -> None:
        """Move every occupied slot by ``delta`` control steps, in O(1)."""
        self._offset += delta

    def find(self, v: int, cs: int) -> int:
        """Lowest unit instance free for node ``v`` at ``cs``, or -1."""
        fm = self._fm
        uid = fm.node_unit[v]
        busy = self._busy[uid]
        base = cs - self._offset
        mask = 0
        for off in fm.node_offsets[v]:
            m = busy.get(base + off)
            if m:
                mask |= m
        # lowest zero bit of mask: ~mask & (mask+1) isolates it
        inst = (~mask & (mask + 1)).bit_length() - 1
        return inst if inst < fm.unit_count[uid] else -1

    def place(self, v: int, cs: int) -> int:
        """Fused :meth:`find` + :meth:`occupy`: claim the lowest free
        instance for ``v`` at ``cs`` and return it, or -1 (no mutation).

        The inner loops call this once per probe; the separate find/occupy
        pair would walk the busy offsets (and hash their keys) twice, and
        re-check double-booking that the fused probe rules out by
        construction.
        """
        fm = self._fm
        uid = fm.node_unit[v]
        busy = self._busy[uid]
        base = cs - self._offset
        offs = fm.node_offsets[v]
        get = busy.get
        mask = 0
        for off in offs:
            m = get(base + off)
            if m:
                mask |= m
        inst = (~mask & (mask + 1)).bit_length() - 1
        if inst >= fm.unit_count[uid]:
            return -1
        bit = 1 << inst
        for off in offs:
            key = base + off
            busy[key] = (get(key) or 0) | bit
        return inst

    def occupy(self, v: int, cs: int, inst: int) -> None:
        fm = self._fm
        uid = fm.node_unit[v]
        busy = self._busy[uid]
        base = cs - self._offset
        bit = 1 << inst
        for off in fm.node_offsets[v]:
            key = base + off
            m = busy.get(key, 0)
            if m & bit:
                raise SchedulingError(
                    f"instance {inst} of {fm.unit_names[uid]} double-booked at CS {cs + off}"
                )
            busy[key] = m | bit

    def release(self, v: int, cs: int, inst: int) -> None:
        """Free the slots a node held; a no-op for never-occupied slots."""
        fm = self._fm
        busy = self._busy[fm.node_unit[v]]
        base = cs - self._offset
        bit = 1 << inst
        for off in fm.node_offsets[v]:
            key = base + off
            m = busy.get(key)
            if m is not None and m & bit:
                busy[key] = m & ~bit

    def release_many(self, nodes: Sequence[int], start: Sequence[int], units: Sequence[int]) -> None:
        """:meth:`release` for every node of ``nodes`` at its recorded
        ``start``/``units`` slot — one call per rotation instead of one per
        moved node (the engines free a whole rotated prefix at a time)."""
        fm = self._fm
        busy_all = self._busy
        offset = self._offset
        node_unit = fm.node_unit
        node_offsets = fm.node_offsets
        for v in nodes:
            busy = busy_all[node_unit[v]]
            base = start[v] - offset
            bit = 1 << units[v]
            for off in node_offsets[v]:
                key = base + off
                m = busy.get(key)
                if m is not None and m & bit:
                    busy[key] = m & ~bit


def seed_grid(fg, fm, start: Sequence[Optional[int]], units: Sequence[Optional[int]]) -> FlatGrid:
    """A grid holding every placed node (``start[v] is not None``).

    Mirrors the engine's grid reseed: recorded instances are honoured,
    unrecorded ones packed greedily into the lowest free instance.
    """
    grid = FlatGrid(fm)
    for v in range(fg.n):
        cs = start[v]
        if cs is None:
            continue
        inst = units[v]
        if inst is None:
            inst = grid.find(v, cs)
            if inst < 0:
                raise SchedulingError(
                    f"fixed placement infeasible: no {fg.op_names[fg.opclass[v]]} "
                    f"unit at CS {cs} for {fg.nodes[v]!r}"
                )
        grid.occupy(v, cs, inst)
    return grid


# ----------------------------------------------------------------------
# kernel 4a: the list-scheduling inner loop
# ----------------------------------------------------------------------
def flat_list_schedule(
    fg,
    fm,
    zsucc: List[List[int]],
    zpred: List[List[int]],
    skey: List[Tuple[int, ...]],
    start: List[Optional[int]],
    units: List[Optional[int]],
    todo: Sequence[int],
    floor_cs: int,
    grid: FlatGrid,
) -> None:
    """Place every node of ``todo`` in-place into ``start`` / ``units``.

    Exact mirror of ``_list_schedule``: candidates are the ready nodes
    whose (once-computed) earliest start has arrived, taken in sort-key
    order; newly readied nodes wait for the next control step; the same
    divergence guard protects against infeasible fixed placements.
    """
    nodes = fg.nodes
    lat = fm.node_latency
    todo_set = set(todo)
    pending = [0] * fg.n
    for v in todo:
        cnt = 0
        for u in zpred[v]:
            if u in todo_set:
                cnt += 1
            elif start[u] is None:
                raise SchedulingError(
                    f"node {nodes[v]!r} depends on unplaced node {nodes[u]!r} "
                    "outside the reschedule set"
                )
        pending[v] = cnt

    ready: Set[int] = {v for v in todo if pending[v] == 0}
    est = [0] * fg.n
    for v in ready:
        e = floor_cs
        for u in zpred[v]:
            f = start[u] + lat[u]
            if f > e:
                e = f
        est[v] = e

    unplaced = set(todo_set)
    cs = floor_cs
    guard = 0
    max_guard = (
        (len(todo) + fg.n + 2) * (fm.max_unit_latency + 1)
        + sum(lat[v] for v in todo)
        + floor_cs
        + 64
    )
    # The probe loop below is grid.place() inlined: at ~20 probes per call
    # this is the hottest loop in the whole scheduler, and the attribute
    # and call overhead of the method dominates its own body.
    #
    # Ready nodes are split by arrival: ``heap`` holds ``(est, v)`` for
    # nodes whose earliest start is still ahead, ``avail`` the arrived
    # ones in skey order.  Resource-blocked nodes survive in ``avail``
    # already sorted, so a control step only pays a sort when new nodes
    # arrive — and every skey ends in the node index, so the order is
    # total and identical to re-sorting the full candidate list.
    busy_all = grid._busy
    node_unit = fm.node_unit
    node_offsets = fm.node_offsets
    unit_count = fm.unit_count
    skey_get = skey.__getitem__
    heap = [(est[v], v) for v in ready]
    heapq.heapify(heap)
    heappop, heappush = heapq.heappop, heapq.heappush
    avail: List[int] = []
    while unplaced:
        placed_any = False
        if heap:
            if not avail and heap[0][0] > cs:
                # Nothing can place before the earliest ready EST, and
                # resources only constrain steps where a placement is
                # tried — jumping the empty steps is outcome-identical.
                cs = heap[0][0]
            if heap[0][0] <= cs:
                while heap and heap[0][0] <= cs:
                    avail.append(heappop(heap)[1])
                avail.sort(key=skey_get)
        if avail:
            base = cs - grid._offset
            keep = 0
            for v in avail:
                uid = node_unit[v]
                busy = busy_all[uid]
                offs = node_offsets[v]
                get = busy.get
                mask = 0
                for off in offs:
                    m = get(base + off)
                    if m:
                        mask |= m
                inst = (~mask & (mask + 1)).bit_length() - 1
                if inst >= unit_count[uid]:
                    avail[keep] = v
                    keep += 1
                    continue
                bit = 1 << inst
                for off in offs:
                    key = base + off
                    busy[key] = (get(key) or 0) | bit
                start[v] = cs
                units[v] = inst
                unplaced.discard(v)
                placed_any = True
                for w in zsucc[v]:
                    if w in unplaced:
                        p = pending[w] - 1
                        pending[w] = p
                        if p == 0:
                            e = floor_cs
                            for u in zpred[w]:
                                f = start[u] + lat[u]
                                if f > e:
                                    e = f
                            est[w] = e
                            heappush(heap, (e, w))
            del avail[keep:]
        cs += 1
        guard += 1
        if guard > max_guard and not placed_any:
            raise SchedulingError(
                f"list scheduler failed to converge (placed "
                f"{len(todo) - len(unplaced)}/{len(todo)} nodes)"
            )  # pragma: no cover - defensive


# ----------------------------------------------------------------------
# kernel 4b: the latest-fit (up-rotation) inner loop
# ----------------------------------------------------------------------
def flat_latest_fit(
    fg,
    fm,
    zsucc: List[List[int]],
    zpred: List[List[int]],
    start: List[Optional[int]],
    units: List[Optional[int]],
    moved: Sequence[int],
    ceiling: int,
    grid: FlatGrid,
) -> None:
    """Place ``moved`` as late as possible before their zero-delay succs.

    Exact mirror of ``_latest_fit_reschedule``: reverse-topological order
    within the moved set via a min-heap of node indices, then a greedy
    downward probe per node.
    """
    moved_set = set(moved)
    pending: Dict[int, int] = {}
    for v in moved_set:
        pending[v] = sum(1 for w in zsucc[v] if w in moved_set)
    ready = [v for v in moved_set if pending[v] == 0]
    heapq.heapify(ready)
    order: List[int] = []
    while ready:
        v = heapq.heappop(ready)
        order.append(v)
        for u in zpred[v]:
            if u in moved_set and pending[u] > 0:
                pending[u] -= 1
                if pending[u] == 0:
                    heapq.heappush(ready, u)
    if len(order) != len(moved_set):
        raise RotationError("cyclic zero-delay dependences inside the rotated suffix")

    lat = fm.node_latency
    # grid.place() inlined, as in flat_list_schedule's probe loop.
    busy_all = grid._busy
    offset = grid._offset
    node_unit = fm.node_unit
    node_offsets = fm.node_offsets
    unit_count = fm.unit_count
    for v in order:
        lat_v = lat[v]
        latest = ceiling - lat_v + 1
        for w in zsucc[v]:
            sw = start[w]
            if sw is not None:
                c = sw - lat_v
                if c < latest:
                    latest = c
        uid = node_unit[v]
        busy = busy_all[uid]
        offs = node_offsets[v]
        cap = unit_count[uid]
        get = busy.get
        cs = latest
        while True:
            base = cs - offset
            mask = 0
            for off in offs:
                m = get(base + off)
                if m:
                    mask |= m
            inst = (~mask & (mask + 1)).bit_length() - 1
            if inst < cap:
                bit = 1 << inst
                for off in offs:
                    key = base + off
                    busy[key] = (get(key) or 0) | bit
                start[v] = cs
                units[v] = inst
                break
            cs -= 1


# ----------------------------------------------------------------------
# kernel 5: the wrap() period search
# ----------------------------------------------------------------------
def flat_wrap_period(
    fg, fm, starts: Sequence[int], dr: Sequence[int], extras: Optional[dict] = None
) -> int:
    """Minimum modulo-legal period of a *normalized* start vector.

    Exact mirror of :func:`repro.core.wrapping.wrap`'s search: periods
    from ``max(starts span, largest non-pipelined occupancy, 1)`` up to
    the plain span; first period with no resource slot over-subscribed
    modulo the period and every precedence ``finish(src) <= start(dst) +
    period * dr(e)`` satisfied wins.

    ``extras`` (a counter dict, e.g. the flat engine's backend extras)
    receives ``wrap_interval_collapses`` increments when a violated
    ``dr == 0`` precedence collapses the feasible interval to empty —
    observability only, never affects the result.
    """
    n = fg.n
    lat = fm.node_latency
    offsets = fm.node_offsets
    nunit = fm.node_unit
    caps = fm.unit_count
    span = 0
    starts_span = 0
    for v in range(n):
        s = starts[v]
        f = s + lat[v]
        if f > span:
            span = f
        if s + 1 > starts_span:
            starts_span = s + 1
    lo = starts_span
    if fm.min_occ > lo:
        lo = fm.min_occ
    if lo < 1:
        lo = 1
    # Each precedence ``finish(src) <= start(dst) + period * dr(e)`` is
    # monotone in the period, so the whole set collapses to a feasible
    # interval computed once instead of a per-edge scan per candidate:
    # dr > 0 edges bound the period below, dr < 0 edges bound it above,
    # and a violated dr == 0 edge rules out every period.
    hi = span
    esrc, edst = fg.esrc, fg.edst
    for k in range(fg.m):
        u = esrc[k]
        gap = starts[u] + lat[u] - starts[edst[k]]
        d = dr[k]
        if d > 0:
            need = -(-gap // d)
            if need > lo:
                lo = need
        elif d < 0:
            cap_p = gap // d
            if cap_p < hi:
                hi = cap_p
        elif gap > 0:
            hi = lo - 1
            if extras is not None:
                extras["wrap_interval_collapses"] = (
                    extras.get("wrap_interval_collapses", 0) + 1
                )
            break
    nunits = len(caps)
    # Slot counters never exceed the instance cap before the candidate is
    # rejected, so a bytearray serves unless some unit has 255+ instances.
    zeros = bytearray if max(caps) < 255 else (lambda k: [0] * k)
    for period in range(lo, hi + 1):
        counts = zeros(nunits * period)
        ok = True
        for v in range(n):
            uid = nunit[v]
            cap = caps[uid]
            base = uid * period
            s = starts[v]
            for off in offsets[v]:
                key = base + (s + off) % period
                c = counts[key] + 1
                if c > cap:
                    ok = False
                    break
                counts[key] = c
            if not ok:
                break
        if ok:
            return period
    raise SchedulingError(
        f"schedule of span {span} is not modulo-legal at its own span — "
        "the input was not a legal DAG schedule of G_R"
    )  # pragma: no cover - impossible for legal inputs
