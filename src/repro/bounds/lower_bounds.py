"""Lower bounds on static-schedule length under resource constraints.

The paper's LB column combines the iteration bound with resource-derived
bounds from the first author's thesis appendix (not included in the paper
text).  This module implements the standard, provably-valid pieces:

* **iteration bound** — ``ceil(max over cycles t(C) / d(C))``; no schedule
  of any retiming can beat it (Renfors-Neuvo);
* **resource bound** — each unit class must fit its workload:
  ``ceil(#ops / count)`` for pipelined units (one initiation per CS per
  unit) and ``ceil(#ops * latency / count)`` for non-pipelined units;
* **combined bound** — the max of the above.

Where the paper's appendix bound is sharper (elliptic 2A 1M: 17 vs our
16; all-pole 2A 1Mp/2A 2Mp/2A 2M: 9 vs our 8; all-pole 2A 1M: 10 vs our
8) EXPERIMENTS.md reports the gap explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.dfg.graph import DFG, Timing
from repro.dfg.iteration_bound import iteration_bound
from repro.schedule.resources import ResourceModel


@dataclass(frozen=True)
class LowerBoundReport:
    """Breakdown of the combined lower bound."""

    iteration_bound: Fraction
    resource_bounds: Dict[str, int]
    combined: int

    @property
    def binding(self) -> str:
        """Which constraint is binding (``"cycles"`` or a unit-class name)."""
        ib_ceil = -(-self.iteration_bound.numerator // self.iteration_bound.denominator)
        best_unit = max(self.resource_bounds, key=self.resource_bounds.get, default="")
        if ib_ceil >= self.resource_bounds.get(best_unit, 0):
            return "cycles"
        return best_unit


def resource_bound(graph: DFG, model: ResourceModel) -> Dict[str, int]:
    """Per-unit-class workload bound on the schedule length."""
    work: Dict[str, int] = {}
    for v in graph.nodes:
        unit = model.unit_for_op(graph.op(v))
        work[unit.name] = work.get(unit.name, 0) + (1 if unit.pipelined else unit.latency)
    return {
        name: -(-amount // model.unit(name).count) for name, amount in work.items()
    }


def combined_lower_bound(
    graph: DFG,
    model: ResourceModel,
    timing: Optional[Timing] = None,
) -> LowerBoundReport:
    """``max(iteration bound, per-class resource bounds)``.

    Args:
        graph: the cyclic DFG.
        model: resource model (its latencies also define the timing unless
            ``timing`` overrides them).
    """
    tm = timing if timing is not None else model.timing()
    ib = iteration_bound(graph, tm)
    rb = resource_bound(graph, model)
    ib_ceil = -(-ib.numerator // ib.denominator)
    combined = max([ib_ceil, *rb.values()])
    return LowerBoundReport(iteration_bound=ib, resource_bounds=rb, combined=combined)


def lower_bound(graph: DFG, model: ResourceModel, timing: Optional[Timing] = None) -> int:
    """Shortcut for :func:`combined_lower_bound`'s scalar value."""
    return combined_lower_bound(graph, model, timing).combined
