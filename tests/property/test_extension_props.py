"""Property-based tests for the extension modules: wrapping/rerooting,
unfolding, chaining and conditional scheduling."""

import math

from hypothesis import given, settings, strategies as st

from repro.dfg import Timing, iteration_bound
from repro.dfg.unfold import unfold
from repro.schedule import ResourceModel
from repro.schedule.chaining import chained_full_schedule
from repro.schedule.conditional import conditional_full_schedule, set_guard
from repro.core import RotationState, reroot, wrap
from repro.suite import random_dfg, random_dsp_kernel

seeds = st.integers(0, 5_000)
models = st.sampled_from(
    [
        ResourceModel.adders_mults(1, 1),
        ResourceModel.adders_mults(2, 2, pipelined_mults=True),
    ]
)


class TestWrappingProps:
    @given(seeds, models, st.integers(0, 4))
    @settings(max_examples=25, deadline=None)
    def test_wrap_always_legal_and_tight(self, seed, model, rotations):
        g = random_dfg(10, seed=seed)
        state = RotationState.initial(g, model)
        for _ in range(rotations):
            if state.length > 1:
                state = state.down_rotate(1)
        w = wrap(state.schedule, state.retiming)
        assert w.violations() == []
        # tightness: period - 1 must be illegal (wrap returns the minimum)
        if w.period > 1:
            from repro.schedule.verify import (
                modulo_precedence_violations,
                modulo_resource_conflicts,
            )

            sched = w.schedule
            smaller_ok = (
                max(sched.start(v) for v in g.nodes) + 1 <= w.period - 1
                and not modulo_resource_conflicts(
                    g, model, sched.start_map, w.period - 1
                )
                and not modulo_precedence_violations(
                    g, model, sched.start_map, w.period - 1, w.retiming
                )
            )
            assert not smaller_ok

    @given(seeds, models)
    @settings(max_examples=20, deadline=None)
    def test_every_reroot_pivot_stays_legal(self, seed, model):
        g = random_dfg(10, seed=seed)
        state = RotationState.initial(g, model)
        w = wrap(state.schedule, state.retiming)
        for pivot in range(w.period):
            out = reroot(w, pivot)
            assert out.period == w.period
            assert out.violations() == []


class TestUnfoldProps:
    @given(seeds, st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_delay_conservation_and_bound_scaling(self, seed, factor):
        g = random_dfg(10, seed=seed)
        gf = unfold(g, factor)
        assert gf.total_delay() == g.total_delay()
        timing = Timing({"add": 1, "mul": 2})
        assert iteration_bound(gf, timing) == factor * iteration_bound(g, timing)

    @given(st.integers(0, 200), st.integers(2, 3))
    @settings(max_examples=10, deadline=None)
    def test_unfolded_semantics(self, seed, factor):
        from repro.sim import reference_run

        g = random_dsp_kernel(4, seed=seed)
        n = 6
        original = reference_run(g, factor * n)
        unfolded = reference_run(unfold(g, factor), n)
        for v in g.nodes:
            for j in range(factor):
                for k in range(n):
                    assert math.isclose(
                        unfolded[(v, j)][k], original[v][factor * k + j],
                        rel_tol=1e-9, abs_tol=1e-12,
                    )


class TestChainedProps:
    @given(seeds, st.sampled_from([50, 80, 100, 150]))
    @settings(max_examples=25, deadline=None)
    def test_always_legal_and_clock_monotone(self, seed, cs):
        from repro.schedule.chaining import paper_technology

        timing, _, units, binding = paper_technology()
        g = random_dfg(10, seed=seed)
        sched = chained_full_schedule(g, timing, cs, units, binding)
        assert sched.violations() == []
        # a longer clock never needs more control steps
        longer = chained_full_schedule(g, timing, cs * 2, units, binding)
        assert longer.violations() == []
        assert longer.length <= sched.length


class TestConditionalProps:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_guarding_never_lengthens(self, seed):
        """Adding exclusivity can only help: the guarded schedule is never
        longer than the unguarded one."""
        model = ResourceModel.adders_mults(1, 1)
        base = random_dfg(10, seed=seed)
        plain = conditional_full_schedule(base, model)
        guarded_graph = random_dfg(10, seed=seed)
        # guard alternating nodes into opposite branches of one condition
        for i, v in enumerate(guarded_graph.nodes):
            set_guard(guarded_graph, v, [("c", i % 2 == 0)])
        guarded = conditional_full_schedule(guarded_graph, model)
        assert guarded.violations() == []
        assert guarded.length <= plain.length
