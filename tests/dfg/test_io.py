"""Unit tests for DFG serialization (JSON, edge list, DOT)."""

import pytest

from repro.dfg import DFG
from repro.dfg import io as dio
from repro.suite import diffeq, elliptic
from repro.errors import GraphError


def _same_structure(a: DFG, b: DFG) -> bool:
    if [str(v) for v in a.nodes] != [str(v) for v in b.nodes]:
        return False
    ea = sorted((str(e.src), str(e.dst), e.delay) for e in a.edges)
    eb = sorted((str(e.src), str(e.dst), e.delay) for e in b.edges)
    return ea == eb


class TestJson:
    def test_round_trip_benchmarks(self):
        for g in (diffeq(), elliptic()):
            back = dio.loads(dio.dumps(g))
            assert _same_structure(g, back)
            assert back.name == g.name

    def test_ops_and_times_survive(self):
        g = DFG("t")
        g.add_node("a", "mul", time=3, label="alpha")
        g.add_node("b", "add")
        g.add_edge("a", "b", 2)
        back = dio.loads(dio.dumps(g))
        assert back.op("a") == "mul"
        assert back.explicit_time("a") == 3
        assert back.label("a") == "alpha"

    def test_rejects_foreign_json(self):
        with pytest.raises(GraphError, match="not a repro.dfg"):
            dio.loads('{"something": "else"}')

    def test_file_round_trip(self, tmp_path):
        g = diffeq()
        path = str(tmp_path / "g.json")
        dio.save(g, path)
        assert _same_structure(g, dio.load(path))


class TestEdgeList:
    def test_round_trip(self):
        g = DFG("el")
        g.add_node("a", "add")
        g.add_node("m", "mul", time=2)
        g.add_edge("a", "m", 0)
        g.add_edge("m", "a", 1)
        text = dio.to_edge_list(g)
        back = dio.from_edge_list(text, "el")
        assert _same_structure(g, back)
        assert back.explicit_time("m") == 2

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\nnode a add\nnode b add\nedge a b 0\n"
        g = dio.from_edge_list(text)
        assert g.num_nodes == 2 and g.num_edges == 1

    def test_malformed_lines_rejected(self):
        with pytest.raises(GraphError, match="line 1"):
            dio.from_edge_list("node onlyname")
        with pytest.raises(GraphError, match="unknown directive"):
            dio.from_edge_list("vertex a add")
        with pytest.raises(GraphError, match="malformed edge"):
            dio.from_edge_list("node a add\nnode b add\nedge a b")


class TestDot:
    def test_dot_contains_all_elements(self):
        g = diffeq()
        dot = dio.to_dot(g)
        assert dot.startswith("digraph")
        for v in g.nodes:
            assert f'"{v}"' in dot
        # delayed edges are dashed
        assert "style=dashed" in dot
        assert "1D" in dot
