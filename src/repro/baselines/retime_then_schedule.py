"""Baseline: retime-for-minimum-period, then list-schedule (Cathedral-II
style).

The paper (Section 7) describes Goossens/Vandewalle/De Man's flow: retime
the DFG to meet an estimated schedule length *without* resource
constraints, then schedule the retimed loop under resources; iterate on
the estimate.  The weakness the paper calls out — a retiming chosen
blindly to resource needs — is exactly what this baseline exhibits next to
rotation scheduling.

The retiming engine is Leiserson–Saxe's FEAS algorithm (adapted to this
library's sign convention, where ``dr(e) = d(e) + r(u) - r(v)``): binary
search the clock period ``c``; for each candidate run |V| - 1 relaxation
rounds where every node whose combinational arrival time exceeds ``c``
gets a delay pushed onto its inputs (``r(v) -= 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dfg.graph import DFG, NodeId, Timing
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import critical_path_length, topological_order, retimed_delay
from repro.dfg.iteration_bound import iteration_bound
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.schedule.list_scheduler import full_schedule
from repro.core.wrapping import WrappedSchedule, wrap
from repro.errors import RetimingError


@dataclass(frozen=True)
class RetimeScheduleResult:
    """Outcome of retime-then-schedule."""

    graph: DFG
    model: ResourceModel
    retiming: Retiming
    clock_period: int
    schedule: Schedule
    wrapped: WrappedSchedule

    @property
    def length(self) -> int:
        return self.wrapped.period

    @property
    def depth(self) -> int:
        return self.wrapped.retiming.depth(self.graph)


def _arrival_times(graph: DFG, timing: Optional[Timing], r: Retiming) -> Dict[NodeId, int]:
    """Combinational arrival time of every node in ``Gr`` (inclusive)."""
    arrival: Dict[NodeId, int] = {}
    for v in topological_order(graph, r):
        best = 0
        for e in graph.in_edges(v):
            if retimed_delay(e, r) == 0:
                best = max(best, arrival[e.src])
        arrival[v] = best + graph.time(v, timing)
    return arrival


def feas_retiming(
    graph: DFG,
    period: int,
    timing: Optional[Timing] = None,
    initial: Optional[Retiming] = None,
) -> Optional[Retiming]:
    """FEAS: a legal retiming with CP <= ``period``, or None if impossible."""
    r = initial if initial is not None else Retiming.zero()
    for _ in range(max(1, graph.num_nodes - 1)):
        try:
            arrival = _arrival_times(graph, timing, r)
        except Exception:  # zero-delay cycle introduced: infeasible direction
            return None
        late = [v for v in graph.nodes if arrival[v] > period]
        if not late:
            return r.normalized(graph)
        r = r + Retiming({v: -1 for v in late})
        if not r.is_legal(graph):
            return None
    arrival = _arrival_times(graph, timing, r)
    if all(arrival[v] <= period for v in graph.nodes):
        return r.normalized(graph)
    return None


def min_period_retiming(graph: DFG, timing: Optional[Timing] = None) -> Retiming:
    """Binary search over periods with FEAS — minimal-CP retiming."""
    hi = critical_path_length(graph, timing)
    ib = iteration_bound(graph, timing)
    lo = max(
        -(-ib.numerator // ib.denominator),
        max(graph.time(v, timing) for v in graph.nodes),
    )
    best: Optional[Retiming] = feas_retiming(graph, hi, timing)
    if best is None:  # pragma: no cover - the identity retiming meets CP
        raise RetimingError("FEAS failed at the original critical path")
    best_period = hi
    while lo < best_period:
        mid = (lo + best_period) // 2
        r = feas_retiming(graph, mid, timing)
        if r is not None:
            best, best_period = r, mid
        else:
            lo = mid + 1
    return best


def retime_then_schedule(
    graph: DFG,
    model: ResourceModel,
    priority="descendants",
) -> RetimeScheduleResult:
    """Retime for minimum clock period (resource-blind), then list-schedule
    the retimed DAG under resources and wrap the result."""
    timing = model.timing()
    r = min_period_retiming(graph, timing)
    sched = full_schedule(graph, model, r, priority).normalized()
    wrapped = wrap(sched, r)
    return RetimeScheduleResult(
        graph=graph,
        model=model,
        retiming=r,
        clock_period=critical_path_length(graph, timing, r),
        schedule=sched,
        wrapped=wrapped,
    )
