"""Engine speedup experiment: incremental caches vs the naive path.

The rotation engine (``repro.core.engine``) exists purely for speed — the
golden parity suite pins it to the recompute-everything path bit for bit —
so this bench is its reason to exist: the same heuristic run, engine on
vs engine off, wall-clock side by side in ``extra_info``.  The headline
cell is the paper's hardest integral experiment (elliptic @ 3A 2M under
heuristic 2).
"""

import time

import pytest

from repro.core import rotation_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once


def _timed(graph, model, heuristic, backend):
    t0 = time.perf_counter()
    result = rotation_schedule(graph, model, heuristic=heuristic, backend=backend)
    return time.perf_counter() - t0, result


@pytest.mark.parametrize(
    "bench,config,heuristic",
    [
        ("elliptic", "3A2M", "h2"),
        ("elliptic", "2A1Mp", "h2"),
        ("lattice", "2A2M", "h2"),
        ("diffeq", "2A2M", "h1"),
    ],
)
def test_engine_vs_naive(benchmark, bench, config, heuristic):
    graph = get_benchmark(bench)
    model = model_for(config)

    def run():
        naive_s, naive = _timed(graph, model, heuristic, backend="naive")
        views_s, views = _timed(graph, model, heuristic, backend="views")
        engine_s, fast = _timed(graph, model, heuristic, backend="flat")
        return naive_s, views_s, engine_s, naive, views, fast

    naive_s, views_s, engine_s, naive, views, fast = run_once(benchmark, run)
    record(
        benchmark,
        bench=bench,
        config=config,
        heuristic=heuristic,
        length=fast.length,
        rotations=fast.rotations_performed,
        naive_seconds=round(naive_s, 4),
        views_seconds=round(views_s, 4),
        engine_seconds=round(engine_s, 4),
        speedup=round(naive_s / engine_s, 2),
        view_derives=fast.engine_stats["view_derives"],
        grid_delta_rotations=fast.engine_stats["grid_delta_rotations"],
        grid_reseeds=fast.engine_stats["grid_reseeds"],
    )
    # Identical results, faster clock — the whole point of the engine.
    assert fast.length == naive.length == views.length
    assert fast.schedule.start_map == naive.schedule.start_map
    assert views.schedule.start_map == naive.schedule.start_map
    assert fast.retiming == naive.retiming


def test_engine_speedup_headline(benchmark):
    """Acceptance cell: h2 on elliptic @ 3A 2M, best wrapped length 16,
    engine at least 2x faster than the pre-engine code path."""
    graph = get_benchmark("elliptic")
    model = model_for("3A2M")

    def run():
        naive_s, naive = _timed(graph, model, "h2", backend="naive")
        engine_s, fast = _timed(graph, model, "h2", backend="flat")
        return naive_s, engine_s, naive, fast

    naive_s, engine_s, naive, fast = run_once(benchmark, run)
    record(
        benchmark,
        naive_seconds=round(naive_s, 4),
        engine_seconds=round(engine_s, 4),
        speedup=round(naive_s / engine_s, 2),
        length=fast.length,
    )
    assert fast.length == 16 and naive.length == 16
    assert fast.schedule.start_map == naive.schedule.start_map
    # The naive path shares this PR's scheduler/wrap optimisations, so the
    # measured ratio understates the speedup vs the pre-engine tree; the
    # engine must still win outright.
    assert engine_s < naive_s
