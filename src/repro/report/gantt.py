"""ASCII Gantt charts of schedules and unrolled pipelines."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.schedule import Schedule
from repro.schedule.unrolled import UnrolledSchedule


def gantt(schedule: Schedule, width: int = 4) -> str:
    """One row per unit instance, one column per control step.

    Multi-cycle occupancy renders as repeated cells; pipelined units show
    only the initiation cell (their tail runs in the unit's pipeline).
    """
    sched = schedule.normalized()
    graph, model = sched.graph, sched.model
    lanes: Dict[Tuple[str, int], Dict[int, str]] = {}
    fallback_units: Dict[str, int] = {}
    for v in graph.nodes:
        op = graph.op(v)
        unit = model.unit_for_op(op)
        inst = sched.unit_index(v)
        if inst is None:
            inst = fallback_units.get(unit.name, 0)
            fallback_units[unit.name] = (inst + 1) % unit.count
        lane = lanes.setdefault((unit.name, inst), {})
        for off in model.busy_offsets(op):
            lane[sched.start(v) + off] = str(v) + ("'" * off)

    span = range(sched.first_cs, sched.last_cs + 1)
    label_w = max((len(f"{u}[{k}]") for u, k in lanes), default=6)
    header = " " * (label_w + 1) + "".join(str(cs + 1).center(width) for cs in span)
    lines = [header]
    for (unit, inst) in sorted(lanes):
        cells = "".join(
            (lanes[(unit, inst)].get(cs, ".") or ".").center(width)[:width] for cs in span
        )
        lines.append(f"{unit}[{inst}]".ljust(label_w) + " " + cells)
    return "\n".join(lines)


def pipeline_gantt(
    unrolled: UnrolledSchedule,
    max_cs: Optional[int] = None,
    width: int = 7,
) -> str:
    """Global-timeline chart (Figure 4 style): rows are control steps,
    columns show which iteration each node instance belongs to."""
    rows = unrolled.rows()
    if max_cs is not None:
        rows = [row for row in rows if row[0] <= max_cs]
    lines = ["global | entries (node@iteration, * = prologue/epilogue)"]
    for cs, entries in rows:
        cells = []
        for e in entries:
            mark = "" if e.phase == "body" else "*"
            cells.append(f"{e.node}@{e.iteration}{mark}")
        lines.append(f"{cs:6} | " + "  ".join(cells))
    return "\n".join(lines)


def retiming_stages(retiming: Retiming, nodes: List[NodeId]) -> str:
    """Compact view of pipeline stages (Figure 3/5 style)."""
    groups: Dict[int, List[NodeId]] = {}
    for v in nodes:
        groups.setdefault(retiming[v], []).append(v)
    lines = [
        f"stage r={r}: " + ", ".join(str(v) for v in vs)
        for r, vs in sorted(groups.items(), reverse=True)
    ]
    return "\n".join(lines)
