"""Unit tests for the combined lower bound."""

from fractions import Fraction

import pytest

from repro.schedule import ResourceModel
from repro.bounds import combined_lower_bound, lower_bound, resource_bound
from repro.core import rotation_schedule
from repro.suite import all_benchmarks, diffeq, elliptic, biquad


class TestResourceBound:
    def test_non_pipelined_counts_latency(self):
        model = ResourceModel.adders_mults(1, 1)
        rb = resource_bound(diffeq(), model)
        assert rb == {"adder": 5, "mult": 12}

    def test_pipelined_counts_initiations(self):
        model = ResourceModel.adders_mults(1, 1, pipelined_mults=True)
        rb = resource_bound(diffeq(), model)
        assert rb == {"adder": 5, "mult": 6}

    def test_more_units_lower_bound(self):
        model = ResourceModel.adders_mults(2, 3)
        rb = resource_bound(diffeq(), model)
        assert rb == {"adder": 3, "mult": 4}


class TestCombined:
    def test_diffeq_table3_bounds(self):
        assert lower_bound(diffeq(), ResourceModel.adders_mults(1, 1)) == 12
        assert lower_bound(diffeq(), ResourceModel.adders_mults(1, 2)) == 6
        assert lower_bound(diffeq(), ResourceModel.adders_mults(1, 1, pipelined_mults=True)) == 6

    def test_biquad_table3_bounds(self):
        cases = [
            ((2, 4, False), 4), ((2, 3, False), 6), ((1, 2, False), 8),
            ((1, 1, False), 16), ((2, 2, True), 4), ((2, 1, True), 8),
            ((1, 2, True), 8), ((1, 1, True), 8),
        ]
        for (a, m, p), want in cases:
            model = ResourceModel.adders_mults(a, m, pipelined_mults=p)
            assert lower_bound(biquad(), model) == want, (a, m, p)

    def test_binding_constraint_identified(self):
        rep = combined_lower_bound(diffeq(), ResourceModel.adders_mults(1, 1))
        assert rep.binding == "mult"
        rep2 = combined_lower_bound(diffeq(), ResourceModel.adders_mults(4, 4))
        assert rep2.binding == "cycles"
        assert rep2.iteration_bound == Fraction(6)

    def test_bound_is_sound_for_rotation_results(self):
        """No RS schedule ever beats the combined lower bound."""
        for g in all_benchmarks():
            for a, m, p in [(2, 2, False), (2, 1, True), (3, 2, False)]:
                model = ResourceModel.adders_mults(a, m, pipelined_mults=p)
                lb = lower_bound(g, model)
                rs = rotation_schedule(g, model, beta=16)
                assert rs.length >= lb, (g.name, a, m, p)

    def test_elliptic_2a1m_gap_documented(self):
        """Our LB for elliptic 2A 1M is 16 (the paper's appendix derives
        17); the achieved schedule sits above both."""
        model = ResourceModel.adders_mults(2, 1)
        assert lower_bound(elliptic(), model) == 16
