"""The 2-cascaded biquad filter benchmark (paper Tables 1 and 3).

Reconstruction pinned to Table 1: 8 multiplications, 8 additions,
CP = 7, IB = 4 (add = 1 CS, mult = 2 CS).

Each section ``j`` is a direct-form-II biquad::

    w_j = x_j + a1_j * w_j[-1] + a2_j * w_j[-2]       (adds s_ja, s_jb)
    y_j = b0_j * w_j + b1_j * w_j[-1]                 (add  y_j)

The recursion ``w_j -(1 delay)-> ma1_j -> s_ja -> s_jb`` is the ratio-4
critical cycle; the path ``ma1_1 -> s_1a -> s_1b -> mb0_1 -> y_1`` gives
CP = 7.  The two sections are cascaded through a pipeline register
(``y_1`` delayed into section 2) and the spare adders are an input
combiner ``h`` and an output mixer ``o``, so the whole graph is loosely
coupled — every Table 3 entry for this benchmark is resource-bound and
rotation reaches all of them, down to 16 control steps for 1 adder and 1
non-pipelined multiplier (eight 2-cycle multiplications serialized).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dfg.graph import DFG

#: section coefficients for the execution simulator
DEFAULT_COEFFS: Dict[str, float] = {
    "ma1_1": 0.5, "ma2_1": -0.25, "mb0_1": 0.9, "mb1_1": 0.3,
    "ma1_2": 0.4, "ma2_2": -0.2, "mb0_2": 0.8, "mb1_2": 0.25,
}


def biquad(coeffs: Optional[Dict[str, float]] = None) -> DFG:
    """Build the (reconstructed) 2-cascaded biquad filter DFG."""
    k = dict(DEFAULT_COEFFS)
    if coeffs:
        k.update(coeffs)

    g = DFG("biquad")

    def _sum(*xs: float) -> float:
        return sum(xs)

    def _scale(name: str):
        coef = k[name]
        return lambda x, _c=coef: _c * x

    g.add_node("h", "add", func=_sum)
    for j in (1, 2):
        for name in (f"ma1_{j}", f"ma2_{j}", f"mb0_{j}", f"mb1_{j}"):
            g.add_node(name, "mul", func=_scale(name))
        for name in (f"s{j}a", f"s{j}b", f"y{j}"):
            g.add_node(name, "add", func=_sum)
    g.add_node("o", "add", func=_sum)

    for j in (1, 2):
        w = f"s{j}b"  # the section's state value w_j
        # w recursion (ratio-4 critical cycle) and the 2-delay branch
        g.add_edge(w, f"ma1_{j}", 1, init=[0.1 * j])
        g.add_edge(f"ma1_{j}", f"s{j}a", 0)
        g.add_edge(f"s{j}a", w, 0)
        g.add_edge(w, f"ma2_{j}", 2, init=[0.0, 0.05 * j])
        g.add_edge(f"ma2_{j}", w, 0)
        # output half
        g.add_edge(w, f"mb0_{j}", 0)
        g.add_edge(w, f"mb1_{j}", 1, init=[0.02 * j])
        g.add_edge(f"mb0_{j}", f"y{j}", 0)
        g.add_edge(f"mb1_{j}", f"y{j}", 0)

    # section inputs: conditioned input, then pipeline-registered cascade
    g.add_edge("h", "s1a", 0)
    g.add_edge("y1", "s2a", 1, init=[0.0])

    # output mixer and global (delayed) feedback into the input combiner
    g.add_edge("y2", "o", 1, init=[0.0])
    g.add_edge("y1", "o", 2, init=[0.0, 0.0])
    g.add_edge("o", "h", 2, init=[0.3, 0.15])

    return g
