"""Pipelined execution of a rotation-scheduled loop.

Executes node instances in the order the hardware would — by global
control step of the software pipeline (prologue, overlapped bodies,
epilogue) — and checks, at every operand fetch, that the producing
iteration has already completed *by the global timeline*, i.e. that the
pipeline is causally consistent.  Finally the produced value streams are
compared against the reference executor.

A mismatch or a causality violation means the schedule/retiming pair does
not preserve the loop's semantics — the property rotation scheduling is
supposed to guarantee by construction (rotations are legal retimings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.schedule import Schedule
from repro.core.wrapping import WrappedSchedule
from repro.sim.reference import ReferenceExecutor, validate_edge_inits
from repro.errors import SimulationError


@dataclass(frozen=True)
class PipelineRunReport:
    """Outcome of one pipelined execution."""

    iterations: int
    period: int
    depth: int
    makespan: int
    speedup_vs_sequential: float
    max_abs_error: float
    matches_reference: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ok = "OK" if self.matches_reference else "MISMATCH"
        return (
            f"pipeline run [{ok}]: {self.iterations} iterations, period "
            f"{self.period}, depth {self.depth}, makespan {self.makespan} CS, "
            f"{self.speedup_vs_sequential:.2f}x vs sequential, "
            f"max |err| {self.max_abs_error:.3g}"
        )


class PipelineExecutor:
    """Executes a static schedule as a software pipeline.

    Args:
        schedule: the static schedule (normalized or not).
        retiming: normalized retiming realizing the schedule; node ``v`` of
            body instance ``j`` computes iteration ``j + r(v)``.
        period: initiation interval; defaults to the schedule's span
            (pass the wrapped period for wrapped schedules).
    """

    def __init__(
        self,
        schedule: Schedule,
        retiming: Retiming,
        period: Optional[int] = None,
    ):
        graph = schedule.graph
        for v in graph.nodes:
            if graph.func(v) is None:
                raise SimulationError(f"node {v!r} has no func — cannot simulate")
        if any(retiming[v] < 0 for v in graph.nodes):
            raise SimulationError("pipeline executor expects a normalized retiming")
        validate_edge_inits(graph)
        self.schedule = schedule.normalized()
        self.retiming = retiming
        self.period = self.schedule.length if period is None else period
        if self.period <= 0:
            raise SimulationError(f"nonpositive period {self.period}")
        self.graph = graph
        self.depth = retiming.depth(graph)

    @classmethod
    def from_wrapped(cls, wrapped: WrappedSchedule) -> "PipelineExecutor":
        return cls(wrapped.schedule, wrapped.retiming, wrapped.period)

    # ------------------------------------------------------------------
    def start_time(self, node: NodeId, iteration: int) -> int:
        """Global CS at which ``node``'s instance for ``iteration`` starts."""
        return (iteration - self.retiming[node]) * self.period + self.schedule.start(node)

    def finish_time(self, node: NodeId, iteration: int) -> int:
        return self.start_time(node, iteration) + self.schedule.model.latency(
            self.graph.op(node)
        )

    def execution_order(self, iterations: int) -> List[Tuple[NodeId, int]]:
        """(node, iteration) pairs sorted by global start CS."""
        pairs = [
            (v, i) for v in self.graph.nodes for i in range(iterations)
        ]
        pairs.sort(key=lambda p: (self.start_time(*p), str(p[0])))
        return pairs

    # ------------------------------------------------------------------
    def run(self, iterations: int) -> Dict[NodeId, List[Any]]:
        """Execute the pipeline; returns per-node value streams.

        Raises:
            SimulationError: on any causality violation — an operand read
                before its producer's finish time on the global timeline.
        """
        if iterations < self.depth:
            raise SimulationError(
                f"need at least depth={self.depth} iterations to fill the pipeline"
            )
        graph = self.graph
        history: Dict[NodeId, List[Any]] = {v: [] for v in graph.nodes}
        for v, i in self.execution_order(iterations):
            when = self.start_time(v, i)
            args = []
            for e in graph.in_edges(v):
                src_iter = i - e.delay
                if src_iter < 0:
                    init = graph.edge_init(e)
                    args.append(0.0 if init is None else init[i])
                    continue
                if src_iter >= len(history[e.src]):
                    raise SimulationError(
                        f"causality violation: {v!r}@it{i} (CS {when}) reads "
                        f"{e.src!r}@it{src_iter} which has not executed"
                    )
                produced = self.finish_time(e.src, src_iter)
                if produced > when:
                    raise SimulationError(
                        f"timing violation: {v!r}@it{i} starts at CS {when} but "
                        f"{e.src!r}@it{src_iter} finishes at CS {produced}"
                    )
                args.append(history[e.src][src_iter])
            if len(history[v]) != i:
                raise SimulationError(
                    f"out-of-order execution of {v!r}: expected iteration "
                    f"{len(history[v])}, got {i}"
                )  # pragma: no cover - ordering guarantees this
            history[v].append(graph.func(v)(*args))
        return history

    # ------------------------------------------------------------------
    def verify(self, iterations: int, rel_tol: float = 1e-9) -> PipelineRunReport:
        """Run pipelined and reference executions and compare the streams."""
        pipelined = self.run(iterations)
        reference = ReferenceExecutor(self.graph).run(iterations)
        max_err, ok = compare_streams(pipelined, reference, rel_tol=rel_tol)

        first = min(self.start_time(v, 0) for v in self.graph.nodes)
        last = max(self.finish_time(v, iterations - 1) for v in self.graph.nodes)
        makespan = last - first
        sequential = iterations * _sequential_period(self.schedule)
        return PipelineRunReport(
            iterations=iterations,
            period=self.period,
            depth=self.depth,
            makespan=makespan,
            speedup_vs_sequential=sequential / makespan if makespan else float("inf"),
            max_abs_error=max_err,
            matches_reference=ok,
        )


def compare_streams(
    produced: Mapping[NodeId, List[Any]],
    reference: Mapping[NodeId, List[Any]],
    rel_tol: float = 1e-9,
) -> Tuple[float, bool]:
    """Strict per-node value-stream comparison: ``(max |err|, equal)``.

    A node present in only one side, or two streams of different lengths,
    is a mismatch — truncating silently (what a bare ``zip`` would do)
    could pass a pipeline that computed too few values.
    """
    max_err = 0.0
    ok = set(produced) == set(reference)
    for v in produced:
        if v not in reference:
            continue
        a_stream, b_stream = produced[v], reference[v]
        if len(a_stream) != len(b_stream):
            ok = False
        for a, b in zip(a_stream, b_stream):
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                err = abs(a - b)
                max_err = max(max_err, err)
                if not math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12):
                    ok = False
            elif a != b:
                ok = False
    return max_err, ok


def _sequential_period(schedule: Schedule) -> int:
    """Length of the non-pipelined reference schedule (list scheduling of
    the original DAG under the same resources)."""
    from repro.schedule.list_scheduler import full_schedule

    return full_schedule(schedule.graph, schedule.model).length


def verify_pipeline(
    schedule: Schedule,
    retiming: Retiming,
    iterations: int = 50,
    period: Optional[int] = None,
) -> PipelineRunReport:
    """One-call end-to-end verification of a pipelined schedule."""
    return PipelineExecutor(schedule, retiming, period).verify(iterations)
