"""Unit tests for pipeline-depth reduction (Section 3.2 / Figure 5)."""

import pytest

from repro.dfg import Retiming
from repro.schedule import ResourceModel
from repro.core import RotationState, minimal_depth, pipeline_depth, reduce_depth, wrap
from repro.suite import diffeq


class TestDepthReduction:
    def test_figure_5_depth_4_to_2(self):
        """7 rotations of size 2 pile up a deep rotation function; the
        shortest-path retiming realizes the same schedule with depth 2."""
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        for _ in range(7):
            size = min(2, st.length - 1)
            st = st.down_rotate(size)
        assert st.length == 6  # the optimal period (Figure 5-(a))
        accumulated = st.retiming.normalized(st.graph)
        assert accumulated.depth(st.graph) > 2  # R is deep
        shallow = reduce_depth(st.schedule)
        assert shallow.depth(st.graph) == 2  # r is shallow (Figure 5-(b))

    def test_reduced_retiming_realizes_schedule(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        for _ in range(7):
            st = st.down_rotate(min(2, st.length - 1))
        shallow = reduce_depth(st.schedule)
        assert st.schedule.is_legal_dag_schedule(shallow)
        assert shallow.is_legal(st.graph)

    def test_minimality_vs_accumulated(self):
        """The reduced depth never exceeds the accumulated one."""
        st = RotationState.initial(diffeq(), ResourceModel.adders_mults(1, 2))
        for size in (1, 2, 1, 3, 1, 1):
            if size < st.length:
                st = st.down_rotate(size)
        w = wrap(st.schedule, st.retiming)
        shallow = reduce_depth(w.schedule, w.period)
        assert shallow.depth(st.graph) <= st.retiming.normalized(st.graph).depth(st.graph)

    def test_unrotated_schedule_depth_1(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        assert minimal_depth(st.schedule) == 1

    def test_pipeline_depth_helper(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        r = Retiming.of_set([10])
        assert pipeline_depth(st.schedule, r) == 2
