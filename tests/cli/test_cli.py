"""Unit tests for the rotsched command-line interface."""

import pytest

from repro.cli import main, parse_config


class TestParseConfig:
    def test_basic(self):
        model, label = parse_config("3A2M")
        assert label == "3A 2M"
        assert model.unit("adder").count == 3
        assert model.unit("mult").count == 2
        assert not model.unit("mult").pipelined

    def test_pipelined_and_spaces(self):
        model, label = parse_config("2A 1Mp")
        assert label == "2A 1Mp"
        assert model.unit("mult").pipelined

    def test_lowercase(self):
        model, _ = parse_config("1a1mp")
        assert model.unit("mult").pipelined

    @pytest.mark.parametrize("bad", ["", "3X2M", "A2M", "3A2"])
    def test_bad_configs(self, bad):
        with pytest.raises(SystemExit):
            parse_config(bad)


class TestCommands:
    def test_inspect(self, capsys):
        assert main(["inspect", "diffeq"]) == 0
        out = capsys.readouterr().out
        assert "11" in out and "iteration bound: 6" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "diffeq", "-r", "1A1Mp", "--beta", "8"]) == 0
        out = capsys.readouterr().out
        assert "-> 6 CS" in out
        assert "CS" in out

    def test_schedule_with_gantt(self, capsys):
        assert main(["schedule", "diffeq", "-r", "1A1Mp", "--beta", "8", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "adder[0]" in out

    def test_bench(self, capsys):
        assert main(["bench", "biquad", "2A4M", "1A1M", "--beta", "8"]) == 0
        out = capsys.readouterr().out
        assert "2A 4M" in out and "1A 1M" in out and "LB" in out

    def test_bench_with_baselines(self, capsys):
        assert main(["bench", "diffeq", "1A2M", "--beta", "8", "--baselines"]) == 0
        out = capsys.readouterr().out
        assert "Modulo" in out and "Retime+LS" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "diffeq", "-r", "1A2M", "-n", "20", "--beta", "8"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "machine sim" in out

    def test_json_graph_input(self, tmp_path, capsys):
        from repro.dfg import io as dio
        from repro.suite import biquad

        path = str(tmp_path / "g.json")
        dio.save(biquad(), path)
        assert main(["inspect", path]) == 0
        assert "16" in capsys.readouterr().out  # nodes

    def test_unknown_benchmark_fails(self):
        with pytest.raises(FileNotFoundError):
            main(["inspect", "does-not-exist"])
