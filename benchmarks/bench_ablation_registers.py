"""Ablation for the paper's **conclusion**: "through a sequence of
rotations, many optimal schedules can be found, which expose more chances
of optimization for the following stages of high-level synthesis, e.g.
connection binding, allocation".

Measured here: across the tied-optimal set Q of each benchmark, the
steady-state register requirement varies — selecting the best member
saves real registers at zero cost in schedule length.  Cell execution
goes through :func:`repro.explore.run_grid` (the cold path keeps the
full :class:`RotationResult` on the outcome for the Q-set analysis).
"""

import pytest

from repro.binding import select_schedule
from repro.explore import build_grid, cell_model, run_grid

from conftest import record, run_once

CASES = [
    ("diffeq", "1A1M"),
    ("elliptic", "3A2M"),
    ("biquad", "2A3M"),
    ("allpole", "2A2M"),
]


@pytest.mark.parametrize("bench,tag", CASES)
def test_register_spread_across_q(benchmark, bench, tag):
    cells = build_grid([bench], [tag])

    def run():
        (outcome,) = run_grid(cells, cold=True)
        return outcome, select_schedule(outcome.result)

    outcome, selection = run_once(benchmark, run)
    record(
        benchmark,
        bench=bench,
        resources=cell_model(outcome.spec).label(),
        optimal_schedules=len(selection.costs),
        register_costs=sorted(selection.costs),
        best=selection.best_cost,
        worst=max(selection.costs),
        spread=selection.spread,
    )
    assert selection.best.period == outcome.length  # selection is free
    assert selection.best_cost == min(selection.costs)
