"""Unit tests for the Schedule container."""

import pytest

from repro.dfg import DFG, Retiming
from repro.schedule import ResourceModel, Schedule
from repro.errors import SchedulingError


@pytest.fixture
def graph() -> DFG:
    g = DFG("s")
    g.add_node("m1", "mul")
    g.add_node("m2", "mul")
    g.add_node("a1", "add")
    g.add_edge("m1", "a1", 0)
    g.add_edge("a1", "m2", 1)
    g.add_edge("m2", "m1", 1)
    return g


@pytest.fixture
def model() -> ResourceModel:
    return ResourceModel.adders_mults(1, 1)


class TestBasics:
    def test_lengths_and_finish(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        assert s.finish("m1") == 2  # 2-cycle mult
        assert s.finish("a1") == 3
        assert s.first_cs == 0
        assert s.last_cs == 4  # m2 occupies 3 and 4
        assert s.length == 5

    def test_missing_node_rejected(self, graph, model):
        with pytest.raises(SchedulingError, match="misses"):
            Schedule(graph, model, {"m1": 0})

    def test_unknown_node_rejected(self, graph, model):
        with pytest.raises(SchedulingError, match="unknown"):
            Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3, "ghost": 1})

    def test_normalized_and_shifted(self, graph, model):
        s = Schedule(graph, model, {"m1": 5, "a1": 7, "m2": 8})
        n = s.normalized()
        assert n.first_cs == 0 and n.length == s.length
        assert n.start("a1") == 2
        assert s.shifted(-5).start_map == n.start_map

    def test_nodes_starting_in(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        assert s.nodes_starting_in(0, 2) == ["m1", "a1"]
        assert s.nodes_starting_in(3, 3) == ["m2"]

    def test_nodes_at_includes_multicycle_tails(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        assert s.nodes_at(1) == ["m1"]  # tail of m1
        assert s.nodes_at(4) == ["m2"]

    def test_with_updates(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        s2 = s.with_updates({"a1": 5})
        assert s2.start("a1") == 5 and s.start("a1") == 2


class TestResourceFeasibility:
    def test_conflict_detection(self, graph, model):
        # two mults overlapping on one multiplier
        s = Schedule(graph, model, {"m1": 0, "m2": 1, "a1": 4})
        conflicts = s.resource_conflicts()
        assert len(conflicts) == 1
        c = conflicts[0]
        assert c.unit == "mult" and c.cs == 1 and c.used == 2 and c.available == 1
        assert not s.is_resource_feasible()

    def test_pipelined_units_share(self, graph):
        model = ResourceModel.adders_mults(1, 1, pipelined_mults=True)
        s = Schedule(graph, model, {"m1": 0, "m2": 1, "a1": 4})
        assert s.is_resource_feasible()  # II=1: back-to-back initiations OK

    def test_busy_table(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        table = s.busy_table()
        assert table[("mult", 0)] == ["m1"]
        assert table[("mult", 1)] == ["m1"]
        assert table[("adder", 2)] == ["a1"]


class TestPrecedence:
    def test_dag_violations_zero_delay(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 1, "m2": 5})  # a1 too early
        bad = s.dag_violations()
        assert len(bad) == 1 and "m1->a1" in bad[0]

    def test_legal_dag_schedule(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        assert s.is_legal_dag_schedule()

    def test_violations_under_retiming(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        # retiming m2 makes edge a1->m2 zero-delay: a1 finishes at 3 == m2 ok;
        # and m2->m1 becomes... m2->m1: 1 + 1 - 0 = 2 (fine)
        r = Retiming.of_set(["m2"])
        assert s.dag_violations(r) == []
        # but rotating m1 instead makes m1->a1 still 0 and a1->m2 0 with
        # r(m1)=1: edge m2->m1 dr = 1+0-1 = 0: m2 finishes 5 > m1 start 0
        r2 = Retiming.of_set(["m1"])
        assert any("m2->m1" in v for v in s.dag_violations(r2))

    def test_rows_and_equality(self, graph, model):
        s = Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        assert s.as_rows() == [(0, ["m1"]), (2, ["a1"]), (3, ["m2"])]
        assert s == Schedule(graph, model, {"m1": 0, "a1": 2, "m2": 3})
        assert s != s.shifted(1)
