"""Cache-layer tests: LRU accounting, artifact round-trips, promotion."""

from __future__ import annotations

import json
import os

import pytest

from repro.qa import load_bundle, replay_bundle
from repro.serve import ArtifactStore, LRUCache, TwoLevelCache
from repro.serve.cache import _config_tag
from repro.serve.protocol import (
    ServeError,
    canonical_request,
    fingerprint,
    parse_request,
    solve_canonical,
)

REQUEST = {"graph": {"benchmark": "diffeq"}, "config": "2A1M"}


def solved_request(payload=REQUEST):
    canonical = canonical_request(parse_request(payload))
    fp = fingerprint(canonical)
    return fp, canonical, solve_canonical(canonical)


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {
            "size": 1, "maxsize": 4, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_eviction_is_lru_not_fifo(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # touch: "b" becomes the eviction victim
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_existing_key_does_not_evict(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_rejects_silly_maxsize(self):
        with pytest.raises(ServeError):
            LRUCache(maxsize=0)


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        fp, canonical, response = solved_request()
        path = store.store(fp, canonical, response)
        assert path is not None and os.path.isdir(path)
        assert store.load(fp) == response
        assert store.stored == 1 and store.loaded == 1

    def test_load_rejects_fingerprint_mismatch(self, tmp_path):
        # A record copied under the wrong key must not resurface.
        store = ArtifactStore(str(tmp_path))
        fp, canonical, response = solved_request()
        path = store.store(fp, canonical, response)
        record = json.load(open(os.path.join(path, "response.json")))
        bogus = "0" * 64
        os.makedirs(store.path_for(bogus))
        with open(os.path.join(store.path_for(bogus), "response.json"), "w") as fh:
            json.dump(record, fh)
        assert store.load(bogus) is None

    def test_load_missing_and_corrupt(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.load("f" * 64) is None
        fp, canonical, response = solved_request()
        path = store.store(fp, canonical, response)
        with open(os.path.join(path, "response.json"), "w") as fh:
            fh.write("{not json")
        assert store.load(fp) is None

    def test_unwritable_root_degrades_to_none(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        store = ArtifactStore(str(blocker))  # a file, not a directory
        fp, canonical, response = solved_request()
        assert store.store(fp, canonical, response) is None

    def test_artifact_is_a_replayable_qa_bundle(self, tmp_path):
        # Tag-shaped models write the repro.qa bundle format: load_bundle
        # parses it and replay_bundle re-certifies the stored graph.
        store = ArtifactStore(str(tmp_path))
        fp, canonical, response = solved_request()
        path = store.store(fp, canonical, response)
        bundle = load_bundle(path)
        assert bundle.case["generator"] == "serve"
        assert bundle.case["config"] == "2A1M"
        assert bundle.case["params"]["fingerprint"] == fp
        assert sorted(bundle.graph.nodes) == list(range(11))  # diffeq
        _, failures = replay_bundle(path)
        assert failures == []

    def test_config_tag_only_for_fuzzable_models(self):
        _, canonical, _ = solved_request()
        assert _config_tag(canonical) == "2A1M"
        pipelined = dict(canonical)
        pipelined["model"] = {
            "units": [["adder", 2, 1, False], ["mult", 1, 2, True]],
            "binding": canonical["model"]["binding"],
        }
        assert _config_tag(pipelined) == "2A1Mp"
        exotic = dict(canonical)
        exotic["model"] = {
            "units": [["alu", 3, 1, False]],
            "binding": [["add", "alu"], ["mul", "alu"]],
        }
        assert _config_tag(exotic) is None


class TestTwoLevelCache:
    def test_disk_hit_promotes_into_memory(self, tmp_path):
        fp, canonical, response = solved_request()
        warm = TwoLevelCache(maxsize=8, store=ArtifactStore(str(tmp_path)))
        warm.insert(fp, canonical, response)
        # A fresh process restart: empty memory, same disk.
        cold = TwoLevelCache(maxsize=8, store=ArtifactStore(str(tmp_path)))
        got, level = cold.lookup(fp)
        assert level == "disk" and got == response
        got2, level2 = cold.lookup(fp)
        assert level2 == "memory" and got2 == response

    def test_miss_returns_none_level(self):
        cache = TwoLevelCache(maxsize=8)
        assert cache.lookup("a" * 64) == (None, None)

    def test_memory_only_when_no_store(self):
        fp, canonical, response = solved_request()
        cache = TwoLevelCache(maxsize=8)
        cache.insert(fp, canonical, response)
        assert cache.lookup(fp) == (response, "memory")
        assert "disk" not in cache.stats()
