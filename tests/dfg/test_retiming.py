"""Unit tests for retiming functions (paper Section 2)."""

import pytest

from repro.dfg import DFG, Retiming
from repro.errors import RetimingError


@pytest.fixture
def chain_loop() -> DFG:
    """a -> b -> c with 2 delays on the back edge c -> a."""
    g = DFG("chain")
    for n in "abc":
        g.add_node(n, "add")
    g.add_edge("a", "b", 0)
    g.add_edge("b", "c", 0)
    g.add_edge("c", "a", 2)
    return g


class TestBasics:
    def test_default_zero(self):
        r = Retiming.zero()
        assert r["anything"] == 0
        assert len(r) == 0

    def test_of_set(self):
        r = Retiming.of_set(["a", "b"])
        assert r["a"] == 1 and r["b"] == 1 and r["c"] == 0

    def test_zero_entries_dropped(self):
        r = Retiming({"a": 0, "b": 2})
        assert len(r) == 1
        assert r == Retiming({"b": 2})

    def test_compose_is_pointwise_sum(self):
        r = Retiming({"a": 1}) + Retiming({"a": 2, "b": -1})
        assert r["a"] == 3 and r["b"] == -1

    def test_negated(self):
        r = Retiming({"a": 2}).negated()
        assert r["a"] == -2

    def test_hash_and_eq(self):
        assert Retiming({"a": 1}) == Retiming({"a": 1, "b": 0})
        assert hash(Retiming({"a": 1})) == hash(Retiming({"a": 1}))


class TestLegality:
    def test_dr_formula(self, chain_loop):
        r = Retiming({"a": 1})
        drs = {(e.src, e.dst): r.dr(e) for e in chain_loop.edges}
        # delay pushed through a: leaves its in-edge, lands on its out-edge
        assert drs[("c", "a")] == 1
        assert drs[("a", "b")] == 1
        assert drs[("b", "c")] == 0

    def test_illegal_retiming_detected(self, chain_loop):
        r = Retiming({"b": 1})  # steals a delay a->b doesn't have
        assert not r.is_legal(chain_loop)
        bad = r.illegal_edges(chain_loop)
        assert [(e.src, e.dst) for e in bad] == [("a", "b")]
        with pytest.raises(RetimingError, match="illegal"):
            r.check_legal(chain_loop)

    def test_legal_retiming_passes(self, chain_loop):
        r = Retiming({"a": 1, "b": 1})
        assert r.is_legal(chain_loop)
        r.check_legal(chain_loop)  # no raise

    def test_delay_conservation_on_cycles(self, chain_loop):
        # any retiming preserves the total delay around each cycle
        r = Retiming({"a": 5, "b": 3, "c": -2})
        assert sum(r.dr(e) for e in chain_loop.edges) == sum(
            e.delay for e in chain_loop.edges
        )


class TestNormalization:
    def test_normalized_shifts_min_to_zero(self, chain_loop):
        r = Retiming({"a": 3, "b": 2, "c": 1}).normalized(chain_loop)
        values = [r[v] for v in chain_loop.nodes]
        assert min(values) == 0
        assert values == [2, 1, 0]

    def test_normalized_handles_unset_nodes(self, chain_loop):
        r = Retiming({"a": 2}).normalized(chain_loop)  # b, c implicit 0
        assert r["a"] == 2 and r["b"] == 0

    def test_normalization_preserves_dr(self, chain_loop):
        r = Retiming({"a": 4, "b": 3, "c": 3})
        rn = r.normalized(chain_loop)
        for e in chain_loop.edges:
            assert r.dr(e) == rn.dr(e)

    def test_depth(self, chain_loop):
        assert Retiming.zero().depth(chain_loop) == 1
        assert Retiming({"a": 1}).depth(chain_loop) == 2
        assert Retiming({"a": 2, "b": 1}).depth(chain_loop) == 3


class TestRetimedGraph:
    def test_retime_materializes_dr(self, chain_loop):
        r = Retiming({"a": 1, "b": 1})
        gr = r.retime(chain_loop)
        delays = {(e.src, e.dst): e.delay for e in gr.edges}
        assert delays == {("a", "b"): 0, ("b", "c"): 1, ("c", "a"): 1}

    def test_retime_rejects_illegal(self, chain_loop):
        with pytest.raises(RetimingError):
            Retiming({"c": 5}).retime(chain_loop)

    def test_retime_preserves_metadata(self, chain_loop):
        gr = Retiming({"a": 1, "b": 1}).retime(chain_loop)
        assert gr.op("a") == "add"
        assert gr.nodes == chain_loop.nodes

    def test_stages_grouping(self, chain_loop):
        r = Retiming({"a": 1, "b": 1})
        stages = r.stages(chain_loop)
        assert stages == {1: ["a", "b"], 0: ["c"]}
        # highest stage (earliest iterations) listed first
        assert list(stages) == [1, 0]

    def test_restricted(self):
        r = Retiming({"a": 1, "b": 2}).restricted(["b"])
        assert r["a"] == 0 and r["b"] == 2
