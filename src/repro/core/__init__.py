"""Rotation scheduling core: rotations, phases, heuristics, depth, wrapping."""

from repro.core.engine import BACKENDS, EngineStats, RotationEngine, ViewCache, make_engine
from repro.core.flat import FlatEngine, FlatGraph, FlatModel
from repro.core.rotation import RotationState, RotationStep
from repro.core.phases import (
    HEURISTICS,
    BestTracker,
    heuristic_1,
    heuristic_2,
    rotation_phase,
)
from repro.core.depth import minimal_depth, pipeline_depth, reduce_depth
from repro.core.wrapping import (
    WrappedSchedule,
    reroot,
    unwrap_if_possible,
    wrap,
    wrapped_length,
)
from repro.core.nested import (
    NestedModel,
    NestedRotationState,
    NestedSchedule,
    ReservationProfile,
    inner_loop_profile,
    nested_full_schedule,
    pipeline_nested_loop,
)
from repro.core.chained_rotation import ChainedRotationState, chained_rotation_schedule
from repro.core.scheduler import RotationResult, RotationScheduler, rotation_schedule
from repro.core.session import EDIT_KINDS, MutableSchedulingSession, open_session

__all__ = [
    "BACKENDS",
    "EDIT_KINDS",
    "HEURISTICS",
    "BestTracker",
    "ChainedRotationState",
    "EngineStats",
    "MutableSchedulingSession",
    "FlatEngine",
    "FlatGraph",
    "FlatModel",
    "RotationEngine",
    "ViewCache",
    "make_engine",
    "NestedModel",
    "NestedRotationState",
    "NestedSchedule",
    "ReservationProfile",
    "RotationResult",
    "RotationScheduler",
    "RotationState",
    "RotationStep",
    "WrappedSchedule",
    "chained_rotation_schedule",
    "heuristic_1",
    "inner_loop_profile",
    "nested_full_schedule",
    "heuristic_2",
    "minimal_depth",
    "open_session",
    "pipeline_depth",
    "pipeline_nested_loop",
    "reduce_depth",
    "reroot",
    "rotation_phase",
    "rotation_schedule",
    "unwrap_if_possible",
    "wrap",
    "wrapped_length",
]
