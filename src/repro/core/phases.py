"""Rotation phases and the paper's two heuristics (Section 5).

A *rotation phase* of size ``i`` performs ``beta`` down-rotations of size
``i``, halving the size whenever it reaches the current schedule length
(rotations of size >= length are illegal).  The two heuristics drive
phases differently:

* **Heuristic 1** runs phases of sizes ``1..sigma`` *independently*, each
  restarting from the initial list schedule of the original DFG — more
  predictable, embarrassingly parallel, good for studying the effect of
  rotation size.
* **Heuristic 2** runs phases in *decreasing* size order, each phase
  continuing from the previous phase's rotation function and re-seeding
  its schedule with ``FullSchedule(G_R)`` — the retimed graph "exposes
  more faces" of the DFG.  This is the heuristic behind the paper's
  reported results (it wins on the elliptic filter's 2A 1Mp case).

Schedule quality is the *wrapped* length (Section 4): for single-cycle
graphs it coincides with the span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.dfg.graph import DFG
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.core.rotation import RotationState
from repro.core.wrapping import WrappedSchedule, wrap


@dataclass
class BestTracker:
    """Keeps the shortest wrapped length seen and the states achieving it.

    The paper's ``(Lopt, Q)`` pair: ``Q`` collects distinct optimal
    schedules ("the number of optimal schedules found ranges from 15 to
    35"); ``cap`` bounds memory.
    """

    cap: int = 64
    length: Optional[int] = None
    entries: List[Tuple[RotationState, WrappedSchedule]] = field(default_factory=list)
    _seen: Set[Tuple] = field(default_factory=set)
    offers: int = 0

    def offer(self, state: RotationState) -> WrappedSchedule:
        """Score a state (wrapped length) and record it if it ties or wins."""
        self.offers += 1
        wrapped = wrap(state.schedule, state.retiming)
        if self.length is None or wrapped.period < self.length:
            self.length = wrapped.period
            self.entries = [(state, wrapped)]
            self._seen = {self._key(state)}
        elif wrapped.period == self.length and len(self.entries) < self.cap:
            key = self._key(state)
            if key not in self._seen:
                self._seen.add(key)
                self.entries.append((state, wrapped))
        return wrapped

    @staticmethod
    def _key(state: RotationState) -> Tuple:
        sched = state.schedule.normalized()
        return (
            frozenset(sched.start_map.items()),
            frozenset(state.retiming.items_nonzero()),
        )

    @property
    def best_state(self) -> RotationState:
        return self.entries[0][0]

    @property
    def best_wrapped(self) -> WrappedSchedule:
        return self.entries[0][1]


def rotation_phase(
    state: RotationState,
    size: int,
    beta: int,
    best: BestTracker,
) -> RotationState:
    """The paper's ``RotationPhase``: ``beta`` rotations of (nominal) size
    ``size``, halving the size while it reaches the schedule length."""
    current = size
    for _ in range(beta):
        length = state.length
        while current >= length and current > 1:
            current = (current + 1) // 2  # ceil(i/2)
        if current >= length:
            break  # schedule of length 1 cannot be rotated further
        state = state.down_rotate(current)
        best.offer(state)
    return state


def heuristic_1(
    graph: DFG,
    model: ResourceModel,
    beta: Optional[int] = None,
    sigma: Optional[int] = None,
    priority="descendants",
    cap: int = 64,
) -> BestTracker:
    """Independent phases of sizes ``1..sigma``, each from the initial
    schedule of the original DFG (rotation function reset to zero).

    Args:
        graph: cyclic DFG to schedule.
        model: resource model.
        beta: rotations per phase (default ``2 * |V|``).
        sigma: largest phase size (default: initial schedule length - 1).
        priority: list-scheduling priority.
        cap: max number of tied-optimal schedules retained.
    """
    initial = RotationState.initial(graph, model, priority)
    best = BestTracker(cap=cap)
    best.offer(initial)
    if beta is None:
        beta = max(8, 2 * graph.num_nodes)
    if sigma is None:
        sigma = max(1, initial.length - 1)
    for size in range(1, sigma + 1):
        rotation_phase(initial, size, beta, best)
    return best


def heuristic_2(
    graph: DFG,
    model: ResourceModel,
    beta: Optional[int] = None,
    sigma: Optional[int] = None,
    priority="descendants",
    cap: int = 64,
) -> BestTracker:
    """Cascaded phases in decreasing size order with ``FullSchedule(G_R)``
    re-seeding between phases (the paper's reported heuristic)."""
    state = RotationState.initial(graph, model, priority)
    best = BestTracker(cap=cap)
    best.offer(state)
    if beta is None:
        beta = max(8, 2 * graph.num_nodes)
    if sigma is None:
        sigma = max(1, state.length - 1)
    for size in range(sigma, 0, -1):
        state = rotation_phase(state, size, beta, best)
        # Re-seed the next phase from a fresh list schedule of G_R.
        state = RotationState.initial(graph, model, priority, retiming=state.retiming)
        best.offer(state)
    return best


HEURISTICS = {"h1": heuristic_1, "h2": heuristic_2}
