"""Service-pipeline tests: cache levels, coalescing, warm path, batching,
numpy degradation, and the cached-vs-fresh differential oracle."""

from __future__ import annotations

import asyncio

import pytest

from repro.qa import GOLDEN_REQUESTS, check_serve_differential
from repro.serve import build_service, schedule_bits
from repro.serve.pool import _SESSIONS, InlinePool
from repro.serve.protocol import (
    canonical_request,
    parse_request,
    request_fingerprint,
    solve_canonical,
)

DIFFEQ = {"graph": {"benchmark": "diffeq"}, "config": "2A1M"}


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def service():
    svc = build_service(inline=True)
    yield svc
    svc.close()


class TestCacheLevels:
    def test_miss_then_memory_hit(self, service):
        first = run(service.solve(DIFFEQ))
        second = run(service.solve(DIFFEQ))
        assert first["cache"] == "solved"
        assert second["cache"] == "memory"
        assert first["result"] == second["result"]
        assert first["fingerprint"] == second["fingerprint"]

    def test_disk_hit_after_restart(self, tmp_path):
        store = str(tmp_path / "artifacts")
        svc1 = build_service(inline=True, artifacts=store)
        first = run(svc1.solve(DIFFEQ))
        svc1.close()
        svc2 = build_service(inline=True, artifacts=store)
        second = run(svc2.solve(DIFFEQ))
        svc2.close()
        assert second["cache"] == "disk"
        assert second["result"] == first["result"]

    def test_bad_request_is_an_error_envelope(self, service):
        out = run(service.solve({"graph": {"benchmark": "nope"}, "config": "2A1M"}))
        assert out["cache"] == "error" and "error" in out
        out = run(service.solve({"config": "2A1M"}))
        assert "missing 'graph'" in out["error"]["message"]
        assert service.metrics.as_dict()["counters"]["bad_requests"] == 2

    def test_solver_error_is_not_cached(self, service):
        # A zero-delay cycle fails inside the worker; the error must come
        # back structured and must NOT poison the cache.
        from repro.dfg.graph import DFG
        from repro.dfg import io as dfg_io

        g = DFG("zdc")
        g.add_node("a", "add")
        g.add_node("b", "add")
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        payload = {"graph": dfg_io.to_json_dict(g), "config": "1A1M"}
        out = run(service.solve(payload))
        assert out["cache"] == "error"
        assert out["error"]["type"] == "ReproError"
        assert len(service.cache.memory) == 0


class TestSingleFlight:
    def test_concurrent_identical_requests_solve_once(self, service):
        async def burst():
            return await service.solve_many([DIFFEQ] * 6)

        envelopes = run(burst())
        levels = sorted(e["cache"] for e in envelopes)
        assert levels.count("solved") == 1
        assert levels.count("coalesced") == 5
        assert len({str(e["result"]) for e in envelopes}) == 1
        counters = service.metrics.as_dict()["counters"]
        assert counters["coalesced"] == 5 and counters["misses"] == 1

    def test_cohort_batching_shares_one_worker_call(self, service):
        # Same model+options, different graphs, same tick -> one cohort.
        burst = [
            {"graph": {"benchmark": b}, "config": "2A1M"}
            for b in ("diffeq", "biquad", "allpole")
        ]
        envelopes = run(service.solve_many(burst))
        assert all(e["cache"] == "solved" for e in envelopes)
        counters = service.metrics.as_dict()["counters"]
        assert counters["cohorts"] == 1
        assert counters["cohort_members"] == 3
        for payload, envelope in zip(burst, envelopes):
            fresh = solve_canonical(canonical_request(parse_request(payload)))
            assert schedule_bits(envelope["result"]) == schedule_bits(fresh)


class TestWarmPath:
    def test_edit_chain_repairs_in_place(self, service):
        _SESSIONS.clear()
        base = run(service.solve(DIFFEQ))
        edits1 = [{"edit": "set_delay", "src": 8, "dst": 10, "delay": 2}]
        warm1 = run(service.solve({**DIFFEQ, "base": base["fingerprint"],
                                   "edits": edits1}))
        assert warm1["result"]["session"] == {"repaired": False}  # cold build
        edits2 = edits1 + [{"edit": "add_edge", "src": 4, "dst": 9, "delay": 2}]
        warm2 = run(service.solve({**DIFFEQ, "base": warm1["fingerprint"],
                                   "edits": edits2}))
        assert warm2["result"]["session"]["repaired"] is True
        fresh = solve_canonical(canonical_request(parse_request(
            {**DIFFEQ, "edits": edits2}
        )))
        assert schedule_bits(warm2["result"]) == schedule_bits(fresh)

    def test_warm_fingerprint_matches_direct_request(self, service):
        # base is an acceleration hint, never a cache-key input.
        edits = [{"edit": "set_exec_time", "node": 3, "time": 2}]
        warm = run(service.solve({**DIFFEQ, "base": "0" * 64, "edits": edits}))
        assert warm["fingerprint"] == request_fingerprint({**DIFFEQ, "edits": edits})
        again = run(service.solve({**DIFFEQ, "edits": edits}))
        assert again["cache"] == "memory"
        assert schedule_bits(again["result"]) == schedule_bits(warm["result"])

    def test_prefix_mismatch_falls_back_cold_but_correct(self, service):
        _SESSIONS.clear()
        base = run(service.solve(DIFFEQ))
        warm1 = run(service.solve({
            **DIFFEQ, "base": base["fingerprint"],
            "edits": [{"edit": "add_edge", "src": 4, "dst": 9, "delay": 2}],
        }))
        # Different first edit: the resident session must not be reused.
        warm2 = run(service.solve({
            **DIFFEQ, "base": warm1["fingerprint"],
            "edits": [{"edit": "set_exec_time", "node": 3, "time": 3}],
        }))
        assert warm2["result"]["session"] == {"repaired": False}
        fresh = solve_canonical(canonical_request(parse_request({
            **DIFFEQ,
            "edits": [{"edit": "set_exec_time", "node": 3, "time": 3}],
        })))
        assert schedule_bits(warm2["result"]) == schedule_bits(fresh)


class TestNumpyDegradation:
    def test_vector_backend_request_degrades_to_structured_error(self, monkeypatch, service):
        import repro.core.vector._compat as compat

        monkeypatch.setattr(compat, "np", None)
        monkeypatch.setattr(compat, "NUMPY_ERROR", ImportError("forced"))
        out = run(service.solve({**DIFFEQ, "options": {"backend": "vector"}}))
        assert out["cache"] == "error"
        assert out["error"]["type"] == "ReproError"
        assert "numpy" in out["error"]["message"]

    def test_cohort_falls_back_to_sequential_flat(self, monkeypatch, service):
        import repro.core.vector._compat as compat

        monkeypatch.setattr(compat, "np", None)
        burst = [
            {"graph": {"benchmark": b}, "config": "2A1M"}
            for b in ("diffeq", "biquad")
        ]
        envelopes = run(service.solve_many(burst))
        for payload, envelope in zip(burst, envelopes):
            assert "error" not in envelope
            fresh = solve_canonical(canonical_request(parse_request(payload)))
            assert schedule_bits(envelope["result"]) == schedule_bits(fresh)


class TestDifferentialOracle:
    def test_golden_cells_cached_equals_fresh(self, tmp_path):
        service = build_service(inline=True, artifacts=str(tmp_path / "a"))
        try:
            report = check_serve_differential(service, rounds=2)
        finally:
            service.close()
        assert report.ok, report.summary()
        assert report.requests == 2 * len(GOLDEN_REQUESTS)
        assert report.cache_levels.get("memory") == len(GOLDEN_REQUESTS)

    def test_oracle_catches_a_poisoned_cache(self, service):
        # Sanity-check the oracle itself: corrupt one cached entry and the
        # sweep must flag it.
        first = run(service.solve(DIFFEQ))
        poisoned = dict(first["result"])
        poisoned["length"] = poisoned["length"] + 1
        service.cache.memory.put(first["fingerprint"], poisoned)
        report = check_serve_differential(service, payloads=[DIFFEQ], rounds=1)
        assert not report.ok and report.mismatches


class TestStats:
    def test_hit_rate_and_shape(self, service):
        run(service.solve(DIFFEQ))
        run(service.solve(DIFFEQ))
        stats = service.stats()
        assert stats["hit_rate"] == 0.5
        assert stats["workers"] == 1 and stats["worker_crashes"] == 0
        assert stats["cache"]["memory"]["size"] == 1
        assert stats["metrics"]["source"] == "repro.serve"
