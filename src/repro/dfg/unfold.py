"""Loop unfolding (unrolling at the data-flow-graph level).

The paper's front end generates DFGs "via retiming and unfolding"
(Section 7, refs [1-3]): unfolding by a factor ``J`` replaces each node
``v`` by copies ``v@0 .. v@J-1`` — copy ``v@j`` computes original
iteration ``J*k + j`` during unfolded iteration ``k`` — and each edge
``u -> v`` with ``w`` delays by the ``J`` edges::

    u@j  ->  v@((j + w) mod J)     with   floor((j + w) / J)  delays.

Standard properties (tested in ``tests/dfg/test_unfold.py`` and the
property suite):

* total delay is preserved;
* the iteration bound of the unfolded graph is exactly ``J`` times the
  original (one unfolded iteration does ``J`` iterations of work), so the
  *per-original-iteration* bound is unchanged — but integral schedules of
  the unfolded graph can realize fractional per-iteration rates;
* execution semantics are preserved: the value stream of ``v@j`` at
  unfolded iteration ``k`` equals the original ``v`` at ``J*k + j``
  (initial register contents are remapped accordingly).
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.errors import GraphError


def unfolded_name(node: NodeId, j: int) -> Tuple[NodeId, int]:
    """Canonical id of copy ``j`` of ``node`` (a ``(node, j)`` tuple)."""
    return (node, j)


def unfold(graph: DFG, factor: int, name: Optional[str] = None) -> DFG:
    """Unfold ``graph`` by ``factor``.

    Args:
        graph: a legal cyclic DFG.
        factor: unfolding factor ``J >= 1`` (1 returns a plain copy with
            renamed ``(node, 0)`` ids for consistency).

    Returns:
        The unfolded DFG; node ids are ``(original_id, j)`` tuples, node
        funcs are shared, and delayed edges carry correctly remapped
        initial values when the original edge declared them.
    """
    if factor < 1:
        raise GraphError(f"unfolding factor must be >= 1, got {factor}")
    out = DFG(name if name is not None else f"{graph.name}x{factor}")
    for j in range(factor):
        for v in graph.nodes:
            out.add_node(
                unfolded_name(v, j),
                graph.op(v),
                time=graph.explicit_time(v),
                label=f"{graph.label(v)}@{j}",
                func=graph.func(v),
                **graph.attrs(v),
            )
    for e in graph.edges:
        init = graph.edge_init(e)
        for j in range(factor):
            target_copy = (j + e.delay) % factor
            new_delay = (j + e.delay) // factor
            new_init = None
            if init is not None and new_delay:
                # token i (0 <= i < new_delay, oldest first) of the unfolded
                # edge is the original producer's value at iteration
                # j - factor * (new_delay - i), i.e. original init index
                # delay + j - factor * (new_delay - i).
                new_init = tuple(
                    init[e.delay + j - factor * (new_delay - i)]
                    for i in range(new_delay)
                )
            out.add_edge(
                unfolded_name(e.src, j),
                unfolded_name(e.dst, target_copy),
                new_delay,
                init=new_init,
            )
    return out


def fold_node(node: NodeId) -> Tuple[NodeId, int]:
    """Split an unfolded node id back into ``(original, copy)``."""
    if not (isinstance(node, tuple) and len(node) == 2 and isinstance(node[1], int)):
        raise GraphError(f"{node!r} is not an unfolded node id")
    return node
