"""Unit tests for nested loop pipelining (paper Section 8)."""

import pytest

from repro.dfg import DFG
from repro.schedule import ResourceModel
from repro.core import rotation_schedule
from repro.core.nested import (
    NestedModel,
    NestedRotationState,
    ReservationProfile,
    inner_loop_profile,
    nested_full_schedule,
    pipeline_nested_loop,
)
from repro.suite import biquad, diffeq
from repro.errors import RotationError, SchedulingError


def _outer_graph() -> DFG:
    """An outer loop: pre-processing adds -> inner loop -> post add, with a
    loop-carried dependence through the compound node."""
    g = DFG("outer")
    g.add_node("pre1", "add")
    g.add_node("pre2", "add")
    g.add_node("INNER", "compound")
    g.add_node("post", "add")
    g.add_edge("pre1", "pre2", 0)
    g.add_edge("pre2", "INNER", 0)
    g.add_edge("INNER", "post", 0)
    g.add_edge("post", "pre1", 1)
    return g


@pytest.fixture
def model():
    return ResourceModel.adders_mults(2, 1, pipelined_mults=True)


@pytest.fixture
def inner_profile(model):
    inner = rotation_schedule(diffeq(), model)
    return inner, inner_loop_profile(inner, iterations=4)


class TestReservationProfile:
    def test_ordinary_op_profile(self, model):
        p = ReservationProfile.for_op(model, "mul")
        assert p.latency == 2
        assert p.usage[0] == {"mult": 1}
        assert p.usage[1] == {}  # pipelined: start CS only

    def test_non_pipelined_profile(self):
        model = ResourceModel.adders_mults(1, 1)
        p = ReservationProfile.for_op(model, "mul")
        assert p.usage == ({"mult": 1}, {"mult": 1})

    def test_inner_loop_profile_shape(self, inner_profile, model):
        inner, profile = inner_profile
        # makespan >= iterations * period
        assert profile.duration >= 4 * inner.length
        # never oversubscribes the machine
        for slot in profile.usage:
            for unit, count in slot.items():
                assert count <= model.unit(unit).count

    def test_too_few_inner_iterations(self, inner_profile, model):
        inner, _ = inner_profile
        with pytest.raises(SchedulingError, match="at least depth"):
            inner_loop_profile(inner, iterations=0)


class TestNestedScheduling:
    def test_schedule_is_legal(self, inner_profile, model):
        _, profile = inner_profile
        nested = NestedModel(model, {"INNER": profile})
        sched = nested_full_schedule(_outer_graph(), nested)
        assert sched.violations() == []

    def test_outer_ops_blend_into_inner_idle_slots(self, inner_profile, model):
        """The paper's point: outer ops share units with the inner pipeline
        where it leaves them idle — the post add must NOT wait for extra
        adder capacity beyond the compound's end."""
        _, profile = inner_profile
        nested = NestedModel(model, {"INNER": profile})
        g = _outer_graph()
        # add an independent side op that can only fit inside the compound span
        g.add_node("side", "add")
        g.add_edge("pre1", "side", 1)
        sched = nested_full_schedule(g, nested)
        assert sched.violations() == []
        inner_start = sched.start["INNER"]
        inner_end = inner_start + profile.duration
        # 'side' lands inside the compound's span (blending), not after it
        assert sched.start["side"] < inner_end

    def test_rotation_improves_outer_loop(self, inner_profile, model):
        _, profile = inner_profile
        nested = NestedModel(model, {"INNER": profile})
        state = NestedRotationState.initial(_outer_graph(), nested)
        initial = state.length
        best = initial
        for _ in range(4):
            if state.length <= 1:
                break
            state = state.down_rotate(1)
            best = min(best, state.length)
            assert state.schedule.violations(state.retiming) == []
        assert best <= initial

    def test_rotation_size_bounds(self, inner_profile, model):
        _, profile = inner_profile
        nested = NestedModel(model, {"INNER": profile})
        state = NestedRotationState.initial(_outer_graph(), nested)
        with pytest.raises(RotationError):
            state.down_rotate(0)
        with pytest.raises(RotationError):
            state.down_rotate(state.length)


class TestEndToEnd:
    def test_pipeline_nested_loop(self, model):
        inner, outer = pipeline_nested_loop(
            inner_graph=diffeq(),
            outer_graph=_outer_graph(),
            compound_node="INNER",
            model=model,
            inner_iterations=4,
            outer_rotations=6,
        )
        assert inner.length == 6  # Table 3: diffeq 1A... (2A1Mp also 6)
        assert outer.schedule.violations(outer.retiming) == []
        # the outer schedule is dominated by the inner makespan
        assert outer.length >= inner.length * 4

    def test_different_inner_loop(self, model):
        inner, outer = pipeline_nested_loop(
            inner_graph=biquad(),
            outer_graph=_outer_graph(),
            compound_node="INNER",
            model=model,
            inner_iterations=3,
            outer_rotations=4,
        )
        assert outer.schedule.violations(outer.retiming) == []
