"""Unit tests for the iterative modulo scheduling baseline."""

import pytest

from repro.schedule import ResourceModel, is_legal_modulo_schedule
from repro.baselines import min_initiation_interval, modulo_schedule
from repro.suite import all_benchmarks, diffeq, lattice, biquad


class TestMII:
    def test_recurrence_bound_dominates(self):
        model = ResourceModel.adders_mults(4, 4)
        assert min_initiation_interval(diffeq(), model) == 6  # IB

    def test_resource_bound_dominates(self):
        model = ResourceModel.adders_mults(1, 1)
        assert min_initiation_interval(diffeq(), model) == 12  # 6 mults x 2

    def test_pipelined_resource_bound(self):
        model = ResourceModel.adders_mults(1, 1, pipelined_mults=True)
        assert min_initiation_interval(diffeq(), model) == 6


class TestModuloSchedule:
    @pytest.mark.parametrize("adders,mults,pipelined", [
        (1, 1, False), (1, 2, False), (2, 2, False), (1, 1, True), (2, 1, True),
    ])
    def test_legal_on_diffeq(self, adders, mults, pipelined):
        g = diffeq()
        model = ResourceModel.adders_mults(adders, mults, pipelined_mults=pipelined)
        res = modulo_schedule(g, model)
        assert is_legal_modulo_schedule(g, model, res.start, res.ii)
        assert res.ii >= res.mii

    def test_diffeq_hits_mii(self):
        model = ResourceModel.adders_mults(1, 1)
        res = modulo_schedule(diffeq(), model)
        assert res.ii == 12  # optimal

    def test_legal_on_all_benchmarks(self):
        model = ResourceModel.adders_mults(2, 2)
        for g in all_benchmarks():
            res = modulo_schedule(g, model)
            assert is_legal_modulo_schedule(g, model, res.start, res.ii), g.name

    def test_lattice_deep_pipelines_to_ii_2(self):
        """IMS reaches the lattice iteration bound with 6A 8Mp — showing
        the reconstruction admits period 2 (the cell RS misses)."""
        model = ResourceModel.adders_mults(6, 8, pipelined_mults=True)
        assert modulo_schedule(lattice(), model).ii == 2

    def test_kernel_schedule_realizable(self):
        model = ResourceModel.adders_mults(2, 2)
        res = modulo_schedule(biquad(), model)
        sched, r, ii = res.kernel_schedule()
        assert ii == res.ii
        assert r.is_legal(biquad()) or r.is_legal(res.graph)
        assert all(0 <= sched.start(v) < ii for v in res.graph.nodes)
        assert res.depth >= 1

    def test_kernel_executes_correctly(self):
        """The folded IMS kernel passes the end-to-end pipeline check."""
        from repro.sim import verify_pipeline

        g = diffeq()
        model = ResourceModel.adders_mults(1, 2)
        res = modulo_schedule(g, model)
        sched, r, ii = res.kernel_schedule()
        report = verify_pipeline(sched, r, iterations=30, period=ii)
        assert report.matches_reference

    def test_length_property(self):
        model = ResourceModel.adders_mults(2, 2)
        res = modulo_schedule(diffeq(), model)
        assert res.length == res.ii
