"""Unit tests for repro.obs.profile: self/cumulative aggregation."""

from repro.core.scheduler import rotation_schedule
from repro.obs import SpanEvent, Tracer, aggregate, profile_of, render_profile, tracing
from repro.qa.runner import config_model
from repro.suite import get_benchmark


def _event(i, parent, depth, name, t0, dur):
    return SpanEvent(i, parent, depth, name, t0, {}, dur)


class TestAggregate:
    def test_self_time_subtracts_children(self):
        # root (100ns) -> child (60ns) -> grandchild (10ns)
        events = [
            _event(0, -1, 0, "root", 0, 100),
            _event(1, 0, 1, "child", 10, 60),
            _event(2, 1, 2, "leaf", 20, 10),
        ]
        prof = aggregate(events)
        rows = prof.rows
        assert rows["root"].self_ns == 40
        assert rows["root"].cum_ns == 100
        assert rows["child"].self_ns == 50
        assert rows["leaf"].self_ns == 10
        assert prof.total_ns == 100

    def test_calls_and_max_accumulate_per_name(self):
        events = [
            _event(0, -1, 0, "root", 0, 100),
            _event(1, 0, 1, "k", 0, 30),
            _event(2, 0, 1, "k", 40, 50),
        ]
        rows = aggregate(events).rows
        assert rows["k"].calls == 2
        assert rows["k"].cum_ns == 80
        assert rows["k"].max_ns == 50

    def test_sorted_rows_by_self_time(self):
        events = [
            _event(0, -1, 0, "small", 0, 10),
            _event(1, -1, 0, "big", 20, 90),
        ]
        prof = aggregate(events)
        assert [r.name for r in prof.sorted_rows()] == ["big", "small"]

    def test_empty(self):
        prof = aggregate([])
        assert prof.rows == {} and prof.total_ns == 0


class TestProfileOf:
    def test_accepts_tracer(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        prof = profile_of(tr)
        assert set(prof.rows) == {"a", "b"}

    def test_solver_profile_covers_total(self):
        graph = get_benchmark("diffeq")
        model = config_model("2A2M")
        with tracing() as tr:
            rotation_schedule(graph, model, heuristic="h1", backend="flat")
        prof = profile_of(tr)
        # self times of all rows partition the root span exactly
        assert sum(r.self_ns for r in prof.rows.values()) == prof.total_ns
        assert prof.total_ns > 0


class TestRender:
    def test_render_profile_table(self):
        tr = Tracer()
        with tr.span("alpha"):
            with tr.span("beta"):
                pass
        text = render_profile(profile_of(tr), top=5, title="unit")
        assert "alpha" in text and "beta" in text
        assert "self" in text and "cum" in text

    def test_top_truncates(self):
        tr = Tracer()
        with tr.span("a"):
            for name in ("b", "c", "d"):
                with tr.span(name):
                    pass
        text = render_profile(profile_of(tr), top=2)
        assert "more span name" in text
