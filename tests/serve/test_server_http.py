"""HTTP front-end and sharded-pool tests: endpoints, keep-alive, loadgen,
deterministic shard routing, and worker-crash recovery."""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.serve import (
    ServeClient,
    build_service,
    demo_workload,
    run_loadgen,
    start_server,
)
from repro.serve.pool import ShardedPool
from repro.serve.protocol import request_fingerprint

DIFFEQ = {"graph": {"benchmark": "diffeq"}, "config": "2A1M"}


async def _serve(service, fn):
    """Run blocking client code ``fn(port)`` against a live server."""
    server = await start_server(service, port=0)
    port = server.sockets[0].getsockname()[1]
    loop = asyncio.get_running_loop()
    try:
        return await loop.run_in_executor(None, fn, port)
    finally:
        server.close()
        await server.wait_closed()


def with_server(fn, **build_kwargs):
    async def main():
        service = build_service(inline=True, **build_kwargs)
        try:
            return await _serve(service, fn)
        finally:
            service.close()

    return asyncio.run(main())


class TestHttpEndpoints:
    def test_healthz_solve_stats_over_one_keepalive_connection(self):
        def drive(port):
            client = ServeClient(port=port)
            try:
                health = client.health()
                first = client.solve(DIFFEQ)
                second = client.solve(DIFFEQ)
                stats = client.stats()
            finally:
                client.close()
            return health, first, second, stats

        health, first, second, stats = with_server(drive)
        assert health["ok"] is True
        assert first["cache"] == "solved" and second["cache"] == "memory"
        assert first["result"] == second["result"]
        assert stats["hit_rate"] == 0.5

    def test_batch_endpoint(self):
        def drive(port):
            client = ServeClient(port=port)
            try:
                return client.solve_batch([DIFFEQ, DIFFEQ, {
                    "graph": {"benchmark": "biquad"}, "config": "2A1M",
                }])
            finally:
                client.close()

        responses = with_server(drive)
        assert len(responses) == 3
        assert responses[0]["result"] == responses[1]["result"]
        assert {r["fingerprint"] for r in responses} == {
            request_fingerprint(DIFFEQ),
            request_fingerprint({"graph": {"benchmark": "biquad"}, "config": "2A1M"}),
        }

    def test_error_statuses(self):
        import http.client
        import json

        def drive(port):
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                out = []
                for method, path, body in [
                    ("GET", "/nope", None),
                    ("POST", "/solve", b"{broken"),
                    ("POST", "/solve", json.dumps({"config": "2A1M"}).encode()),
                    ("POST", "/solve/batch", json.dumps({"requests": "x"}).encode()),
                ]:
                    conn.request(method, path, body=body)
                    resp = conn.getresponse()
                    out.append((resp.status, json.loads(resp.read())))
                return out
            finally:
                conn.close()

        results = with_server(drive)
        assert [status for status, _ in results] == [404, 400, 400, 400]
        assert results[1][1]["error"]["type"] == "BadJSON"
        assert "missing 'graph'" in results[2][1]["error"]["message"]

    def test_loadgen_demo_workload(self, tmp_path):
        report = with_server(
            lambda port: run_loadgen(
                port=port, workload=demo_workload(repeats=3), concurrency=3
            ),
            artifacts=str(tmp_path / "artifacts"),
        )
        assert report.errors == 0
        assert report.requests == 18
        # 6 distinct cells: everything after the first solves is a hit.
        assert report.hit_rate >= 0.5
        assert report.percentile(50) <= report.percentile(99)
        assert "hit rate" in report.summary()


class TestShardedPool:
    def test_routing_is_deterministic_and_bounded(self):
        pool = ShardedPool(workers=3)
        fp = request_fingerprint(DIFFEQ)
        assert pool.shard_of(fp) == pool.shard_of(fp)
        assert 0 <= pool.shard_of(fp) < 3
        pool.shutdown()
        with pytest.raises(Exception):
            ShardedPool(workers=0)

    def test_solves_in_worker_processes(self):
        async def main():
            service = build_service(workers=2)
            try:
                first = await service.solve(DIFFEQ)
                second = await service.solve(DIFFEQ)
                return first, second
            finally:
                service.close()

        first, second = asyncio.run(main())
        assert first["cache"] == "solved" and second["cache"] == "memory"
        assert first["result"] == second["result"]

    def test_worker_crash_returns_structured_error_and_recovers(self):
        async def main():
            pool = ShardedPool(workers=1)
            try:
                fp = request_fingerprint(DIFFEQ)
                # Warm the shard up, then SIGKILL its worker process.
                pid = await asyncio.wrap_future(pool._executor(0).submit(os.getpid))
                os.kill(pid, signal.SIGKILL)
                from repro.serve.protocol import canonical_request, parse_request

                canonical = canonical_request(parse_request(DIFFEQ))
                crashed = await pool.solve(fp, canonical)
                recovered = await pool.solve(fp, canonical)
                return pool.crashes, crashed, recovered
            finally:
                pool.shutdown()

        crashes, crashed, recovered = asyncio.run(main())
        assert crashes == 1
        assert crashed["error"]["type"] == "WorkerCrash"
        assert "error" not in recovered and recovered["mode"] == "rotation"

    def test_crash_surfaces_in_service_envelope_not_a_hang(self):
        async def main():
            service = build_service(workers=1)
            try:
                pool = service.pool
                pid = await asyncio.wrap_future(pool._executor(0).submit(os.getpid))
                os.kill(pid, signal.SIGKILL)
                out = await asyncio.wait_for(service.solve(DIFFEQ), timeout=60)
                stats = service.stats()
                retry = await service.solve(DIFFEQ)
                return out, stats, retry
            finally:
                service.close()

        out, stats, retry = asyncio.run(main())
        assert out["cache"] == "error"
        assert out["error"]["type"] == "WorkerCrash"
        assert stats["worker_crashes"] == 1
        assert "error" not in retry  # shard rebuilt, request re-solvable
