"""Unit tests for the resource model."""

import pytest

from repro.schedule import ResourceModel, UnitSpec
from repro.errors import ResourceError


class TestUnitSpec:
    def test_busy_offsets_non_pipelined(self):
        spec = UnitSpec("mult", 1, latency=2, pipelined=False)
        assert list(spec.busy_offsets) == [0, 1]

    def test_busy_offsets_pipelined(self):
        spec = UnitSpec("mult", 1, latency=2, pipelined=True)
        assert list(spec.busy_offsets) == [0]

    def test_invalid_counts(self):
        with pytest.raises(ResourceError):
            UnitSpec("x", 0)
        with pytest.raises(ResourceError):
            UnitSpec("x", 1, latency=0)

    def test_describe(self):
        assert "pipelined" in UnitSpec("m", 1, 2, True).describe()
        assert "latency 2" in UnitSpec("m", 1, 2, False).describe()


class TestResourceModel:
    def test_paper_configuration(self):
        model = ResourceModel.adders_mults(3, 2)
        assert model.latency("add") == 1
        assert model.latency("sub") == 1
        assert model.latency("cmp") == 1
        assert model.latency("mul") == 2
        assert model.unit_for_op("mul").count == 2
        assert not model.unit_for_op("mul").pipelined

    def test_pipelined_mults(self):
        model = ResourceModel.adders_mults(3, 1, pipelined_mults=True)
        assert model.unit_for_op("mul").pipelined
        assert model.latency("mul") == 2  # still two stages for precedence
        assert list(model.busy_offsets("mul")) == [0]

    def test_unit_time(self):
        model = ResourceModel.unit_time(1, 1)
        assert model.latency("mul") == 1

    def test_label_matches_paper_notation(self):
        assert ResourceModel.adders_mults(3, 2).label() == "3A 2M"
        assert ResourceModel.adders_mults(2, 1, pipelined_mults=True).label() == "2A 1Mp"

    def test_timing_export(self):
        timing = ResourceModel.adders_mults(1, 1).timing()
        assert timing["mul"] == 2 and timing["add"] == 1

    def test_unknown_op_rejected(self):
        model = ResourceModel.adders_mults(1, 1)
        with pytest.raises(ResourceError, match="not bound"):
            model.unit_for_op("fft")

    def test_duplicate_unit_rejected(self):
        with pytest.raises(ResourceError, match="duplicate"):
            ResourceModel([UnitSpec("u", 1), UnitSpec("u", 2)], {})

    def test_binding_to_unknown_unit_rejected(self):
        with pytest.raises(ResourceError, match="unknown unit"):
            ResourceModel([UnitSpec("u", 1)], {"add": "ghost"})

    def test_single_class(self):
        model = ResourceModel.single_class("alu", 4, ["add", "mul"], latency=1)
        assert model.unit_for_op("add") is model.unit_for_op("mul")
        assert model.unit("alu").count == 4

    def test_ops_for_unit(self):
        model = ResourceModel.adders_mults(1, 1)
        assert set(model.ops_for_unit("adder")) == {"add", "sub", "cmp"}
        assert model.ops_for_unit("mult") == ["mul"]
