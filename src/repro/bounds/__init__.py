"""Lower bounds on resource-constrained loop schedules."""

from repro.bounds.lower_bounds import (
    LowerBoundReport,
    combined_lower_bound,
    lower_bound,
    resource_bound,
)

__all__ = ["LowerBoundReport", "combined_lower_bound", "lower_bound", "resource_bound"]
