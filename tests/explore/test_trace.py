"""Exploration trace JSONL: roundtrip, sniffing, rendering."""

import json

import pytest

from repro.explore import (
    EXPLORE_TRACE_SCHEMA,
    build_grid,
    explore,
    is_explore_trace,
    read_explore_trace,
    render_explore_trace,
    write_explore_trace,
)
from repro.explore.space import ExploreError


@pytest.fixture(scope="module")
def report():
    return explore(
        build_grid(["diffeq"], ["1A1M", "2A2M"], clocks=[40, 100]),
        mode="explore",
        round_size=2,
    )


def test_roundtrip(tmp_path, report):
    path = tmp_path / "explore.jsonl"
    count = write_explore_trace(report, str(path))
    assert count == len(report.events)
    trace = read_explore_trace(str(path))
    assert trace["header"]["schema"] == EXPLORE_TRACE_SCHEMA
    assert trace["header"]["cells_total"] == 4
    assert len(trace["events"]) == count
    assert trace["events"][-1]["event"] == "summary"
    assert trace["events"][-1]["counters"] == dict(report.counters)


def test_sniffing(tmp_path, report):
    path = tmp_path / "explore.jsonl"
    write_explore_trace(report, str(path))
    assert is_explore_trace(str(path))
    other = tmp_path / "other.jsonl"
    other.write_text(json.dumps({"schema": "repro.obs/trace/v1"}) + "\n")
    assert not is_explore_trace(str(other))
    assert not is_explore_trace(str(tmp_path / "missing.jsonl"))


def test_wrong_schema_raises(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(json.dumps({"schema": "nope/v0"}) + "\n")
    with pytest.raises(ExploreError):
        read_explore_trace(str(bad))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ExploreError):
        read_explore_trace(str(empty))


def test_render(tmp_path, report):
    path = tmp_path / "explore.jsonl"
    write_explore_trace(report, str(path))
    text = render_explore_trace(read_explore_trace(str(path)))
    assert "exploration trace" in text
    assert "solved" in text and "frontier_size" in text
