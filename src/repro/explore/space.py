"""The five-axis design space: cells, objectives, and their keys.

A **cell** is one point of (resource config x clock period x unfolding
factor x heuristic x rotation size).  The clock axis follows the paper's
technology numbers (Section 6: 40 ns adds, 80 ns multiplies): a control
step of ``clock_ns`` gives integral latencies ``ceil(40/clock)`` and
``ceil(80/clock)`` — distinct clocks can share one latency model (e.g.
40 ns and 50 ns both give 1-CS adds / 2-CS mults), which is exactly what
the explorer's solve-key memo exploits.

A cell's **objective point** is the triple the Pareto frontier orders:

* ``period_ns`` — achieved wrap period per *original* iteration in
  nanoseconds, ``length * clock_ns / unfold`` (a :class:`Fraction` so
  unfolded rates stay exact);
* ``cost`` — a deterministic weighted resource cost (adders weigh
  :data:`ADD_COST`, multipliers :data:`MULT_COST`, pipelining adds
  :data:`PIPE_COST` per multiplier);
* ``registers`` — steady-state register requirement of the chosen
  schedule per original iteration (:class:`Fraction` again).

All three are minimized.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.dfg.graph import DFG
from repro.errors import ReproError
from repro.schedule.resources import ResourceModel

#: Paper technology: operation delays in nanoseconds (Section 6).
ADD_NS = 40
MULT_NS = 80

#: Deterministic resource-cost weights (relative area of one unit).
ADD_COST = 1
MULT_COST = 3
PIPE_COST = 1


class ExploreError(ReproError):
    """A malformed cell or design-space specification."""


class Point(NamedTuple):
    """One objective point; componentwise ``<=`` everywhere is domination."""

    period_ns: Fraction
    cost: int
    registers: Fraction

    def as_json(self) -> List[Any]:
        return [
            [self.period_ns.numerator, self.period_ns.denominator],
            self.cost,
            [self.registers.numerator, self.registers.denominator],
        ]

    @classmethod
    def from_json(cls, raw: Sequence[Any]) -> "Point":
        (pn, pd), cost, (rn, rd) = raw
        return cls(Fraction(pn, pd), int(cost), Fraction(rn, rd))

    def render(self) -> str:
        return f"({self.period_ns} ns, cost {self.cost}, {self.registers} regs)"


@dataclass(frozen=True)
class CellSpec:
    """One cell of the design space (pure data — travels over pipes)."""

    bench: str
    adders: int
    mults: int
    pipelined: bool = False
    clock_ns: int = 50
    unfold: int = 1
    heuristic: str = "h2"
    sigma: Optional[int] = None
    beta: Optional[int] = None

    def __post_init__(self) -> None:
        if self.adders < 1 or self.mults < 1:
            raise ExploreError(f"cell needs >=1 of each unit class: {self}")
        if self.clock_ns < 1 or self.unfold < 1:
            raise ExploreError(f"clock_ns and unfold must be >= 1: {self}")
        if self.heuristic not in ("h1", "h2"):
            raise ExploreError(f"unknown heuristic {self.heuristic!r}")

    # -- clock axis -> integral latencies --------------------------------
    @property
    def add_latency(self) -> int:
        return -(-ADD_NS // self.clock_ns)

    @property
    def mult_latency(self) -> int:
        return -(-MULT_NS // self.clock_ns)

    def config_tag(self) -> str:
        return f"{self.adders}A{self.mults}M{'p' if self.pipelined else ''}"

    def label(self) -> str:
        extra = ""
        if self.unfold > 1:
            extra += f" J{self.unfold}"
        if self.sigma is not None:
            extra += f" s{self.sigma}"
        return f"{self.bench}@{self.config_tag()}/{self.clock_ns}ns/{self.heuristic}{extra}"

    def sort_key(self) -> Tuple:
        """Canonical total order over cells (ties everywhere break on it)."""
        return (
            self.bench,
            self.unfold,
            self.clock_ns,
            self.adders,
            self.mults,
            self.pipelined,
            self.heuristic,
            -1 if self.sigma is None else self.sigma,
            -1 if self.beta is None else self.beta,
        )

    def as_json(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "adders": self.adders,
            "mults": self.mults,
            "pipelined": self.pipelined,
            "clock_ns": self.clock_ns,
            "unfold": self.unfold,
            "heuristic": self.heuristic,
            "sigma": self.sigma,
            "beta": self.beta,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "CellSpec":
        return cls(**{k: raw[k] for k in (
            "bench", "adders", "mults", "pipelined", "clock_ns",
            "unfold", "heuristic", "sigma", "beta",
        )})


# ----------------------------------------------------------------------
# cell -> model / graph / keys / objective
# ----------------------------------------------------------------------
def cell_model(spec: CellSpec) -> ResourceModel:
    """The resource model a cell solves under (clock folded into latencies)."""
    return ResourceModel.adders_mults(
        spec.adders,
        spec.mults,
        pipelined_mults=spec.pipelined,
        add_latency=spec.add_latency,
        mult_latency=spec.mult_latency,
    )


def cell_graph(spec: CellSpec, base: DFG) -> DFG:
    """The graph a cell solves (the benchmark, unfolded when J > 1)."""
    if spec.unfold <= 1:
        return base
    from repro.dfg.unfold import unfold

    return unfold(base, spec.unfold)


def cell_cost(spec: CellSpec) -> int:
    """Deterministic weighted resource cost of a cell's configuration."""
    per_mult = MULT_COST + (PIPE_COST if spec.pipelined else 0)
    return spec.adders * ADD_COST + spec.mults * per_mult


def solve_key(spec: CellSpec) -> Tuple:
    """Everything the *solve* depends on — cells sharing it share one
    solve (clocks with equal latency pairs collapse here)."""
    return (
        spec.bench,
        spec.unfold,
        spec.add_latency,
        spec.mult_latency,
        spec.adders,
        spec.mults,
        spec.pipelined,
        spec.heuristic,
        spec.sigma,
        spec.beta,
    )


def family_key(spec: CellSpec) -> Tuple:
    """The warm-chain key: :func:`solve_key` minus the unit counts.  Cells
    of one family differ only in resource counts, so one
    ``MutableSchedulingSession`` hops between them via
    ``set_resource_counts``."""
    return (
        spec.bench,
        spec.unfold,
        spec.add_latency,
        spec.mult_latency,
        spec.pipelined,
        spec.heuristic,
        spec.sigma,
        spec.beta,
    )


def cohort_key(spec: CellSpec) -> Tuple:
    """The ``solve_batch`` grouping key: one model + search config, any
    graph — cells sharing it stack into one struct-of-arrays cohort."""
    return (
        spec.add_latency,
        spec.mult_latency,
        spec.adders,
        spec.mults,
        spec.pipelined,
        spec.heuristic,
        spec.sigma,
        spec.beta,
    )


def objective_point(spec: CellSpec, length: int, registers: int) -> Point:
    """The Pareto point of a solved cell (per original iteration)."""
    return Point(
        period_ns=Fraction(length * spec.clock_ns, spec.unfold),
        cost=cell_cost(spec),
        registers=Fraction(registers, spec.unfold),
    )


def build_grid(
    benchmarks: Sequence[str],
    configs: Sequence[str | Tuple[int, int, bool]],
    clocks: Sequence[int] = (50,),
    unfolds: Sequence[int] = (1,),
    heuristics: Sequence[str] = ("h2",),
    sigmas: Sequence[Optional[int]] = (None,),
) -> List[CellSpec]:
    """The exhaustive product grid, in canonical nested order.

    ``configs`` entries are paper tags (``"3A2M"``, ``"2A1Mp"``) or
    ``(adders, mults, pipelined)`` triples.
    """
    cells: List[CellSpec] = []
    parsed = [_parse_config(c) for c in configs]
    for bench in benchmarks:
        for unfold in unfolds:
            for clock in clocks:
                for adders, mults, pipelined in parsed:
                    for heuristic in heuristics:
                        for sigma in sigmas:
                            cells.append(CellSpec(
                                bench=bench,
                                adders=adders,
                                mults=mults,
                                pipelined=pipelined,
                                clock_ns=clock,
                                unfold=unfold,
                                heuristic=heuristic,
                                sigma=sigma,
                            ))
    return cells


def _parse_config(spec: str | Tuple[int, int, bool]) -> Tuple[int, int, bool]:
    if isinstance(spec, tuple):
        adders, mults, pipelined = spec
        return int(adders), int(mults), bool(pipelined)
    import re

    m = re.fullmatch(r"(\d+)A(\d+)M(p?)", str(spec).replace(" ", ""))
    if not m:
        raise ExploreError(f"config tag {spec!r} is not of the form '<n>A<m>M[p]'")
    return int(m.group(1)), int(m.group(2)), bool(m.group(3))


def neighbors(spec: CellSpec, grid: Iterable[CellSpec]) -> List[CellSpec]:
    """Grid cells one resource step away from ``spec`` in the same family
    (the seeding graph's edges; see ``docs/exploration.md``)."""
    fam = family_key(spec)
    out = []
    for other in grid:
        if other == spec or family_key(other) != fam:
            continue
        if abs(other.adders - spec.adders) + abs(other.mults - spec.mults) == 1:
            out.append(other)
    return out


def with_counts(spec: CellSpec, adders: int, mults: int) -> CellSpec:
    return replace(spec, adders=adders, mults=mults)
