"""Per-cell lower bounds: the pruning side of the explorer.

A cell can be skipped without solving when an already-achieved point is
at least as good as *everything the cell could possibly produce*.  That
needs a componentwise lower bound on the cell's objective point:

* **period** — ``combined_lower_bound`` (iteration bound + per-class
  resource bounds) of the cell's unfolded graph under its latency model,
  scaled to nanoseconds per original iteration;
* **cost** — exact (a pure function of the configuration);
* **registers** — the cycle bound below.

**Register lower bound.**  For any simple cycle ``C`` with total delay
``d(C)`` and total execution time ``t(C)``, every legal wrapped schedule
of period ``P`` keeps at least ``d(C) - floor(t(C) / P)`` values of the
cycle live on average: summing each cycle edge's lifetime span
``start(v) - finish(u) + dr(e) * P`` around the cycle telescopes the
start/finish terms to ``-t(C)`` and the retimed delays to the
retiming-invariant ``d(C)``, giving total span ``P * d(C) - t(C)``; the
maximum live count is at least the average ``d(C) - t(C)/P``, and it is
an integer.  The bound grows with ``P`` (slower schedules hold values
longer), so evaluating it at the *period lower bound* — the smallest
achievable ``P`` — keeps it valid for every period the cell can reach.
Vertex-disjoint cycles occupy
disjoint registers, so a greedy disjoint packing sums their bounds.

All bound math is solver-free and memoized per process — probing a cell
costs microseconds against the milliseconds-to-seconds of solving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.dfg.graph import DFG, Timing
from repro.dfg.iteration_bound import critical_cycle, cycle_ratios
from repro.dfg.unfold import fold_node
from repro.bounds.lower_bounds import combined_lower_bound
from repro.explore.space import CellSpec, Point, cell_cost, cell_graph, cell_model

#: Above this node count, cycle enumeration is skipped and only the
#: critical cycle feeds the register bound (same cutoff as
#: ``iteration_bound(method="auto")``).
ENUMERATE_LIMIT = 60


@dataclass(frozen=True)
class CellBound:
    """Solver-free lower bounds of one cell."""

    lb_cycles: int
    lb_point: Point
    #: Folded node names of the critical cycle under the cell's timing —
    #: the feedback ranking's overlap signal.
    critical_nodes: FrozenSet[str]

    @property
    def lb_period_ns(self) -> Fraction:
        return self.lb_point.period_ns


def _cycle_terms(graph: DFG, timing: Timing) -> List[Tuple[Tuple[str, ...], int, int]]:
    """``(nodes, d(C), t(C))`` for the cycles the register bound sums over."""
    min_delay: Dict[Tuple[object, object], int] = {}
    for e in graph.edges:
        key = (e.src, e.dst)
        if key not in min_delay or e.delay < min_delay[key]:
            min_delay[key] = e.delay
    if graph.num_nodes <= ENUMERATE_LIMIT:
        cycles = [nodes for _, nodes in cycle_ratios(graph, timing)]
    else:
        _, nodes = critical_cycle(graph, timing)
        cycles = [nodes] if nodes else []
    out = []
    for nodes in cycles:
        d = sum(
            min_delay[(nodes[i], nodes[(i + 1) % len(nodes)])]
            for i in range(len(nodes))
        )
        t = sum(graph.time(v, timing) for v in nodes)
        out.append((tuple(nodes), d, t))
    return out


def register_lower_bound(graph: DFG, timing: Timing, period: int) -> int:
    """Cycle-packing lower bound on the steady-state register requirement
    of *any* legal wrapped schedule of ``graph`` at period ``period``."""
    if period <= 0:
        return 0
    scored = []
    for nodes, d, t in _cycle_terms(graph, timing):
        bound = d - (t // period)
        if bound > 0:
            scored.append((bound, nodes))
    # Greedy vertex-disjoint packing, strongest cycles first (canonical
    # tie-break on the node tuple keeps the bound deterministic).
    scored.sort(key=lambda item: (-item[0], item[1]))
    taken: set = set()
    total = 0
    for bound, nodes in scored:
        if taken.isdisjoint(nodes):
            total += bound
            taken.update(nodes)
    return total


# -- per-process memos --------------------------------------------------
_GRAPH_CACHE: Dict[Tuple[str, int], DFG] = {}
_BOUND_CACHE: Dict[Tuple, CellBound] = {}
_REG_CACHE: Dict[Tuple, int] = {}
_CRIT_CACHE: Dict[Tuple, FrozenSet[str]] = {}


def bound_graph(spec: CellSpec, base: Optional[DFG] = None) -> DFG:
    """The (unfolded) graph of a cell, cached per (bench, unfold)."""
    key = (spec.bench, spec.unfold)
    got = _GRAPH_CACHE.get(key)
    if got is None:
        if base is None:
            from repro.suite.registry import get_benchmark

            base = get_benchmark(spec.bench)
        got = _GRAPH_CACHE[key] = cell_graph(spec, base)
    return got


def _folded(nodes: Tuple) -> FrozenSet[str]:
    """Node names with unfolding copies collapsed, so critical-cycle
    overlap compares across unfolding factors."""
    out = set()
    for v in nodes:
        if isinstance(v, tuple) and len(v) == 2 and isinstance(v[1], int):
            v = fold_node(v)[0]
        out.add(str(v))
    return frozenset(out)


def cell_bound(spec: CellSpec, base: Optional[DFG] = None) -> CellBound:
    """The full solver-free bound of one cell (memoized per process)."""
    cache_key = (
        spec.bench, spec.unfold, spec.add_latency, spec.mult_latency,
        spec.adders, spec.mults, spec.pipelined, spec.clock_ns,
    )
    got = _BOUND_CACHE.get(cache_key)
    if got is not None:
        return got
    graph = bound_graph(spec, base)
    model = cell_model(spec)
    timing = model.timing()
    lb_cycles = combined_lower_bound(graph, model, timing).combined
    reg_key = (spec.bench, spec.unfold, spec.add_latency, spec.mult_latency, lb_cycles)
    reg_lb = _REG_CACHE.get(reg_key)
    if reg_lb is None:
        reg_lb = _REG_CACHE[reg_key] = register_lower_bound(graph, timing, lb_cycles)
    crit_key = (spec.bench, spec.unfold, spec.add_latency, spec.mult_latency)
    crit = _CRIT_CACHE.get(crit_key)
    if crit is None:
        _, nodes = critical_cycle(graph, timing)
        crit = _CRIT_CACHE[crit_key] = _folded(tuple(nodes))
    bound = CellBound(
        lb_cycles=lb_cycles,
        lb_point=Point(
            period_ns=Fraction(lb_cycles * spec.clock_ns, spec.unfold),
            cost=cell_cost(spec),
            registers=Fraction(reg_lb, spec.unfold),
        ),
        critical_nodes=crit,
    )
    _BOUND_CACHE[cache_key] = bound
    return bound


def overlap(a: FrozenSet[str], b: FrozenSet[str]) -> Fraction:
    """Jaccard overlap of two critical-cycle node sets."""
    if not a or not b:
        return Fraction(0)
    union = len(a | b)
    return Fraction(len(a & b), union) if union else Fraction(0)


def clear_caches() -> None:
    """Drop the per-process memos (tests that mutate suite graphs)."""
    _GRAPH_CACHE.clear()
    _BOUND_CACHE.clear()
    _REG_CACHE.clear()
    _CRIT_CACHE.clear()
