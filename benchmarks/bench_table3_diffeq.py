"""Regenerates **Table 3 (differential equation)**: RS vs LB vs MARS.

All three rows match the paper exactly: 6 (2), 6 (2), 12 (2).
"""

import pytest

from repro.bounds import combined_lower_bound
from repro.core import rotation_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

#: tag -> (paper LB, MARS, paper RS, paper depth)
ROWS = {
    "1A1Mp": (6, None, 6, 2),
    "1A2M": (6, None, 6, 2),
    "1A1M": (12, None, 12, 2),
}


@pytest.mark.parametrize("tag", list(ROWS))
def test_table3_diffeq_row(benchmark, tag):
    paper_lb, mars, paper_rs, paper_depth = ROWS[tag]
    graph = get_benchmark("diffeq")
    model = model_for(tag)
    result = run_once(benchmark, rotation_schedule, graph, model)
    lb = combined_lower_bound(graph, model)
    record(
        benchmark,
        resources=model.label(),
        paper_LB=paper_lb,
        our_LB=lb.combined,
        paper_RS=f"{paper_rs} ({paper_depth})",
        measured_RS=f"{result.length} ({result.depth})",
    )
    assert result.length == paper_rs
    assert result.depth == paper_depth
    assert lb.combined == paper_lb
