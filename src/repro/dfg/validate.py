"""Structural validation of data-flow graphs.

:func:`validate` gathers human-readable issues; :func:`assert_valid` raises
on the first hard error.  "Hard" problems make scheduling meaningless
(zero-delay cycles); "soft" problems are reported but tolerated (isolated
nodes, unusual op names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dfg.graph import DFG, Timing
from repro.dfg.analysis import is_zero_delay_acyclic, _find_zero_delay_cycle
from repro.errors import GraphError, ZeroDelayCycleError


@dataclass(frozen=True)
class Issue:
    """A single validation finding."""

    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.message}"


def validate(
    graph: DFG,
    timing: Optional[Timing] = None,
    known_ops: Optional[Sequence[str]] = None,
) -> List[Issue]:
    """Check a DFG and return all findings (empty list == clean).

    Args:
        graph: graph to check.
        timing: when given, every op type must resolve to a time.
        known_ops: when given, op types outside this set are warnings.
    """
    issues: List[Issue] = []

    if graph.num_nodes == 0:
        issues.append(Issue("warning", "graph has no nodes"))
        return issues

    if not is_zero_delay_acyclic(graph):
        cycle = _find_zero_delay_cycle(graph, None)
        issues.append(
            Issue(
                "error",
                "zero-delay cycle (no static schedule exists): "
                + " -> ".join(str(v) for v in cycle),
            )
        )

    if timing is not None:
        for v in graph.nodes:
            try:
                graph.time(v, timing)
            except KeyError:
                issues.append(
                    Issue("error", f"node {v!r}: op {graph.op(v)!r} has no time in the timing model")
                )

    if known_ops is not None:
        allowed = set(known_ops)
        for v in graph.nodes:
            if graph.op(v) not in allowed:
                issues.append(Issue("warning", f"node {v!r}: unknown op {graph.op(v)!r}"))

    isolated = [v for v in graph.nodes if not graph.in_edges(v) and not graph.out_edges(v)]
    for v in isolated:
        issues.append(Issue("warning", f"node {v!r} is isolated (no edges)"))

    for e in graph.edges:
        init = graph.edge_init(e)
        if init is not None and len(init) != e.delay:  # pragma: no cover - guarded at set time
            issues.append(Issue("error", f"edge {e}: {len(init)} initial values for {e.delay} delays"))

    return issues


def assert_valid(
    graph: DFG,
    timing: Optional[Timing] = None,
    known_ops: Optional[Sequence[str]] = None,
) -> None:
    """Raise :class:`GraphError` if :func:`validate` finds any error."""
    errors = [i for i in validate(graph, timing, known_ops) if i.severity == "error"]
    if errors:
        raise GraphError("; ".join(i.message for i in errors))
