"""The incremental-parity oracle: session repairs equal from-scratch solves.

The :class:`~repro.core.session.MutableSchedulingSession` contract is that
every backend produces the *same* repaired schedule (repair is a
deterministic function of the edited graph, model and previous schedule)
and that the solve mode is bit-identical to
:func:`~repro.core.scheduler.rotation_schedule`.  This module turns both
promises into a fuzzable oracle:

* :func:`random_edit_script` derives a deterministic edit script from a
  graph/model pair — add/remove nodes and edges, delay and timing changes,
  resource resizing — validity-checked on a scratch copy so replaying it
  through a session never dead-ends (no zero-delay cycles, no dangling
  references).
* :func:`check_incremental_session` replays the script step-by-step
  through one session per backend (flat / vector / views / naive; vector
  drops out cleanly when numpy is missing), checks every repaired
  result bit-for-bit across backends (``check_parity``), certifies the
  naive result against the retiming / lower-bound / modulo oracles, and
  finally pins the session's solve mode against ``rotation_schedule`` on
  the fully-edited graph.

Wired into the fuzz grid as the ``incremental`` path (see
:mod:`repro.qa.runner`), so ``rotsched fuzz --smoke`` exercises it on
every pre-merge gate.

``PINNED_EDIT_SCRIPTS`` are the fixed single-edit scripts the incremental
benchmark (``benchmarks/bench_incremental.py``) and the perfcheck gate
replay on the golden cells.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.core.engine import BACKENDS
from repro.core.scheduler import rotation_schedule
from repro.core.session import MutableSchedulingSession, open_session
from repro.dfg.analysis import topological_order
from repro.dfg.graph import DFG
from repro.errors import ZeroDelayCycleError
from repro.schedule.resources import ResourceModel
from repro.qa.oracles import (
    OracleFailure,
    check_lower_bound,
    check_modulo,
    check_parity,
    check_retiming,
)

#: Fixed single-edit scripts for the golden benches (bench_incremental /
#: perfcheck replay these; keep them stable — BENCH_incremental.json pins
#: their repaired lengths and invalidation counts).
PINNED_EDIT_SCRIPTS: Dict[str, List[Dict[str, Any]]] = {
    # Resource tightening: shrink the adder pool by one.
    "tighten-adder": [{"edit": "set_resource_counts", "counts": {"adder": 2}}],
    # Structural edit: drop one multiplier tap (and its edges).
    "drop-mult": [{"edit": "remove_node", "node": "M7"}],
    # Timing edit: one adder in the middle of the filter slows down.
    "slow-node": [{"edit": "set_exec_time", "node": "c5", "time": 2}],
}


def _zero_delay_ok(graph: DFG) -> bool:
    try:
        topological_order(graph)
        return True
    except ZeroDelayCycleError:
        return False


def random_edit_script(
    graph: DFG,
    model: ResourceModel,
    rng: random.Random,
    steps: int = 5,
) -> List[Dict[str, Any]]:
    """A deterministic, replayable edit script valid for ``(graph, model)``.

    Each candidate edit is applied to a scratch copy first; edits that
    would create a zero-delay cycle or empty the graph are repaired
    (delay bumped to 1) or skipped, so the emitted script always replays
    cleanly.  Edge references use ``src``/``dst`` + ``nth`` (stable across
    replicas: the scratch copy and every session see the same edge order).
    """
    scratch = graph.copy()
    counts = {u.name: u.count for u in model.units}
    ops = sorted({op for u in model.units for op in model.ops_for_unit(u.name)})
    script: List[Dict[str, Any]] = []
    fresh = 0
    kinds = (
        "add_edge", "remove_edge", "set_delay", "add_node",
        "remove_node", "set_exec_time", "set_resource_counts",
    )
    for _ in range(steps):
        kind = kinds[rng.randrange(len(kinds))]
        nodes = scratch.nodes
        if kind == "add_edge" and len(nodes) >= 2:
            src = nodes[rng.randrange(len(nodes))]
            dst = nodes[rng.randrange(len(nodes))]
            delay = rng.randint(0, 2)
            e = scratch.add_edge(src, dst, delay)
            if delay == 0 and not _zero_delay_ok(scratch):
                scratch.set_delay(e, 1)
                delay = 1
            script.append({"edit": "add_edge", "src": src, "dst": dst, "delay": delay})
        elif kind == "remove_edge" and scratch.num_edges > 1:
            edges = scratch.edges
            e = edges[rng.randrange(len(edges))]
            script.append(_edge_ref(scratch, e, "remove_edge"))
            scratch.remove_edge(e)
        elif kind == "set_delay" and scratch.num_edges:
            edges = scratch.edges
            e = edges[rng.randrange(len(edges))]
            delay = rng.randint(0, 3)
            if delay == e.delay:
                continue
            ref = _edge_ref(scratch, e, "set_delay")
            old = e.delay
            scratch.set_delay(e, delay)
            if delay == 0 and not _zero_delay_ok(scratch):
                scratch.set_delay(e.eid, old)
                continue
            ref["delay"] = delay
            script.append(ref)
        elif kind == "add_node":
            node = f"qx{fresh}"
            fresh += 1
            op = ops[rng.randrange(len(ops))] if ops else "op"
            scratch.add_node(node, op)
            script.append({"edit": "add_node", "node": node, "op": op})
            # Tie the new node into the loop with delayed edges (delay >= 1
            # can never create a zero-delay cycle).
            for _ in range(rng.randint(1, 2)):
                other = nodes[rng.randrange(len(nodes))]
                if rng.random() < 0.5:
                    e = scratch.add_edge(other, node, rng.randint(1, 2))
                    script.append(
                        {"edit": "add_edge", "src": other, "dst": node, "delay": e.delay}
                    )
                else:
                    e = scratch.add_edge(node, other, rng.randint(1, 2))
                    script.append(
                        {"edit": "add_edge", "src": node, "dst": other, "delay": e.delay}
                    )
        elif kind == "remove_node" and scratch.num_nodes > 4:
            node = nodes[rng.randrange(len(nodes))]
            scratch.remove_node(node)
            script.append({"edit": "remove_node", "node": node})
        elif kind == "set_exec_time" and nodes:
            node = nodes[rng.randrange(len(nodes))]
            t = rng.randint(1, 3)
            scratch.set_exec_time(node, t)
            script.append({"edit": "set_exec_time", "node": node, "time": t})
        elif kind == "set_resource_counts" and counts:
            names = sorted(counts)
            name = names[rng.randrange(len(names))]
            want = max(1, min(4, counts[name] + (1 if rng.random() < 0.5 else -1)))
            if want == counts[name]:
                continue
            counts[name] = want
            script.append({"edit": "set_resource_counts", "counts": {name: want}})
    return script


def _edge_ref(graph: DFG, e, kind: str) -> Dict[str, Any]:
    """A replica-stable edge reference: (src, dst, occurrence index)."""
    nth = 0
    for other in graph.edges:
        if other.eid == e.eid:
            break
        if other.src == e.src and other.dst == e.dst:
            nth += 1
    ref: Dict[str, Any] = {"edit": kind, "src": e.src, "dst": e.dst}
    if nth:
        ref["nth"] = nth
    return ref


def _compare_backends(
    results: Dict[str, Any], label: str
) -> List[OracleFailure]:
    naive = results["naive"]
    out: List[OracleFailure] = []
    for backend in results:
        if backend == "naive":
            continue
        for f in check_parity(results[backend], naive, f"{label}: {backend} vs naive"):
            out.append(OracleFailure("incremental-parity", f.message))
    return out


def _certify_repair(
    graph: DFG, model: ResourceModel, result, label: str
) -> List[OracleFailure]:
    """Certify one repaired result: legal retiming, length above the lower
    bound, and modulo-legal starts at the reported period.  (Semantic
    simulation is skipped — edit scripts freely break funcs/edge inits.
    The lower bound is skipped once a script sets explicit node times:
    occupancy is driven by per-op unit latency throughout the schedulers,
    so the override-aware iteration bound does not bound them.)"""
    failures = check_retiming(graph, result.retiming)
    if not any(graph.explicit_time(v) is not None for v in graph.nodes):
        failures += check_lower_bound(graph, model, result.length)
    if not failures:
        failures = check_modulo(
            graph, model,
            result.schedule.normalized().start_map,
            result.length,
            result.retiming,
        )
    return [OracleFailure("incremental-parity", f"{label}: [{f.oracle}] {f.message}") for f in failures]


def check_incremental_session(
    graph: DFG,
    model: ResourceModel,
    steps: int = 4,
    seed: Optional[int] = None,
) -> List[OracleFailure]:
    """Replay a random edit script through sessions on every backend.

    After the initial solve and after every edit, the repaired
    results must agree bit-for-bit and the repair must certify as a legal
    modulo schedule; after the last edit the session *solve* path must
    equal ``rotation_schedule`` on the edited graph.  The script seed is
    derived from the graph shape so reruns (and the shrinker) are
    deterministic.
    """
    if seed is None:
        seed = graph.num_nodes * 1_000_003 + graph.num_edges * 10_007 + graph.total_delay()
    rng = random.Random(seed)
    script = random_edit_script(graph, model, rng, steps)
    from repro.core.vector import have_numpy

    backends = [b for b in BACKENDS if b != "vector" or have_numpy()]
    sessions: Dict[str, MutableSchedulingSession] = {
        b: open_session(graph, model, backend=b) for b in backends
    }
    results = {b: s.resolve() for b, s in sessions.items()}
    failures = _compare_backends(results, "initial solve")
    if failures:
        return failures
    for step, op in enumerate(script):
        label = f"step {step} ({op['edit']})"
        for s in sessions.values():
            s.apply_edit(op)
        results = {}
        for b, s in sessions.items():
            try:
                results[b] = s.resolve()
            except Exception as exc:
                failures.append(
                    OracleFailure(
                        "incremental-parity",
                        f"{label}: {b} raised {type(exc).__name__}: {exc}",
                    )
                )
        if failures:
            return failures
        failures = _compare_backends(results, label)
        if failures:
            return failures
        ref = sessions["naive"]
        failures = _certify_repair(ref.graph, ref.model, results["naive"], label)
        if failures:
            return failures
    # The solve path must match a from-scratch rotation_schedule of the
    # edited graph exactly (fresh session: same graph state, no seed).
    edited = sessions["flat"]
    solve = open_session(edited.graph, edited.model, backend="flat").resolve()
    scratch = rotation_schedule(edited.graph, edited.model, heuristic="h2", backend="flat")
    for f in check_parity(solve, scratch, "final solve vs rotation_schedule"):
        failures.append(OracleFailure("incremental-parity", f.message))
    return failures
