"""Cell execution: the one path both fixed grids and the explorer share.

A cell is solved in one of three ways, all returning the same
:class:`CellOutcome`:

* **cold** — a fresh :func:`~repro.core.scheduler.rotation_schedule` on
  the flat backend, no reuse whatsoever.  This is what today's benchmark
  sweeps do cell by cell, and therefore the honest exhaustive baseline
  ``BENCH_explore.json`` compares against.
* **warm** (:meth:`CellSolver.solve`) — the explorer's path: a
  *solve-key memo* collapses clock cells that share a latency model, a
  per-family :class:`~repro.core.session.MutableSchedulingSession` hops
  between neighboring resource configs via ``set_resource_counts`` +
  ``resolve(mode="solve")`` (bit-identical to a cold solve on the edited
  model — the parity tests pin this), and structurally distinct cells
  under one model stack into :func:`~repro.core.vector.batch.solve_batch`
  cohorts.
* **remote** (:class:`ServeCellSolver`) — the ``--via serve`` path: the
  cell travels as a ``repro.serve/v1`` request (latencies folded into a
  full unit-spec config), the daemon's two-level cache does the reuse,
  and the schedule is rebuilt client-side so the register count — and
  hence the Pareto point — is computed by exactly the same code as the
  local paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.binding.lifetimes import register_requirement
from repro.explore.space import (
    CellSpec,
    ExploreError,
    Point,
    cell_model,
    cohort_key,
    family_key,
    objective_point,
    solve_key,
)
from repro.explore.bounds import bound_graph


@dataclass
class CellOutcome:
    """One solved cell, reduced to what the frontier and trace need.

    ``source`` says how the solve happened: ``"cold"``, ``"solve"`` (warm
    path, fresh session), ``"warm"`` (seeded from a family neighbor),
    ``"memo"`` (solve-key hit, no solve at all), ``"batch"`` /
    ``"batch-dedup"`` (cohort member / structural duplicate inside one),
    or ``"serve:<cache-level>"``.  ``result`` keeps the full
    :class:`~repro.core.scheduler.RotationResult` for in-process callers
    (the benchmark asserts); :meth:`strip` drops it before a pipe.
    """

    spec: CellSpec
    point: Point
    length: int
    registers: int
    elapsed: float
    source: str
    result: Any = None

    @property
    def seeded(self) -> bool:
        return self.source == "warm"

    @property
    def deduped(self) -> bool:
        return self.source in ("memo", "batch-dedup")

    def strip(self) -> "CellOutcome":
        return self if self.result is None else _dc_replace(self, result=None)

    def as_json(self) -> Dict[str, Any]:
        return {
            "cell": self.spec.as_json(),
            "point": self.point.as_json(),
            "length": self.length,
            "registers": self.registers,
            "elapsed": self.elapsed,
            "source": self.source,
        }


def _counts(spec: CellSpec) -> Dict[str, int]:
    return {"adder": spec.adders, "mult": spec.mults}


def _outcome(spec: CellSpec, result, elapsed: float, source: str) -> CellOutcome:
    registers = register_requirement(result.schedule, result.retiming, result.length)
    return CellOutcome(
        spec=spec,
        point=objective_point(spec, result.length, registers),
        length=result.length,
        registers=registers,
        elapsed=elapsed,
        source=source,
        result=result,
    )


class CellSolver:
    """Local cell execution with all three reuse mechanisms.

    One instance per worker process; its memo and session caches are the
    worker's private state (the explorer's chunking keeps each family on
    one worker so the chains actually connect).
    """

    def __init__(self, backend: Optional[str] = None):
        if backend is None:
            from repro.core.vector._compat import have_numpy

            backend = "vector" if have_numpy() else "flat"
        self.backend = backend
        # solve_key -> (length, registers): clock cells sharing a latency
        # model collapse here without touching a solver.
        self._memo: Dict[Tuple, Tuple[int, int]] = {}
        self._sessions: Dict[Tuple, Any] = {}

    # -- the exhaustive baseline ---------------------------------------
    def solve_cold(self, spec: CellSpec) -> CellOutcome:
        """Fresh flat-backend solve, no reuse — the exhaustive-grid path."""
        from repro.core.scheduler import rotation_schedule

        graph = bound_graph(spec)
        model = cell_model(spec)
        t0 = time.perf_counter()
        result = rotation_schedule(
            graph,
            model,
            heuristic=spec.heuristic,
            beta=spec.beta,
            sigma=spec.sigma,
            backend="flat",
        )
        return _outcome(spec, result, time.perf_counter() - t0, "cold")

    # -- the explorer's warm path --------------------------------------
    def solve(self, spec: CellSpec) -> CellOutcome:
        """Memo -> warm family session -> fresh session, in that order."""
        key = solve_key(spec)
        hit = self._memo.get(key)
        if hit is not None:
            length, registers = hit
            return CellOutcome(
                spec=spec,
                point=objective_point(spec, length, registers),
                length=length,
                registers=registers,
                elapsed=0.0,
                source="memo",
            )
        from repro.core.session import MutableSchedulingSession

        fam = family_key(spec)
        session = self._sessions.get(fam)
        t0 = time.perf_counter()
        if session is not None:
            session.set_resource_counts(_counts(spec))
            result = session.resolve(mode="solve")
            source = "warm"
        else:
            session = MutableSchedulingSession(
                bound_graph(spec),
                cell_model(spec),
                heuristic=spec.heuristic,
                beta=spec.beta,
                sigma=spec.sigma,
                backend=self.backend,
            )
            self._sessions[fam] = session
            result = session.resolve(mode="solve")
            source = "solve"
        outcome = _outcome(spec, result, time.perf_counter() - t0, source)
        self._memo[key] = (outcome.length, outcome.registers)
        return outcome

    def solve_cohort(self, specs: Sequence[CellSpec]) -> List[CellOutcome]:
        """Solve cells sharing one :func:`cohort_key` as a ``solve_batch``
        cohort (falls back to :meth:`solve` without numpy)."""
        if not specs:
            return []
        keys = {cohort_key(s) for s in specs}
        if len(keys) != 1:
            raise ExploreError(f"cohort mixes {len(keys)} models/search configs")
        from repro.core.vector._compat import have_numpy

        if not have_numpy():
            return [self.solve(s) for s in specs]
        # Memo hits (and duplicate solve keys inside the cohort) never
        # reach the batch; the rest are solved once per unique solve key.
        out: Dict[int, CellOutcome] = {}
        todo: List[Tuple[int, CellSpec]] = []
        claimed: Dict[Tuple, int] = {}
        for i, spec in enumerate(specs):
            key = solve_key(spec)
            if key in self._memo:
                out[i] = self.solve(spec)
            elif key in claimed:
                todo.append((i, spec))  # solved by the batch's own dedup
            else:
                claimed[key] = i
                todo.append((i, spec))
        if todo:
            from repro.core.vector.batch import solve_batch

            graphs = [bound_graph(s) for i, s in todo]
            rep = todo[0][1]
            stats: Dict[str, int] = {}
            t0 = time.perf_counter()
            results = solve_batch(
                graphs,
                cell_model(rep),
                heuristic=rep.heuristic,
                beta=rep.beta,
                sigma=rep.sigma,
                stats=stats,
            )
            elapsed = time.perf_counter() - t0
            share = elapsed / len(todo)
            for (i, spec), result in zip(todo, results):
                key = solve_key(spec)
                source = "batch" if claimed.get(key) == i else "batch-dedup"
                outcome = _outcome(spec, result, share, source)
                self._memo.setdefault(key, (outcome.length, outcome.registers))
                out[i] = outcome
        return [out[i] for i in range(len(specs))]


class ServeCellSolver:
    """Cell execution through a ``repro.serve`` daemon (``--via serve``).

    The clock axis travels as explicit per-unit latencies (a full
    unit-spec config), never as the daemon's ``clock`` option — that one
    selects ns-granularity *chained* scheduling, a different semantics
    than the explorer's integral latency model.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8347, client=None):
        if client is None:
            from repro.serve.client import ServeClient

            client = ServeClient(host, port)
        self.client = client

    def payload(self, spec: CellSpec) -> Dict[str, Any]:
        model = cell_model(spec)
        options: Dict[str, Any] = {"heuristic": spec.heuristic, "unfold": spec.unfold}
        if spec.sigma is not None:
            options["sigma"] = spec.sigma
        if spec.beta is not None:
            options["beta"] = spec.beta
        return {
            "graph": {"benchmark": spec.bench},
            "config": {
                "units": [
                    {
                        "name": u.name,
                        "count": u.count,
                        "latency": u.latency,
                        "pipelined": u.pipelined,
                    }
                    for u in model.units
                ],
                "binding": dict(model.binding),
            },
            "options": options,
        }

    def solve(self, spec: CellSpec) -> CellOutcome:
        from repro.dfg.io import _decode_id
        from repro.dfg.retiming import Retiming
        from repro.schedule.schedule import Schedule

        t0 = time.perf_counter()
        envelope = self.client.solve(self.payload(spec))
        elapsed = time.perf_counter() - t0
        if "error" in envelope:
            err = envelope["error"]
            raise ExploreError(
                f"serve rejected cell {spec.label()}: "
                f"{err.get('type', '?')}: {err.get('message', '?')}"
            )
        raw = envelope["result"]
        # Rebuild the schedule on the client-side twin of the daemon's
        # graph (same benchmark, same unfold function -> same node ids) so
        # registers come from the same lifetime analysis as local solves.
        graph = bound_graph(spec)
        model = cell_model(spec)
        start = {_decode_id(v): s for v, s in raw["starts"]}
        units = {
            _decode_id(v): inst for v, inst in raw["units"] if inst is not None
        }
        schedule = Schedule.from_complete(graph, model, start, units)
        retiming = Retiming({_decode_id(v): r for v, r in raw["retiming"]})
        registers = register_requirement(schedule, retiming, raw["length"])
        return CellOutcome(
            spec=spec,
            point=objective_point(spec, raw["length"], registers),
            length=raw["length"],
            registers=registers,
            elapsed=elapsed,
            source=f"serve:{envelope.get('cache', '?')}",
        )

    def close(self) -> None:
        self.client.close()


def run_grid(
    cells: Sequence[CellSpec],
    solver: Optional[CellSolver] = None,
    *,
    cold: bool = False,
    execute=None,
) -> List[CellOutcome]:
    """Run a fixed grid in the order given — the shared sweep loop.

    The benchmarks call this instead of hand-rolled ``for`` loops:
    ``cold=True`` is the exhaustive baseline, the default reuses via a
    :class:`CellSolver`, and ``execute`` swaps in a custom per-cell
    callable (the chained clock sweep) while keeping the same outcome
    accounting.
    """
    if execute is None:
        if solver is None:
            solver = CellSolver()
        execute = solver.solve_cold if cold else solver.solve
    return [execute(spec) for spec in cells]
