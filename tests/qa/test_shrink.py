"""Delta-debugging shrinker tests."""

from repro.dfg import DFG
from repro.qa import shrink_graph
from repro.suite.random_graphs import attach_affine_funcs, random_dfg


class TestShrinkGraph:
    def test_minimizes_structural_failure(self):
        # injected "failure": the graph still contains an n2 -> n5 edge
        g = random_dfg(12, seed=3)
        g.add_edge("n2", "n5", 1)  # make sure the witness exists

        def predicate(graph: DFG) -> bool:
            return any(
                e.src == "n2" and e.dst == "n5" for e in graph.edges
            )

        small = shrink_graph(g, predicate)
        assert small.num_nodes == 2
        assert small.num_edges == 1
        assert predicate(small)

    def test_returns_input_when_predicate_never_held(self):
        g = random_dfg(6, seed=0)
        out = shrink_graph(g, lambda graph: False)
        assert out is g

    def test_predicate_exceptions_count_as_not_reproduced(self):
        g = random_dfg(6, seed=1)

        def fragile(graph: DFG) -> bool:
            if graph.num_nodes < 6:
                raise RuntimeError("boom")
            return True

        out = shrink_graph(g, fragile)
        assert out.num_nodes == 6  # no removal survived the predicate

    def test_minimizes_injected_oracle_failure(self):
        # A full-stack shrink: the "failure" is an oracle verdict — any
        # graph whose JSON form still carries an init-bearing edge.
        from repro.dfg import io as dfg_io

        g = attach_affine_funcs(random_dfg(8, seed=5), seed=5)
        edge = g.edges[0]
        # re-add the first edge with a delay and declared inits
        g.remove_edge(edge)
        g.add_edge(edge.src, edge.dst, 2, init=[0.25, 0.5])

        def predicate(graph: DFG) -> bool:
            back = dfg_io.loads(dfg_io.dumps(graph))
            return any(back.edge_init(e) == (0.25, 0.5) for e in back.edges)

        small = shrink_graph(g, predicate)
        assert small.num_nodes == 2 and small.num_edges == 1
        assert small.edge_init(small.edges[0]) == (0.25, 0.5)
