"""repro.obs — observability for the rotation-scheduling pipeline.

Four pieces, all stdlib-only:

* :mod:`repro.obs.tracer` — nested span tracing with a no-op default
  (:data:`~repro.obs.tracer.NULL`) so permanent instrumentation sites
  cost nearly nothing when tracing is off.
* :mod:`repro.obs.metrics` — the unified counters/gauges/timers/extras
  schema every producer (views engine, flat engine, fuzz runner) reports
  through.
* :mod:`repro.obs.export` / :mod:`repro.obs.profile` — JSONL trace
  round-tripping, structural validation, and the self-vs-cumulative
  per-span profile report.
* :mod:`repro.obs.perfcheck` — the perf-regression gate over the
  committed ``BENCH_*.json`` golden-cell envelopes.
"""

from repro.obs.export import Trace, TraceError, parse_trace, read_trace, validate_trace, write_trace
from repro.obs.metrics import (
    EXPLORE_COUNTERS,
    EXPLORE_RECORD,
    METRICS_SCHEMA,
    MetricsRegistry,
    engine_metrics,
    explore_metrics,
    render_metrics,
)
from repro.obs.perfcheck import (
    MIN_EXPLORE_SPEEDUP,
    MIN_SERVE_SPEEDUP,
    BatchCell,
    ExploreCell,
    GoldenCell,
    IncrementalCell,
    PerfReport,
    VectorHeadlineCell,
    ServeCell,
    load_explore_cells,
    load_golden_cells,
    load_incremental_cells,
    load_serve_cells,
    load_vector_cells,
    measure_explore_grid,
    measure_serve_workload,
    run_perfcheck,
)
from repro.obs.profile import Profile, ProfileRow, aggregate, profile_of, render_profile
from repro.obs.tracer import (
    NULL,
    TRACE_SCHEMA,
    NullTracer,
    SpanEvent,
    Tracer,
    activate,
    current,
    deactivate,
    tracing,
)

__all__ = [
    "NULL",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "BatchCell",
    "ExploreCell",
    "GoldenCell",
    "IncrementalCell",
    "MIN_EXPLORE_SPEEDUP",
    "MIN_SERVE_SPEEDUP",
    "ServeCell",
    "MetricsRegistry",
    "VectorHeadlineCell",
    "NullTracer",
    "PerfReport",
    "Profile",
    "ProfileRow",
    "SpanEvent",
    "Trace",
    "TraceError",
    "Tracer",
    "activate",
    "aggregate",
    "current",
    "deactivate",
    "engine_metrics",
    "explore_metrics",
    "EXPLORE_COUNTERS",
    "EXPLORE_RECORD",
    "load_explore_cells",
    "load_golden_cells",
    "load_incremental_cells",
    "load_serve_cells",
    "load_vector_cells",
    "measure_explore_grid",
    "measure_serve_workload",
    "parse_trace",
    "profile_of",
    "read_trace",
    "render_metrics",
    "render_profile",
    "run_perfcheck",
    "tracing",
    "validate_trace",
    "write_trace",
]
