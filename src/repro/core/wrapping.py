"""Schedule wrapping for multi-cycle operations and pipelined units (Sec. 4).

With multi-cycle operations, rotations can leave execution *tails* hanging
past the last "useful" control step (paper Figure 6: node 0's tail 0').
Wrapping moves such tails around the cylinder to the schedule's first
control steps, provided (1) spare resources exist there and (2) the new
zero-delay precedence constraints hold — which is exactly legality of the
schedule as a *modulo schedule* with the shorter period.

A wrapped schedule of period ``P`` keeps every *start* inside the window
``[0, P)`` while occupancy and results may spill into the next repetition.
``wrap`` finds the minimum legal period; ``reroot`` re-indexes the cylinder
so any control step becomes the first one (paper: "we can consider any
control step i as the first control step of the cylinder"), turning a
wrapped schedule back into an unwrapped one when possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.schedule.verify import (
    modulo_precedence_violations,
    modulo_resource_conflicts,
    realizing_retiming,
)
from repro.errors import SchedulingError


@dataclass(frozen=True)
class WrappedSchedule:
    """A static schedule with an explicit initiation interval (period).

    ``schedule`` is normalized (first CS 0) and every start lies in
    ``[0, period)``; tails may wrap.  ``retiming`` realizes it as a modulo
    schedule.
    """

    schedule: Schedule
    retiming: Retiming
    period: int

    @property
    def length(self) -> int:
        """The paper's schedule length for multi-cycle DFGs: the period."""
        return self.period

    @property
    def depth(self) -> int:
        return self.retiming.depth(self.schedule.graph)

    def wrapped_nodes(self) -> List[NodeId]:
        """Nodes whose execution spills past the period boundary."""
        sched = self.schedule
        return [
            v
            for v in sched.graph.nodes
            if sched.start(v) + _busy_span(sched, v) > self.period
        ]

    def violations(self) -> List[str]:
        """Re-check modulo legality (empty for objects built by wrap())."""
        sched = self.schedule
        return modulo_resource_conflicts(
            sched.graph, sched.model, sched.start_map, self.period
        ) + modulo_precedence_violations(
            sched.graph, sched.model, sched.start_map, self.period, self.retiming
        )


def _busy_span(schedule: Schedule, node: NodeId) -> int:
    """Unit-occupancy span of a node (1 for pipelined ops)."""
    offsets = schedule.model.busy_offsets(schedule.graph.op(node))
    return (max(offsets) + 1) if len(offsets) else 1


def wrapped_length(schedule: Schedule, retiming: Retiming) -> int:
    """Minimum legal period of the schedule seen as a cylinder.

    This is the paper's "length of the wrapped schedule", the quality
    measure the heuristics optimize for multi-cycle DFGs.  The span of the
    schedule is always legal, so the result is at most ``schedule.length``.
    """
    return wrap(schedule, retiming).period


def wrap(schedule: Schedule, retiming: Retiming) -> WrappedSchedule:
    """Wrap trailing tails around the cylinder to minimize the period.

    Searches periods from the smallest window containing every *start*
    (plus the largest non-pipelined occupancy requirement) up to the plain
    span; the first legal one wins.  The span itself is always legal, so
    this never fails on a legal DAG schedule of ``G_R``.
    """
    sched = schedule.normalized()
    graph, model = sched.graph, sched.model
    span = sched.length
    starts_span = max(sched.start(v) for v in graph.nodes) + 1
    min_occ = max(
        (model.unit_for_op(graph.op(v)).latency
         for v in graph.nodes
         if not model.unit_for_op(graph.op(v)).pipelined),
        default=1,
    )
    lo = max(starts_span, min_occ, 1)
    start_map = sched.start_map
    for period in range(lo, span + 1):
        if modulo_resource_conflicts(graph, model, start_map, period):
            continue
        if modulo_precedence_violations(graph, model, start_map, period, retiming):
            continue
        return WrappedSchedule(sched, retiming, period)
    raise SchedulingError(
        f"schedule of span {span} is not modulo-legal at its own span — "
        "the input was not a legal DAG schedule of G_R"
    )  # pragma: no cover - impossible for legal inputs


def reroot(wrapped: WrappedSchedule, pivot: int) -> WrappedSchedule:
    """View control step ``pivot`` as the cylinder's first control step.

    Nodes starting before ``pivot`` move to the end of the window (their
    rotation count increases by one — a down-rotation *without*
    rescheduling); the period is unchanged.  Paper Section 4 uses this to
    turn the wrapped Figure 8-(b) schedule into an unwrapped one.
    """
    sched = wrapped.schedule
    graph = sched.graph
    if not 0 <= pivot < wrapped.period:
        raise SchedulingError(f"pivot {pivot} outside period window [0, {wrapped.period})")
    if pivot == 0:
        return wrapped
    new_start: Dict[NodeId, int] = {}
    bumped: List[NodeId] = []
    for v in graph.nodes:
        s = sched.start(v)
        if s < pivot:
            new_start[v] = s - pivot + wrapped.period
            bumped.append(v)
        else:
            new_start[v] = s - pivot
    new_r = wrapped.retiming + Retiming.of_set(bumped)
    new_sched = Schedule(graph, sched.model, new_start, sched.unit_map)
    out = WrappedSchedule(new_sched, new_r.normalized(graph), wrapped.period)
    bad = out.violations()
    if bad:  # pragma: no cover - rerooting preserves modulo legality
        raise SchedulingError("reroot produced an illegal schedule: " + "; ".join(bad[:3]))
    return out


def unwrap_if_possible(wrapped: WrappedSchedule) -> WrappedSchedule:
    """Try every pivot; return a rerooting whose tails no longer wrap.

    Falls back to the input when no pivot removes all wrapping (then the
    schedule is intrinsically wrapped).
    """
    if not wrapped.wrapped_nodes():
        return wrapped
    for pivot in range(1, wrapped.period):
        candidate = reroot(wrapped, pivot)
        if not candidate.wrapped_nodes():
            return candidate
    return wrapped
