"""Baseline: force-directed scheduling (Paulin & Knight), time-constrained.

The reference [16] the paper takes its differential-equation example from.
Given a deadline, FDS places one operation per step so as to balance the
expected *distribution graphs* of every unit class:

* every unfixed op contributes probability ``1 / |window|`` to each start
  slot of its ASAP..ALAP window (spread over its occupancy offsets);
* fixing op ``v`` at step ``t`` has *self force*
  ``sum_s DG(s) * (x'(s) - x(s))`` where ``x`` is the op's old probability
  distribution and ``x'`` the fixed one;
* predecessor/successor forces account for windows the fix squeezes.

The op/step pair with the minimal total force is fixed, windows are
propagated, and the process repeats.  The output is a resource-feasible*
balanced schedule and its peak usage per class — the quantity
time-constrained flows (Lee et al., MARS) minimize.  (*peak usage is
whatever balance achieves; FDS does not take hard unit counts.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId, Timing
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import (
    alap_times,
    asap_times,
    critical_path_length,
    zero_delay_predecessors,
    zero_delay_successors,
)
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.errors import SchedulingError


@dataclass(frozen=True)
class ForceDirectedResult:
    """Outcome of force-directed scheduling."""

    schedule: Schedule
    deadline: int
    peak_usage: Dict[str, int]

    @property
    def length(self) -> int:
        return self.schedule.length


class _Windows:
    """Mutable ASAP/ALAP windows with precedence propagation."""

    def __init__(self, graph: DFG, timing: Timing, deadline: int, r: Optional[Retiming]):
        self.graph = graph
        self.timing = timing
        self.r = r
        self.lo = dict(asap_times(graph, timing, r))
        self.hi = dict(alap_times(graph, deadline, timing, r))
        for v in graph.nodes:
            if self.lo[v] > self.hi[v]:
                raise SchedulingError(f"deadline infeasible at node {v!r}")

    def fix(self, node: NodeId, step: int) -> None:
        self.lo[node] = self.hi[node] = step
        self._propagate()

    def _propagate(self) -> None:
        graph, timing, r = self.graph, self.timing, self.r
        for _ in range(graph.num_nodes):
            changed = False
            for v in graph.nodes:
                t_v = graph.time(v, timing)
                for w in zero_delay_successors(graph, v, r):
                    if self.lo[v] + t_v > self.lo[w]:
                        self.lo[w] = self.lo[v] + t_v
                        changed = True
                for u in zero_delay_predecessors(graph, v, r):
                    t_u = graph.time(u, timing)
                    if self.hi[v] - t_u < self.hi[u]:
                        self.hi[u] = self.hi[v] - t_u
                        changed = True
            if not changed:
                return
        raise SchedulingError("window propagation failed to converge")  # pragma: no cover

    def probability(self, node: NodeId) -> Dict[int, float]:
        width = self.hi[node] - self.lo[node] + 1
        return {s: 1.0 / width for s in range(self.lo[node], self.hi[node] + 1)}


def _distribution_graphs(
    graph: DFG,
    model: ResourceModel,
    windows: _Windows,
) -> Dict[str, Dict[int, float]]:
    dgs: Dict[str, Dict[int, float]] = {u.name: {} for u in model.units}
    for v in graph.nodes:
        op = graph.op(v)
        unit = model.unit_for_op(op)
        for s, p in windows.probability(v).items():
            for off in model.busy_offsets(op):
                slot = s + off
                dgs[unit.name][slot] = dgs[unit.name].get(slot, 0.0) + p
    return dgs


def _self_force(
    graph: DFG,
    model: ResourceModel,
    dgs: Dict[str, Dict[int, float]],
    windows: _Windows,
    node: NodeId,
    step: int,
) -> float:
    op = graph.op(node)
    unit = model.unit_for_op(op)
    dg = dgs[unit.name]
    old = windows.probability(node)
    force = 0.0
    for s, p in old.items():
        delta = (1.0 if s == step else 0.0) - p
        for off in model.busy_offsets(op):
            force += dg.get(s + off, 0.0) * delta
    return force


def force_directed_schedule(
    graph: DFG,
    model: ResourceModel,
    deadline: Optional[int] = None,
    r: Optional[Retiming] = None,
    neighbour_weight: float = 0.5,
) -> ForceDirectedResult:
    """Time-constrained FDS over the zero-delay DAG of ``Gr``.

    Args:
        graph: the DFG.
        model: supplies timing and unit classes (counts are *not* hard
            limits here — FDS balances usage instead).
        deadline: schedule deadline (default: critical path).
        r: optional retiming whose DAG to schedule.
        neighbour_weight: weight of predecessor/successor forces.
    """
    timing = model.timing()
    cp = critical_path_length(graph, timing, r)
    if deadline is None:
        deadline = cp
    windows = _Windows(graph, timing, deadline, r)
    unfixed = set(graph.nodes)

    while unfixed:
        dgs = _distribution_graphs(graph, model, windows)
        best: Optional[Tuple[float, int, NodeId, int]] = None
        index = {v: i for i, v in enumerate(graph.nodes)}
        for v in sorted(unfixed, key=lambda u: index[u]):
            if windows.lo[v] == windows.hi[v]:
                best = (float("-inf"), index[v], v, windows.lo[v])
                break
            for step in range(windows.lo[v], windows.hi[v] + 1):
                force = _self_force(graph, model, dgs, windows, v, step)
                # neighbour forces: squeezing pred/succ windows
                for u in zero_delay_predecessors(graph, v, r):
                    if u in unfixed:
                        new_hi = min(windows.hi[u], step - graph.time(u, timing))
                        if new_hi < windows.hi[u]:
                            force += neighbour_weight * (windows.hi[u] - new_hi)
                for w in zero_delay_successors(graph, v, r):
                    if w in unfixed:
                        new_lo = max(windows.lo[w], step + graph.time(v, timing))
                        if new_lo > windows.lo[w]:
                            force += neighbour_weight * (new_lo - windows.lo[w])
                if best is None or (force, index[v], str(v), step) < (
                    best[0],
                    best[1],
                    str(best[2]),
                    best[3],
                ):
                    best = (force, index[v], v, step)
        assert best is not None
        _, _, node, step = best
        windows.fix(node, step)
        unfixed.discard(node)

    sched = Schedule(graph, model, {v: windows.lo[v] for v in graph.nodes})
    peak: Dict[str, int] = {}
    for (unit, _cs), nodes in sched.busy_table().items():
        peak[unit] = max(peak.get(unit, 0), len(nodes))
    return ForceDirectedResult(schedule=sched, deadline=deadline, peak_usage=peak)
