"""Self-contained repro bundles for fuzz failures.

A bundle is a directory under ``artifacts/qa/`` holding everything needed
to replay one failing cell without the fuzzer's RNG:

* ``graph.json`` — the (minimized) graph in the lossless
  :mod:`repro.dfg.io` JSON form, qa coefficient attrs included, so
  semantics can be re-attached deterministically;
* ``case.json`` — provenance and the verdict: generator name + params,
  resource config tag, scheduler path, seed, and the oracle failures.

``replay_bundle`` reloads the graph, rebuilds its funcs, re-runs the
recorded scheduler path and returns the oracle failures observed now —
an empty list means the bug the bundle captured has been fixed.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.dfg import io as dfg_io
from repro.dfg.graph import DFG
from repro.errors import ReproError
from repro.qa.oracles import OracleFailure
from repro.suite.random_graphs import rebuild_funcs

_BUNDLE_FORMAT = "repro.qa.bundle"
_BUNDLE_VERSION = 1


@dataclass(frozen=True)
class ReproBundle:
    """A loaded repro bundle: the failing graph plus its case record."""

    path: str
    graph: DFG
    case: Dict[str, Any]

    @property
    def failures(self) -> List[OracleFailure]:
        return [
            OracleFailure(f["oracle"], f["message"]) for f in self.case["failures"]
        ]


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text).strip("_")


def write_bundle(
    out_dir: str,
    graph: DFG,
    case: Dict[str, Any],
    failures: List[OracleFailure],
) -> str:
    """Write a bundle directory and return its path.

    ``case`` must carry ``generator``, ``params``, ``config`` and ``path``
    keys (the fuzz runner's cell coordinates).
    """
    tag = "-".join(
        _slug(str(case.get(k, "?"))) for k in ("generator", "config", "path")
    )
    seed = case.get("params", {}).get("seed")
    if seed is not None:
        tag += f"-s{seed}"
    tag += f"-{_slug(failures[0].oracle)}" if failures else "-clean"
    bundle_dir = os.path.join(out_dir, tag)
    suffix = 0
    while os.path.exists(bundle_dir):
        suffix += 1
        bundle_dir = os.path.join(out_dir, f"{tag}.{suffix}")
    os.makedirs(bundle_dir)
    dfg_io.save(graph, os.path.join(bundle_dir, "graph.json"))
    record = {
        "format": _BUNDLE_FORMAT,
        "version": _BUNDLE_VERSION,
        **{k: case[k] for k in ("generator", "params", "config", "path")},
        "failures": [{"oracle": f.oracle, "message": f.message} for f in failures],
    }
    with open(os.path.join(bundle_dir, "case.json"), "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
    return bundle_dir


def load_bundle(path: str) -> ReproBundle:
    """Load a bundle directory; funcs are rebuilt from the qa attrs."""
    with open(os.path.join(path, "case.json"), "r", encoding="utf-8") as fh:
        case = json.load(fh)
    if case.get("format") != _BUNDLE_FORMAT:
        raise ReproError(f"{path}: not a {_BUNDLE_FORMAT} directory")
    graph = dfg_io.load(os.path.join(path, "graph.json"))
    rebuild_funcs(graph)
    return ReproBundle(path=path, graph=graph, case=case)


def replay_bundle(path: str) -> Tuple[ReproBundle, List[OracleFailure]]:
    """Re-run a bundle's scheduler path on its stored graph.

    Returns the bundle and the failures observed *now* (empty when the
    captured bug no longer reproduces).
    """
    from repro.qa.runner import run_cell_on_graph

    bundle = load_bundle(path)
    failures = run_cell_on_graph(
        bundle.graph, bundle.case["config"], bundle.case["path"]
    )
    return bundle, failures
