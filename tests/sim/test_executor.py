"""Unit tests for the pipelined executor and end-to-end verification."""

import pytest

from repro.dfg import DFG, Retiming
from repro.schedule import ResourceModel, Schedule, realizing_retiming
from repro.core import rotation_schedule
from repro.sim import PipelineExecutor, compare_streams, verify_pipeline
from repro.suite import diffeq
from repro.errors import SimulationError


@pytest.fixture
def optimal_diffeq():
    g = diffeq()
    model = ResourceModel.unit_time(1, 1)
    start = {0: 0, 10: 0, 3: 1, 8: 1, 2: 2, 5: 2, 4: 3, 7: 4, 6: 4, 1: 5, 9: 5}
    sched = Schedule(g, model, start)
    return sched, realizing_retiming(sched)


class TestPipelineExecutor:
    def test_matches_reference(self, optimal_diffeq):
        sched, r = optimal_diffeq
        report = verify_pipeline(sched, r, iterations=30)
        assert report.matches_reference
        assert report.max_abs_error == 0.0
        assert report.period == 6 and report.depth == 2

    def test_speedup_reported(self, optimal_diffeq):
        sched, r = optimal_diffeq
        report = verify_pipeline(sched, r, iterations=60)
        # period 6 vs sequential 8 -> asymptotic 1.33x
        assert report.speedup_vs_sequential > 1.2

    def test_execution_order_sorted_by_global_cs(self, optimal_diffeq):
        sched, r = optimal_diffeq
        ex = PipelineExecutor(sched, r)
        order = ex.execution_order(5)
        times = [ex.start_time(v, i) for v, i in order]
        assert times == sorted(times)

    def test_prologue_runs_rotated_nodes_first(self, optimal_diffeq):
        sched, r = optimal_diffeq
        ex = PipelineExecutor(sched, r)
        order = ex.execution_order(5)
        first_nodes = {v for v, i in order[:3]}
        assert first_nodes == {10, 8, 1}

    def test_bogus_retiming_caught(self, optimal_diffeq):
        sched, _ = optimal_diffeq
        with pytest.raises(SimulationError):
            PipelineExecutor(sched, Retiming.of_set([9])).run(10)

    def test_too_few_iterations(self, optimal_diffeq):
        sched, r = optimal_diffeq
        with pytest.raises(SimulationError, match="at least depth"):
            PipelineExecutor(sched, r).run(1)

    def test_negative_retiming_rejected(self, optimal_diffeq):
        sched, _ = optimal_diffeq
        with pytest.raises(SimulationError, match="normalized"):
            PipelineExecutor(sched, Retiming({10: -1}))

    def test_wrapped_schedule_execution(self):
        """Wrapped schedules execute correctly through from_wrapped."""
        res = rotation_schedule(diffeq(), ResourceModel.adders_mults(1, 1, pipelined_mults=True))
        ex = PipelineExecutor.from_wrapped(res.wrapped)
        report = ex.verify(25)
        assert report.matches_reference
        assert report.period == 6

    def test_report_str(self, optimal_diffeq):
        sched, r = optimal_diffeq
        report = verify_pipeline(sched, r, iterations=10)
        assert "OK" in str(report)

    def test_short_edge_init_rejected_up_front(self):
        """Regression: a too-short init used to surface as IndexError mid-run."""
        g = DFG("bad-init")
        g.add_node("a", "add", func=lambda x: x + 1.0)
        g.add_node("b", "add", func=lambda x: x)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 3)
        g._edge_init[g.edges[1].eid] = (1.0,)  # bypass add_edge validation
        model = ResourceModel.adders_mults(2, 1)
        sched = Schedule(g, model, {"a": 0, "b": 1})
        with pytest.raises(SimulationError, match="init"):
            PipelineExecutor(sched, Retiming.zero())

    def test_truncated_reference_is_a_mismatch(self, optimal_diffeq, monkeypatch):
        """Regression: zip() silently ignored missing tail values."""
        from repro.sim import executor as executor_mod
        from repro.sim.reference import ReferenceExecutor

        orig_run = ReferenceExecutor.run

        def truncating_run(self, iterations):
            streams = orig_run(self, iterations)
            return {v: s[:-1] for v, s in streams.items()}

        monkeypatch.setattr(
            executor_mod.ReferenceExecutor, "run", truncating_run
        )
        sched, r = optimal_diffeq
        report = verify_pipeline(sched, r, iterations=10)
        assert not report.matches_reference


class TestCompareStreams:
    def test_equal_streams_match(self):
        err, ok = compare_streams({"a": [1.0, 2.0]}, {"a": [1.0, 2.0]})
        assert ok and err == 0.0

    def test_length_mismatch_fails(self):
        err, ok = compare_streams({"a": [1.0, 2.0]}, {"a": [1.0]})
        assert not ok
        assert err == 0.0  # the common prefix agrees

    def test_missing_node_fails_both_ways(self):
        assert not compare_streams({"a": [1.0]}, {})[1]
        assert not compare_streams({}, {"a": [1.0]})[1]

    def test_value_divergence_reports_max_error(self):
        err, ok = compare_streams({"a": [1.0, 2.0]}, {"a": [1.0, 2.5]})
        assert not ok and err == 0.5

    def test_non_numeric_values_compared_exactly(self):
        assert compare_streams({"a": ["x"]}, {"a": ["x"]})[1]
        assert not compare_streams({"a": ["x"]}, {"a": ["y"]})[1]
