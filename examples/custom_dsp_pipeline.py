#!/usr/bin/env python3
"""Pipeline a *custom* DSP kernel built with the public DFG builder.

The workload is a second-order IIR notch filter followed by an energy
tap — the kind of small streaming kernel the paper's introduction
motivates.  The script builds the cyclic DFG from scratch (with real
arithmetic attached for simulation), schedules it under a small datapath,
and runs a numeric impulse-response comparison between the sequential
loop and the rotated pipeline.

Run:  python examples/custom_dsp_pipeline.py
"""

from repro import DFGBuilder, ResourceModel, rotation_schedule
from repro.sim import PipelineExecutor, reference_run
from repro.report import render_schedule

# notch filter coefficients (normalized, stable)
B0, B1, B2 = 0.9, -1.2, 0.9
A1, A2 = -1.1, 0.7


def build_notch():
    """y[n] = B0*w[n] + B1*w[n-1] + B2*w[n-2];  w[n] = x[n] - A1*w[n-1] - A2*w[n-2].

    The input x[n] is an impulse generated inside the graph (a one-shot
    register chain), so the whole kernel is a self-contained cyclic DFG.
    """
    b = DFGBuilder("notch", default_op="add")

    # impulse source: a self-loop that starts at 1.0 and decays to 0
    b.node("x", "mul", func=lambda prev: 0.0 * prev)

    # recursive half: w = x - A1*w' - A2*w''
    b.node("mA1", "mul", func=lambda w: A1 * w)
    b.node("mA2", "mul", func=lambda w: A2 * w)
    b.node("s1", "sub", func=lambda x, a1: x - a1)
    b.node("w", "sub", func=lambda s, a2: s - a2)

    # feed-forward half: y = B0*w + B1*w' + B2*w''
    b.node("mB0", "mul", func=lambda w: B0 * w)
    b.node("mB1", "mul", func=lambda w: B1 * w)
    b.node("mB2", "mul", func=lambda w: B2 * w)
    b.node("y1", "add", func=lambda p, q: p + q)
    b.node("y", "add", func=lambda p, q: p + q)

    # energy tap: e = e' + y*y (accumulated output energy)
    b.node("sq", "mul", func=lambda v: v * v)
    b.node("e", "add", func=lambda acc, s: acc + s)

    b.wire("x", "x", delay=1, init=[1.0])          # impulse: 1, 0, 0, ...
    b.wire("x", "s1")
    b.wire("mA1", "s1")
    b.wire("s1", "w")
    b.wire("mA2", "w")
    b.wire("w", "mA1", delay=1, init=[0.0])
    b.wire("w", "mA2", delay=2, init=[0.0, 0.0])
    b.wire("w", "mB0")
    b.wire("w", "mB1", delay=1, init=[0.0])
    b.wire("w", "mB2", delay=2, init=[0.0, 0.0])
    b.wire("mB0", "y1")
    b.wire("mB1", "y1")
    b.wire("y1", "y")
    b.wire("mB2", "y")
    b.wire("y", "sq", delay=1, init=[0.0])
    b.wire("e", "e", delay=1, init=[0.0])
    b.wire("sq", "e")
    return b.build()


def main() -> None:
    graph = build_notch()
    print(f"== {graph.name}: {graph.num_nodes} ops ({graph.ops_histogram()})")

    model = ResourceModel.adders_mults(2, 1, pipelined_mults=True)
    result = rotation_schedule(graph, model)
    print(f"-- datapath {model.label()}: {result.initial_length} -> {result.length} CS, "
          f"depth {result.depth}")
    print(render_schedule(result.schedule, model, retiming=result.retiming))
    print()

    # numeric impulse response, sequential vs pipelined
    n = 24
    reference = reference_run(graph, n)
    pipelined = PipelineExecutor(result.schedule, result.retiming, result.length).run(n)
    print("   n   y[n] (sequential)   y[n] (pipelined)")
    for i in range(10):
        print(f"  {i:2}   {reference['y'][i]:+.6f}          {pipelined['y'][i]:+.6f}")
    worst = max(abs(a - b) for a, b in zip(reference["y"], pipelined["y"]))
    print(f"\n   max |difference| over {n} samples: {worst:.2e}")
    assert worst == 0.0
    print(f"   accumulated output energy: {reference['e'][-1]:.6f}")


if __name__ == "__main__":
    main()
