"""Unit tests for full/partial list scheduling."""

import pytest

from repro.dfg import DFG, Retiming
from repro.schedule import (
    OccupancyGrid,
    ResourceModel,
    full_schedule,
    partial_schedule,
)
from repro.suite import diffeq, elliptic
from repro.errors import SchedulingError


class TestFullSchedule:
    def test_respects_precedence_and_resources(self, two_cycle, small_model):
        s = full_schedule(two_cycle, small_model)
        assert s.is_legal_dag_schedule()

    def test_reproduces_paper_figure_2a(self):
        """The diffeq initial schedule is exactly Figure 2-(a)."""
        s = full_schedule(diffeq(), ResourceModel.unit_time(1, 1)).normalized()
        expected = {
            10: 0, 1: 1, 8: 1, 0: 2, 3: 3, 2: 4, 5: 4, 4: 5, 7: 6, 6: 6, 9: 7,
        }
        assert s.start_map == expected
        assert s.length == 8

    def test_multicycle_serialization(self):
        g = DFG()
        g.add_node("m1", "mul")
        g.add_node("m2", "mul")
        model = ResourceModel.adders_mults(1, 1)
        s = full_schedule(g, model)
        starts = sorted(s.start_map.values())
        assert starts == [0, 2]  # non-pipelined: no overlap
        assert s.length == 4

    def test_pipelined_overlap(self):
        g = DFG()
        g.add_node("m1", "mul")
        g.add_node("m2", "mul")
        model = ResourceModel.adders_mults(1, 1, pipelined_mults=True)
        s = full_schedule(g, model)
        assert sorted(s.start_map.values()) == [0, 1]

    def test_under_retiming(self):
        g = diffeq()
        r = Retiming.of_set([10])
        s = full_schedule(g, ResourceModel.unit_time(1, 1), r)
        assert s.is_legal_dag_schedule(r)
        # node 10 is no longer a root: it must come after node 8
        assert s.start(10) >= s.start(8) + 1

    def test_priority_callable(self, two_cycle, small_model):
        def constant_priority(graph, timing, r):
            return {v: (0,) for v in graph.nodes}

        s = full_schedule(two_cycle, small_model, priority=constant_priority)
        assert s.is_legal_dag_schedule()

    def test_unknown_priority_rejected(self, two_cycle, small_model):
        with pytest.raises(ValueError, match="unknown priority"):
            full_schedule(two_cycle, small_model, priority="nope")

    def test_start_cs_offset(self, two_cycle, small_model):
        s = full_schedule(two_cycle, small_model, start_cs=5)
        assert s.first_cs == 5

    def test_elliptic_initial_length(self):
        # non-pipelined DAG schedule of the elliptic filter: CP 17 is a
        # lower bound and list scheduling lands close to it
        s = full_schedule(elliptic(), ResourceModel.adders_mults(3, 3))
        assert 17 <= s.length <= 19
        assert s.is_legal_dag_schedule()


class TestPartialSchedule:
    def test_frozen_nodes_never_move(self):
        g = diffeq()
        model = ResourceModel.unit_time(1, 1)
        base = full_schedule(g, model)
        moved = [10]
        out = partial_schedule(g, model, base, moved, Retiming.of_set([10]))
        for v in g.nodes:
            if v not in moved:
                assert out.start(v) == base.start(v), v

    def test_fills_holes(self):
        g = diffeq()
        model = ResourceModel.unit_time(1, 1)
        base = full_schedule(g, model).normalized()
        r = Retiming.of_set([10])
        shifted = base.shifted(-1)
        out = partial_schedule(g, model, shifted, [10], r, floor_cs=0)
        # 10 lands in the CS-1 adder hole (after its new predecessor 8)
        assert out.start(10) == 1
        assert out.length == 7

    def test_unknown_reschedule_node(self, two_cycle, small_model):
        base = full_schedule(two_cycle, small_model)
        with pytest.raises(SchedulingError, match="not in graph"):
            partial_schedule(two_cycle, small_model, base, ["ghost"])

    def test_respects_floor(self):
        g = diffeq()
        model = ResourceModel.unit_time(1, 1)
        base = full_schedule(g, model)
        out = partial_schedule(g, model, base, [10], floor_cs=20)
        assert out.start(10) >= 20


class TestOccupancyGrid:
    def test_find_and_occupy(self):
        model = ResourceModel.adders_mults(1, 1)
        grid = OccupancyGrid(model)
        assert grid.find_instance("mul", 0) == 0
        grid.occupy("mul", 0, 0)
        assert grid.find_instance("mul", 0) is None  # busy at 0..1
        assert grid.find_instance("mul", 1) is None
        assert grid.find_instance("mul", 2) == 0

    def test_double_booking_rejected(self):
        model = ResourceModel.adders_mults(1, 1)
        grid = OccupancyGrid(model)
        grid.occupy("add", 0, 0)
        with pytest.raises(SchedulingError, match="double-booked"):
            grid.occupy("add", 0, 0)

    def test_release(self):
        model = ResourceModel.adders_mults(1, 1)
        grid = OccupancyGrid(model)
        grid.occupy("mul", 0, 0)
        grid.release("mul", 0, 0)
        assert grid.find_instance("mul", 0) == 0

    def test_release_of_never_occupied_slot_is_a_noop(self):
        """Releasing a slot nothing ever occupied must not raise (the
        engine releases rotated nodes against grids that may have been
        shifted past their control steps)."""
        model = ResourceModel.adders_mults(1, 1)
        grid = OccupancyGrid(model)
        grid.release("mul", 7, 0)  # no (unit, cs) entry exists at all
        grid.occupy("add", 0, 0)
        grid.release("add", 0, 1)  # entry exists, instance was never in it
        assert grid.find_instance("add", 0) is None  # instance 0 still busy

    def test_shift_moves_occupancy_in_logical_cs(self):
        model = ResourceModel.adders_mults(1, 1)
        grid = OccupancyGrid(model)
        grid.occupy("mul", 3, 0)
        grid.shift(-3)
        assert grid.find_instance("mul", 0) is None  # now busy at 0..1
        assert grid.find_instance("mul", 2) == 0
        grid.release("mul", 0, 0)
        assert grid.find_instance("mul", 0) == 0

    def test_from_schedule_seeding(self, two_cycle, small_model):
        base = full_schedule(two_cycle, small_model)
        grid = OccupancyGrid.from_schedule(base, exclude=["a2"])
        op = two_cycle.op("a1")
        # a1's slot is taken, a2's slot is free
        assert grid.find_instance(op, base.start("a1")) != base.unit_index("a1") or (
            grid.find_instance(op, base.start("a1")) is None
            or small_model.unit_for_op(op).count > 1
        )
