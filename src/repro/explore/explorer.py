"""The feedback-guided explorer: rounds of prune -> rank -> solve -> fold.

Exploration is **round-based** so it stays deterministic and auditable:

1. **Prune** — every still-unsolved cell's solver-free lower bound
   (:func:`~repro.explore.bounds.cell_bound`) is checked against its
   benchmark's current frontier in canonical cell order.  A cell whose
   bound is covered by an achieved point can never change the frontier's
   point set, so it is dropped without solving (``pruned_dominated`` when
   the blocker is strictly cheaper, ``pruned_bound`` otherwise).
2. **Rank** — survivors are ordered by feedback instead of grid index:
   frontier-adjacent cells first (a solved grid neighbor exists), larger
   bound gap first (more room between the neighbor's achieved period and
   this cell's bound), then larger critical-cycle overlap with the cells
   already on the frontier, then canonical order as the final tie-break.
3. **Solve** — the head of the ranking (one round's worth) is chunked —
   multi-cell families become warm-chain chunks, leftover singletons
   regroup into ``solve_batch`` cohorts — and handed to the pool.
4. **Fold** — outcomes fold into the frontiers in canonical cell order,
   making the frontier (and therefore the next round's pruning) a pure
   function of the grid, independent of worker timing.

``mode="exhaustive"`` runs the same loop degenerated to one unpruned,
unranked round of cold solves — today's benchmark behavior, and the
baseline ``BENCH_explore.json`` measures the speedup against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.explore.space import CellSpec, ExploreError, Point, cell_cost, family_key, cohort_key
from repro.explore.bounds import CellBound, cell_bound, overlap
from repro.explore.frontier import ParetoFrontier
from repro.explore.runner import CellOutcome, ServeCellSolver
from repro.explore.pool import Chunk, make_pool

#: The explore/v1 counter names, in render order.
COUNTER_KEYS = (
    "cells_total",
    "solved",
    "pruned_bound",
    "pruned_dominated",
    "seeded_warm",
    "dedup_hits",
    "steal_count",
    "frontier_size",
    "rounds",
)


@dataclass
class PrunedCell:
    """A cell skipped without solving, and the point that licensed it."""

    spec: CellSpec
    lb_point: Point
    blocker: Point
    kind: str  # "pruned_bound" | "pruned_dominated"

    def as_json(self) -> Dict[str, Any]:
        return {
            "cell": self.spec.as_json(),
            "lb_point": self.lb_point.as_json(),
            "blocker": self.blocker.as_json(),
            "kind": self.kind,
        }


@dataclass
class ExploreReport:
    """Everything one exploration produced."""

    mode: str
    cells: List[CellSpec]
    outcomes: List[CellOutcome]
    pruned: List[PrunedCell]
    frontiers: Dict[str, List[Tuple[Point, List[str]]]]
    counters: Dict[str, int]
    elapsed: float = 0.0
    events: List[Dict[str, Any]] = field(default_factory=list)

    def frontier_points(self, bench: str) -> List[Point]:
        return [p for p, _ in self.frontiers.get(bench, [])]

    def counter_line(self) -> str:
        return ", ".join(f"{k}={self.counters.get(k, 0)}" for k in COUNTER_KEYS)

    def as_json(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "counters": {k: self.counters.get(k, 0) for k in COUNTER_KEYS},
            "elapsed": self.elapsed,
            "frontiers": {
                bench: [[p.as_json(), labels] for p, labels in pts]
                for bench, pts in sorted(self.frontiers.items())
            },
            "outcomes": [o.as_json() for o in self.outcomes],
            "pruned": [p.as_json() for p in self.pruned],
        }


def _classify(blocker: Point, spec: CellSpec) -> str:
    return "pruned_dominated" if blocker.cost < cell_cost(spec) else "pruned_bound"


def _rank(
    remaining: List[Tuple[int, CellSpec]],
    bounds: Dict[int, CellBound],
    solved: Dict[Tuple, CellOutcome],
    frontier_crit: Dict[str, List[frozenset]],
) -> List[Tuple[int, CellSpec]]:
    """Feedback order: adjacency, bound gap, critical-cycle overlap."""

    def neighbor_points(spec: CellSpec) -> List[Point]:
        fam = family_key(spec)
        pts = []
        for (ofam, adders, mults), outcome in solved.items():
            if ofam == fam and abs(adders - spec.adders) + abs(mults - spec.mults) == 1:
                pts.append(outcome.point)
        return pts

    def key(item: Tuple[int, CellSpec]):
        idx, spec = item
        bound = bounds[idx]
        pts = neighbor_points(spec)
        adjacent = 1 if pts else 0
        gap = max(
            (p.period_ns - bound.lb_period_ns for p in pts), default=Fraction(0)
        )
        crit = max(
            (overlap(bound.critical_nodes, c) for c in frontier_crit.get(spec.bench, [])),
            default=Fraction(0),
        )
        return (-adjacent, -gap, -crit, idx)

    return sorted(remaining, key=key)


def _chunk(selection: List[Tuple[int, CellSpec]], batch_capable: bool) -> List[Chunk]:
    """Family chunks for warm chains; leftover singletons into cohorts.

    Cells inside a family chunk run small-to-large in resource counts so
    each ``set_resource_counts`` hop grows the machine — the cheapest
    solves come first and the chain is deterministic.
    """
    by_family: Dict[Tuple, List[CellSpec]] = {}
    order: List[Tuple] = []
    for _idx, spec in selection:
        fam = family_key(spec)
        if fam not in by_family:
            by_family[fam] = []
            order.append(fam)
        by_family[fam].append(spec)
    chunks: List[Chunk] = []
    singles: List[CellSpec] = []
    for fam in order:
        cells = sorted(by_family[fam], key=lambda s: (s.adders + s.mults, s.sort_key()))
        if len(cells) >= 2:
            chunks.append(("family", cells))
        else:
            singles.extend(cells)
    if batch_capable:
        by_cohort: Dict[Tuple, List[CellSpec]] = {}
        corder: List[Tuple] = []
        for spec in singles:
            ck = cohort_key(spec)
            if ck not in by_cohort:
                by_cohort[ck] = []
                corder.append(ck)
            by_cohort[ck].append(spec)
        for ck in corder:
            cells = by_cohort[ck]
            if len(cells) >= 2:
                chunks.append(("cohort", cells))
            else:
                chunks.append(("family", cells))
    else:
        chunks.extend(("family", [spec]) for spec in singles)
    return chunks


def explore(
    cells: Sequence[CellSpec],
    *,
    mode: str = "explore",
    workers: int = 1,
    backend: Optional[str] = None,
    round_size: Optional[int] = None,
    serve_solver: Optional[ServeCellSolver] = None,
) -> ExploreReport:
    """Explore (or exhaustively sweep) a grid of cells.

    ``mode="explore"`` runs the feedback loop above; ``"exhaustive"``
    cold-solves every cell in canonical order.  ``serve_solver`` routes
    cell execution through a serve daemon instead of the local pool
    (rounds, pruning and folding are unchanged).
    """
    if mode not in ("explore", "exhaustive"):
        raise ExploreError(f"unknown explore mode {mode!r}")
    cells = list(cells)
    if len(set(cells)) != len(cells):
        raise ExploreError("duplicate cells in grid")
    t0 = time.perf_counter()
    counters: Dict[str, int] = {k: 0 for k in COUNTER_KEYS}
    counters["cells_total"] = len(cells)
    frontiers: Dict[str, ParetoFrontier] = {}
    frontier_crit: Dict[str, List[frozenset]] = {}
    outcomes: Dict[int, CellOutcome] = {}
    pruned: List[PrunedCell] = []
    events: List[Dict[str, Any]] = []
    # (family, adders, mults) -> outcome, for adjacency + gap ranking.
    solved_index: Dict[Tuple, CellOutcome] = {}

    from repro.core.vector._compat import have_numpy

    batch_capable = mode == "explore" and serve_solver is None and have_numpy() and (
        backend in (None, "vector")
    )
    pool = None
    if serve_solver is None:
        pool = make_pool(workers if mode == "explore" else 1, backend)
    if round_size is None:
        round_size = max(8, 2 * workers)

    remaining: List[Tuple[int, CellSpec]] = list(enumerate(cells))

    def fold(selection: List[Tuple[int, CellSpec]], got: List[CellOutcome]) -> None:
        by_spec = {o.spec: o for o in got}
        for idx, spec in sorted(selection):
            outcome = by_spec[spec]
            outcomes[idx] = outcome
            counters["solved"] += 1
            if outcome.seeded:
                counters["seeded_warm"] += 1
            if outcome.deduped or outcome.source in ("serve:memory", "serve:disk", "serve:coalesced"):
                counters["dedup_hits"] += 1
            front = frontiers.setdefault(spec.bench, ParetoFrontier())
            verdict = front.offer(outcome.point, spec.label())
            if verdict in ("added", "improved", "equal"):
                crit = cell_bound(spec).critical_nodes
                frontier_crit.setdefault(spec.bench, []).append(crit)
            fam = family_key(spec)
            solved_index[(fam, spec.adders, spec.mults)] = outcome
            events.append({"event": "solved", **outcome.as_json(), "frontier": verdict})

    if mode == "exhaustive":
        selection = remaining
        if serve_solver is not None:
            got = [serve_solver.solve(spec) for _idx, spec in selection]
        else:
            got = [o for batch in pool.run([("cold", [s]) for _i, s in selection]) for o in batch]
        fold(selection, got)
        remaining = []
    else:
        bounds: Dict[int, CellBound] = {}
        while remaining:
            counters["rounds"] += 1
            # 1. prune against the current frontiers, canonical order
            survivors: List[Tuple[int, CellSpec]] = []
            for idx, spec in remaining:
                bound = bounds.get(idx)
                if bound is None:
                    bound = bounds[idx] = cell_bound(spec)
                front = frontiers.get(spec.bench)
                blocker = front.blocker(bound.lb_point) if front is not None else None
                if blocker is not None:
                    kind = _classify(blocker, spec)
                    counters[kind] += 1
                    record = PrunedCell(spec, bound.lb_point, blocker, kind)
                    pruned.append(record)
                    events.append({"event": "pruned", **record.as_json()})
                else:
                    survivors.append((idx, spec))
            remaining = survivors
            if not remaining:
                break
            # 2. feedback ranking, 3. solve one round, 4. fold
            ranked = _rank(remaining, bounds, solved_index, frontier_crit)
            selection = ranked[:round_size]
            chosen = {idx for idx, _spec in selection}
            remaining = [item for item in remaining if item[0] not in chosen]
            if serve_solver is not None:
                got = [serve_solver.solve(spec) for _idx, spec in sorted(selection)]
            else:
                chunks = _chunk(selection, batch_capable)
                got = [o for batch in pool.run(chunks) for o in batch]
            fold(selection, got)

    if pool is not None:
        counters["steal_count"] = getattr(pool, "steal_count", 0)
        pool.close()
    counters["frontier_size"] = sum(len(f) for f in frontiers.values())
    report = ExploreReport(
        mode=mode,
        cells=cells,
        outcomes=[outcomes[i] for i in sorted(outcomes)],
        pruned=pruned,
        frontiers={bench: f.points() for bench, f in sorted(frontiers.items())},
        counters=counters,
        elapsed=time.perf_counter() - t0,
        events=events,
    )
    events.append({"event": "summary", "mode": mode, "counters": dict(counters),
                   "elapsed": report.elapsed})
    return report
