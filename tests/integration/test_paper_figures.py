"""Integration tests reproducing the paper's worked figures.

Figure 2 (two down-rotations of size 1, unit-time operations),
Figure 3 (the corresponding retimed graphs), Figure 4 (global view),
Figure 5 (depth reduction 4 -> 2), Figures 6-8 (multi-cycle rotations
and wrapping to length 6).
"""

import pytest

from repro.dfg import Retiming
from repro.schedule import ResourceModel, realizing_retiming, unroll
from repro.core import RotationState, reduce_depth, unwrap_if_possible, wrap, wrapped_length
from repro.suite import diffeq


@pytest.fixture
def unit_state():
    return RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))


class TestFigure2:
    def test_initial_schedule_cell_by_cell(self, unit_state):
        """Figure 2-(a): the optimal DAG schedule of length 8."""
        s = unit_state.schedule.normalized()
        mult_col = {s.start(v) + 1: v for v in s.graph.nodes if s.graph.op(v) == "mul"}
        add_col = {s.start(v) + 1: v for v in s.graph.nodes if s.graph.op(v) != "mul"}
        assert mult_col == {2: 1, 3: 0, 4: 3, 5: 2, 6: 4, 7: 7}
        assert add_col == {1: 10, 2: 8, 5: 5, 7: 6, 8: 9}
        assert s.length == 8

    def test_first_rotation_length_7(self, unit_state):
        """Figure 2-(b): rotating {10} compacts the schedule to 7."""
        st = unit_state.down_rotate(1)
        assert st.trace[-1].rotated == (10,)
        assert st.length == 7
        s = st.schedule.normalized()
        # node 10 lands beside node 0, one CS after node 8 (its new pred)
        assert s.start(10) == s.start(0) == s.start(8) + 1

    def test_second_rotation_is_optimal_6(self, unit_state):
        """Figure 2-(c): rotating {1, 8} reaches the optimum, cell by cell."""
        st = unit_state.down_rotate(1).down_rotate(1)
        assert st.length == 6
        s = st.schedule.normalized()
        mult_col = {s.start(v) + 1: v for v in s.graph.nodes if s.graph.op(v) == "mul"}
        add_col = {s.start(v) + 1: v for v in s.graph.nodes if s.graph.op(v) != "mul"}
        assert mult_col == {1: 0, 2: 3, 3: 2, 4: 4, 5: 7, 6: 1}
        assert add_col == {1: 10, 2: 8, 3: 5, 5: 6, 6: 9}


class TestFigure3:
    def test_retimed_graphs(self, unit_state):
        """Figure 3: r(10)=1 after one rotation; r(10)=r(8)=r(1)=1 after two."""
        st1 = unit_state.down_rotate(1)
        assert dict(st1.retiming.items_nonzero()) == {10: 1}
        st2 = st1.down_rotate(1)
        assert dict(st2.retiming.items_nonzero()) == {1: 1, 8: 1, 10: 1}
        # node 10 went from DAG root to DAG leaf
        from repro.dfg import leaves, roots

        g = st1.graph
        assert 10 in roots(g)
        assert 10 in leaves(g, st1.retiming)

    def test_retimed_graph_materialization(self, unit_state):
        st = unit_state.down_rotate(1)
        gr = st.retiming.retime(st.graph)
        # all of 10's out-edges gained a delay, its in-edge lost one
        assert all(e.delay >= 1 for e in gr.out_edges(10))
        assert all(e.delay == 0 for e in gr.in_edges(10))


class TestFigure4:
    def test_global_view_prologue_body_epilogue(self, unit_state):
        """Figure 4-(c): the rescheduled pipeline's unrolled timeline."""
        st = unit_state.down_rotate(1).down_rotate(1)
        r = st.retiming.normalized(st.graph)
        u = unroll(st.schedule.normalized(), r, iterations=6)
        assert u.depth == 2
        assert {(e.node, e.iteration) for e in u.phase_entries("prologue")} == {
            (10, 0), (8, 0), (1, 0),
        }
        assert u.dependence_violations() == []
        assert u.resource_violations() == []
        # steady state: one iteration completes every 6 global CS
        assert u.period == 6


class TestFigure5:
    def test_depth_reduction_4_to_2(self, unit_state):
        """Seven size-2 rotations accumulate depth > 2; Section 3.2's
        shortest-path retiming realizes the same optimal schedule at 2."""
        st = unit_state
        max_accumulated = 0
        for _ in range(7):
            st = st.down_rotate(min(2, st.length - 1))
            max_accumulated = max(
                max_accumulated, st.retiming.normalized(st.graph).depth(st.graph)
            )
        assert st.length == 6
        assert max_accumulated >= 4  # the rotation function gets deep (paper: 4)
        assert st.retiming.normalized(st.graph).depth(st.graph) > 2
        shallow = reduce_depth(st.schedule)
        assert shallow.depth(st.graph) == 2
        assert st.schedule.is_legal_dag_schedule(shallow)


class TestFigures6to8:
    @pytest.fixture
    def mp_state(self):
        return RotationState.initial(
            diffeq(), ResourceModel.adders_mults(1, 1, pipelined_mults=True)
        )

    def test_rotation_can_lengthen_unwrapped_schedule(self, mp_state):
        """Figure 6: multi-cycle tails can grow the post-rotation span."""
        st = mp_state
        grew = False
        for _ in range(8):
            new = st.down_rotate(1)
            span_without_tail = new.schedule.normalized()
            if new.length > max(
                new.schedule.start(v) for v in new.graph.nodes
            ) - new.schedule.first_cs + 1:
                grew = True
            st = new
        assert grew  # tails hang past the last start at some point

    def test_wrapping_recovers_length_6(self, mp_state):
        """Figure 8: after 8 size-1 rotations the wrapped schedule has
        length 6 — the Table 3 optimum for 1A 1Mp."""
        st = mp_state
        for _ in range(8):
            st = st.down_rotate(1)
        w = wrap(st.schedule, st.retiming)
        assert w.period == 6
        assert w.violations() == []

    def test_wrapped_schedule_can_be_rerooted(self, mp_state):
        """Section 4: 'a wrapped schedule can be easily rotated to be an
        unwrapped one' by picking a different first control step."""
        st = mp_state
        for _ in range(8):
            st = st.down_rotate(1)
        w = wrap(st.schedule, st.retiming)
        if w.wrapped_nodes():
            out = unwrap_if_possible(w)
            assert out.period == w.period
            assert out.violations() == []
