"""Property-based tests for retiming algebra and legality."""

from hypothesis import given, settings, strategies as st

from repro.dfg import Retiming, Timing, iteration_bound, is_down_rotatable
from repro.suite import random_dfg

node_ids = st.text(alphabet="abcdefgh", min_size=1, max_size=2)
retimings = st.dictionaries(node_ids, st.integers(-5, 5), max_size=8).map(Retiming)
graphs = st.integers(0, 1000).map(lambda seed: random_dfg(12, seed=seed))


class TestAlgebra:
    @given(retimings, retimings)
    def test_composition_commutes(self, r1, r2):
        assert r1 + r2 == r2 + r1

    @given(retimings, retimings, retimings)
    def test_composition_associates(self, r1, r2, r3):
        assert (r1 + r2) + r3 == r1 + (r2 + r3)

    @given(retimings)
    def test_zero_is_identity(self, r):
        assert r + Retiming.zero() == r

    @given(retimings)
    def test_negation_cancels(self, r):
        assert r + r.negated() == Retiming.zero()


class TestGraphProperties:
    @given(graphs, retimings)
    @settings(max_examples=40, deadline=None)
    def test_cycle_delay_conservation(self, g, r):
        """Retiming conserves total delay around the whole edge multiset's
        cycle space: the sum of dr over any cycle equals the original sum.
        Checked on the graph's overall edge sum restricted to cycles via
        the telescoping identity sum(dr - d) = sum over nodes of
        (out-deg - in-deg) * r = 0 for balanced node sets."""
        total_shift = sum(r.dr(e) - e.delay for e in g.edges)
        expected = sum(
            r[v] * (len(g.out_edges(v)) - len(g.in_edges(v))) for v in g.nodes
        )
        assert total_shift == expected

    @given(graphs)
    @settings(max_examples=30, deadline=None)
    def test_normalization_properties(self, g):
        r = Retiming({v: (hash(str(v)) % 7) - 3 for v in g.nodes})
        rn = r.normalized(g)
        values = [rn[v] for v in g.nodes]
        assert min(values) == 0
        for e in g.edges:
            assert r.dr(e) == rn.dr(e)

    @given(graphs, st.integers(0, 11))
    @settings(max_examples=40, deadline=None)
    def test_indicator_legality_equals_rotatability(self, g, k):
        nodes = g.nodes[: k + 1]
        assert is_down_rotatable(g, nodes) == Retiming.of_set(nodes).is_legal(g)

    @given(graphs)
    @settings(max_examples=25, deadline=None)
    def test_legal_retiming_preserves_iteration_bound(self, g):
        """The iteration bound is invariant under any legal retiming —
        cycles keep their time and delay totals."""
        timing = Timing({"add": 1, "mul": 2})
        # build a legal retiming by composing rotatable prefixes
        r = Retiming.zero()
        for k in (2, 5):
            nodes = g.nodes[:k]
            candidate = r + Retiming.of_set(nodes)
            if all(candidate.dr(e) >= 0 for e in g.edges):
                r = candidate
        gr = r.retime(g)
        assert iteration_bound(g, timing) == iteration_bound(gr, timing)

    @given(graphs)
    @settings(max_examples=30, deadline=None)
    def test_materialized_retime_matches_dr(self, g):
        whole = Retiming.of_set(g.nodes)  # always legal: dr unchanged
        gr = whole.retime(g)
        for original, retimed in zip(g.edges, gr.edges):
            assert retimed.delay == whole.dr(original) == original.delay
