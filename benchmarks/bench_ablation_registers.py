"""Ablation for the paper's **conclusion**: "through a sequence of
rotations, many optimal schedules can be found, which expose more chances
of optimization for the following stages of high-level synthesis, e.g.
connection binding, allocation".

Measured here: across the tied-optimal set Q of each benchmark, the
steady-state register requirement varies — selecting the best member
saves real registers at zero cost in schedule length.
"""

import pytest

from repro.binding import select_schedule
from repro.core import rotation_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

CASES = [
    ("diffeq", "1A1M"),
    ("elliptic", "3A2M"),
    ("biquad", "2A3M"),
    ("allpole", "2A2M"),
]


@pytest.mark.parametrize("bench,tag", CASES)
def test_register_spread_across_q(benchmark, bench, tag):
    graph = get_benchmark(bench)
    model = model_for(tag)

    def run():
        result = rotation_schedule(graph, model)
        return result, select_schedule(result)

    result, selection = run_once(benchmark, run)
    record(
        benchmark,
        bench=bench,
        resources=model.label(),
        optimal_schedules=len(selection.costs),
        register_costs=sorted(selection.costs),
        best=selection.best_cost,
        worst=max(selection.costs),
        spread=selection.spread,
    )
    assert selection.best.period == result.length  # selection is free
    assert selection.best_cost == min(selection.costs)
