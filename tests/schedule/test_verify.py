"""Unit tests for schedule legality verification (Theorem 2)."""

import pytest

from repro.dfg import DFG, Retiming
from repro.schedule import (
    ResourceModel,
    Schedule,
    check_schedule,
    full_schedule,
    is_legal_modulo_schedule,
    is_legal_static_schedule,
    modulo_precedence_violations,
    modulo_resource_conflicts,
    realizing_retiming,
)
from repro.suite import diffeq
from repro.errors import IllegalScheduleError


class TestRealizingRetiming:
    def test_plain_dag_schedule_needs_no_retiming(self, two_cycle, small_model):
        s = full_schedule(two_cycle, small_model)
        r = realizing_retiming(s)
        assert all(r[v] == 0 for v in two_cycle.nodes)

    def test_figure_2c_is_realized_by_figure_3b(self):
        """The optimal diffeq schedule needs exactly r(10)=r(8)=r(1)=1."""
        g = diffeq()
        model = ResourceModel.unit_time(1, 1)
        start = {0: 0, 10: 0, 3: 1, 8: 1, 2: 2, 5: 2, 4: 3, 7: 4, 6: 4, 1: 5, 9: 5}
        s = Schedule(g, model, start)
        r = realizing_retiming(s)
        assert r.as_dict(g) == {10: 1, 8: 1, 1: 1, 0: 0, 2: 0, 3: 0, 4: 0, 5: 0, 6: 0, 7: 0, 9: 0}

    def test_result_is_normalized_and_legal(self):
        g = diffeq()
        model = ResourceModel.unit_time(1, 1)
        start = {0: 0, 10: 0, 3: 1, 8: 1, 2: 2, 5: 2, 4: 3, 7: 4, 6: 4, 1: 5, 9: 5}
        r = realizing_retiming(Schedule(g, model, start))
        assert min(r[v] for v in g.nodes) == 0
        assert r.is_legal(g)

    def test_impossible_schedule_rejected(self, tiny_loop, small_model):
        # a and m simultaneously: m->a carries the only delay; a->m zero-delay
        # requires a+1 <= m; with both at 0 the constraint graph has a
        # negative cycle
        s = Schedule(tiny_loop, small_model, {"a": 0, "m": 0})
        with pytest.raises(IllegalScheduleError):
            realizing_retiming(s)
        assert not is_legal_static_schedule(s)

    def test_depth_minimality_on_diffeq(self):
        """Section 3.2: the found retiming has the smallest max r."""
        g = diffeq()
        model = ResourceModel.unit_time(1, 1)
        start = {0: 0, 10: 0, 3: 1, 8: 1, 2: 2, 5: 2, 4: 3, 7: 4, 6: 4, 1: 5, 9: 5}
        s = Schedule(g, model, start)
        r = realizing_retiming(s)
        assert r.depth(g) == 2
        # a deeper retiming also realizes it but is not returned
        deeper = r + Retiming.of_set(g.nodes)  # uniform shift: same dr
        assert deeper.normalized(g).depth(g) == r.depth(g)

    def test_check_schedule_reports_both_kinds(self, tiny_loop, small_model):
        bad = Schedule(tiny_loop, small_model, {"a": 0, "m": 0})
        problems = check_schedule(bad)
        assert problems  # precedence failure
        r = Retiming.zero()
        problems_r = check_schedule(bad, r)
        assert any("finish" in p for p in problems_r)


class TestModuloChecks:
    def test_wrapped_tail_is_legal(self):
        """A 2-cycle mult starting in the last CS wraps into slot 0."""
        g = DFG()
        g.add_node("m", "mul")
        g.add_node("a", "add")
        g.add_edge("m", "a", 1)
        model = ResourceModel.adders_mults(1, 1)
        start = {"m": 2, "a": 1}
        assert modulo_resource_conflicts(g, model, start, 3) == []
        # slot 0 busy by m's tail; placing another op there would clash
        g2 = DFG()
        g2.add_node("m", "mul")
        g2.add_node("m2", "mul")
        conflicts = modulo_resource_conflicts(
            g2, model, {"m": 2, "m2": 0}, 3
        )
        assert conflicts and "mult" in conflicts[0]

    def test_latency_exceeding_period_rejected(self):
        g = DFG()
        g.add_node("m", "mul")
        model = ResourceModel.adders_mults(1, 1)
        out = modulo_resource_conflicts(g, model, {"m": 0}, 1)
        assert out and "exceeds period" in out[0]

    def test_precedence_across_period(self):
        g = DFG()
        g.add_node("m", "mul")
        g.add_node("a", "add")
        g.add_edge("m", "a", 1)
        model = ResourceModel.adders_mults(1, 1)
        # m finishes at 4 (start 2); a at CS 1 of next repetition = 1 + 3
        assert modulo_precedence_violations(g, model, {"m": 2, "a": 1}, 3) == []
        # period 2: a@1 + 2 = 3 < 4 -> violated
        assert modulo_precedence_violations(g, model, {"m": 2, "a": 1}, 2)

    def test_all_problems_accumulated(self):
        """Regression: the checker used to return on the first latency
        offender, hiding every other latency problem *and* all slot
        conflicts behind it."""
        g = DFG()
        g.add_node("m1", "mul")
        g.add_node("m2", "mul")
        g.add_node("a1", "add")
        g.add_node("a2", "add")
        model = ResourceModel.adders_mults(1, 1)
        # period 1: both 2-cycle mults exceed the period (2 latency
        # problems), and the two adds collide in slot 0 (1 slot conflict)
        out = modulo_resource_conflicts(
            g, model, {"m1": 0, "m2": 0, "a1": 0, "a2": 0}, 1
        )
        assert len(out) >= 3
        latency = [p for p in out if "exceeds period" in p]
        slots = [p for p in out if "busy" in p]
        assert len(latency) == 2
        assert any("adder" in p for p in slots)

    def test_is_legal_modulo_schedule(self, tiny_loop):
        model = ResourceModel.adders_mults(1, 1)
        # period 3 = iteration bound: a@2, m@0? check: m->a d1: 0+2 <= 2+3 ok;
        # a->m d0: 2+1 <= 0+... dr=0 edge needs same-iteration: 3 > 0: illegal
        assert not is_legal_modulo_schedule(tiny_loop, model, {"a": 2, "m": 0}, 3)
        assert is_legal_modulo_schedule(tiny_loop, model, {"a": 0, "m": 1}, 3)

    def test_nonpositive_period_rejected(self, tiny_loop):
        model = ResourceModel.adders_mults(1, 1)
        with pytest.raises(IllegalScheduleError):
            modulo_resource_conflicts(tiny_loop, model, {"a": 0, "m": 1}, 0)

    def test_realizing_retiming_with_period(self):
        """Wrapped-schedule realization uses ceil((finish-start)/period)."""
        g = DFG()
        g.add_node("m", "mul")
        g.add_node("a", "add")
        g.add_edge("m", "a", 1)
        g.add_edge("a", "m", 1)
        model = ResourceModel.adders_mults(1, 1)
        s = Schedule(g, model, {"m": 1, "a": 0})
        # unwrapped span 3; as a period-2 wrapped schedule m's tail wraps
        r2 = realizing_retiming(s, period=2)
        assert r2.is_legal(g)
