#!/usr/bin/env python3
"""Downstream HLS stages: register lifetimes, binding, and picking the
best schedule from the optimal set Q.

The paper's conclusion argues that rotation scheduling's real dividend is
the *set* of optimal schedules it finds: later synthesis stages (register
allocation, binding) can choose among them.  This script makes that
concrete on the differential-equation solver: all tied-optimal schedules
have length 6, but their steady-state register requirements differ — the
selection is a free lunch.

Run:  python examples/registers_and_selection.py
"""

from collections import Counter

from repro import ResourceModel, diffeq, rotation_schedule, select_schedule
from repro.binding import LifetimeAnalyzer, bind_schedule


def main() -> None:
    graph = diffeq()
    model = ResourceModel.unit_time(1, 1)
    result = rotation_schedule(graph, model)
    print(f"== {graph.name} @ {model.label()}: period {result.length}, "
          f"{result.optimal_count} tied-optimal schedules found\n")

    selection = select_schedule(result)
    histogram = Counter(selection.costs)
    print("register requirement across the optimal set Q:")
    for cost in sorted(histogram):
        print(f"   {cost} registers: {histogram[cost]} schedule(s)")
    print(f"-> picking the best saves {selection.spread} register(s) "
          f"at zero cost in schedule length\n")

    best = selection.best
    analyzer = LifetimeAnalyzer.from_wrapped(best)
    report = analyzer.analyze()
    print(f"chosen schedule: period {best.period}, depth {best.depth}")
    print(f"live values per control step: {list(report.profile)}")

    binding = bind_schedule(best.schedule, best.retiming, best.period)
    print(f"\nleft-edge binding uses {binding.registers_used} registers:")
    for reg in range(binding.registers_used):
        values = binding.values_in_register(reg)
        sample = ", ".join(f"{v}@it{i}" for v, i in values[:4])
        more = f" (+{len(values) - 4} more)" if len(values) > 4 else ""
        print(f"   R{reg}: {sample}{more}")


if __name__ == "__main__":
    main()
