"""The feedback loop: frontier equality, accounting, pruning soundness."""

import pytest

from repro.explore import (
    CellSolver,
    build_grid,
    dominates,
    explore,
)
from repro.explore.bounds import clear_caches
from repro.explore.explorer import COUNTER_KEYS
from repro.explore.space import ExploreError


def small_grid():
    return build_grid(
        ["diffeq", "biquad"], ["1A1M", "2A1M", "2A2M"], clocks=[40, 100]
    )


@pytest.fixture(scope="module")
def reports():
    """One explore + one exhaustive run of the same grid, shared across
    the module's assertions (both are deterministic)."""
    clear_caches()
    grid = small_grid()
    # round_size below the grid size forces multiple prune/rank rounds
    explored = explore(grid, mode="explore", round_size=4)
    exhaustive = explore(grid, mode="exhaustive")
    return grid, explored, exhaustive


class TestFrontierEquality:
    def test_explore_reaches_exhaustive_frontier(self, reports):
        _grid, explored, exhaustive = reports
        assert sorted(explored.frontiers) == sorted(exhaustive.frontiers)
        for bench in explored.frontiers:
            assert explored.frontier_points(bench) == exhaustive.frontier_points(bench)

    def test_explore_solves_fewer_cells(self, reports):
        grid, explored, exhaustive = reports
        assert exhaustive.counters["solved"] == len(grid)
        assert explored.counters["solved"] < len(grid)
        assert explored.pruned


class TestAccounting:
    def test_every_cell_solved_or_pruned(self, reports):
        grid, explored, _ = reports
        c = explored.counters
        assert c["cells_total"] == len(grid)
        assert (
            c["solved"] + c["pruned_bound"] + c["pruned_dominated"]
            == c["cells_total"]
        )
        assert len(explored.outcomes) + len(explored.pruned) == len(grid)

    def test_counters_cover_the_schema(self, reports):
        _grid, explored, _ = reports
        assert set(explored.counters) == set(COUNTER_KEYS)
        assert explored.counters["rounds"] >= 2  # round_size forced >1
        assert explored.counters["frontier_size"] == sum(
            len(pts) for pts in explored.frontiers.values()
        )
        assert explored.counters["steal_count"] == 0  # inline pool

    def test_events_mirror_outcomes_and_prunes(self, reports):
        _grid, explored, _ = reports
        kinds = [e["event"] for e in explored.events]
        assert kinds.count("solved") == explored.counters["solved"]
        assert kinds.count("pruned") == len(explored.pruned)
        assert kinds[-1] == "summary"


class TestPruningSoundness:
    def test_resolving_pruned_cells_never_beats_the_frontier(self, reports):
        """The property the frontier design is built around: cold-solve
        every pruned cell and check its true outcome (a) never dominates
        any reported frontier point (registers included) and (b) is still
        covered by the blocker that licensed the prune."""
        _grid, explored, _ = reports
        solver = CellSolver(backend="flat")
        for pruned in explored.pruned:
            outcome = solver.solve_cold(pruned.spec)
            front = explored.frontier_points(pruned.spec.bench)
            for point in front:
                assert not dominates(outcome.point, point), (
                    f"pruned {pruned.spec.label()} achieved {outcome.point.render()} "
                    f"dominating frontier {point.render()}"
                )
            blocker = pruned.blocker
            assert (
                blocker.period_ns <= outcome.point.period_ns
                and blocker.cost <= outcome.point.cost
            ), f"blocker no longer covers {pruned.spec.label()}"

    def test_pruned_points_never_below_their_bound(self, reports):
        _grid, explored, _ = reports
        solver = CellSolver(backend="flat")
        for pruned in explored.pruned[:4]:
            outcome = solver.solve_cold(pruned.spec)
            assert outcome.point.period_ns >= pruned.lb_point.period_ns
            assert outcome.point.cost == pruned.lb_point.cost
            assert outcome.point.registers >= pruned.lb_point.registers


class TestModes:
    def test_duplicate_cells_rejected(self):
        cells = build_grid(["diffeq"], ["1A1M"])
        with pytest.raises(ExploreError):
            explore(cells + cells)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExploreError):
            explore(build_grid(["diffeq"], ["1A1M"]), mode="greedy")

    def test_workers_two_matches_inline(self):
        grid = build_grid(["diffeq"], ["1A1M", "2A1M"], clocks=[40, 100])
        solo = explore(grid, mode="explore", workers=1, backend="flat")
        duo = explore(grid, mode="explore", workers=2, backend="flat")
        for bench in solo.frontiers:
            assert solo.frontier_points(bench) == duo.frontier_points(bench)
        # stealing only relabels sources; the fold order pins everything else
        for key in ("solved", "pruned_bound", "pruned_dominated", "frontier_size"):
            assert solo.counters[key] == duo.counters[key]
