"""Operation chaining: time-unit scheduling within fixed-length control
steps (paper Section 3: "The basic rotation algorithm works for control
steps with chained operations").

In this mode operation times are physical (e.g. nanoseconds) and a
control step has a fixed ``cs_length``; several *dependent* operations
may execute back-to-back inside one control step as long as their total
combinational time fits.  The paper's experimental technology is the
motivating example: 40 ns adders and 80 ns multipliers under a 50 ns
clock (with 10 ns latch margin) — there a multiply spans 2 CS and no two
adds chain; slow the clock to 100 ns and two adds chain while a multiply
fits one step.

:class:`ChainedScheduleEntry` places an op at ``(control step, offset)``
where ``offset`` is the start time inside the step.  The list scheduler
below mirrors :mod:`repro.schedule.list_scheduler` but tracks per-unit
occupancy in time units and intra-step arrival times, and it exposes the
same ``(full, partial)`` pair so rotation can drive it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.dfg.graph import DFG, NodeId, Timing
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import (
    topological_order,
    zero_delay_adjacency,
    zero_delay_successors,
)
from repro.schedule.priorities import get_priority
from repro.errors import ResourceError, SchedulingError


@dataclass(frozen=True)
class ChainedScheduleEntry:
    """Placement of one op: control step, intra-step offset, unit instance."""

    node: NodeId
    cs: int
    offset: int
    unit: str
    instance: int

    @property
    def start_time(self) -> int:
        """Absolute start in time units requires the owning schedule's
        ``cs_length``; exposed there as :meth:`ChainedSchedule.start_time`."""
        return self.offset  # intra-step component only


class ChainedSchedule:
    """A schedule in (control step, offset) form with chaining."""

    def __init__(
        self,
        graph: DFG,
        timing: Timing,
        cs_length: int,
        unit_counts: Mapping[str, int],
        op_units: Mapping[str, str],
        entries: Mapping[NodeId, ChainedScheduleEntry],
    ):
        self.graph = graph
        self.timing = timing
        self.cs_length = cs_length
        self.unit_counts = dict(unit_counts)
        self.op_units = dict(op_units)
        self.entries = dict(entries)

    def entry(self, node: NodeId) -> ChainedScheduleEntry:
        return self.entries[node]

    def start_time(self, node: NodeId) -> int:
        e = self.entries[node]
        return e.cs * self.cs_length + e.offset

    def finish_time(self, node: NodeId) -> int:
        return self.start_time(node) + self.graph.time(node, self.timing)

    @property
    def first_cs(self) -> int:
        return min(e.cs for e in self.entries.values())

    @property
    def last_cs(self) -> int:
        """Last control step any operation's execution touches."""
        return max(
            (self.finish_time(v) - 1) // self.cs_length for v in self.entries
        )

    @property
    def length(self) -> int:
        """Schedule length in control steps."""
        return self.last_cs - self.first_cs + 1

    def chains(self) -> List[List[NodeId]]:
        """Maximal dependence chains executing within a single CS."""
        out: List[List[NodeId]] = []
        chained_into: Set[NodeId] = set()
        for v in topological_order(self.graph):
            if v in chained_into or v not in self.entries:
                continue
            chain = [v]
            cur = v
            extended = True
            while extended:
                extended = False
                for w in zero_delay_successors(self.graph, cur):
                    if (
                        w in self.entries
                        and self.entries[w].cs == self.entries[cur].cs
                        and self.start_time(w) == self.finish_time(cur)
                    ):
                        chain.append(w)
                        chained_into.add(w)
                        cur = w
                        extended = True
                        break
            if len(chain) > 1:
                out.append(chain)
        return out

    def violations(self, r: Optional[Retiming] = None) -> List[str]:
        """Precedence (under optional retiming ``r``), chaining-window and
        resource problems."""
        out: List[str] = []
        for e in self.graph.edges:
            dr = e.delay if r is None else r.dr(e)
            if dr == 0 and self.finish_time(e.src) > self.start_time(e.dst):
                out.append(f"{e.src}->{e.dst}: chained too early")
        for v in self.entries:
            entry = self.entries[v]
            if entry.offset + self.graph.time(v, self.timing) > self.cs_length:
                # spilling over the step boundary is only allowed from offset 0
                # (the multi-cycle case)
                if entry.offset != 0:
                    out.append(f"{v}: chain overflows the control step")
        busy: Dict[Tuple[str, int, int], List[NodeId]] = {}
        for v, entry in self.entries.items():
            t0 = self.start_time(v)
            for t in range(t0, t0 + self.graph.time(v, self.timing)):
                busy.setdefault((entry.unit, entry.instance, t), []).append(v)
        for key, nodes in busy.items():
            if len(nodes) > 1:
                out.append(f"unit {key[0]}[{key[1]}] double-booked at t={key[2]}")
        return out


def chained_full_schedule(
    graph: DFG,
    timing: Timing,
    cs_length: int,
    unit_counts: Mapping[str, int],
    op_units: Mapping[str, str],
    r: Optional[Retiming] = None,
    priority="descendants",
    fixed: Optional[Mapping[NodeId, ChainedScheduleEntry]] = None,
    floor_time: int = 0,
    prio_table: Optional[Dict[NodeId, Tuple]] = None,
    adj: Optional[Tuple[Dict[NodeId, List[NodeId]], Dict[NodeId, List[NodeId]]]] = None,
) -> ChainedSchedule:
    """List scheduling with chaining over the zero-delay DAG of ``Gr``.

    Args:
        graph: the DFG (times resolved through ``timing`` in time units).
        timing: op -> time units.
        cs_length: control-step length in the same time units.
        unit_counts: unit class -> instance count.
        op_units: op type -> unit class.
        r: optional retiming.
        priority: list priority (same registry as the integral scheduler).
        fixed: pre-placed entries that must not move (the partial form the
            rotation driver uses).
        floor_time: earliest time unit for newly placed operations.
        prio_table: precomputed priority table for ``Gr`` (the chained
            rotation driver injects its view cache's table; values must
            equal what ``priority`` would compute).
        adj: precomputed ``(zero-delay successors, predecessors)`` maps of
            ``Gr``, likewise injectable from a cache.
    """
    if cs_length <= 0:
        raise SchedulingError(f"nonpositive control step length {cs_length}")
    for op in {graph.op(v) for v in graph.nodes}:
        if op not in op_units:
            raise ResourceError(f"op {op!r} has no unit binding")
        if op_units[op] not in unit_counts:
            raise ResourceError(f"unit {op_units[op]!r} has no count")

    prio = prio_table if prio_table is not None else get_priority(priority)(graph, timing, r)
    if adj is None:
        zsucc, zpred = zero_delay_adjacency(graph, r)
    else:
        zsucc, zpred = adj
    node_index = {v: i for i, v in enumerate(graph.nodes)}

    # busy[(unit, instance)] = list of (start, finish) intervals, time units
    busy: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}

    def place(unit: str, t0: int, dur: int) -> Optional[int]:
        for k in range(unit_counts[unit]):
            intervals = busy.setdefault((unit, k), [])
            if all(f <= t0 or s >= t0 + dur for s, f in intervals):
                return k
        return None

    entries: Dict[NodeId, ChainedScheduleEntry] = {}
    finish: Dict[NodeId, int] = {}
    for v, entry in (fixed or {}).items():
        t0 = entry.cs * cs_length + entry.offset
        dur = graph.time(v, timing)
        busy.setdefault((entry.unit, entry.instance), []).append((t0, t0 + dur))
        entries[v] = entry
        finish[v] = t0 + dur
    todo = [v for v in graph.nodes if v not in entries]
    pending = {
        v: sum(1 for u in zpred[v] if u not in entries)
        for v in todo
    }
    ready = {v for v in todo if pending[v] == 0}
    unplaced = set(todo)
    guard = 0
    while unplaced:
        placed_any = False
        candidates = sorted(
            (v for v in ready if all(u in finish for u in zpred[v])),
            key=lambda v: (tuple(-x for x in prio[v]), node_index[v]),
        )
        for v in candidates:
            dur = graph.time(v, timing)
            t0 = max(
                [finish[u] for u in zpred[v]],
                default=floor_time,
            )
            t0 = max(t0, floor_time)
            placed = None
            for _ in range(4 * (len(graph.nodes) + 4) * cs_length):
                cs, off = divmod(t0, cs_length)
                if dur > cs_length and off != 0:
                    t0 = (cs + 1) * cs_length  # multi-cycle must align
                    continue
                if dur <= cs_length and off + dur > cs_length:
                    t0 = (cs + 1) * cs_length  # chain window exceeded
                    continue
                unit = op_units[graph.op(v)]
                k = place(unit, t0, dur)
                if k is None:
                    t0 += 1
                    continue
                busy[(unit, k)].append((t0, t0 + dur))
                placed = ChainedScheduleEntry(v, cs, off, unit, k)
                break
            if placed is None:  # pragma: no cover - the probe always lands
                raise SchedulingError(f"could not place {v!r}")
            entries[v] = placed
            finish[v] = t0 + dur
            unplaced.discard(v)
            ready.discard(v)
            placed_any = True
            for w in zsucc[v]:
                if w in unplaced:
                    pending[w] -= 1
                    if pending[w] == 0:
                        ready.add(w)
        guard += 1
        if not placed_any and guard > 4 * len(graph.nodes) + 16:
            raise SchedulingError("chained scheduler failed to converge")  # pragma: no cover

    return ChainedSchedule(graph, timing, cs_length, unit_counts, op_units, entries)


def paper_technology(cs_length_ns: int = 50) -> Tuple[Timing, int, Dict[str, int], Dict[str, str]]:
    """The paper's physical technology: 40 ns adds, 80 ns multiplies.

    Returns ``(timing, cs_length, unit_counts-template, op_units)`` with a
    1-adder/1-multiplier unit template the caller can adjust.
    """
    timing = Timing({"add": 40, "sub": 40, "cmp": 40, "mul": 80})
    unit_counts = {"adder": 1, "mult": 1}
    op_units = {"add": "adder", "sub": "adder", "cmp": "adder", "mul": "mult"}
    return timing, cs_length_ns, unit_counts, op_units
