"""Unit tests for the force-directed scheduling baseline."""

import pytest

from repro.schedule import ResourceModel
from repro.baselines import asap_schedule, force_directed_schedule, usage_profile
from repro.suite import diffeq, biquad
from repro.errors import SchedulingError


class TestForceDirected:
    def test_meets_deadline_and_precedence(self):
        model = ResourceModel.adders_mults(2, 2)
        res = force_directed_schedule(diffeq(), model, deadline=8)
        assert res.schedule.dag_violations() == []
        assert res.schedule.last_cs <= 7
        assert res.deadline == 8

    def test_balances_better_than_asap(self):
        """FDS's whole point: lower peak usage than ASAP at the same
        deadline (here on the multiplier-heavy diffeq graph)."""
        model = ResourceModel.adders_mults(2, 2)
        deadline = 9
        asap_peak = usage_profile(asap_schedule(diffeq(), model))
        fds = force_directed_schedule(diffeq(), model, deadline=deadline)
        assert fds.peak_usage["mult"] <= asap_peak["mult"]

    def test_default_deadline_is_cp(self):
        model = ResourceModel.adders_mults(2, 2)
        res = force_directed_schedule(diffeq(), model)
        assert res.deadline == 7
        assert res.length <= 8  # CP with 2-cycle tail

    def test_deadline_below_cp_rejected(self):
        model = ResourceModel.adders_mults(2, 2)
        with pytest.raises(SchedulingError):
            force_directed_schedule(diffeq(), model, deadline=3)

    def test_deterministic(self):
        model = ResourceModel.adders_mults(2, 2)
        a = force_directed_schedule(biquad(), model, deadline=9)
        b = force_directed_schedule(biquad(), model, deadline=9)
        assert a.schedule.start_map == b.schedule.start_map

    def test_looser_deadline_lowers_peak(self):
        model = ResourceModel.adders_mults(2, 2)
        tight = force_directed_schedule(diffeq(), model, deadline=7)
        loose = force_directed_schedule(diffeq(), model, deadline=13)
        assert loose.peak_usage["mult"] <= tight.peak_usage["mult"]
