#!/usr/bin/env python3
"""Interactive design iteration with MutableSchedulingSession.

A design loop rarely ends at the first schedule: the resource budget
shrinks, an operator is cut, a slow cell variant is swapped in.  Instead
of re-running the full rotation search after every tweak, open a session
once and let ``resolve()`` repair the previous schedule — bit-identical
to the from-scratch solve, typically dozens of times faster.

The walkthrough uses the paper's hardest integral experiment (the
fifth-order elliptic wave filter at 3 adders / 2 multipliers):

1. solve once from scratch,
2. tighten the adder budget from 3 to 2 (re-negotiated floorplan),
3. drop multiplier tap M7 (the coefficient became a power of two),
4. slow adder c5 down to 2 cycles (a long routing detour),

re-resolving after each edit and comparing against a full re-solve.

Run:  python examples/interactive_edit.py
"""

import time

from repro import ResourceModel, elliptic, open_session, rotation_schedule


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return (time.perf_counter() - t0) * 1e3, out


def main() -> None:
    graph = elliptic()
    model = ResourceModel.adders_mults(3, 2)
    session = open_session(graph, model)

    ms, result = timed(session.resolve)
    print(f"base solve:   length {result.length}, depth {result.depth}  [{ms:6.1f} ms]")

    # Edits can go through typed methods ...
    edits = [
        ("tighten adders 3 -> 2", lambda: session.set_resource_counts({"adder": 2})),
        ("drop multiplier M7", lambda: session.remove_node("M7")),
        # ... or through the JSON edit protocol (what `rotsched session`
        # and the fuzz oracle replay):
        ("slow adder c5 to 2 cycles",
         lambda: session.apply_edit({"edit": "set_exec_time", "node": "c5", "time": 2})),
    ]
    for label, apply in edits:
        apply()
        ms, result = timed(session.resolve)
        scratch_ms, scratch = timed(
            rotation_schedule, session.graph, session.model
        )
        agree = "==" if scratch.length == result.length else "!="
        print(
            f"{label:28s} length {result.length}, depth {result.depth}  "
            f"[{ms:6.1f} ms repair vs {scratch_ms:6.1f} ms scratch, "
            f"{scratch_ms / ms:4.1f}x]  {agree} scratch"
        )

    m = session.metrics
    print(
        f"\nsession metrics: {m['edits_applied']} edits, {m['repairs']} repairs, "
        f"{m['nodes_invalidated']} nodes invalidated / {m['nodes_kept']} kept, "
        f"{m['engine_patches']} engine patches, {m['engine_recompiles']} recompiles"
    )


if __name__ == "__main__":
    main()
