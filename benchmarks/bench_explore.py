"""Design-space exploration: feedback-guided explorer vs exhaustive sweep.

The headline grid is 60 cells of the paper's experiment space — elliptic
at J=1 plus biquad and diffeq at J=1 and J=2, each under the four
resource configs {1A1M, 2A1M, 2A2M, 3A2M} and clocks {40, 50, 100} ns.
The explorer must reproduce the exhaustive sweep's exact per-benchmark
Pareto frontiers while solving only a fraction of the grid: bound-pruned
cells are skipped outright, clock cells sharing a latency model collapse
in the solve-key memo, resource families chain through one warm
``MutableSchedulingSession``, and leftover singletons stack into
``solve_batch`` cohorts.

The cell commits the ``rotsched perfcheck`` explore envelope: the grid
itself, the exploration counters (pinned exactly — the round loop is
deterministic at ``workers=1``), the per-benchmark frontier point lists
(the equality oracle), and the ``MIN_EXPLORE_SPEEDUP`` wall-time floor.
Perfcheck replays exactly this measurement via
:func:`repro.obs.perfcheck.measure_explore_grid`.

Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_explore.py \
        --benchmark-only --benchmark-json=BENCH_explore.json
"""

import pytest

from repro.core.vector import have_numpy
from repro.explore import build_grid
from repro.obs.perfcheck import MIN_EXPLORE_SPEEDUP, measure_explore_grid

from conftest import record, run_once

CONFIGS = ("1A1M", "2A1M", "2A2M", "3A2M")
CLOCKS = (40, 50, 100)
REPEATS = 2


def headline_grid():
    """Elliptic J=1 + biquad/diffeq J=1,2 x 4 configs x 3 clocks = 60 cells."""
    return build_grid(["elliptic"], CONFIGS, clocks=CLOCKS) + build_grid(
        ["biquad", "diffeq"], CONFIGS, clocks=CLOCKS, unfolds=[1, 2]
    )


def _measure():
    return measure_explore_grid(headline_grid(), REPEATS)


@pytest.mark.skipif(not have_numpy(), reason="explore envelope pins the vector backend")
def test_explore_vs_exhaustive(benchmark):
    explore_s, exhaustive_s, erep, xrep = run_once(benchmark, _measure)
    # Oracle: the explorer reaches the exhaustive sweep's exact frontiers.
    assert sorted(erep.frontiers) == sorted(xrep.frontiers)
    for bench in erep.frontiers:
        assert erep.frontier_points(bench) == xrep.frontier_points(bench), bench
    # Accounting: every cell is either solved or pruned, never lost.
    c = erep.counters
    assert c["solved"] + c["pruned_bound"] + c["pruned_dominated"] == c["cells_total"]
    speedup = exhaustive_s / explore_s
    assert speedup >= MIN_EXPLORE_SPEEDUP, (
        f"explore speedup {speedup:.2f}x below the {MIN_EXPLORE_SPEEDUP:.1f}x floor"
    )
    record(
        benchmark,
        headline="explore_grid",
        grid="headline",
        cells=[spec.as_json() for spec in erep.cells],
        explore_seconds=round(explore_s, 4),
        exhaustive_seconds=round(exhaustive_s, 4),
        speedup=round(speedup, 2),
        counters=dict(erep.counters),
        frontiers={
            bench: [p.as_json() for p in erep.frontier_points(bench)]
            for bench in sorted(erep.frontiers)
        },
        min_explore_speedup=MIN_EXPLORE_SPEEDUP,
    )
