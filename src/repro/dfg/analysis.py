"""Structural analyses of (possibly retimed) data-flow graphs.

Everything here works *through* a retiming function: passing ``r`` analyses
the retimed graph ``Gr`` without materializing it, using
``dr(e) = d(e) + r(u) - r(v)`` on the fly — the paper's key implementation
point (Section 2: "no graphs or weights on graph edges are modified").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dfg.graph import DFG, Edge, NodeId, Timing
from repro.dfg.retiming import Retiming
from repro.errors import ZeroDelayCycleError

_ZERO = Retiming.zero()


def retimed_delay(edge: Edge, r: Optional[Retiming]) -> int:
    """``dr(e)`` under ``r`` (``d(e)`` itself when ``r`` is None)."""
    return edge.delay if r is None else r.dr(edge)


def zero_delay_edges(graph: DFG, r: Optional[Retiming] = None) -> List[Edge]:
    """Edges with ``dr(e) == 0`` — the intra-iteration precedences."""
    return [e for e in graph.edges if retimed_delay(e, r) == 0]


def zero_delay_successors(graph: DFG, node: NodeId, r: Optional[Retiming] = None) -> List[NodeId]:
    out, seen = [], set()
    for e in graph.out_edges(node):
        if retimed_delay(e, r) == 0 and e.dst not in seen:
            seen.add(e.dst)
            out.append(e.dst)
    return out


def zero_delay_predecessors(graph: DFG, node: NodeId, r: Optional[Retiming] = None) -> List[NodeId]:
    out, seen = [], set()
    for e in graph.in_edges(node):
        if retimed_delay(e, r) == 0 and e.src not in seen:
            seen.add(e.src)
            out.append(e.src)
    return out


def zero_delay_adjacency(
    graph: DFG,
    r: Optional[Retiming] = None,
    dr_map: Optional[Dict[int, int]] = None,
) -> Tuple[Dict[NodeId, List[NodeId]], Dict[NodeId, List[NodeId]]]:
    """Both zero-delay adjacency maps of ``Gr`` in one edge pass.

    Returns ``(succs, preds)`` where each maps every node to its distinct
    zero-delay neighbours in edge-insertion order — entrywise identical to
    calling :func:`zero_delay_successors` / :func:`zero_delay_predecessors`
    per node, but without rescanning incident edges for each call.

    ``dr_map`` (edge id -> retimed delay) short-circuits the ``dr``
    arithmetic when the caller already maintains the per-edge cache (the
    rotation engine does).
    """
    succs: Dict[NodeId, List[NodeId]] = {v: [] for v in graph.nodes}
    preds: Dict[NodeId, List[NodeId]] = {v: [] for v in graph.nodes}
    seen_s: Dict[NodeId, set] = {v: set() for v in graph.nodes}
    seen_p: Dict[NodeId, set] = {v: set() for v in graph.nodes}
    for e in graph.edges:
        d = dr_map[e.eid] if dr_map is not None else retimed_delay(e, r)
        if d == 0:
            if e.dst not in seen_s[e.src]:
                seen_s[e.src].add(e.dst)
                succs[e.src].append(e.dst)
            if e.src not in seen_p[e.dst]:
                seen_p[e.dst].add(e.src)
                preds[e.dst].append(e.src)
    return succs, preds


def topological_order(
    graph: DFG,
    r: Optional[Retiming] = None,
    adj: Optional[Dict[NodeId, List[NodeId]]] = None,
) -> List[NodeId]:
    """Topological order of the zero-delay DAG of ``Gr``.

    ``adj`` injects a precomputed zero-delay successor map (distinct
    neighbours, as built by :func:`zero_delay_adjacency`) so callers that
    maintain one incrementally skip the per-edge ``dr`` arithmetic.

    Raises:
        ZeroDelayCycleError: if the zero-delay subgraph has a cycle (the
            retiming/graph admits no static schedule).
    """
    if adj is not None:
        indeg: Dict[NodeId, int] = {v: 0 for v in graph.nodes}
        for ws in adj.values():
            for w in ws:
                indeg[w] += 1
        queue = deque(v for v in graph.nodes if indeg[v] == 0)
        order: List[NodeId] = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in adj[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    queue.append(w)
        if len(order) != graph.num_nodes:
            raise ZeroDelayCycleError(_find_zero_delay_cycle(graph, r))
        return order
    indeg = {v: 0 for v in graph.nodes}
    for e in graph.edges:
        if retimed_delay(e, r) == 0:
            indeg[e.dst] += 1
    queue = deque(v for v in graph.nodes if indeg[v] == 0)
    order = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for e in graph.out_edges(v):
            if retimed_delay(e, r) == 0:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    queue.append(e.dst)
    if len(order) != graph.num_nodes:
        raise ZeroDelayCycleError(_find_zero_delay_cycle(graph, r))
    return order


def _find_zero_delay_cycle(graph: DFG, r: Optional[Retiming]) -> List[NodeId]:
    """Locate one zero-delay cycle for error reporting (DFS, iterative)."""
    color: Dict[NodeId, int] = {}  # 0 unseen / 1 on stack / 2 done
    parent: Dict[NodeId, NodeId] = {}
    for root in graph.nodes:
        if color.get(root):
            continue
        stack: List[Tuple[NodeId, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            v, idx = stack[-1]
            succs = zero_delay_successors(graph, v, r)
            if idx < len(succs):
                stack[-1] = (v, idx + 1)
                w = succs[idx]
                state = color.get(w, 0)
                if state == 1:
                    cycle = [w]
                    x = v
                    while x != w:
                        cycle.append(x)
                        x = parent[x]
                    cycle.reverse()
                    return cycle
                if state == 0:
                    color[w] = 1
                    parent[w] = v
                    stack.append((w, 0))
            else:
                color[v] = 2
                stack.pop()
    return []


def is_zero_delay_acyclic(graph: DFG, r: Optional[Retiming] = None) -> bool:
    """Whether the zero-delay subgraph of ``Gr`` is a DAG."""
    try:
        topological_order(graph, r)
        return True
    except ZeroDelayCycleError:
        return False


def asap_times(
    graph: DFG,
    timing: Optional[Timing] = None,
    r: Optional[Retiming] = None,
) -> Dict[NodeId, int]:
    """Earliest (resource-unconstrained) start times over the zero-delay DAG.

    ``asap[v] = max over zero-delay in-edges (asap[u] + t(u))``, roots at 0.
    """
    start: Dict[NodeId, int] = {v: 0 for v in graph.nodes}
    for v in topological_order(graph, r):
        for e in graph.out_edges(v):
            if retimed_delay(e, r) == 0:
                start[e.dst] = max(start[e.dst], start[v] + graph.time(v, timing))
    return start


def alap_times(
    graph: DFG,
    deadline: int,
    timing: Optional[Timing] = None,
    r: Optional[Retiming] = None,
) -> Dict[NodeId, int]:
    """Latest start times meeting ``deadline`` (finish-by semantics)."""
    start: Dict[NodeId, int] = {
        v: deadline - graph.time(v, timing) for v in graph.nodes
    }
    for v in reversed(topological_order(graph, r)):
        for e in graph.out_edges(v):
            if retimed_delay(e, r) == 0:
                start[v] = min(start[v], start[e.dst] - graph.time(v, timing))
    return start


def critical_path_length(
    graph: DFG,
    timing: Optional[Timing] = None,
    r: Optional[Retiming] = None,
) -> int:
    """Length of the longest zero-delay path — the iteration period of ``Gr``.

    This equals the minimum static-schedule length in the absence of
    resource constraints (the paper's CP column in Table 1).
    """
    if graph.num_nodes == 0:
        return 0
    start = asap_times(graph, timing, r)
    return max(start[v] + graph.time(v, timing) for v in graph.nodes)


def critical_path_nodes(
    graph: DFG,
    timing: Optional[Timing] = None,
    r: Optional[Retiming] = None,
) -> List[NodeId]:
    """One longest zero-delay path, as a node sequence."""
    if graph.num_nodes == 0:
        return []
    start = asap_times(graph, timing, r)
    finish = {v: start[v] + graph.time(v, timing) for v in graph.nodes}
    cp = max(finish.values())
    # walk backwards from a sink that realizes cp
    tail = next(v for v in graph.nodes if finish[v] == cp)
    path = [tail]
    while start[tail] > 0:
        for e in graph.in_edges(tail):
            u = e.src
            if retimed_delay(e, r) == 0 and start[u] + graph.time(u, timing) == start[tail]:
                path.append(u)
                tail = u
                break
        else:  # pragma: no cover - defensive; asap guarantees a predecessor
            break
    path.reverse()
    return path


def descendant_reach(
    graph: DFG,
    r: Optional[Retiming] = None,
    adj: Optional[Dict[NodeId, List[NodeId]]] = None,
    order: Optional[List[NodeId]] = None,
) -> Dict[NodeId, Set[NodeId]]:
    """Zero-delay descendant *sets* of every node (reverse-topological
    accumulation).  ``adj``/``order`` inject a precomputed successor map and
    topological order; the rotation engine reuses the returned sets when
    recomputing only a dirty subset after a rotation."""
    if adj is None:
        adj = zero_delay_adjacency(graph, r)[0]
    if order is None:
        order = topological_order(graph, r, adj=adj)
    reach: Dict[NodeId, Set[NodeId]] = {v: set() for v in graph.nodes}
    for v in reversed(order):
        acc = reach[v]
        for w in adj[v]:
            acc.add(w)
            acc |= reach[w]
    return reach


def descendant_counts(
    graph: DFG,
    r: Optional[Retiming] = None,
    adj: Optional[Dict[NodeId, List[NodeId]]] = None,
    order: Optional[List[NodeId]] = None,
) -> Dict[NodeId, int]:
    """Number of distinct zero-delay descendants of each node.

    This is the paper's list-scheduling weight function ("the number of
    descendants as the weight of a node in the list").
    """
    reach = descendant_reach(graph, r, adj=adj, order=order)
    return {v: len(reach[v]) for v in graph.nodes}


def height_times(
    graph: DFG,
    timing: Optional[Timing] = None,
    r: Optional[Retiming] = None,
    adj: Optional[Dict[NodeId, List[NodeId]]] = None,
    order: Optional[List[NodeId]] = None,
) -> Dict[NodeId, int]:
    """Longest zero-delay path *from* each node, inclusive of its own time.

    A classic alternative list-scheduling priority ("height").
    """
    if adj is None:
        adj = zero_delay_adjacency(graph, r)[0]
    if order is None:
        order = topological_order(graph, r, adj=adj)
    h: Dict[NodeId, int] = {}
    for v in reversed(order):
        best = 0
        for w in adj[v]:
            best = max(best, h[w])
        h[v] = best + graph.time(v, timing)
    return h


def is_down_rotatable(graph: DFG, nodes: Sequence[NodeId], r: Optional[Retiming] = None) -> bool:
    """Property 1: ``X`` is down-rotatable iff every path from ``V - X`` into
    ``X`` carries at least one delay — equivalently, every edge entering
    ``X`` from outside has ``dr(e) >= 1`` under the current retiming."""
    inside = set(nodes)
    for v in inside:
        for e in graph.in_edges(v):
            if e.src not in inside and retimed_delay(e, r) < 1:
                return False
    return True


def is_up_rotatable(graph: DFG, nodes: Sequence[NodeId], r: Optional[Retiming] = None) -> bool:
    """Mirror of :func:`is_down_rotatable`: every edge leaving ``X`` must
    carry at least one delay for ``-X`` to be a legal retiming."""
    inside = set(nodes)
    for v in inside:
        for e in graph.out_edges(v):
            if e.dst not in inside and retimed_delay(e, r) < 1:
                return False
    return True


def roots(graph: DFG, r: Optional[Retiming] = None) -> List[NodeId]:
    """Nodes with no zero-delay in-edges (schedulable first)."""
    return [v for v in graph.nodes if not zero_delay_predecessors(graph, v, r)]


def leaves(graph: DFG, r: Optional[Retiming] = None) -> List[NodeId]:
    """Nodes with no zero-delay out-edges."""
    return [v for v in graph.nodes if not zero_delay_successors(graph, v, r)]


def simple_cycles(graph: DFG) -> List[List[NodeId]]:
    """All simple cycles of the full (delayed) graph, via networkx.

    Only intended for the small benchmark graphs; the iteration bound has a
    polynomial path that avoids enumeration.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for e in graph.edges:
        g.add_edge(e.src, e.dst)
    return [list(c) for c in nx.simple_cycles(g)]


def strongly_connected_components(graph: DFG) -> List[List[NodeId]]:
    """SCCs of the full graph (nontrivial SCCs are where cycles live)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for e in graph.edges:
        g.add_edge(e.src, e.dst)
    return [sorted(c, key=str) for c in nx.strongly_connected_components(g)]
