"""Unit tests for the pipelined executor and end-to-end verification."""

import pytest

from repro.dfg import Retiming
from repro.schedule import ResourceModel, Schedule, realizing_retiming
from repro.core import rotation_schedule
from repro.sim import PipelineExecutor, verify_pipeline
from repro.suite import diffeq
from repro.errors import SimulationError


@pytest.fixture
def optimal_diffeq():
    g = diffeq()
    model = ResourceModel.unit_time(1, 1)
    start = {0: 0, 10: 0, 3: 1, 8: 1, 2: 2, 5: 2, 4: 3, 7: 4, 6: 4, 1: 5, 9: 5}
    sched = Schedule(g, model, start)
    return sched, realizing_retiming(sched)


class TestPipelineExecutor:
    def test_matches_reference(self, optimal_diffeq):
        sched, r = optimal_diffeq
        report = verify_pipeline(sched, r, iterations=30)
        assert report.matches_reference
        assert report.max_abs_error == 0.0
        assert report.period == 6 and report.depth == 2

    def test_speedup_reported(self, optimal_diffeq):
        sched, r = optimal_diffeq
        report = verify_pipeline(sched, r, iterations=60)
        # period 6 vs sequential 8 -> asymptotic 1.33x
        assert report.speedup_vs_sequential > 1.2

    def test_execution_order_sorted_by_global_cs(self, optimal_diffeq):
        sched, r = optimal_diffeq
        ex = PipelineExecutor(sched, r)
        order = ex.execution_order(5)
        times = [ex.start_time(v, i) for v, i in order]
        assert times == sorted(times)

    def test_prologue_runs_rotated_nodes_first(self, optimal_diffeq):
        sched, r = optimal_diffeq
        ex = PipelineExecutor(sched, r)
        order = ex.execution_order(5)
        first_nodes = {v for v, i in order[:3]}
        assert first_nodes == {10, 8, 1}

    def test_bogus_retiming_caught(self, optimal_diffeq):
        sched, _ = optimal_diffeq
        with pytest.raises(SimulationError):
            PipelineExecutor(sched, Retiming.of_set([9])).run(10)

    def test_too_few_iterations(self, optimal_diffeq):
        sched, r = optimal_diffeq
        with pytest.raises(SimulationError, match="at least depth"):
            PipelineExecutor(sched, r).run(1)

    def test_negative_retiming_rejected(self, optimal_diffeq):
        sched, _ = optimal_diffeq
        with pytest.raises(SimulationError, match="normalized"):
            PipelineExecutor(sched, Retiming({10: -1}))

    def test_wrapped_schedule_execution(self):
        """Wrapped schedules execute correctly through from_wrapped."""
        res = rotation_schedule(diffeq(), ResourceModel.adders_mults(1, 1, pipelined_mults=True))
        ex = PipelineExecutor.from_wrapped(res.wrapped)
        report = ex.verify(25)
        assert report.matches_reference
        assert report.period == 6

    def test_report_str(self, optimal_diffeq):
        sched, r = optimal_diffeq
        report = verify_pipeline(sched, r, iterations=10)
        assert "OK" in str(report)
