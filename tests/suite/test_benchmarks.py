"""Benchmark graphs pinned to the paper's Table 1, cell by cell."""

import pytest

from repro.dfg import assert_valid, critical_path_length, iteration_bound_ceil
from repro.suite import BENCHMARKS, PAPER_TIMING, all_benchmarks, get_benchmark


class TestTable1:
    @pytest.mark.parametrize("key", list(BENCHMARKS))
    def test_characteristics(self, key):
        info = BENCHMARKS[key]
        g = info.build()
        hist = g.ops_histogram()
        mults = hist.get("mul", 0)
        adds = g.num_nodes - mults
        assert mults == info.mults, f"{key}: mult count"
        assert adds == info.adds, f"{key}: adder-class count"
        assert critical_path_length(g, PAPER_TIMING) == info.critical_path, f"{key}: CP"
        assert iteration_bound_ceil(g, PAPER_TIMING) == info.iteration_bound, f"{key}: IB"

    @pytest.mark.parametrize("key", list(BENCHMARKS))
    def test_structurally_valid(self, key):
        assert_valid(get_benchmark(key), PAPER_TIMING)

    def test_registry_lookups(self):
        assert get_benchmark("diffeq").name == "diffeq"
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("fft")
        assert len(all_benchmarks()) == 5

    @pytest.mark.parametrize("key", list(BENCHMARKS))
    def test_fresh_instances(self, key):
        a, b = get_benchmark(key), get_benchmark(key)
        assert a is not b
        a.add_node("__extra__", "add")
        assert "__extra__" not in get_benchmark(key)

    @pytest.mark.parametrize("key", list(BENCHMARKS))
    def test_simulatable(self, key):
        """Every benchmark node carries semantics and every delayed edge has
        initial values — required by the execution simulator."""
        g = get_benchmark(key)
        for v in g.nodes:
            assert g.func(v) is not None, f"{key}:{v} missing func"
        for e in g.edges:
            if e.delay:
                assert g.edge_init(e) is not None, f"{key}: {e} missing init"

    def test_diffeq_rotatable_sets_match_paper(self):
        from repro.dfg import is_down_rotatable

        g = get_benchmark("diffeq")
        assert is_down_rotatable(g, [10])
        assert is_down_rotatable(g, [10, 8, 1])
        assert not is_down_rotatable(g, [8, 1])
