"""Unit tests for the interconnect cost model."""

import pytest

from repro.binding import select_schedule
from repro.binding.interconnect import interconnect_cost, interconnect_report
from repro.core import rotation_schedule
from repro.schedule import ResourceModel
from repro.suite import biquad, diffeq


@pytest.fixture(scope="module")
def result():
    return rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))


class TestInterconnect:
    def test_report_structure(self, result):
        report = interconnect_report(result.wrapped)
        assert report.cost >= 0
        assert report.widest_mux >= 1
        assert report.port_sources  # units read from somewhere
        assert report.register_writers

    def test_port_sources_are_registers(self, result):
        report = interconnect_report(result.wrapped)
        for regs in report.port_sources.values():
            assert all(r >= 0 for r in regs)

    def test_single_unit_ports_are_muxed(self, result):
        """One multiplier executing 6 different ops necessarily muxes."""
        report = interconnect_report(result.wrapped)
        mult_ports = {
            k: v for k, v in report.port_sources.items() if k[0] == "mult"
        }
        assert any(len(srcs) > 1 for srcs in mult_ports.values())

    def test_cost_matches_report(self, result):
        assert interconnect_cost(result.wrapped) == interconnect_report(result.wrapped).cost

    def test_usable_as_selection_objective(self, result):
        sel = select_schedule(result, cost=interconnect_cost)
        assert sel.best_cost == min(sel.costs)
        assert sel.best.period == result.length

    def test_varies_across_q(self):
        """Interconnect, like registers, differs across tied-optimal
        schedules — the point of the selection stage."""
        res = rotation_schedule(biquad(), ResourceModel.adders_mults(2, 3))
        sel = select_schedule(res, cost=interconnect_cost)
        if len(sel.costs) > 3:
            assert sel.spread >= 0  # spread can be 0; the scan must not crash
