"""Baseline schedulers the benches compare rotation scheduling against."""

from repro.baselines.dag_list import DagListResult, dag_list_schedule
from repro.baselines.exact import ExactResult, exact_modulo_schedule
from repro.baselines.modulo import ModuloResult, min_initiation_interval, modulo_schedule
from repro.baselines.retime_then_schedule import (
    RetimeScheduleResult,
    feas_retiming,
    min_period_retiming,
    retime_then_schedule,
)
from repro.baselines.asap_alap import (
    MobilityReport,
    alap_schedule,
    asap_schedule,
    mobility_report,
    usage_profile,
)
from repro.baselines.force_directed import ForceDirectedResult, force_directed_schedule

__all__ = [
    "DagListResult",
    "ExactResult",
    "ForceDirectedResult",
    "MobilityReport",
    "ModuloResult",
    "RetimeScheduleResult",
    "alap_schedule",
    "asap_schedule",
    "dag_list_schedule",
    "exact_modulo_schedule",
    "feas_retiming",
    "force_directed_schedule",
    "min_initiation_interval",
    "min_period_retiming",
    "mobility_report",
    "modulo_schedule",
    "retime_then_schedule",
    "usage_profile",
]
