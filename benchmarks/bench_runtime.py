"""Regenerates the **Section 6 runtime claim**: "Every experiment is
finished within seconds ... elliptic filters in 2.5 seconds; the other
four benchmarks in less than 1 second" (DEC 5000, C).  We measure the
same workloads in Python — absolute numbers differ, the within-seconds
shape is asserted.
"""

import pytest

from repro.core import rotation_schedule
from repro.suite import BENCHMARKS, get_benchmark

from conftest import model_for, record, run_once


@pytest.mark.parametrize("bench", list(BENCHMARKS))
def test_full_heuristic_runtime(benchmark, bench):
    graph = get_benchmark(bench)
    model = model_for("2A2M")
    result = run_once(benchmark, rotation_schedule, graph, model)
    record(
        benchmark,
        bench=bench,
        length=result.length,
        rotations=result.rotations_performed,
        paper_runtime="2.5 s (elliptic) / <1 s (others), DEC 5000, C",
    )
    assert result.elapsed_seconds < 30


def test_first_optimum_found_quickly(benchmark):
    """Paper: 'The first optimal schedule is usually found within 1
    second' — here: within a small fraction of the full run."""
    import time

    from repro.core import BestTracker, RotationState, rotation_phase

    graph = get_benchmark("elliptic")
    model = model_for("3A2M")

    def run():
        t0 = time.perf_counter()
        state = RotationState.initial(graph, model)
        tracker = BestTracker()
        tracker.offer(state)
        size = state.length - 1
        while tracker.length > 16 and size > 0:
            state = rotation_phase(state, size, 8, tracker)
            size -= 1
        return time.perf_counter() - t0, tracker.length

    elapsed, best = run_once(benchmark, run)
    record(benchmark, seconds_to_first_optimum=elapsed, best=best)
    assert best == 16
    assert elapsed < 10
