"""Regenerates **Table 2**: the elliptic filter under 7 resource configs.

Paper columns: Resources, LB, PBS, MARS, Lee et al., RS (depth).  The
competitor numbers are quoted constants from the cited papers (their
systems are closed); LB is our combined bound; RS is re-run here.

This reproduction matches the paper's RS column on 6 of 7 rows; on 2A 1M
it finds 18 where the paper reports 19 (paper LB: 17 — the one row where
the authors' own result exceeded their bound).
"""

import pytest

from repro.bounds import combined_lower_bound
from repro.core import rotation_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

#: tag -> (paper LB, PBS, MARS, Lee, paper RS, paper depth, our expected RS)
TABLE2 = {
    "3A3M": (16, 16, None, 16, 16, 2, 16),
    "3A2M": (16, 17, None, 16, 16, 2, 16),
    "2A2M": (17, 17, None, 17, 17, 2, 17),
    "2A1M": (17, 20, None, 19, 19, 2, 18),
    "3A2Mp": (16, 16, None, 16, 16, 2, 16),
    "3A1Mp": (16, 16, 16, 16, 16, 2, 16),
    "2A1Mp": (17, 18, 17, 17, 17, 2, 17),
}


@pytest.mark.parametrize("tag", list(TABLE2))
def test_table2_row(benchmark, tag):
    paper_lb, pbs, mars, lee, paper_rs, paper_depth, expected = TABLE2[tag]
    graph = get_benchmark("elliptic")
    model = model_for(tag)

    result = run_once(benchmark, rotation_schedule, graph, model)
    lb = combined_lower_bound(graph, model)

    record(
        benchmark,
        resources=model.label(),
        paper_LB=paper_lb,
        our_LB=lb.combined,
        PBS=pbs,
        MARS=mars,
        Lee=lee,
        paper_RS=f"{paper_rs} ({paper_depth})",
        measured_RS=f"{result.length} ({result.depth})",
        optimal_schedules_found=result.optimal_count,
    )
    assert result.length == expected
    assert result.length >= lb.combined
    # RS never loses to the quoted competitor results on matching rows
    for competitor in (pbs, mars, lee):
        if competitor is not None:
            assert result.length <= competitor


def test_table2_depths_shallow(benchmark):
    """Paper: every Table 2 schedule has pipeline depth 2."""
    graph = get_benchmark("elliptic")

    def run():
        return [
            rotation_schedule(graph, model_for(tag)).depth
            for tag in ("3A3M", "2A2M", "2A1Mp")
        ]

    depths = run_once(benchmark, run)
    record(benchmark, depths=depths, paper_depth=2)
    assert all(d <= 3 for d in depths)
