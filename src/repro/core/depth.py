"""Pipeline-depth reduction (paper Section 3.2).

A long rotation sequence can accumulate a rotation function ``R`` whose
spread ``max R - min R`` — and hence the pipeline's prologue/epilogue — is
far larger than necessary.  The schedule itself often admits a much
shallower realizing retiming: Theorem 2 turns "find a retiming realizing
schedule ``s``" into difference constraints solved by single-source
shortest paths, and the shortest-path solution is pointwise minimal, i.e.
has the smallest possible ``max r`` among normalized realizing retimings.

The heavy lifting lives in :func:`repro.schedule.verify.realizing_retiming`;
this module provides the paper-facing names and the depth accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.dfg.retiming import Retiming
from repro.schedule.schedule import Schedule
from repro.schedule.verify import realizing_retiming


def reduce_depth(schedule: Schedule, period: Optional[int] = None) -> Retiming:
    """Minimal-depth normalized retiming realizing ``schedule``.

    Args:
        schedule: a legal static schedule (e.g. produced by rotations).
        period: initiation interval for wrapped schedules; None for plain
            (unwrapped) schedules.

    Raises:
        IllegalScheduleError: if no retiming realizes the schedule.
    """
    return realizing_retiming(schedule, period)


def pipeline_depth(schedule: Schedule, retiming: Retiming) -> int:
    """Depth ``1 + max r - min r`` of the pipeline ``retiming`` describes
    (paper Property 2), over the schedule's graph."""
    return retiming.depth(schedule.graph)


def minimal_depth(schedule: Schedule, period: Optional[int] = None) -> int:
    """Depth of the shallowest pipeline realizing ``schedule``."""
    return pipeline_depth(schedule, reduce_depth(schedule, period))
