"""The 4-stage lattice filter benchmark (paper Tables 1 and 3).

Reconstruction (see the elliptic module for the general caveat): a
four-stage two-multiplier lattice with per-stage output taps, input
conditioning and an output scaler, pinned to Table 1 — 15 multiplications,
11 additions, CP = 10, IB = 2 (add = 1 CS, mult = 2 CS).

Per stage ``i``:

* ``mA_i`` — reflection multiplier on the stage's own backward value,
  three iterations back (``b_i`` via a 3-delay edge); the stage recursion
  ``b_i -> mA_i -> f_i -> mB_i -> b_i`` is the critical cycle with ratio
  ``6/3 = 2``.
* ``f_i = f_{i-1} + mA_i`` — forward ladder (zero-delay chain).
* ``mB_i`` — backward multiplier on ``f_i``; ``b_i = mB_i + b_{i-1}``
  (zero-delay backward chain, closed by a 2-delay wrap so its ratio is
  ``4/2 = 2``).
* ``mC_i`` — output tap (delayed for stages 1-4), summed by ``o2..o4``;
  the last stage's backward value enters the output sum directly, making
  the critical path ``mA_1 -> f_1 -> mB_1 -> b_1 -> b_2 -> b_3 -> b_4 ->
  o4`` of length 10.

Input conditioning ``mI1 -> mI2`` closes the forward ladder through 5
delays (ratio 1.6) and ``mO`` scales the summed output.

Every cycle has ratio exactly 2 or less, so the graph pipelines deeply —
Table 3 reaches the iteration bound (period 2, depth 5-6) with 6 adders
and 8 pipelined / 15 non-pipelined multipliers, and every other
configuration is resource-bound, matching the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dfg.graph import DFG

#: reflection/tap coefficients for the execution simulator
DEFAULT_COEFFS: Dict[str, float] = {
    "mA1": 0.25, "mA2": -0.3, "mA3": 0.2, "mA4": -0.15,
    "mB1": 0.5, "mB2": 0.4, "mB3": -0.35, "mB4": 0.3,
    "mC1": 0.1, "mC2": 0.12, "mC3": -0.08, "mC4": 0.09,
    "mI1": 0.6, "mI2": 0.55, "mO": 0.5,
}


def lattice(coeffs: Optional[Dict[str, float]] = None) -> DFG:
    """Build the (reconstructed) 4-stage lattice filter DFG."""
    k = dict(DEFAULT_COEFFS)
    if coeffs:
        k.update(coeffs)

    g = DFG("lattice")

    def _sum(*xs: float) -> float:
        return sum(xs)

    def _scale(name: str):
        coef = k[name]
        return lambda x, _c=coef: _c * x

    for i in range(1, 5):
        g.add_node(f"mA{i}", "mul", func=_scale(f"mA{i}"))
        g.add_node(f"f{i}", "add", func=_sum)
        g.add_node(f"mB{i}", "mul", func=_scale(f"mB{i}"))
        g.add_node(f"b{i}", "add", func=_sum)
        g.add_node(f"mC{i}", "mul", func=_scale(f"mC{i}"))
    for name in ("mI1", "mI2", "mO"):
        g.add_node(name, "mul", func=_scale(name))
    for name in ("o2", "o3", "o4"):
        g.add_node(name, "add", func=_sum)

    for i in range(1, 5):
        # stage recursion (ratio-2 critical cycle)
        g.add_edge(f"b{i}", f"mA{i}", 3, init=[0.0, 0.0, 0.1 * i])
        g.add_edge(f"mA{i}", f"f{i}", 0)
        g.add_edge(f"f{i}", f"mB{i}", 0)
        g.add_edge(f"mB{i}", f"b{i}", 0)
        if i > 1:
            g.add_edge(f"f{i-1}", f"f{i}", 0)   # forward ladder
            g.add_edge(f"b{i-1}", f"b{i}", 0)   # backward ladder

    # ladder wraps
    g.add_edge("b4", "b1", 2, init=[0.05, 0.02])
    g.add_edge("f4", "mI1", 4, init=[0.2, 0.1, 0.05, 0.02])
    g.add_edge("mI1", "mI2", 0)
    g.add_edge("mI2", "f1", 1, init=[0.3])

    # output taps and sum (tap 1-4 delayed; b4 enters directly -> CP 10)
    for i in range(1, 5):
        g.add_edge(f"b{i}", f"mC{i}", 1, init=[0.01 * i])
    g.add_edge("mC1", "o2", 0)
    g.add_edge("mC2", "o2", 0)
    g.add_edge("o2", "o3", 0)
    g.add_edge("mC3", "o3", 0)
    g.add_edge("mC4", "o3", 0)
    g.add_edge("o3", "o4", 0)
    g.add_edge("b4", "o4", 0)

    # output scaler
    g.add_edge("o4", "mO", 1, init=[0.0])

    return g
