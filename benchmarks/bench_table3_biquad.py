"""Regenerates **Table 3 (2-cascaded biquad filter)**: 8 resource configs.

All eight rows match the paper exactly; every one is resource-bound and
rotation reaches the bound, from period 4 (2A 4M) to the fully serialized
16 (1A 1M).
"""

import pytest

from repro.bounds import combined_lower_bound
from repro.core import rotation_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

#: tag -> (paper LB, MARS, paper RS, paper depth)
ROWS = {
    "2A2Mp": (4, 4, 4, 2),
    "2A1Mp": (8, None, 8, 2),
    "1A2Mp": (8, None, 8, 2),
    "1A1Mp": (8, None, 8, 2),
    "2A4M": (4, None, 4, 2),
    "2A3M": (6, None, 6, 2),
    "1A2M": (8, None, 8, 2),
    "1A1M": (16, None, 16, 2),
}


@pytest.mark.parametrize("tag", list(ROWS))
def test_table3_biquad_row(benchmark, tag):
    paper_lb, mars, paper_rs, paper_depth = ROWS[tag]
    graph = get_benchmark("biquad")
    model = model_for(tag)
    result = run_once(benchmark, rotation_schedule, graph, model)
    lb = combined_lower_bound(graph, model)
    record(
        benchmark,
        resources=model.label(),
        paper_LB=paper_lb,
        our_LB=lb.combined,
        MARS=mars,
        paper_RS=f"{paper_rs} ({paper_depth})",
        measured_RS=f"{result.length} ({result.depth})",
    )
    assert result.length == paper_rs
    assert lb.combined == paper_lb
    assert result.length >= lb.combined
