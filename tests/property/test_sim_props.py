"""Property-based end-to-end tests: pipelining preserves loop semantics."""

from hypothesis import given, settings, strategies as st

from repro.schedule import ResourceModel
from repro.core import rotation_schedule
from repro.sim import verify_pipeline
from repro.suite import random_dsp_kernel

kernel_params = st.tuples(
    st.integers(3, 7),      # taps
    st.integers(0, 500),    # seed
    st.booleans(),          # recursive
)
models = st.sampled_from(
    [
        ResourceModel.adders_mults(1, 1),
        ResourceModel.adders_mults(2, 2),
        ResourceModel.adders_mults(1, 2, pipelined_mults=True),
    ]
)


class TestPipelineSemantics:
    @given(kernel_params, models)
    @settings(max_examples=15, deadline=None)
    def test_rotation_schedule_executes_exactly(self, params, model):
        taps, seed, recursive = params
        g = random_dsp_kernel(taps, seed=seed, recursive=recursive)
        res = rotation_schedule(g, model, beta=12)
        report = verify_pipeline(
            res.schedule, res.retiming, iterations=res.depth + 15, period=res.length
        )
        assert report.matches_reference
        assert report.max_abs_error == 0.0

    @given(kernel_params)
    @settings(max_examples=10, deadline=None)
    def test_modulo_kernel_executes_exactly(self, params):
        """The IMS baseline's folded kernel also preserves semantics."""
        from repro.baselines import modulo_schedule

        taps, seed, recursive = params
        g = random_dsp_kernel(taps, seed=seed, recursive=recursive)
        model = ResourceModel.adders_mults(2, 2)
        res = modulo_schedule(g, model)
        sched, r, ii = res.kernel_schedule()
        report = verify_pipeline(sched, r, iterations=r.depth(g) + 15, period=ii)
        assert report.matches_reference
