"""Regenerates **Figure 4**: the entire loop schedule after rotations —
prologue, repeated static schedule, epilogue — for the diffeq pipeline.
"""

from repro.schedule import ResourceModel, unroll
from repro.core import RotationState
from repro.report import pipeline_gantt
from repro.suite import get_benchmark

from conftest import record, run_once


def test_fig4_unrolled_pipeline(benchmark):
    graph = get_benchmark("diffeq")
    model = ResourceModel.unit_time(1, 1)

    def build():
        st = RotationState.initial(graph, model).down_rotate(1).down_rotate(1)
        r = st.retiming.normalized(graph)
        return st, unroll(st.schedule.normalized(), r, iterations=6)

    st, unrolled = run_once(benchmark, build)
    record(
        benchmark,
        period=unrolled.period,
        depth=unrolled.depth,
        prologue={(str(e.node), e.iteration) for e in unrolled.phase_entries("prologue")},
        chart_head="\n".join(pipeline_gantt(unrolled, max_cs=8).splitlines()[:10]),
    )
    # Figure 4-(c): prologue holds iteration-0 copies of the rotated nodes
    assert {(e.node, e.iteration) for e in unrolled.phase_entries("prologue")} == {
        (10, 0), (8, 0), (1, 0),
    }
    assert unrolled.period == 6 and unrolled.depth == 2
    assert unrolled.dependence_violations() == []
    assert unrolled.resource_violations() == []
