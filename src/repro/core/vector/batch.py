"""Batched solving: many FlatGraphs stacked into one struct-of-arrays.

:class:`BatchedFlatGraph` concatenates the CSR columns of a cohort of
compiled ``(FlatGraph, FlatModel)`` pairs into shared offset tables with a
per-graph segment index, so the structural work of every member's initial
schedule — zero-delay extraction, topological layering, priority columns —
runs as *one* numpy pass over the disjoint union (no cross-graph edges
exist, so per-segment results equal the per-graph results exactly).

:func:`solve_batch` is the entry point: it dedupes identical graphs (grid
sweeps and fuzz cohorts regenerate the same seeded graph for several
cells), compiles the unique ones, runs the stacked initial pass, and
solves each unique graph once with a :class:`VectorEngine` seeded from its
segment — every duplicate request shares the solved
:class:`~repro.core.scheduler.RotationResult`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dfg.graph import DFG
from repro.schedule.resources import ResourceModel
from repro.core.flat.graph import FlatGraph, FlatModel, structural_signature
from repro.core.vector._compat import require_numpy
from repro.core.vector.engine import VectorEngine, _StructView
from repro.core.vector.kernels import (
    _edge_groups,
    _levels,
    vec_heights,
    vec_reach,
    vec_topo_layers,
    vec_zero_delay_lists,
)


def graph_signature(graph: DFG) -> tuple:
    """Hashable structural identity of a graph for batch deduplication.

    Delegates to :func:`repro.core.flat.graph.structural_signature` — the
    one definition of "everything scheduling reads from a graph", shared
    with the serve-layer request fingerprint so the two dedup keys cannot
    drift apart.  Includes node ids (not just shape), so two graphs with
    equal signatures accept each other's schedules and retimings verbatim —
    the property that lets duplicates share one RotationResult.  The model,
    heuristic, priority and rotation sizes are *not* part of this key: one
    ``solve_batch`` call holds them constant for the whole cohort (callers
    batching across models must group first — the serve layer's cohort
    keys do exactly that).
    """
    return structural_signature(graph)


class BatchedFlatGraph:
    """Struct-of-arrays stack of compiled ``(FlatGraph, FlatModel)`` pairs."""

    def __init__(self, compiled: Sequence[Tuple[FlatGraph, FlatModel]]):
        np = require_numpy()
        self.members = list(compiled)
        node_base = [0]
        edge_base = [0]
        for fg, _fm in self.members:
            node_base.append(node_base[-1] + fg.n)
            edge_base.append(edge_base[-1] + fg.m)
        self.node_base = node_base
        self.edge_base = edge_base
        self.n_total = node_base[-1]
        self.m_total = edge_base[-1]
        if self.members:
            self.esrc = np.concatenate([
                np.array(fg.esrc, dtype=np.int64) + base
                for (fg, _), base in zip(self.members, node_base)
            ])
            self.edst = np.concatenate([
                np.array(fg.edst, dtype=np.int64) + base
                for (fg, _), base in zip(self.members, node_base)
            ])
            self.edelay = np.concatenate([
                np.array(fg.edelay, dtype=np.int64) for fg, _ in self.members
            ])
            self.node_time = np.concatenate([
                np.array(fm.node_time, dtype=np.int64) for _, fm in self.members
            ])
            self.seg_of_node = np.repeat(
                np.arange(len(self.members), dtype=np.int64),
                np.diff(np.array(node_base, dtype=np.int64)),
            )
        else:  # pragma: no cover - empty cohorts short-circuit in solve_batch
            empty = np.zeros(0, dtype=np.int64)
            self.esrc = self.edst = self.edelay = self.node_time = empty
            self.seg_of_node = empty

    def initial_pass(self, priority: str) -> Optional[List[Tuple[tuple, _StructView]]]:
        """Zero-retiming struct views for every member from one stacked pass.

        Returns ``[(dr0_key, view), ...]`` in member order — each seedable
        straight into a :class:`VectorEngine` — or ``None`` when any member
        has a zero-delay cycle at zero retiming (the caller then lets the
        per-graph solve raise its usual, precisely-attributed error).
        """
        np = require_numpy()
        n = self.n_total
        mask = self.edelay == 0
        zs = self.esrc[mask]
        zd = self.edst[mask]
        if zs.size > 1:
            pair = zs * n + zd
            _, first = np.unique(pair, return_index=True)
            if first.size != zs.size:
                keep = np.sort(first)
                zs = zs[keep]
                zd = zd[keep]
        rlayers = vec_topo_layers(n, zd, zs)
        if rlayers is None:
            return None

        # Stacked value columns.  Reach and heights are per-segment correct
        # as-is (masks and paths never cross segments); mobility needs the
        # deadline taken per segment instead of globally.
        counts = heights = mob = None
        if priority in ("descendants", "combined"):
            counts = [m.bit_count() for m in vec_reach(n, zs, zd, rlayers)]
        if priority in ("height", "combined"):
            heights = vec_heights(self.node_time, n, zs, zd, rlayers)
        if priority == "mobility":
            mob = self._segmented_mobility(np, n, zs, zd, rlayers)

        # Split the deduped zero-edge arrays back into per-member locals:
        # a stable sort by segment keeps each member's edge order intact.
        nmembers = len(self.members)
        eseg = self.seg_of_node[zs]
        order = np.argsort(eseg, kind="stable")
        zs_sorted = zs[order]
        zd_sorted = zd[order]
        ecnt = np.bincount(eseg, minlength=nmembers)
        eptr = np.zeros(nmembers + 1, dtype=np.int64)
        np.cumsum(ecnt, out=eptr[1:])

        out: List[Tuple[tuple, _StructView]] = []
        for i, (fg, _fm) in enumerate(self.members):
            base = self.node_base[i]
            nl = fg.n
            lzs = zs_sorted[eptr[i]:eptr[i + 1]] - base
            lzd = zd_sorted[eptr[i]:eptr[i + 1]] - base
            zsucc, zpred = vec_zero_delay_lists(nl, lzs, lzd)
            if priority == "descendants":
                col = counts[base:base + nl]
                skey = [(-c, v) for v, c in enumerate(col)]
            elif priority == "height":
                col = heights[base:base + nl]
                skey = [(-h, v) for v, h in enumerate(col)]
            elif priority == "combined":
                hcol = heights[base:base + nl]
                ccol = counts[base:base + nl]
                skey = [(-hcol[v], -ccol[v], v) for v in range(nl)]
            else:  # mobility
                col = mob[base:base + nl]
                skey = [(-m, v) for v, m in enumerate(col)]
            dr_key = tuple(fg.edelay)
            dr_arr = np.array(fg.edelay, dtype=np.int64)
            out.append((dr_key, _StructView(dr_arr, zsucc, zpred, skey)))
        return out

    def _segmented_mobility(self, np, n, zs, zd, rlayers) -> List[int]:
        """Per-node ``asap - alap`` with the deadline taken per segment."""
        times = self.node_time
        flayers = vec_topo_layers(n, zs, zd)
        assert flayers is not None  # reverse peel already proved acyclicity
        asap = np.zeros(n, dtype=np.int64)
        flevel = _levels(np, n, flayers)
        fperm, fptr = _edge_groups(np, flayers, flevel, zd)
        for l in range(1, len(flayers)):
            sel = fperm[fptr[l]:fptr[l + 1]]
            if sel.size:
                np.maximum.at(asap, zd[sel], asap[zs[sel]] + times[zs[sel]])
        finish = asap + times
        bases = np.array(self.node_base[:-1], dtype=np.int64)
        deadline_per_seg = np.maximum.reduceat(finish, bases)
        alap = deadline_per_seg[self.seg_of_node] - times
        rlevel = _levels(np, n, rlayers)
        rperm, rptr = _edge_groups(np, rlayers, rlevel, zs)
        for l in range(1, len(rlayers)):
            sel = rperm[rptr[l]:rptr[l + 1]]
            if sel.size:
                np.minimum.at(alap, zs[sel], alap[zd[sel]] - times[zs[sel]])
        return (asap - alap).tolist()


def solve_batch(
    graphs: Sequence[DFG],
    model: ResourceModel,
    heuristic: str = "h2",
    priority: str = "descendants",
    beta: Optional[int] = None,
    sigma: Optional[int] = None,
    stats: Optional[dict] = None,
):
    """Rotation-schedule a cohort of graphs under one resource model.

    Structurally identical graphs (see :func:`graph_signature`) are solved
    once and share their :class:`~repro.core.scheduler.RotationResult`;
    unique graphs are compiled together, seeded from one
    :meth:`BatchedFlatGraph.initial_pass`, and solved with the vector
    backend.  Returns results in request order; ``stats`` (if given) is
    filled with the dedup accounting.
    """
    from repro.core.scheduler import RotationScheduler

    require_numpy()
    keys = [graph_signature(g) for g in graphs]
    unique: Dict[tuple, DFG] = {}
    for key, g in zip(keys, graphs):
        if key not in unique:
            unique[key] = g
    reps = list(unique.items())
    compiled = []
    for _key, g in reps:
        fg = FlatGraph(g)
        compiled.append((fg, FlatModel(fg, model)))
    batched = BatchedFlatGraph(compiled)
    seeds = batched.initial_pass(priority) if reps else []
    scheduler = RotationScheduler(
        model, heuristic=heuristic, beta=beta, sigma=sigma,
        priority=priority, backend="vector",
    )
    solved: Dict[tuple, object] = {}
    for i, (key, g) in enumerate(reps):
        engine = VectorEngine(g, model, priority, precompiled=compiled[i])
        if seeds is not None:
            engine.seed_struct_view(*seeds[i])
        solved[key] = scheduler.schedule(g, engine=engine)
    if stats is not None:
        stats["requests"] = len(graphs)
        stats["unique"] = len(reps)
        stats["deduped"] = len(graphs) - len(reps)
        stats["stacked_nodes"] = batched.n_total
        stats["stacked_edges"] = batched.m_total
        stats["seeded_views"] = len(seeds or [])
    return [solved[key] for key in keys]
