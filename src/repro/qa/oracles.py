"""The schedule-certification oracle stack.

Every scheduler path in this library is supposed to guarantee a small set
of invariants the paper states (and the repo elsewhere only spot-checks):

* **roundtrip** — the graph survives JSON serialization losslessly
  (ids keep their types, edge inits and node attrs survive), so a repro
  bundle reproduces exactly what the fuzzer saw;
* **retiming** — the reported retiming is legal for the graph
  (``dr(e) >= 0``, Theorem 2 / Lemma 1 direction);
* **lower_bound** — no schedule beats ``combined_lower_bound`` (iteration
  bound + resource bounds);
* **modulo** — the wrapped schedule is a legal modulo schedule at its
  period (reservation table + inter-iteration precedence, Section 4);
* **semantics** — the pipelined execution reproduces the sequential
  reference value streams bit-for-bit (:mod:`repro.sim`);
* **parity** — the incremental engine and the recompute-everything path
  produce identical schedules.

Each oracle returns a list of :class:`OracleFailure` (empty = clean), so
the fuzz runner can aggregate them per cell and the unit tests can aim
deliberately broken inputs at each one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.bounds.lower_bounds import combined_lower_bound
from repro.core.scheduler import RotationResult
from repro.dfg import io as dfg_io
from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.errors import SimulationError
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.schedule.verify import (
    modulo_precedence_violations,
    modulo_resource_conflicts,
)
from repro.sim.executor import PipelineExecutor


@dataclass(frozen=True)
class OracleFailure:
    """One violated invariant: which oracle fired and why."""

    oracle: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.oracle}] {self.message}"


def check_roundtrip(graph: DFG) -> List[OracleFailure]:
    """JSON round-trip losslessness (ids, ops, times, labels, attrs, inits)."""
    problems: List[str] = []
    try:
        back = dfg_io.loads(dfg_io.dumps(graph))
    except Exception as exc:
        return [OracleFailure("roundtrip", f"serialization raised {exc!r}")]
    if back.name != graph.name:
        problems.append(f"name {graph.name!r} -> {back.name!r}")
    if back.nodes != graph.nodes:
        problems.append(f"node ids changed: {graph.nodes!r} -> {back.nodes!r}")
    else:
        for v in graph.nodes:
            for what, a, b in (
                ("op", graph.op(v), back.op(v)),
                ("time", graph.explicit_time(v), back.explicit_time(v)),
                ("label", graph.label(v), back.label(v)),
                ("attrs", graph.attrs(v), back.attrs(v)),
            ):
                if a != b:
                    problems.append(f"node {v!r} {what}: {a!r} -> {b!r}")
    orig_edges = [(e.src, e.dst, e.delay, graph.edge_init(e)) for e in graph.edges]
    back_edges = [(e.src, e.dst, e.delay, back.edge_init(e)) for e in back.edges]
    back_edges = [
        (s, d, dl, tuple(i) if i is not None else None) for s, d, dl, i in back_edges
    ]
    if orig_edges != back_edges:
        problems.append(f"edges changed: {orig_edges!r} -> {back_edges!r}")
    return [OracleFailure("roundtrip", p) for p in problems]


def check_retiming(graph: DFG, retiming: Retiming) -> List[OracleFailure]:
    """Legality of the reported retiming (every rotation is a legal retiming)."""
    bad = retiming.illegal_edges(graph)
    return [
        OracleFailure("retiming", f"{e} retimed to dr={retiming.dr(e)} < 0")
        for e in bad
    ]


def check_lower_bound(
    graph: DFG, model: ResourceModel, length: int
) -> List[OracleFailure]:
    """``combined_lower_bound <= length`` — a shorter schedule is a bug
    somewhere (in the scheduler or in the bound)."""
    lb = combined_lower_bound(graph, model)
    if length < lb.combined:
        return [
            OracleFailure(
                "lower_bound",
                f"length {length} beats combined lower bound {lb.combined} "
                f"(binding: {lb.binding})",
            )
        ]
    return []


def check_modulo(
    graph: DFG,
    model: ResourceModel,
    start: Mapping[NodeId, int],
    period: int,
    retiming: Optional[Retiming] = None,
) -> List[OracleFailure]:
    """Wrapped/modulo-schedule legality at the claimed period."""
    out = [
        OracleFailure("modulo", f"resource: {p}")
        for p in modulo_resource_conflicts(graph, model, start, period)
    ]
    out += [
        OracleFailure("modulo", f"precedence: {p}")
        for p in modulo_precedence_violations(graph, model, start, period, retiming)
    ]
    return out


def check_semantics(
    schedule: Schedule,
    retiming: Retiming,
    period: int,
    iterations: Optional[int] = None,
) -> List[OracleFailure]:
    """Pipelined execution == sequential reference, value for value.

    Requires node funcs (the fuzz runner attaches deterministic affine
    semantics before scheduling).
    """
    try:
        executor = PipelineExecutor(schedule, retiming, period)
        n = iterations if iterations is not None else executor.depth + 8
        report = executor.verify(max(n, executor.depth))
    except SimulationError as exc:
        return [OracleFailure("semantics", f"execution raised: {exc}")]
    if not report.matches_reference:
        return [
            OracleFailure(
                "semantics",
                f"pipelined streams diverge from reference "
                f"(max |err| {report.max_abs_error:.3g}) over {report.iterations} iterations",
            )
        ]
    return []


def check_parity(
    engine: RotationResult, naive: RotationResult, label: str = ""
) -> List[OracleFailure]:
    """Bit-parity of two scheduling outcomes (engine backend vs reference).

    ``label`` names the pair under test (e.g. ``"flat vs naive"``) so a
    three-way backend comparison reports which backend diverged.
    """
    problems: List[str] = []
    if engine.length != naive.length:
        problems.append(f"length {engine.length} != {naive.length}")
    if engine.depth != naive.depth:
        problems.append(f"depth {engine.depth} != {naive.depth}")
    if engine.schedule.start_map != naive.schedule.start_map:
        diff = {
            v: (engine.schedule.start_map.get(v), naive.schedule.start_map.get(v))
            for v in set(engine.schedule.start_map) | set(naive.schedule.start_map)
            if engine.schedule.start_map.get(v) != naive.schedule.start_map.get(v)
        }
        problems.append(f"start times differ: {diff!r}")
    if engine.retiming != naive.retiming:
        problems.append(
            f"retimings differ: {engine.retiming!r} != {naive.retiming!r}"
        )
    prefix = f"{label}: " if label else ""
    return [OracleFailure("parity", prefix + p) for p in problems]


def certify_rotation(
    graph: DFG, model: ResourceModel, result: RotationResult
) -> List[OracleFailure]:
    """The full per-result oracle stack for a rotation-scheduling outcome."""
    failures = check_retiming(graph, result.retiming)
    failures += check_lower_bound(graph, model, result.length)
    start = result.schedule.normalized().start_map
    failures += check_modulo(graph, model, start, result.length, result.retiming)
    # A retiming that is already illegal would make the executor explode in
    # uninteresting ways; only check semantics on top of a legal retiming.
    if not failures or all(f.oracle == "lower_bound" for f in failures):
        failures += check_semantics(result.schedule, result.retiming, result.length)
    return failures


def certify_wrapped(
    graph: DFG,
    model: ResourceModel,
    schedule: Schedule,
    retiming: Retiming,
    period: int,
) -> List[OracleFailure]:
    """Oracle stack for any (schedule, retiming, period) triple — used for
    the retime-then-schedule and modulo-kernel baseline paths."""
    failures = check_retiming(graph, retiming)
    failures += check_lower_bound(graph, model, period)
    failures += check_modulo(
        graph, model, schedule.normalized().start_map, period, retiming
    )
    if not failures or all(f.oracle == "lower_bound" for f in failures):
        failures += check_semantics(schedule, retiming, period)
    return failures
