"""Unit tests for the SVG renderers."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.dfg import Retiming
from repro.schedule import ResourceModel, unroll
from repro.core import rotation_schedule
from repro.report.svg import pipeline_svg, save_svg, schedule_svg
from repro.suite import diffeq


@pytest.fixture(scope="module")
def result():
    return rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))


class TestScheduleSvg:
    def test_well_formed_xml(self, result):
        svg = schedule_svg(result.schedule, result.retiming, period=result.length)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_rect_per_op(self, result):
        svg = schedule_svg(result.schedule, result.retiming)
        assert svg.count('class="op"') == result.graph.num_nodes

    def test_stage_coloring_differs(self, result):
        svg = schedule_svg(result.schedule, result.retiming)
        fills = set(re.findall(r'fill="(#\w+)"', svg))
        assert len(fills) >= 2  # two pipeline stages, two colors

    def test_period_marker(self, result):
        # force a longer span so the period line shows
        shifted = result.schedule.with_updates({9: result.schedule.start(9)})
        svg = schedule_svg(shifted, result.retiming, period=result.length - 1)
        assert "II =" in svg

    def test_title_escaped(self, result):
        svg = schedule_svg(result.schedule, title="a<b & c")
        assert "a&lt;b &amp; c" in svg

    def test_save(self, result, tmp_path):
        path = str(tmp_path / "sched.svg")
        save_svg(schedule_svg(result.schedule), path)
        assert open(path).read().startswith("<svg")


class TestPipelineSvg:
    def test_well_formed_and_phases_colored(self, result):
        u = unroll(result.schedule.normalized(), result.retiming, 5)
        svg = pipeline_svg(u, title="diffeq pipeline")
        ET.fromstring(svg)
        assert "#e15759" in svg  # prologue color present
        assert svg.count('class="op"') == 5 * result.graph.num_nodes

    def test_iteration_rows_labelled(self, result):
        u = unroll(result.schedule.normalized(), result.retiming, 4)
        svg = pipeline_svg(u)
        for i in range(4):
            assert f"iter {i}" in svg
