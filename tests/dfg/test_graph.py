"""Unit tests for the DFG data structure."""

import pytest

from repro.dfg import DFG, Timing
from repro.errors import GraphError


class TestConstruction:
    def test_add_nodes_and_edges(self):
        g = DFG("g")
        g.add_node("a", "add")
        g.add_node("b", "mul")
        e = g.add_edge("a", "b", 2)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert e.delay == 2
        assert e.src == "a" and e.dst == "b"

    def test_duplicate_node_rejected(self):
        g = DFG()
        g.add_node("a")
        with pytest.raises(GraphError, match="duplicate"):
            g.add_node("a")

    def test_edge_to_unknown_node_rejected(self):
        g = DFG()
        g.add_node("a")
        with pytest.raises(GraphError, match="unknown node"):
            g.add_edge("a", "ghost")

    def test_negative_delay_rejected(self):
        g = DFG()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(GraphError, match="negative delay"):
            g.add_edge("a", "b", -1)

    def test_nonpositive_time_rejected(self):
        g = DFG()
        with pytest.raises(GraphError, match="nonpositive time"):
            g.add_node("a", time=0)

    def test_parallel_edges_allowed(self):
        g = DFG()
        g.add_node("a")
        g.add_node("b")
        e1 = g.add_edge("a", "b", 0)
        e2 = g.add_edge("a", "b", 1)
        assert e1.eid != e2.eid
        assert g.num_edges == 2
        assert [e.delay for e in g.out_edges("a")] == [0, 1]

    def test_self_loop_allowed(self):
        g = DFG()
        g.add_node("a")
        g.add_edge("a", "a", 1)
        assert g.successors("a") == ["a"]
        assert g.predecessors("a") == ["a"]

    def test_edge_init_length_checked(self):
        g = DFG()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(GraphError, match="initial values"):
            g.add_edge("a", "b", 2, init=[1.0])


class TestQueries:
    def test_insertion_order_preserved(self):
        g = DFG()
        for n in ["z", "a", "m"]:
            g.add_node(n)
        assert g.nodes == ["z", "a", "m"]

    def test_successors_deduplicated(self):
        g = DFG()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", 0)
        g.add_edge("a", "b", 1)
        assert g.successors("a") == ["b"]

    def test_time_resolution_order(self):
        g = DFG()
        g.add_node("explicit", "mul", time=5)
        g.add_node("from_timing", "mul")
        g.add_node("fallback", "weird")
        timing = Timing({"mul": 2})
        assert g.time("explicit", timing) == 5
        assert g.time("from_timing", timing) == 2
        assert g.time("fallback") == 1  # no timing at all defaults to 1

    def test_ops_histogram(self, two_cycle):
        assert two_cycle.ops_histogram() == {"add": 2, "mul": 1}

    def test_total_delay(self, two_cycle):
        assert two_cycle.total_delay() == 3

    def test_unknown_node_queries_raise(self):
        g = DFG()
        with pytest.raises(GraphError):
            g.out_edges("nope")
        with pytest.raises(GraphError):
            g.op("nope")

    def test_contains_and_len(self, tiny_loop):
        assert "a" in tiny_loop
        assert "zz" not in tiny_loop
        assert len(tiny_loop) == 2
        assert list(tiny_loop) == ["a", "m"]


class TestMutation:
    def test_remove_edge(self, tiny_loop):
        e = tiny_loop.out_edges("a")[0]
        tiny_loop.remove_edge(e)
        assert tiny_loop.num_edges == 1
        assert tiny_loop.out_edges("a") == []
        with pytest.raises(GraphError):
            tiny_loop.remove_edge(e)

    def test_remove_node_drops_incident_edges(self, two_cycle):
        two_cycle.remove_node("a2")
        assert two_cycle.num_nodes == 2
        assert all(
            "a2" not in (e.src, e.dst) for e in two_cycle.edges
        )

    def test_copy_is_independent(self, tiny_loop):
        clone = tiny_loop.copy()
        clone.add_node("extra")
        assert "extra" not in tiny_loop
        assert clone.num_edges == tiny_loop.num_edges
        # edge init values copied
        delayed = [e for e in clone.edges if e.delay][0]
        assert clone.edge_init(delayed) == (1.0,)

    def test_reversed_flips_edges(self, tiny_loop):
        rev = tiny_loop.reversed()
        assert rev.has_edge("m", "a")
        assert rev.has_edge("a", "m")
        delays = sorted(e.delay for e in rev.edges)
        assert delays == [0, 1]


class TestNetworkxInterop:
    def test_round_trip(self, two_cycle):
        nx_graph = two_cycle.to_networkx()
        back = DFG.from_networkx(nx_graph)
        assert back.nodes == two_cycle.nodes
        assert sorted((e.src, e.dst, e.delay) for e in back.edges) == sorted(
            (e.src, e.dst, e.delay) for e in two_cycle.edges
        )
        assert back.op("m1") == "mul"

    def test_from_plain_digraph(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("u", "v", delay=1)
        dfg = DFG.from_networkx(g)
        assert dfg.num_nodes == 2
        assert dfg.edges[0].delay == 1
        assert dfg.op("u") == "op"


class TestTiming:
    def test_unit_timing(self):
        t = Timing.unit()
        assert t["anything"] == 1

    def test_missing_op_without_default_raises(self):
        t = Timing({"add": 1})
        with pytest.raises(KeyError):
            t["mul"]

    def test_nonpositive_times_rejected(self):
        with pytest.raises(GraphError):
            Timing({"add": 0})
        with pytest.raises(GraphError):
            Timing({}, default=-1)

    def test_mapping_protocol(self):
        t = Timing({"add": 1, "mul": 2})
        assert set(t) == {"add", "mul"}
        assert len(t) == 2
        assert dict(t) == {"add": 1, "mul": 2}
