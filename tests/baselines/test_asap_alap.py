"""Unit tests for ASAP/ALAP scheduling and mobility analysis."""

import pytest

from repro.schedule import ResourceModel
from repro.baselines import alap_schedule, asap_schedule, mobility_report, usage_profile
from repro.suite import diffeq, PAPER_TIMING
from repro.errors import SchedulingError


class TestMobility:
    def test_critical_nodes_have_zero_mobility(self):
        rep = mobility_report(diffeq(), timing=PAPER_TIMING)
        assert rep.deadline == 7
        critical = set(rep.critical_nodes())
        assert {10, 1, 3, 5, 6} <= critical

    def test_slack_grows_with_deadline(self):
        tight = mobility_report(diffeq(), timing=PAPER_TIMING)
        loose = mobility_report(diffeq(), deadline=10, timing=PAPER_TIMING)
        for v in diffeq().nodes:
            assert loose.mobility(v) == tight.mobility(v) + 3

    def test_deadline_below_cp_rejected(self):
        with pytest.raises(SchedulingError, match="below critical path"):
            mobility_report(diffeq(), deadline=5, timing=PAPER_TIMING)


class TestAsapAlap:
    def test_asap_is_legal_dag_schedule_modulo_resources(self):
        model = ResourceModel.adders_mults(2, 2)
        s = asap_schedule(diffeq(), model)
        assert s.dag_violations() == []
        assert s.length == 7  # equals CP

    def test_alap_respects_deadline(self):
        model = ResourceModel.adders_mults(2, 2)
        s = alap_schedule(diffeq(), model, deadline=9)
        assert s.dag_violations() == []
        assert s.last_cs <= 8

    def test_alap_default_deadline(self):
        model = ResourceModel.adders_mults(2, 2)
        s = alap_schedule(diffeq(), model)
        assert s.length == 7

    def test_usage_profile(self):
        model = ResourceModel.adders_mults(2, 2)
        peak = usage_profile(asap_schedule(diffeq(), model))
        # ASAP fires all mult roots together (4 of them, gated by node 10)
        assert peak["mult"] >= 3
        assert peak["adder"] >= 1
