"""Unit tests for the high-level RotationScheduler facade."""

import pytest

from repro.schedule import ResourceModel
from repro.core import RotationScheduler, rotation_schedule
from repro.suite import diffeq, biquad
from repro.errors import SchedulingError


class TestRotationScheduler:
    def test_result_fields(self):
        model = ResourceModel.unit_time(1, 1)
        res = rotation_schedule(diffeq(), model)
        assert res.length == 6
        assert res.initial_length == 8
        assert res.improvement == 2
        assert res.depth == 2
        assert res.optimal_count >= 1
        assert res.elapsed_seconds > 0
        assert res.model is model

    def test_final_schedule_is_modulo_legal(self):
        res = rotation_schedule(diffeq(), ResourceModel.adders_mults(1, 1))
        assert res.wrapped.violations() == []
        assert res.retiming.is_legal(res.graph)

    def test_alternates_are_also_optimal(self):
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))
        for alt in res.alternates:
            assert alt.period == res.length
            assert alt.violations() == []

    def test_depth_is_min_over_ties(self):
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1))
        for alt in res.alternates:
            assert res.depth <= alt.depth

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(SchedulingError, match="unknown heuristic"):
            RotationScheduler(ResourceModel.unit_time(1, 1), heuristic="h3")

    def test_summary_and_render(self):
        res = rotation_schedule(biquad(), ResourceModel.adders_mults(2, 4), beta=8)
        text = res.summary()
        assert "biquad" in text and "->" in text
        table = res.render()
        assert "CS" in table and "Mult" in table

    def test_h1_also_works_through_facade(self):
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1), heuristic="h1")
        assert res.length == 6

    def test_beta_and_sigma_forwarded(self):
        res = rotation_schedule(diffeq(), ResourceModel.unit_time(1, 1), beta=2, sigma=1)
        assert res.rotations_performed <= 2 * (res.initial_length + 2)
