"""Shared fixtures: small hand-built graphs and common resource models."""

from __future__ import annotations

import pytest

from repro.dfg import DFG, Timing
from repro.schedule import ResourceModel


@pytest.fixture
def tiny_loop() -> DFG:
    """a -> m -> a with one delay on the back edge (ratio 3 with mul=2)."""
    g = DFG("tiny")
    g.add_node("a", "add", func=lambda x: x + 1.0)
    g.add_node("m", "mul", func=lambda x: 0.5 * x)
    g.add_edge("a", "m", 0)
    g.add_edge("m", "a", 1, init=[1.0])
    return g


@pytest.fixture
def diamond() -> DFG:
    """Acyclic diamond: r -> {x, y} -> s."""
    g = DFG("diamond")
    for n, op in [("r", "add"), ("x", "mul"), ("y", "add"), ("s", "add")]:
        g.add_node(n, op)
    g.add_edge("r", "x", 0)
    g.add_edge("r", "y", 0)
    g.add_edge("x", "s", 0)
    g.add_edge("y", "s", 0)
    return g


@pytest.fixture
def two_cycle() -> DFG:
    """Two coupled cycles with distinct ratios (for iteration-bound tests).

    Cycle 1: a1 -> m1 -> a1 (1 delay): t = 3, ratio 3.
    Cycle 2: a1 -> a2 -> a1 (2 delays on the back edge): t = 2, ratio 1.
    """
    g = DFG("two_cycle")
    g.add_node("a1", "add")
    g.add_node("m1", "mul")
    g.add_node("a2", "add")
    g.add_edge("a1", "m1", 0)
    g.add_edge("m1", "a1", 1)
    g.add_edge("a1", "a2", 0)
    g.add_edge("a2", "a1", 2)
    return g


@pytest.fixture
def paper_timing() -> Timing:
    return Timing({"add": 1, "sub": 1, "cmp": 1, "mul": 2})


@pytest.fixture
def unit_model() -> ResourceModel:
    return ResourceModel.unit_time(1, 1)


@pytest.fixture
def small_model() -> ResourceModel:
    return ResourceModel.adders_mults(2, 1)


@pytest.fixture
def pipelined_model() -> ResourceModel:
    return ResourceModel.adders_mults(2, 1, pipelined_mults=True)
