"""``repro.explore`` — Pareto design-space exploration.

The five-axis design space of the paper's experiments — resource config
x clock period x unfolding factor x heuristic x rotation size — explored
either exhaustively (the fixed grids today's benchmarks sweep) or with
the feedback-guided explorer: bound-based pruning against the running
Pareto frontier, solve-key memoization across clock cells that share a
latency model, warm :class:`~repro.core.session.MutableSchedulingSession`
chains across neighboring resource configs, ``solve_batch`` cohorts for
structurally distinct cells under one model, and an optional
work-stealing process pool.  See ``docs/exploration.md``.
"""

from repro.explore.space import (
    ADD_NS,
    MULT_NS,
    CellSpec,
    Point,
    build_grid,
    cell_cost,
    cell_graph,
    cell_model,
    family_key,
    objective_point,
    solve_key,
)
from repro.explore.bounds import CellBound, cell_bound, register_lower_bound
from repro.explore.frontier import ParetoFrontier, dominates, strictly_dominates
from repro.explore.runner import CellOutcome, CellSolver, ServeCellSolver, run_grid
from repro.explore.pool import InlinePool, WorkStealingPool, make_pool
from repro.explore.explorer import ExploreReport, PrunedCell, explore
from repro.explore.trace import (
    EXPLORE_TRACE_SCHEMA,
    is_explore_trace,
    read_explore_trace,
    render_explore_trace,
    write_explore_trace,
)

__all__ = [
    "ADD_NS",
    "MULT_NS",
    "CellSpec",
    "Point",
    "build_grid",
    "cell_cost",
    "cell_graph",
    "cell_model",
    "family_key",
    "objective_point",
    "solve_key",
    "CellBound",
    "cell_bound",
    "register_lower_bound",
    "ParetoFrontier",
    "dominates",
    "strictly_dominates",
    "CellOutcome",
    "CellSolver",
    "ServeCellSolver",
    "run_grid",
    "InlinePool",
    "WorkStealingPool",
    "make_pool",
    "ExploreReport",
    "PrunedCell",
    "explore",
    "EXPLORE_TRACE_SCHEMA",
    "is_explore_trace",
    "read_explore_trace",
    "render_explore_trace",
    "write_explore_trace",
]
