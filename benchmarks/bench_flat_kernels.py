"""Flat-array core experiment: integer kernels vs dict engine vs naive.

The flat backend (``repro.core.flat``) exists purely for speed — the
golden parity suite pins all three backends bit for bit — so this bench
is its report card.  Two layers are measured:

* per-kernel micro timings: each flat kernel against the dict-based
  counterpart it replaces, on the paper's biggest graph (elliptic);
* end-to-end heuristic runs across the Table 2/3 suite, backend=flat vs
  backend=views vs backend=naive, CPU-time side by side in ``extra_info``.

Timings use ``time.process_time`` and a min-of-N inner loop because the
CI machine's wall clock is noisy; the recorded ratios are conservative.
Regenerate the committed snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/bench_flat_kernels.py \
        --benchmark-only --benchmark-json=BENCH_flat.json
"""

import time

import pytest

from repro.core import rotation_schedule
from repro.core.flat import (
    FlatGraph,
    FlatModel,
    flat_priority_columns,
    flat_topological_order,
    flat_wrap_period,
    retimed_delays,
    seed_grid,
    zero_delay_lists,
)
from repro.dfg.analysis import (
    descendant_reach,
    topological_order,
    zero_delay_adjacency,
)
from repro.dfg.retiming import Retiming
from repro.schedule.list_scheduler import full_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once


def _best_of(fn, n=5):
    """Min CPU time over ``n`` runs — robust against scheduler noise."""
    best = float("inf")
    out = None
    for _ in range(n):
        t0 = time.process_time()
        out = fn()
        dt = time.process_time() - t0
        if dt < best:
            best = dt
    return best, out


def test_kernel_micro_timings(benchmark):
    """Each flat kernel vs the dict counterpart it replaces (elliptic)."""
    graph = get_benchmark("elliptic")
    model = model_for("3A2M")
    fg = FlatGraph(graph)
    fm = FlatModel(fg, model)
    r = Retiming.zero()
    rv = fg.rvec(r)
    reps = 200

    def dict_views():
        for _ in range(reps):
            succs, _ = zero_delay_adjacency(graph, r)
            topological_order(graph, r)
            descendant_reach(graph, r)

    def flat_views():
        for _ in range(reps):
            dr = retimed_delays(fg, rv)
            zsucc, _ = zero_delay_lists(fg, dr)
            order = flat_topological_order(zsucc)
            flat_priority_columns("descendants", fm.node_time, zsucc, order)

    def run():
        dict_s, _ = _best_of(dict_views, n=3)
        flat_s, _ = _best_of(flat_views, n=3)
        return dict_s, flat_s

    dict_s, flat_s = run_once(benchmark, run)
    record(
        benchmark,
        kernel="delays+topo+priority",
        reps=reps,
        dict_seconds=round(dict_s, 4),
        flat_seconds=round(flat_s, 4),
        speedup=round(dict_s / flat_s, 2),
    )
    assert flat_s < dict_s  # the kernels must beat the object walk


def test_wrap_kernel_micro_timing(benchmark):
    """flat_wrap_period vs wrap() on the elliptic DAG schedule."""
    from repro.core.wrapping import wrap

    graph = get_benchmark("elliptic")
    model = model_for("3A2M")
    fg = FlatGraph(graph)
    fm = FlatModel(fg, model)
    r = Retiming.zero()
    sched = full_schedule(graph, model, r).normalized()
    starts = [sched.start(v) for v in fg.nodes]
    dr = retimed_delays(fg, fg.rvec(r))
    reps = 300

    def dict_wrap():
        for _ in range(reps):
            wrap(sched, r)

    def flat_wrap():
        for _ in range(reps):
            flat_wrap_period(fg, fm, starts, dr)

    def run():
        dict_s, _ = _best_of(dict_wrap, n=3)
        flat_s, _ = _best_of(flat_wrap, n=3)
        return dict_s, flat_s

    dict_s, flat_s = run_once(benchmark, run)
    assert flat_wrap_period(fg, fm, starts, dr) == wrap(sched, r).period
    record(
        benchmark,
        kernel="wrap_period",
        reps=reps,
        dict_seconds=round(dict_s, 4),
        flat_seconds=round(flat_s, 4),
        speedup=round(dict_s / flat_s, 2),
    )


def test_list_schedule_micro_timing(benchmark):
    """Flat list scheduling (grid + priority + placement) vs full_schedule."""
    from repro.core.flat.kernels import FlatGrid, flat_list_schedule

    graph = get_benchmark("elliptic")
    model = model_for("3A2M")
    fg = FlatGraph(graph)
    fm = FlatModel(fg, model)
    r = Retiming.zero()
    rv = fg.rvec(r)
    dr = retimed_delays(fg, rv)
    zsucc, zpred = zero_delay_lists(fg, dr)
    order = flat_topological_order(zsucc)
    _, _, skey = flat_priority_columns("descendants", fm.node_time, zsucc, order)
    reps = 100

    def flat_once():
        start = [None] * fg.n
        units = [None] * fg.n
        grid = FlatGrid(fm)
        flat_list_schedule(
            fg, fm, zsucc, zpred, skey, start, units, range(fg.n), 0, grid
        )
        return start

    def dict_ls():
        for _ in range(reps):
            full_schedule(graph, model, r)

    def flat_ls():
        for _ in range(reps):
            flat_once()

    def run():
        dict_s, _ = _best_of(dict_ls, n=3)
        flat_s, _ = _best_of(flat_ls, n=3)
        return dict_s, flat_s

    dict_s, flat_s = run_once(benchmark, run)
    start = flat_once()
    reference = full_schedule(graph, model, r).normalized()
    base = min(start)
    assert {fg.nodes[i]: start[i] - base for i in range(fg.n)} == reference.start_map
    record(
        benchmark,
        kernel="list_schedule",
        reps=reps,
        dict_seconds=round(dict_s, 4),
        flat_seconds=round(flat_s, 4),
        speedup=round(dict_s / flat_s, 2),
    )
    assert flat_s < dict_s


@pytest.mark.parametrize(
    "bench,config,heuristic",
    [
        ("elliptic", "3A2M", "h2"),
        ("elliptic", "2A1Mp", "h2"),
        ("lattice", "2A2M", "h2"),
        ("allpole", "2A2M", "h2"),
        ("biquad", "2A2M", "h1"),
        ("diffeq", "2A2M", "h1"),
    ],
)
def test_backend_end_to_end(benchmark, bench, config, heuristic):
    """Whole-heuristic CPU time per backend; identical results required."""
    graph = get_benchmark(bench)
    model = model_for(config)

    def cell(backend):
        return rotation_schedule(
            graph, model, heuristic=heuristic, backend=backend
        )

    def run():
        flat_s, flat = _best_of(lambda: cell("flat"))
        views_s, views = _best_of(lambda: cell("views"))
        naive_s, naive = _best_of(lambda: cell("naive"))
        return flat_s, views_s, naive_s, flat, views, naive

    flat_s, views_s, naive_s, flat, views, naive = run_once(benchmark, run)
    record(
        benchmark,
        bench=bench,
        config=config,
        heuristic=heuristic,
        length=flat.length,
        rotations=flat.rotations_performed,
        flat_seconds=round(flat_s, 4),
        views_seconds=round(views_s, 4),
        naive_seconds=round(naive_s, 4),
        flat_vs_views=round(views_s / flat_s, 2),
        flat_vs_naive=round(naive_s / flat_s, 2),
    )
    # Parity before speed: all three backends agree bit for bit.
    for other in (views, naive):
        assert flat.length == other.length
        assert flat.retiming == other.retiming
        assert flat.schedule.start_map == other.schedule.start_map


def test_flat_backend_headline(benchmark):
    """Acceptance cell: h2 on elliptic @ 3A 2M — the flat backend must be
    at least 2x faster than the dict engine it shadows (CPU time,
    min-of-9 per backend)."""
    graph = get_benchmark("elliptic")
    model = model_for("3A2M")

    def cell(backend):
        return rotation_schedule(graph, model, heuristic="h2", backend=backend)

    def run():
        flat_s, flat = _best_of(lambda: cell("flat"), n=9)
        views_s, views = _best_of(lambda: cell("views"), n=9)
        return flat_s, views_s, flat, views

    flat_s, views_s, flat, views = run_once(benchmark, run)
    record(
        benchmark,
        flat_seconds=round(flat_s, 4),
        views_seconds=round(views_s, 4),
        speedup=round(views_s / flat_s, 2),
        length=flat.length,
        rotations=flat.rotations_performed,
        grid_delta_rotations=flat.engine_stats["grid_delta_rotations"],
        grid_reseeds=flat.engine_stats["grid_reseeds"],
    )
    assert flat.length == 16 and views.length == 16
    assert flat.schedule.start_map == views.schedule.start_map
    assert flat.retiming == views.retiming
    # The headline: integer kernels at least double the dict engine.
    assert flat_s * 2 <= views_s
