"""Session repair vs from-scratch solve on pinned single-edit scripts.

The MutableSchedulingSession exists to make small edits cheap: after an
edit, ``resolve()`` repairs the previous schedule instead of re-running
the full rotation search, while staying bit-identical to the from-scratch
solve of the edited graph (enforced by the ``incremental`` fuzz path).
This bench records how much cheaper, on the paper's hardest integral
experiment (elliptic @ 3A 2M, heuristic 2), for each pinned edit script
in :data:`repro.qa.incremental.PINNED_EDIT_SCRIPTS`.

The committed JSON (``BENCH_incremental.json``) is the envelope
``rotsched perfcheck`` replays: repaired length and invalidation count
are pinned exactly, repair wall time within tolerance, and the
repair-vs-scratch speedup must stay above ``MIN_REPAIR_SPEEDUP``.

Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py \
        --benchmark-only --benchmark-json=BENCH_incremental.json
"""

import time

import pytest

from repro.core import rotation_schedule
from repro.core.session import open_session
from repro.obs.perfcheck import MIN_REPAIR_SPEEDUP
from repro.qa.incremental import PINNED_EDIT_SCRIPTS
from repro.qa.oracles import check_parity
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

BENCH = "elliptic"
CONFIG = "3A2M"
HEURISTIC = "h2"
REPEATS = 3


def _measure(script):
    graph = get_benchmark(BENCH)
    model = model_for(CONFIG)
    repair_best = float("inf")
    result = session = None
    for _ in range(REPEATS):
        session = open_session(graph, model, heuristic=HEURISTIC, backend="flat")
        session.resolve()
        for op in script:
            session.apply_edit(op)
        t0 = time.process_time()
        out = session.resolve()
        dt = time.process_time() - t0
        if dt < repair_best:
            repair_best = dt
            result = out
    scratch_best = float("inf")
    scratch = None
    for _ in range(REPEATS):
        t0 = time.process_time()
        scratch = rotation_schedule(
            session.graph, session.model, heuristic=HEURISTIC, backend="flat"
        )
        scratch_best = min(scratch_best, time.process_time() - t0)
    return repair_best, scratch_best, result, scratch, session


@pytest.mark.parametrize("script_name", sorted(PINNED_EDIT_SCRIPTS))
def test_repair_vs_scratch(benchmark, script_name):
    script = PINNED_EDIT_SCRIPTS[script_name]
    repair_s, scratch_s, result, scratch, session = run_once(
        benchmark, _measure, script
    )
    # The repaired schedule is a certified schedule of the edited graph —
    # same length as the from-scratch solve would find is NOT required
    # (repair is seeded differently), but here both searches land on the
    # same period for every pinned script; pin that fact too.
    assert result.length == scratch.length, (
        f"{script_name}: repair {result.length} vs scratch {scratch.length}"
    )
    speedup = scratch_s / repair_s if repair_s else float("inf")
    assert speedup >= MIN_REPAIR_SPEEDUP, (
        f"{script_name}: repair only {speedup:.1f}x faster than scratch"
    )
    record(
        benchmark,
        bench=BENCH,
        config=CONFIG,
        heuristic=HEURISTIC,
        script=script_name,
        edits=script,
        repair_seconds=round(repair_s, 4),
        scratch_seconds=round(scratch_s, 4),
        speedup=round(speedup, 2),
        length=result.length,
        invalidated=session.metrics["nodes_invalidated"],
    )


def test_solve_mode_parity(benchmark):
    """Session solve mode == rotation_schedule on the edited graph."""

    def run():
        graph = get_benchmark(BENCH)
        model = model_for(CONFIG)
        session = open_session(graph, model, heuristic=HEURISTIC, backend="flat")
        session.resolve()
        for op in PINNED_EDIT_SCRIPTS["tighten-adder"]:
            session.apply_edit(op)
        got = session.resolve(mode="solve")
        want = rotation_schedule(
            session.graph, session.model, heuristic=HEURISTIC, backend="flat"
        )
        return got, want

    got, want = run_once(benchmark, run)
    assert not check_parity(got, want, "session solve vs scratch")
    record(benchmark, bench=BENCH, config=CONFIG, parity="bit-identical")
