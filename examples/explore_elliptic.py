#!/usr/bin/env python3
"""Feedback-guided exploration of the elliptic filter design space.

The same scenario as ``elliptic_design_space.py`` — trading functional
units against throughput for the paper's 5th-order elliptic wave filter
— but driven by the ``repro.explore`` Pareto engine instead of a
hand-rolled sweep: a 36-cell grid (resource configs x pipelining x
clock periods), explored with bound-based pruning and incremental
warm-chain seeding, then checked cell-for-cell against the exhaustive
sweep of the identical grid.

Run:  python examples/explore_elliptic.py
"""

from repro.explore import build_grid, explore


def main() -> None:
    cells = build_grid(
        ["elliptic"],
        [
            f"{adders}A{mults}M{'p' if pipelined else ''}"
            for adders in (1, 2, 3)
            for mults in (1, 2)
            for pipelined in (False, True)
        ],
        clocks=[40, 50, 100],
    )
    print(f"grid: {len(cells)} cells "
          "(3 adder counts x 2 mult counts x pipelining x 3 clocks)")

    explored = explore(cells, mode="explore", round_size=6)
    exhaustive = explore(cells, mode="exhaustive")

    print()
    print("Pareto frontier over (period per iteration, area cost), "
          "annotated with the register-cheapest achiever:")
    for point, labels in explored.frontiers["elliptic"]:
        print(f"  {point.render():44s} <- {', '.join(labels)}")

    print()
    print(f"explore:    {explored.counter_line()}")
    print(f"exhaustive: {exhaustive.counter_line()}")
    c = explored.counters
    print(
        f"\nsolved {c['solved']}/{c['cells_total']} cells "
        f"({c['pruned_bound']} bound-pruned, "
        f"{c['pruned_dominated']} dominated, "
        f"{c['seeded_warm']} warm-seeded, {c['dedup_hits']} memo hits) "
        f"in {c['rounds']} rounds — "
        f"{exhaustive.elapsed / explored.elapsed:.1f}x less wall time"
    )

    assert explored.frontier_points("elliptic") == exhaustive.frontier_points(
        "elliptic"
    ), "explore must reach the exhaustive frontier"
    print("frontier == exhaustive frontier: verified")

    print()
    print("why the pruned cells could be skipped (first three):")
    for pruned in explored.pruned[:3]:
        print(f"  {pruned.spec.label():28s} bound {pruned.lb_point.render()}")
        print(f"  {'':28s} beaten by {pruned.blocker.render()} [{pruned.kind}]")


if __name__ == "__main__":
    main()
