"""Extension experiment: scalability of rotation scheduling on synthetic
DFGs (20-120 nodes).  The paper's complexity claim is O(beta * sigma *
|V| * |E|) per heuristic run; this bench records the measured growth.
"""

import pytest

from repro.core import rotation_schedule
from repro.schedule import ResourceModel
from repro.sim import verify_pipeline
from repro.suite import random_dfg, random_dsp_kernel

from conftest import record, run_once


@pytest.mark.parametrize("nodes", [20, 40, 80, 120])
def test_random_dfg_scaling(benchmark, nodes):
    graph = random_dfg(nodes, seed=42, forward_density=0.08, backward_density=0.05)
    model = ResourceModel.adders_mults(3, 2)
    result = run_once(
        benchmark, rotation_schedule, graph, model, beta=16, sigma=min(8, nodes)
    )
    record(
        benchmark,
        nodes=nodes,
        edges=graph.num_edges,
        initial=result.initial_length,
        final=result.length,
        improvement=result.improvement,
    )
    assert result.length <= result.initial_length


@pytest.mark.parametrize("taps", [4, 8, 12])
def test_dsp_kernel_scaling_with_verification(benchmark, taps):
    """Larger FIR/IIR kernels: schedule AND verify semantics end to end."""
    graph = random_dsp_kernel(taps, seed=7)
    model = ResourceModel.adders_mults(2, 2, pipelined_mults=True)

    def run():
        res = rotation_schedule(graph, model, beta=16)
        report = verify_pipeline(
            res.schedule, res.retiming, iterations=res.depth + 12, period=res.length
        )
        return res, report

    res, report = run_once(benchmark, run)
    record(benchmark, taps=taps, period=res.length, depth=res.depth,
           speedup=round(report.speedup_vs_sequential, 2))
    assert report.matches_reference
