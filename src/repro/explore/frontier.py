"""The Pareto frontier over objective points, one per benchmark.

The frontier is the Pareto set over ``(period_ns, cost)`` with a
register annotation: each non-dominated ``(period, cost)`` pair keeps
the *minimum* register count any cell achieved there (and the cells
that achieved it).  Registers are not a third domination axis — the
solver-free register bound is far below what schedules achieve, so
3-axis pruning would never fire — but they are still part of the
reported point and still guarded exactly:

* a point **strictly dominates** another when its ``(period, cost)`` is
  componentwise ``<=`` and not equal;
* a cell is **prunable** when an achieved point strictly dominates the
  cell's lower-bound point, or ties it exactly with registers at or
  below the cell's register bound.

Soundness (what the property tests re-solve pruned cells to verify):
a pruned cell's true outcome has ``period >= lb_period``, ``cost ==
lb_cost`` and ``registers >= lb_registers``, so a strict blocker
strictly dominates the outcome too — it can neither enter the frontier
nor improve any annotation — and a tie blocker already carries registers
at or below anything the cell could achieve.  Blockers removed from the
frontier later are only ever replaced by points that cover them, so the
license transfers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.explore.space import Point

#: The domination key of a point.
def _pc(p: Point) -> Tuple:
    return (p.period_ns, p.cost)


def dominates(p: Point, q: Point) -> bool:
    """``p`` makes ``q`` redundant: at least as good on every axis
    (registers included) and not the same point."""
    return (
        p != q
        and p.period_ns <= q.period_ns
        and p.cost <= q.cost
        and p.registers <= q.registers
    )


def strictly_dominates(p: Point, q: Point) -> bool:
    """Strict ``(period, cost)`` domination — the frontier's membership
    (and the pruner's skip) criterion."""
    return p.period_ns <= q.period_ns and p.cost <= q.cost and _pc(p) != _pc(q)


class ParetoFrontier:
    """Mutable frontier; offers fold in, dominated points fall out."""

    def __init__(self) -> None:
        # (period, cost) -> (best registers, achieving labels)
        self._points: Dict[Tuple, Tuple[Point, List[str]]] = {}

    def __len__(self) -> int:
        return len(self._points)

    def offer(self, point: Point, label: str) -> str:
        """Fold one achieved point in.

        Returns ``"added"`` (new non-dominated ``(period, cost)``),
        ``"improved"`` (tied an existing pair with fewer registers — the
        annotation tightens and the label takes over), ``"equal"``
        (tied with no register win — the label joins the achievers), or
        ``"dominated"``.
        """
        key = _pc(point)
        existing = self._points.get(key)
        if existing is not None:
            best, labels = existing
            if point.registers < best.registers:
                self._points[key] = (point, [label])
                return "improved"
            labels.append(label)
            return "equal"
        for other, _labels in self._points.values():
            if strictly_dominates(other, point):
                return "dominated"
        for k in [k for k, (other, _l) in self._points.items() if strictly_dominates(point, other)]:
            del self._points[k]
        self._points[key] = (point, [label])
        return "added"

    def blocker(self, lower_bound: Point) -> Optional[Point]:
        """An achieved point licensing the prune of the cell whose
        lower-bound point this is: a strict dominator of the bound, or an
        exact ``(period, cost)`` tie whose registers are at or below the
        cell's register bound.  Deterministic: the smallest such point."""
        covering = [
            p
            for p, _labels in self._points.values()
            if strictly_dominates(p, lower_bound)
            or (_pc(p) == _pc(lower_bound) and p.registers <= lower_bound.registers)
        ]
        return min(covering) if covering else None

    def points(self) -> List[Tuple[Point, List[str]]]:
        """Frontier points in canonical (ascending tuple) order."""
        return [
            (p, list(labels))
            for p, labels in sorted(self._points.values(), key=lambda item: item[0])
        ]

    def point_set(self) -> List[Point]:
        return sorted(p for p, _labels in self._points.values())
