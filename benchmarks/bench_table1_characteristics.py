"""Regenerates **Table 1**: characteristics of the five benchmarks.

Paper row format: Benchmark, #Mults, #Adds, CP, IB — reproduced exactly
for all five graphs (the characteristics are pinned; the bench times the
analyses themselves).
"""

import pytest

from repro.dfg import critical_path_length, iteration_bound_ceil
from repro.suite import BENCHMARKS, PAPER_TIMING

from conftest import record, run_once


@pytest.mark.parametrize("key", list(BENCHMARKS))
def test_table1_row(benchmark, key):
    info = BENCHMARKS[key]
    graph = info.build()

    def analyze():
        cp = critical_path_length(graph, PAPER_TIMING)
        ib = iteration_bound_ceil(graph, PAPER_TIMING)
        hist = graph.ops_histogram()
        mults = hist.get("mul", 0)
        return mults, graph.num_nodes - mults, cp, ib

    mults, adds, cp, ib = run_once(benchmark, analyze)
    record(
        benchmark,
        benchmark_name=info.title,
        paper=(info.mults, info.adds, info.critical_path, info.iteration_bound),
        measured=(mults, adds, cp, ib),
    )
    assert (mults, adds, cp, ib) == (
        info.mults,
        info.adds,
        info.critical_path,
        info.iteration_bound,
    )


def test_table1_rendering(benchmark):
    """Also emit the full table in the paper's layout."""
    from repro.report import render_table1

    def build():
        rows = []
        for info in BENCHMARKS.values():
            g = info.build()
            hist = g.ops_histogram()
            mults = hist.get("mul", 0)
            rows.append(
                (
                    info.title,
                    mults,
                    g.num_nodes - mults,
                    critical_path_length(g, PAPER_TIMING),
                    iteration_bound_ceil(g, PAPER_TIMING),
                )
            )
        return render_table1(rows)

    table = run_once(benchmark, build)
    record(benchmark, table=table)
    assert "Elliptic" in table
