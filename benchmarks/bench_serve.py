"""Scheduling-as-a-service: cached daemon vs sequential uncached solving.

The ``repro.serve`` daemon answers a repeated-graph workload from its
two-level cache: each distinct (benchmark, config, options) cell is
solved once and every repeat is a memo hit.  This bench records the
headline acceptance numbers — solves/sec and speedup over solving every
request from scratch, plus the wall-latency percentiles a real client
would see over HTTP — and commits them as the ``rotsched perfcheck``
envelope (counter pins + ``MIN_SERVE_SPEEDUP`` floor + cached==fresh
differential oracle).

Two cells:

* ``serve_cached`` — the gated envelope.  In-process service, sequential
  request stream, ``process_time`` min-of-N on both sides (the same
  methodology every other golden cell uses; perfcheck replays exactly
  this measurement via :func:`repro.obs.perfcheck.measure_serve_workload`).
* ``serve_http`` — informational.  A real asyncio HTTP server with a
  sharded worker pool under a threaded loadgen; p50/p99 wall latency and
  end-to-end solves/sec.  Not gated (wall latency through the kernel's
  socket stack is too noisy to pin), committed for the record.

Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py \
        --benchmark-only --benchmark-json=BENCH_serve.json
"""

import asyncio
import threading

from repro.obs.perfcheck import MIN_SERVE_SPEEDUP, measure_serve_workload
from repro.serve import demo_workload, run_loadgen
from repro.serve.protocol import schedule_bits

from conftest import record, run_once

WORKLOAD_REPEATS = 8
REPEATS = 3


def _measure_cached():
    return measure_serve_workload(WORKLOAD_REPEATS, REPEATS)


def test_serve_cached_vs_uncached(benchmark):
    serve_s, uncached_s, envelopes, fresh_by_fp, distinct = run_once(
        benchmark, _measure_cached
    )
    assert not any("error" in e for e in envelopes)
    for envelope in envelopes:
        fresh = fresh_by_fp[envelope["fingerprint"]]
        assert schedule_bits(envelope["result"]) == schedule_bits(fresh)
    hits = sum(
        1 for e in envelopes if e["cache"] in ("memory", "disk", "coalesced")
    )
    hit_rate = hits / len(envelopes)
    speedup = uncached_s / serve_s
    assert speedup >= MIN_SERVE_SPEEDUP, (
        f"serve speedup {speedup:.2f}x below the {MIN_SERVE_SPEEDUP:.1f}x floor"
    )
    record(
        benchmark,
        headline="serve_cached",
        workload="demo",
        workload_repeats=WORKLOAD_REPEATS,
        requests=len(envelopes),
        distinct=distinct,
        serve_seconds=round(serve_s, 4),
        uncached_seconds=round(uncached_s, 4),
        speedup=round(speedup, 2),
        hit_rate=round(hit_rate, 4),
        solves_per_sec=round(len(envelopes) / serve_s, 1) if serve_s else 0.0,
        min_serve_speedup=MIN_SERVE_SPEEDUP,
    )


def _measure_http():
    from repro.serve import build_service, start_server

    workload = demo_workload(repeats=WORKLOAD_REPEATS)
    report_box = {}

    async def main():
        service = build_service(workers=2)
        server = await start_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        try:
            report_box["report"] = await loop.run_in_executor(
                None, lambda: run_loadgen(port=port, workload=workload, concurrency=4)
            )
            report_box["stats"] = service.stats()
        finally:
            server.close()
            await server.wait_closed()
            service.close()

    asyncio.run(main())
    return report_box["report"], report_box["stats"]


def test_serve_http_latency(benchmark):
    report, stats = run_once(benchmark, _measure_http)
    assert report.errors == 0, report.summary()
    record(
        benchmark,
        headline="serve_http",
        workload="demo",
        workload_repeats=WORKLOAD_REPEATS,
        workers=stats["workers"],
        requests=report.requests,
        seconds=round(report.seconds, 4),
        solves_per_sec=round(report.solves_per_sec, 1),
        hit_rate=round(report.hit_rate, 4),
        p50_ms=round(report.percentile(50), 2),
        p99_ms=round(report.percentile(99), 2),
        cache_levels=dict(sorted(report.cache_levels.items())),
        worker_crashes=stats["worker_crashes"],
    )
    assert threading.active_count() >= 1  # loadgen threads joined cleanly
