"""Exact (optimal) modulo scheduling by branch and bound.

An optimality *prover* for small graphs: for each candidate initiation
interval II starting at the combined lower bound, search exhaustively for
a legal wrapped schedule.  A wrapped schedule is a slot assignment
``sigma(v) in [0, II)`` together with a retiming making every precedence
``s(u) + t(u) <= s(v) + II * dr(e)`` hold; equivalently, writing the
unfolded time ``T(v) = sigma(v) + II * k(v)``, the integers ``k`` must
satisfy the difference constraints::

    k(v) - k(u) >= ceil((t(u) - II * d(e) - sigma(v) + sigma(u)) / II)

which is feasible iff the constraint graph has no positive cycle.  The
search branches over slots (resource use depends only on slots), prunes
with the modulo reservation table and with incremental positive-cycle
detection over the already-fixed subgraph, and verifies the final
assignment through :func:`repro.schedule.verify.realizing_retiming`.

The first feasible II is provably optimal.  This settles questions the
heuristics can only suggest — e.g. that the lattice reconstruction really
admits II = 2 at 6A 8Mp, and what the true optimum of the elliptic
2A 1M row is (see EXPERIMENTS.md).  Complexity is exponential;
``node_limit``/``step_limit`` guard runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.schedule.resources import ResourceModel
from repro.schedule.schedule import Schedule
from repro.schedule.verify import is_legal_modulo_schedule, realizing_retiming
from repro.bounds.lower_bounds import lower_bound
from repro.errors import SchedulingError


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exact search."""

    graph: DFG
    model: ResourceModel
    ii: int
    start: Dict[NodeId, int]
    retiming: Retiming
    proven_optimal: bool
    steps_explored: int

    @property
    def length(self) -> int:
        return self.ii


class _Search:
    """Branch and bound over slot assignments at a fixed II."""

    def __init__(self, graph: DFG, model: ResourceModel, ii: int, step_limit: int):
        self.graph = graph
        self.model = model
        self.ii = ii
        self.step_limit = step_limit
        self.steps = 0
        # branch in a connectivity-first order so cycle pruning bites early
        self.order = self._connectivity_order()
        self.position = {v: i for i, v in enumerate(self.order)}
        # adjacency among nodes (for the incremental k-feasibility check)
        self.edges = list(graph.edges)

    def _connectivity_order(self) -> List[NodeId]:
        index = {v: i for i, v in enumerate(self.graph.nodes)}
        seen: List[NodeId] = []
        seen_set = set()
        frontier = sorted(
            self.graph.nodes,
            key=lambda v: (-(len(self.graph.in_edges(v)) + len(self.graph.out_edges(v))), index[v]),
        )
        stack = [frontier[0]] if frontier else []
        while stack or len(seen) < self.graph.num_nodes:
            if not stack:
                stack.append(next(v for v in frontier if v not in seen_set))
            v = stack.pop()
            if v in seen_set:
                continue
            seen.append(v)
            seen_set.add(v)
            neighbours = sorted(
                set(self.graph.successors(v)) | set(self.graph.predecessors(v)),
                key=lambda u: index[u],
            )
            stack.extend(u for u in reversed(neighbours) if u not in seen_set)
        return seen

    # -- feasibility of k (retiming) over the fixed subgraph --------------
    def _k_feasible(self, sigma: Dict[NodeId, int]) -> bool:
        """No positive cycle in the ceil-weight constraint graph."""
        nodes = [v for v in self.order if v in sigma]
        if len(nodes) <= 1:
            return True
        pot = {v: 0 for v in nodes}
        edges = [
            (
                e.src,
                e.dst,
                -(-(self.model.latency(self.graph.op(e.src))
                    - self.ii * e.delay
                    - sigma[e.dst]
                    + sigma[e.src]) // self.ii),
            )
            for e in self.edges
            if e.src in sigma and e.dst in sigma
        ]
        # longest-path Bellman-Ford; non-convergence => positive cycle
        for _ in range(len(nodes)):
            changed = False
            for u, v, w in edges:
                if pot[u] + w > pot[v]:
                    pot[v] = pot[u] + w
                    changed = True
            if not changed:
                return True
        for u, v, w in edges:
            if pot[u] + w > pot[v]:
                return False
        return True

    # -- reservation table --------------------------------------------
    def _fits(self, mrt: Dict[Tuple[str, int], int], node: NodeId, s: int) -> bool:
        op = self.graph.op(node)
        unit = self.model.unit_for_op(op)
        if not unit.pipelined and unit.latency > self.ii:
            return False
        for off in self.model.busy_offsets(op):
            if mrt.get((unit.name, (s + off) % self.ii), 0) + 1 > unit.count:
                return False
        return True

    def _occupy(self, mrt: Dict[Tuple[str, int], int], node: NodeId, s: int, sign: int) -> None:
        op = self.graph.op(node)
        unit = self.model.unit_for_op(op)
        for off in self.model.busy_offsets(op):
            key = (unit.name, (s + off) % self.ii)
            mrt[key] = mrt.get(key, 0) + sign

    # -- branch ------------------------------------------------------------
    def run(self) -> Optional[Dict[NodeId, int]]:
        return self._branch(0, {}, {})

    def _branch(
        self,
        depth: int,
        sigma: Dict[NodeId, int],
        mrt: Dict[Tuple[str, int], int],
    ) -> Optional[Dict[NodeId, int]]:
        if depth == len(self.order):
            return dict(sigma)
        self.steps += 1
        if self.steps > self.step_limit:
            raise SchedulingError(
                f"exact search exceeded {self.step_limit} steps at II={self.ii}"
            )
        v = self.order[depth]
        # rotational symmetry: pin the first node to slot 0
        slots = [0] if depth == 0 else range(self.ii)
        for s in slots:
            if not self._fits(mrt, v, s):
                continue
            sigma[v] = s
            if self._k_feasible(sigma):
                self._occupy(mrt, v, s, +1)
                found = self._branch(depth + 1, sigma, mrt)
                if found is not None:
                    return found
                self._occupy(mrt, v, s, -1)
            del sigma[v]
        return None


def exact_modulo_schedule(
    graph: DFG,
    model: ResourceModel,
    max_ii: Optional[int] = None,
    node_limit: int = 40,
    step_limit: int = 500_000,
) -> ExactResult:
    """Provably-optimal initiation interval by exhaustive search.

    Args:
        graph: the cyclic DFG (refused above ``node_limit`` nodes).
        model: resource model.
        max_ii: give up past this II (default: the list-schedule length,
            which is always feasible).
        node_limit: safety bound on problem size.
        step_limit: safety bound on branch-and-bound nodes per II.

    Raises:
        SchedulingError: if limits are exceeded before a proof is found.
    """
    if graph.num_nodes > node_limit:
        raise SchedulingError(
            f"exact search limited to {node_limit} nodes ({graph.num_nodes} given)"
        )
    start_ii = lower_bound(graph, model)
    if max_ii is None:
        from repro.schedule.list_scheduler import full_schedule

        max_ii = max(start_ii, full_schedule(graph, model).length)
    total_steps = 0
    for ii in range(start_ii, max_ii + 1):
        search = _Search(graph, model, ii, step_limit)
        found = search.run()
        total_steps += search.steps
        if found is not None:
            sched = Schedule(graph, model, found)
            retiming = realizing_retiming(sched, period=ii)
            if not is_legal_modulo_schedule(graph, model, found, ii, retiming):
                raise SchedulingError(
                    f"exact search produced an illegal schedule at II={ii}"
                )  # pragma: no cover - internal consistency
            return ExactResult(
                graph=graph,
                model=model,
                ii=ii,
                start=found,
                retiming=retiming,
                proven_optimal=True,
                steps_explored=total_steps,
            )
    raise SchedulingError(f"no modulo schedule up to II={max_ii}")
