"""repro — Rotation Scheduling: a loop-pipelining library.

A production-quality reproduction of *Rotation Scheduling: A Loop
Pipelining Algorithm* (Chao, LaPaugh & Sha, DAC 1993): cyclic data-flow
graphs, retiming, resource-constrained list scheduling, the rotation
technique with the paper's two heuristics, depth reduction, schedule
wrapping, classic baselines, the paper's five DSP benchmarks, and an
execution simulator proving pipelined schedules preserve loop semantics.

Quickstart::

    from repro import ResourceModel, rotation_schedule, diffeq

    result = rotation_schedule(diffeq(), ResourceModel.adders_mults(1, 1))
    print(result.summary())
    print(result.render())
"""

from repro.dfg import DFG, DFGBuilder, Edge, Retiming, Timing
from repro.dfg import (
    critical_path_length,
    iteration_bound,
    iteration_bound_ceil,
    topological_order,
)
from repro.schedule import (
    ResourceModel,
    Schedule,
    UnitSpec,
    full_schedule,
    partial_schedule,
    realizing_retiming,
)
from repro.core import (
    MutableSchedulingSession,
    RotationEngine,
    RotationResult,
    RotationScheduler,
    RotationState,
    WrappedSchedule,
    heuristic_1,
    heuristic_2,
    open_session,
    reduce_depth,
    rotation_schedule,
    wrap,
)
from repro.bounds import combined_lower_bound, lower_bound
from repro.binding import (
    bind_schedule,
    register_requirement,
    select_schedule,
)
from repro.dfg.unfold import unfold
from repro.baselines import (
    dag_list_schedule,
    modulo_schedule,
    retime_then_schedule,
)
from repro.suite import (
    BENCHMARKS,
    PAPER_TIMING,
    UNIT_TIMING,
    allpole,
    biquad,
    diffeq,
    elliptic,
    get_benchmark,
    lattice,
)
from repro.sim import reference_run, simulate_machine, verify_pipeline
from repro.errors import (
    GraphError,
    IllegalScheduleError,
    ReproError,
    RetimingError,
    RotationError,
    SchedulingError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "DFG",
    "DFGBuilder",
    "Edge",
    "GraphError",
    "IllegalScheduleError",
    "MutableSchedulingSession",
    "PAPER_TIMING",
    "ReproError",
    "ResourceModel",
    "Retiming",
    "RetimingError",
    "RotationError",
    "RotationResult",
    "RotationEngine",
    "RotationScheduler",
    "RotationState",
    "Schedule",
    "SchedulingError",
    "SimulationError",
    "Timing",
    "UNIT_TIMING",
    "UnitSpec",
    "WrappedSchedule",
    "allpole",
    "bind_schedule",
    "biquad",
    "combined_lower_bound",
    "critical_path_length",
    "dag_list_schedule",
    "diffeq",
    "elliptic",
    "full_schedule",
    "get_benchmark",
    "heuristic_1",
    "heuristic_2",
    "iteration_bound",
    "iteration_bound_ceil",
    "lattice",
    "lower_bound",
    "modulo_schedule",
    "open_session",
    "partial_schedule",
    "realizing_retiming",
    "register_requirement",
    "reduce_depth",
    "reference_run",
    "retime_then_schedule",
    "rotation_schedule",
    "select_schedule",
    "simulate_machine",
    "topological_order",
    "unfold",
    "verify_pipeline",
    "wrap",
]
