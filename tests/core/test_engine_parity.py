"""Golden parity suite: every acceleration backend must be pure speed.

Every ``(benchmark, resource config, heuristic)`` cell runs the full
heuristic under all four backends — ``flat`` (integer kernels over CSR
snapshots), ``vector`` (numpy kernels + rotation memos), ``views`` (the
dict-based incremental engine), and ``naive`` (recompute everything) —
and asserts the outcomes are identical down to start maps, retimings and
the set of tied-optimal schedules.  Any divergence means a backend cache
leaked stale state into a decision.
"""

import pytest

from repro.core.engine import BACKENDS
from repro.core.scheduler import rotation_schedule
from repro.core.vector import have_numpy
from repro.schedule.resources import ResourceModel
from repro.suite import BENCHMARKS

#: backends pinned against naive on every golden cell; vector drops out
#: (and is covered by its dedicated skip test) when numpy is missing.
FAST_BACKENDS = tuple(
    b for b in BACKENDS if b != "naive" and (b != "vector" or have_numpy())
)

CONFIGS = {
    "2A2M": ResourceModel.adders_mults(2, 2),
    "3A2M": ResourceModel.adders_mults(3, 2),
    "2A1Mp": ResourceModel.adders_mults(2, 1, pipelined_mults=True),
}


@pytest.mark.parametrize("heuristic", ["h1", "h2"])
@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("bench", sorted(BENCHMARKS))
def test_backends_match_naive_path(bench, config, heuristic):
    graph = BENCHMARKS[bench].build()
    model = CONFIGS[config]
    results = {
        backend: rotation_schedule(graph, model, heuristic=heuristic, backend=backend)
        for backend in FAST_BACKENDS + ("naive",)
    }
    naive = results["naive"]
    assert naive.engine_stats is None
    for backend in FAST_BACKENDS:
        fast = results[backend]
        assert fast.length == naive.length, backend
        assert fast.initial_length == naive.initial_length, backend
        assert fast.rotations_performed == naive.rotations_performed, backend
        assert fast.retiming == naive.retiming, backend
        assert fast.schedule.start_map == naive.schedule.start_map, backend
        assert fast.optimal_count == naive.optimal_count, backend
        # Same tied-optimal set, in the same discovery order.
        assert [a.schedule.start_map for a in fast.alternates] == [
            a.schedule.start_map for a in naive.alternates
        ], backend
        assert fast.engine_stats is not None and fast.engine_stats["rotations"] > 0


def test_trace_parity_on_a_rotation_walk():
    """Step-by-step rotations agree on every intermediate state, not just
    the heuristic's final answer."""
    from repro.core.engine import make_engine
    from repro.core.rotation import RotationState

    graph = BENCHMARKS["lattice"].build()
    model = CONFIGS["2A2M"]
    slow = RotationState.initial(graph, model, engine=False)
    fast = {
        backend: RotationState.initial(
            graph, model, engine=make_engine(backend, graph, model)
        )
        for backend in FAST_BACKENDS
    }
    for step in [1, 2, 1, 3, 1, 1, 2, 1]:
        slow = slow.down_rotate(step)
        for backend in fast:
            state = fast[backend] = fast[backend].down_rotate(step)
            assert state.retiming == slow.retiming, backend
            assert (
                state.schedule.normalized().start_map
                == slow.schedule.normalized().start_map
            ), backend
            assert state.trace[-1] == slow.trace[-1], backend
            assert state.wrapped().period == slow.wrapped().period, backend


def test_up_rotation_parity():
    """The fast engines accelerate up_rotate (latest-fit); pin them
    against the naive path on a down/up walk."""
    from repro.core.engine import make_engine
    from repro.core.rotation import RotationState

    graph = BENCHMARKS["elliptic"].build()
    model = CONFIGS["3A2M"]
    slow = RotationState.initial(graph, model, engine=False)
    fast = {
        backend: RotationState.initial(
            graph, model, engine=make_engine(backend, graph, model)
        )
        for backend in FAST_BACKENDS
    }
    for kind, step in [("d", 2), ("d", 1), ("u", 1), ("d", 3), ("u", 2), ("u", 1)]:
        if kind == "d":
            slow = slow.down_rotate(step)
        else:
            slow = slow.up_rotate(step)
        for backend in fast:
            prev = fast[backend]
            state = fast[backend] = (
                prev.down_rotate(step) if kind == "d" else prev.up_rotate(step)
            )
            assert state.retiming == slow.retiming, backend
            assert (
                state.schedule.normalized().start_map
                == slow.schedule.normalized().start_map
            ), backend
            assert state.trace[-1] == slow.trace[-1], backend
            assert state.wrapped().period == slow.wrapped().period, backend
