"""Conditional data-flow graphs: resource sharing across exclusive branches.

The paper's Section 8 points to "extensions to more complicated models,
such as conditionals [20]" (Siddhiwala & Chao, *Scheduling conditional
data-flow graphs with resource sharing*).  The model implemented here:

* a node may carry a **guard** — a conjunction of branch literals
  ``(condition_id, polarity)`` stored in the node's ``guard`` attribute;
* two operations are **mutually exclusive** when their guards contain the
  same condition with opposite polarities — only one of them executes in
  any iteration, so they may share a functional-unit instance in the same
  control step;
* the conditional list scheduler is the ordinary one with an
  exclusivity-aware occupancy grid, and the rotation recipe applies
  unchanged (:class:`ConditionalRotationState`).

Guards compose: ``(("c", True), ("d", False))`` is the then-branch of
``c`` intersected with the else-branch of ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import (
    is_down_rotatable,
    zero_delay_predecessors,
    zero_delay_successors,
)
from repro.schedule.resources import ResourceModel
from repro.schedule.priorities import get_priority
from repro.errors import GraphError, RotationError, SchedulingError

Guard = Tuple[Tuple[str, bool], ...]


def guard_of(graph: DFG, node: NodeId) -> Guard:
    """The node's guard (empty = unconditional)."""
    raw = graph.attrs(node).get("guard", ())
    return tuple(raw)


def set_guard(graph: DFG, node: NodeId, literals: Iterable[Tuple[str, bool]]) -> None:
    """Attach a guard to a node; rejects self-contradictory guards."""
    guard = tuple(literals)
    by_cond: Dict[str, Set[bool]] = {}
    for cond, polarity in guard:
        by_cond.setdefault(cond, set()).add(polarity)
    for cond, polarities in by_cond.items():
        if len(polarities) > 1:
            raise GraphError(f"node {node!r}: contradictory guard on {cond!r}")
    graph.attrs(node)["guard"] = guard


def are_exclusive(graph: DFG, u: NodeId, v: NodeId) -> bool:
    """True when ``u`` and ``v`` can never execute in the same iteration."""
    gu, gv = dict(guard_of(graph, u)), dict(guard_of(graph, v))
    return any(cond in gv and gv[cond] != pol for cond, pol in gu.items())


class ExclusiveOccupancyGrid:
    """Occupancy grid where mutually exclusive ops may share an instance."""

    def __init__(self, graph: DFG, model: ResourceModel):
        self.graph = graph
        self.model = model
        # (unit, cs, instance) -> nodes currently holding the slot
        self._slots: Dict[Tuple[str, int, int], List[NodeId]] = {}

    def find_instance(self, node: NodeId, cs: int) -> Optional[int]:
        op = self.graph.op(node)
        unit = self.model.unit_for_op(op)
        offsets = list(self.model.busy_offsets(op))
        for k in range(unit.count):
            ok = True
            for off in offsets:
                occupants = self._slots.get((unit.name, cs + off, k), [])
                if any(not are_exclusive(self.graph, node, w) for w in occupants):
                    ok = False
                    break
            if ok:
                return k
        return None

    def occupy(self, node: NodeId, cs: int, instance: int) -> None:
        op = self.graph.op(node)
        unit = self.model.unit_for_op(op)
        for off in self.model.busy_offsets(op):
            self._slots.setdefault((unit.name, cs + off, instance), []).append(node)


@dataclass(frozen=True)
class ConditionalSchedule:
    """A start-time map whose resource legality accounts for exclusivity."""

    graph: DFG
    model: ResourceModel
    start: Dict[NodeId, int]
    instance: Dict[NodeId, int]

    @property
    def length(self) -> int:
        lo = min(self.start.values())
        hi = max(
            self.start[v] + self.model.latency(self.graph.op(v))
            for v in self.graph.nodes
        )
        return hi - lo

    @property
    def first_cs(self) -> int:
        return min(self.start.values())

    def violations(self, r: Optional[Retiming] = None) -> List[str]:
        out = []
        for e in self.graph.edges:
            dr = e.delay if r is None else r.dr(e)
            if dr == 0:
                finish = self.start[e.src] + self.model.latency(self.graph.op(e.src))
                if finish > self.start[e.dst]:
                    out.append(f"{e.src}->{e.dst}: too early")
        slots: Dict[Tuple[str, int, int], List[NodeId]] = {}
        for v in self.graph.nodes:
            op = self.graph.op(v)
            unit = self.model.unit_for_op(op)
            for off in self.model.busy_offsets(op):
                slots.setdefault(
                    (unit.name, self.start[v] + off, self.instance[v]), []
                ).append(v)
        for key, nodes in slots.items():
            for i, u in enumerate(nodes):
                for v in nodes[i + 1 :]:
                    if not are_exclusive(self.graph, u, v):
                        out.append(f"{u} and {v} share {key[0]}[{key[2]}] at CS {key[1]}")
        return out


def conditional_full_schedule(
    graph: DFG,
    model: ResourceModel,
    r: Optional[Retiming] = None,
    priority="descendants",
    fixed: Optional[Mapping[NodeId, Tuple[int, int]]] = None,
    floor_cs: int = 0,
) -> ConditionalSchedule:
    """Exclusivity-aware list scheduling (full, or partial via ``fixed``).

    ``fixed`` maps frozen nodes to ``(cs, instance)`` placements.
    """
    prio = get_priority(priority)(graph, model.timing(), r)
    node_index = {v: i for i, v in enumerate(graph.nodes)}
    grid = ExclusiveOccupancyGrid(graph, model)
    start: Dict[NodeId, int] = {}
    instance: Dict[NodeId, int] = {}
    for v, (cs, k) in (fixed or {}).items():
        grid.occupy(v, cs, k)
        start[v] = cs
        instance[v] = k

    todo = [v for v in graph.nodes if v not in start]
    pending = {
        v: sum(1 for u in zero_delay_predecessors(graph, v, r) if u not in start)
        for v in todo
    }
    ready = {v for v in todo if pending[v] == 0}
    unplaced = set(todo)
    cs = floor_cs
    guard_limit = floor_cs + sum(
        model.latency(graph.op(v)) for v in graph.nodes
    ) + 8 * (graph.num_nodes + 2)
    while unplaced:
        candidates = sorted(
            (
                v
                for v in ready
                if max(
                    [
                        start[u] + model.latency(graph.op(u))
                        for u in zero_delay_predecessors(graph, v, r)
                    ],
                    default=floor_cs,
                )
                <= cs
            ),
            key=lambda v: (tuple(-x for x in prio[v]), node_index[v]),
        )
        for v in candidates:
            k = grid.find_instance(v, cs)
            if k is None:
                continue
            grid.occupy(v, cs, k)
            start[v] = cs
            instance[v] = k
            ready.discard(v)
            unplaced.discard(v)
            for w in zero_delay_successors(graph, v, r):
                if w in unplaced:
                    pending[w] -= 1
                    if pending[w] == 0:
                        ready.add(w)
        cs += 1
        if cs > guard_limit:  # pragma: no cover - defensive
            raise SchedulingError("conditional scheduler failed to converge")
    return ConditionalSchedule(graph, model, start, instance)


@dataclass(frozen=True)
class ConditionalRotationState:
    """Rotation over conditional schedules (same three-step recipe)."""

    graph: DFG
    model: ResourceModel
    retiming: Retiming
    schedule: ConditionalSchedule
    priority: object = "descendants"

    @classmethod
    def initial(cls, graph: DFG, model: ResourceModel, priority="descendants"):
        sched = conditional_full_schedule(graph, model, priority=priority)
        return cls(graph, model, Retiming.zero(), sched, priority)

    @property
    def length(self) -> int:
        return self.schedule.length

    def down_rotate(self, size: int) -> "ConditionalRotationState":
        if size < 1 or size >= self.length:
            raise RotationError(f"illegal rotation size {size} for length {self.length}")
        lo = self.schedule.first_cs
        moved = [v for v in self.graph.nodes if self.schedule.start[v] - lo < size]
        if not is_down_rotatable(self.graph, moved, self.retiming):
            raise RotationError(f"prefix {moved!r} not rotatable")  # pragma: no cover
        new_r = self.retiming + Retiming.of_set(moved)
        fixed = {
            v: (self.schedule.start[v] - lo - size, self.schedule.instance[v])
            for v in self.graph.nodes
            if v not in moved
        }
        sched = conditional_full_schedule(
            self.graph, self.model, new_r, self.priority, fixed=fixed, floor_cs=0
        )
        return ConditionalRotationState(self.graph, self.model, new_r, sched, self.priority)
