"""The ``rotsched explore`` command and explore-trace profile input."""

import json

from repro.cli import main


def test_explore_prints_frontier_and_counters(capsys):
    assert main(["explore", "diffeq", "-c", "1A1M", "2A2M", "--clocks", "40", "100"]) == 0
    out = capsys.readouterr().out
    assert "diffeq" in out
    assert "cells_total=4" in out
    assert "frontier_size=" in out


def test_exhaustive_mode(capsys):
    assert main([
        "explore", "diffeq", "-c", "1A1M", "--clocks", "40", "100",
        "--mode", "exhaustive",
    ]) == 0
    out = capsys.readouterr().out
    assert "pruned_bound=0" in out


def test_json_output(tmp_path):
    out = tmp_path / "report.json"
    assert main([
        "explore", "diffeq", "-c", "1A1M", "2A2M", "--json", str(out),
    ]) == 0
    payload = json.loads(out.read_text())
    assert payload["mode"] == "explore"
    assert payload["counters"]["cells_total"] == 6  # 2 configs x 3 clocks
    assert "diffeq" in payload["frontiers"]


def test_metrics_output(capsys):
    assert main([
        "explore", "diffeq", "-c", "1A1M", "--clocks", "40", "--metrics",
    ]) == 0
    out = capsys.readouterr().out
    assert "record: explore/v1" in out
    assert "counter solved = 1" in out


def test_trace_then_profile(tmp_path, capsys):
    trace = tmp_path / "explore.jsonl"
    assert main([
        "explore", "diffeq", "biquad", "-c", "1A1M", "2A2M",
        "--clocks", "40", "100", "--trace", str(trace),
    ]) == 0
    capsys.readouterr()
    assert main(["profile", "--input", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "exploration trace" in out
    assert "explore/v1" in out
