"""Reporting: paper-style tables, ASCII Gantt charts, CSV/JSON/Markdown."""

from repro.report.tables import render_results_table, render_schedule, render_table1
from repro.report.gantt import gantt, pipeline_gantt, retiming_stages
from repro.report.svg import pipeline_svg, save_svg, schedule_svg
from repro.report.convergence import (
    ConvergenceCurve,
    RecordingTracker,
    convergence_svg,
    heuristic_sweep,
    phase_size_sweep,
)
from repro.report.export import (
    schedule_records,
    to_csv,
    to_json_records,
    to_markdown,
    write_text,
)

__all__ = [
    "ConvergenceCurve",
    "RecordingTracker",
    "convergence_svg",
    "gantt",
    "heuristic_sweep",
    "phase_size_sweep",
    "pipeline_gantt",
    "render_results_table",
    "render_schedule",
    "render_table1",
    "pipeline_svg",
    "save_svg",
    "schedule_svg",
    "retiming_stages",
    "schedule_records",
    "to_csv",
    "to_json_records",
    "to_markdown",
    "write_text",
]
