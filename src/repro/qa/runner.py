"""The differential fuzz runner: parameter grid, cell execution, reporting.

A fuzz *cell* is one ``(graph spec, resource config, scheduler path)``
triple.  Each cell builds its seeded graph (with deterministic affine
semantics attached), pushes it through the named scheduler path and
checks the full oracle stack from :mod:`repro.qa.oracles`.  On any
failure the graph is delta-debugged to a 1-minimal reproducer
(:mod:`repro.qa.shrink`) and written out as a self-contained bundle
(:mod:`repro.qa.bundle`).

Scheduler paths:

========== ==========================================================
``h1``      rotation scheduling, heuristic 1, incremental engine on
``h2``      rotation scheduling, heuristic 2, incremental engine on
``parity``  h2 under every backend (flat / views / naive, plus vector
            when numpy is importable); bit-identical
``vector``  numpy backend h2 solve, pinned against flat and certified
            (skips clean when numpy is missing — the scalar backends
            stay covered by ``parity``)
``dag_list``   non-pipelined DAG list-scheduling baseline
``modulo``     iterative modulo scheduling baseline (flat + kernel forms)
``retime_ls``  retime-then-list-schedule baseline
``incremental``  random edit script replayed through mutable sessions on
                 all backends; each repair bit-identical + certified
========== ==========================================================
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.scheduler import rotation_schedule
from repro.dfg.graph import DFG
from repro.dfg.retiming import Retiming
from repro.errors import ReproError
from repro.schedule.resources import ResourceModel
from repro.qa.bundle import write_bundle
from repro.qa.oracles import (
    OracleFailure,
    certify_rotation,
    certify_wrapped,
    check_lower_bound,
    check_modulo,
    check_parity,
    check_retiming,
    check_roundtrip,
    check_semantics,
)
from repro.qa.shrink import shrink_graph
from repro.obs.metrics import MetricsRegistry
from repro.suite.random_graphs import build_case_graph, generator_grid

#: scheduler paths a cell can exercise.
PATHS: Tuple[str, ...] = (
    "h1", "h2", "parity", "vector", "dag_list", "modulo", "retime_ls",
    "incremental",
)

#: paths whose cells consume an h2 solve the batched prepass can serve —
#: "h2" certifies the solve itself, "parity" and "vector" pin their
#: vector solve against the scalar backends.  All backends are pinned
#: bit-identical (golden parity suite + the parity cells themselves), so
#: one :func:`repro.core.vector.solve_batch` result per unique
#: ``(graph, config)`` serves every one of these cells verbatim.
BATCHED_PATHS: Tuple[str, ...] = ("h2", "parity", "vector")

#: default resource configs — small enough to stress contention.
DEFAULT_CONFIGS: Tuple[str, ...] = ("1A1M", "2A1M", "2A1Mp")

_CONFIG_RE = re.compile(r"^(\d+)A(\d+)M(P?)$")


def config_model(tag: str) -> ResourceModel:
    """Parse a paper-style config tag (``"2A1Mp"``) into a model."""
    m = _CONFIG_RE.match(tag.replace(" ", "").upper())
    if not m:
        raise ReproError(f"bad resource config tag {tag!r}")
    return ResourceModel.adders_mults(
        int(m.group(1)), int(m.group(2)), pipelined_mults=bool(m.group(3))
    )


@dataclass(frozen=True)
class FuzzCase:
    """One cell of the fuzz grid."""

    generator: str
    params: Dict[str, Any]
    config: str
    path: str

    def tag(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.generator}({inner}) @ {self.config} / {self.path}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "generator": self.generator,
            "params": dict(self.params),
            "config": self.config,
            "path": self.path,
        }

    def build_graph(self) -> DFG:
        return build_case_graph(self.generator, self.params)


@dataclass(frozen=True)
class FailureRecord:
    """A failing cell, its oracle verdicts, and where the bundle went."""

    case: FuzzCase
    failures: Tuple[OracleFailure, ...]
    bundle_path: Optional[str]
    shrunk_nodes: int
    shrunk_edges: int


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    cells: int = 0
    clean: int = 0
    skipped: int = 0
    elapsed: float = 0.0
    failures: List[FailureRecord] = field(default_factory=list)
    #: cells run on the ``vector`` path — the delta the vector backend
    #: added to the grid (0 on pre-vector grids or when filtered out).
    vector_cells: int = 0
    #: ``solve_batch`` dedup accounting when the run was batched.
    batch_stats: Optional[Dict[str, Any]] = None
    #: Unified repro.obs metrics snapshot (schema repro.obs/metrics/v1):
    #: per-cell wall-time timer, per-oracle verdict counters, shrink steps.
    metrics: Optional[Dict[str, Any]] = None

    def summary(self) -> str:
        head = (
            f"fuzz: certified {self.clean}/{self.cells} cells clean "
            f"in {self.elapsed:.1f}s"
        )
        if self.skipped:
            head += f" ({self.skipped} cells skipped by budget)"
        if self.vector_cells:
            head += f"; +{self.vector_cells} vector cells"
        if self.batch_stats:
            s = self.batch_stats
            head += (
                f" (batched: {s['requests']} vector solves -> "
                f"{s['unique']} unique, {s['deduped']} deduped)"
            )
        if self.failures:
            head += f"; {len(self.failures)} FAILING cell(s), bundles written"
        return head


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def run_cell_on_graph(
    graph: DFG, config: str, path: str, precomputed=None
) -> List[OracleFailure]:
    """Run one scheduler path on an already-built graph; full oracle stack.

    ``precomputed`` optionally supplies the cell's h2 RotationResult
    (solved up front by the batched prepass); paths outside
    :data:`BATCHED_PATHS` ignore it.  Any unexpected exception
    becomes a ``crash`` failure so the fuzzer keeps going and the
    shrinker can minimize crashing inputs too.
    """
    model = config_model(config)
    failures = check_roundtrip(graph)
    try:
        failures += _run_path(graph, model, path, precomputed)
    except Exception as exc:
        failures.append(OracleFailure("crash", f"{type(exc).__name__}: {exc}"))
    return failures


def _vector_solve(graph: DFG, model: ResourceModel, precomputed):
    if precomputed is not None:
        return precomputed
    return rotation_schedule(graph, model, heuristic="h2", backend="vector")


def _run_path(
    graph: DFG, model: ResourceModel, path: str, precomputed=None
) -> List[OracleFailure]:
    if path in ("h1", "h2"):
        # A batched prepass may have solved the h2 cell already (the
        # backends are pinned bit-identical, so whose result this is
        # cannot matter); the full oracle stack still runs on it.
        result = precomputed
        if result is None or path != "h2":
            result = rotation_schedule(graph, model, heuristic=path)
        return certify_rotation(graph, model, result)
    if path == "parity":
        from repro.core.vector import have_numpy

        flat = rotation_schedule(graph, model, heuristic="h2", backend="flat")
        views = rotation_schedule(graph, model, heuristic="h2", backend="views")
        naive = rotation_schedule(graph, model, heuristic="h2", backend="naive")
        failures = (
            check_parity(flat, naive, "flat vs naive")
            + check_parity(views, naive, "views vs naive")
        )
        if have_numpy():
            vector = _vector_solve(graph, model, precomputed)
            failures += check_parity(vector, naive, "vector vs naive")
        return failures + certify_rotation(graph, model, flat)
    if path == "vector":
        from repro.core.vector import have_numpy

        if not have_numpy():
            # Clean skip: the scalar backends stay covered by "parity".
            return []
        vector = _vector_solve(graph, model, precomputed)
        flat = rotation_schedule(graph, model, heuristic="h2", backend="flat")
        return (
            check_parity(vector, flat, "vector vs flat")
            + certify_rotation(graph, model, vector)
        )
    if path == "dag_list":
        from repro.baselines.dag_list import dag_list_schedule

        result = dag_list_schedule(graph, model)
        sched = result.schedule
        return certify_wrapped(graph, model, sched, Retiming.zero(), sched.length)
    if path == "modulo":
        from repro.baselines.modulo import modulo_schedule

        result = modulo_schedule(graph, model)
        failures = check_lower_bound(graph, model, result.ii)
        # flat form: starts encode the skew directly, no retiming
        failures += check_modulo(graph, model, result.start, result.ii, None)
        # kernel form: folded starts + realizing retiming drive the simulator
        kernel, r, ii = result.kernel_schedule()
        failures += check_retiming(graph, r)
        if not failures:
            failures += check_semantics(kernel, r, ii)
        return failures
    if path == "retime_ls":
        from repro.baselines.retime_then_schedule import retime_then_schedule

        result = retime_then_schedule(graph, model)
        w = result.wrapped
        return certify_wrapped(graph, model, w.schedule, w.retiming, w.period)
    if path == "incremental":
        from repro.qa.incremental import check_incremental_session

        return check_incremental_session(graph, model)
    raise ReproError(f"unknown scheduler path {path!r}; choose from {PATHS}")


def run_cell(case: FuzzCase) -> List[OracleFailure]:
    """Build the cell's graph and run its scheduler path."""
    return run_cell_on_graph(case.build_graph(), case.config, case.path)


def _run_cell_timed(case: FuzzCase) -> Tuple[float, List[OracleFailure]]:
    """Worker-side :func:`run_cell` that also reports the cell's wall time
    (the parent folds it into the run's metrics)."""
    t0 = time.perf_counter()
    failures = run_cell(case)
    return time.perf_counter() - t0, failures


# ----------------------------------------------------------------------
# grids
# ----------------------------------------------------------------------
def grid_cases(
    seeds: Iterable[int],
    *,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    paths: Sequence[str] = PATHS,
    **grid_kwargs: Any,
) -> List[FuzzCase]:
    """The full cartesian fuzz grid: graph specs x configs x paths."""
    cases = []
    for generator, params in generator_grid(seeds, **grid_kwargs):
        for config in configs:
            for path in paths:
                cases.append(FuzzCase(generator, params, config, path))
    return cases


def smoke_cases() -> List[FuzzCase]:
    """The fixed-seed pre-merge tier: >= 200 cells, bounded runtime.

    This is the grid ``rotsched fuzz --smoke`` certifies before merges;
    the deterministic fuzz-smoke test pins a subset of it in tier 1.
    """
    return grid_cases(seeds=range(3))


def batch_groups(
    cases: Sequence[FuzzCase],
) -> List[Tuple[str, List[Tuple[int, DFG]]]]:
    """Group a grid's vector-solving cells by resource config.

    Returns ``[(config, [(case_index, graph), ...]), ...]`` covering every
    cell whose path consumes an h2 solve (:data:`BATCHED_PATHS`) — the
    cohort :func:`repro.core.vector.solve_batch` collapses because grid
    cells regenerate the same seeded graphs across paths.  Shared by the
    batched fuzz prepass and ``benchmarks/bench_vector_kernels.py``.
    """
    groups: Dict[str, List[Tuple[int, DFG]]] = {}
    for idx, case in enumerate(cases):
        if case.path in BATCHED_PATHS:
            groups.setdefault(case.config, []).append((idx, case.build_graph()))
    return sorted(groups.items())


def _batched_prepass(
    cases: Sequence[FuzzCase], reg: MetricsRegistry, report: FuzzReport
) -> Dict[int, Any]:
    """Solve every vector-solving cell up front through ``solve_batch``.

    Returns ``{case_index: RotationResult}``; groups whose batch solve
    raises are left out so the per-cell path re-runs them and attributes
    the crash to the exact cell.  A no-op (empty map) when numpy is
    missing.
    """
    from repro.core.vector import have_numpy

    if not have_numpy():
        return {}
    from repro.core.vector import solve_batch

    pre: Dict[int, Any] = {}
    totals = {"requests": 0, "unique": 0, "deduped": 0}
    for config, members in batch_groups(cases):
        stats: Dict[str, Any] = {}
        try:
            results = solve_batch(
                [g for _, g in members], config_model(config), stats=stats
            )
        except Exception:
            continue  # the per-cell run will report it with attribution
        for (idx, _g), result in zip(members, results):
            pre[idx] = result
        for key in totals:
            totals[key] += stats.get(key, 0)
    report.batch_stats = totals
    for key, value in totals.items():
        reg.set_counter(f"batch_{key}", value)
    return pre


# ----------------------------------------------------------------------
# the fuzz loop
# ----------------------------------------------------------------------
def _record_failure(
    report: FuzzReport,
    case: FuzzCase,
    graph: DFG,
    failures: List[OracleFailure],
    out_dir: str,
    shrink: bool,
    reg: Optional[MetricsRegistry] = None,
) -> None:
    """Shrink a failing cell's graph, write its bundle, append the record."""
    primary = failures[0].oracle
    if reg is not None:
        for f in failures:
            reg.inc(f"verdict.{f.oracle}")
    minimized = graph
    if shrink:
        sstats: Dict[str, int] = {}
        minimized = shrink_graph(
            graph,
            lambda g: any(
                f.oracle == primary
                for f in run_cell_on_graph(g, case.config, case.path)
            ),
            stats=sstats,
        )
        if reg is not None:
            reg.inc_extra("shrink_steps", sstats.get("steps", 0))
        # re-run on the minimized graph so the bundle records exactly
        # what replaying it will show
        failures = run_cell_on_graph(minimized, case.config, case.path)
    bundle_path = write_bundle(out_dir, minimized, case.as_dict(), failures)
    report.failures.append(
        FailureRecord(
            case=case,
            failures=tuple(failures),
            bundle_path=bundle_path,
            shrunk_nodes=minimized.num_nodes,
            shrunk_edges=minimized.num_edges,
        )
    )


def _run_fuzz_parallel(
    cases: Sequence[FuzzCase],
    jobs: int,
    budget_seconds: Optional[float],
    max_cells: Optional[int],
    out_dir: str,
    shrink: bool,
    t0: float,
) -> Optional[FuzzReport]:
    """Certify cells across a process pool; None when pools are unusable.

    Workers run :func:`run_cell` only (graphs are rebuilt from their seeds
    inside each worker, so nothing unpicklable crosses the boundary); the
    parent collects results *in case order* and does all shrinking and
    bundle writing itself, so failure reports are deterministic and
    path-ordered exactly like the sequential loop's.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        report = FuzzReport()
        reg = MetricsRegistry("repro.qa.runner", mode="parallel", jobs=jobs)
        todo = list(cases if max_cells is None else cases[:max_cells])
        report.skipped = len(cases) - len(todo)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_cell_timed, case) for case in todo]
            for idx, (case, future) in enumerate(zip(todo, futures)):
                if (
                    budget_seconds is not None
                    and time.perf_counter() - t0 > budget_seconds
                ):
                    for late in futures[idx:]:
                        late.cancel()
                    report.skipped += len(todo) - idx
                    break
                cell_seconds, failures = future.result()
                reg.observe("cell", cell_seconds)
                report.cells += 1
                if case.path == "vector":
                    report.vector_cells += 1
                if not failures:
                    report.clean += 1
                    continue
                _record_failure(
                    report, case, case.build_graph(), failures, out_dir, shrink, reg
                )
        report.elapsed = time.perf_counter() - t0
        _finish_metrics(report, reg)
        return report
    except Exception:
        return None


def run_fuzz(
    cases: Sequence[FuzzCase],
    *,
    budget_seconds: Optional[float] = None,
    max_cells: Optional[int] = None,
    out_dir: str = "artifacts/qa",
    shrink: bool = True,
    jobs: Optional[int] = None,
    batched: bool = False,
) -> FuzzReport:
    """Certify every cell; shrink and bundle each failure.

    Args:
        cases: the grid (see :func:`grid_cases` / :func:`smoke_cases`).
        budget_seconds: stop starting new cells past this wall-clock
            budget (cells not reached count as skipped).
        max_cells: hard cap on cells run.
        out_dir: where repro bundles are written.
        shrink: delta-debug failing graphs before bundling (disable for
            speed when triaging interactively).
        jobs: certify cells across this many worker processes (failures
            are still reported deterministically in case order); ``None``
            or ``1`` runs in-process.  Falls back to the sequential loop
            when multiprocessing is unavailable.
        batched: collapse the grid's vector-solving cells (the parity and
            vector paths) into per-config ``solve_batch`` cohorts up
            front, then thread each precomputed result into its cell —
            same verdicts, shared compile/dedup work.  Implies the
            sequential loop (results live in this process); a no-op when
            numpy is unavailable.
    """
    t0 = time.perf_counter()
    if not batched and jobs is not None and jobs > 1 and len(cases) > 1:
        report = _run_fuzz_parallel(
            cases, jobs, budget_seconds, max_cells, out_dir, shrink, t0
        )
        if report is not None:
            return report
    report = FuzzReport()
    reg = MetricsRegistry("repro.qa.runner", mode="sequential")
    pre: Dict[int, Any] = {}
    if batched:
        with reg.timer("batch_prepass"):
            pre = _batched_prepass(cases, reg, report)
    for idx, case in enumerate(cases):
        if max_cells is not None and idx >= max_cells:
            report.skipped = len(cases) - idx
            break
        if budget_seconds is not None and time.perf_counter() - t0 > budget_seconds:
            report.skipped = len(cases) - idx
            break
        graph = case.build_graph()
        with reg.timer("cell"):
            failures = run_cell_on_graph(
                graph, case.config, case.path, pre.get(idx)
            )
        report.cells += 1
        if case.path == "vector":
            report.vector_cells += 1
        if not failures:
            report.clean += 1
            continue
        _record_failure(report, case, graph, failures, out_dir, shrink, reg)
    report.elapsed = time.perf_counter() - t0
    _finish_metrics(report, reg)
    return report


def _finish_metrics(report: FuzzReport, reg: MetricsRegistry) -> None:
    """Fold the run totals into the registry and snapshot it onto the report."""
    reg.set_counter("cells", report.cells)
    reg.set_counter("clean", report.clean)
    reg.set_counter("vector_cells", report.vector_cells)
    reg.set_counter("failing", len(report.failures))
    reg.set_counter("skipped", report.skipped)
    report.metrics = reg.as_dict()
