"""Protocol tests: parsing, canonical forms, fingerprint invariances."""

from __future__ import annotations

import pytest

from repro.dfg.graph import DFG
from repro.schedule.resources import ResourceModel
from repro.serve.protocol import (
    DEFAULT_OPTIONS,
    ServeError,
    canonical_request,
    fingerprint,
    graph_from_canonical,
    model_from_canonical,
    parse_model,
    parse_options,
    parse_request,
    request_fingerprint,
    schedule_bits,
    solve_canonical,
)
from repro.dfg import io as dfg_io


def fp_of(payload):
    return request_fingerprint(payload)


class TestParsing:
    def test_model_tag_round_trip(self):
        model = parse_model("3A2Mp")
        by_name = {u.name: u for u in model.units}
        assert by_name["adder"].count == 3
        assert by_name["mult"].count == 2 and by_name["mult"].pipelined

    def test_model_tag_rejects_garbage(self):
        with pytest.raises(ServeError):
            parse_model("3B2M")
        with pytest.raises(ServeError):
            parse_model({"units": []})  # missing binding

    def test_options_defaults_and_validation(self):
        opts = parse_options(None)
        assert opts == DEFAULT_OPTIONS
        with pytest.raises(ServeError, match="unknown option"):
            parse_options({"workers": 4})  # execution knob, not an option
        with pytest.raises(ServeError):
            parse_options({"heuristic": "h3"})
        with pytest.raises(ServeError):
            parse_options({"backend": "gpu"})
        with pytest.raises(ServeError):
            parse_options({"unfold": 0})

    def test_request_requires_graph_and_config(self):
        with pytest.raises(ServeError, match="missing 'graph'"):
            parse_request({"config": "2A1M"})
        with pytest.raises(ServeError, match="missing 'config'"):
            parse_request({"graph": {"benchmark": "diffeq"}})
        with pytest.raises(ServeError, match="unknown request field"):
            parse_request({"graph": {"benchmark": "diffeq"}, "config": "2A1M",
                           "graf": 1})

    def test_edits_incompatible_with_unfold_and_clock(self):
        base = {"graph": {"benchmark": "diffeq"}, "config": "2A1M",
                "edits": [{"edit": "set_exec_time", "node": 3, "time": 2}]}
        with pytest.raises(ServeError, match="edits"):
            parse_request({**base, "options": {"unfold": 2}})
        with pytest.raises(ServeError, match="edits"):
            parse_request({**base, "options": {"clock": 50}})

    def test_graph_accepts_io_v2_dict(self):
        g = DFG("wire")
        g.add_node("a", "add")
        g.add_node("m", "mul")
        g.add_edge("a", "m", 0)
        g.add_edge("m", "a", 2)
        payload = {"graph": dfg_io.to_json_dict(g), "config": "1A1M"}
        request = parse_request(payload)
        assert sorted(request.graph.nodes) == ["a", "m"]


class TestFingerprint:
    BASE = {"graph": {"benchmark": "diffeq"}, "config": "2A1M"}

    def test_deterministic_and_spelling_independent(self):
        # A benchmark reference and its explicit io dict are one request.
        from repro.suite.registry import get_benchmark

        explicit = {"graph": dfg_io.to_json_dict(get_benchmark("diffeq")),
                    "config": "2A1M"}
        assert fp_of(self.BASE) == fp_of(explicit)
        # ... and so is the bare benchmark-key string shorthand.
        assert fp_of(self.BASE) == fp_of({"graph": "diffeq", "config": "2A1M"})
        # Defaults spelled out == defaults omitted.
        assert fp_of(self.BASE) == fp_of({**self.BASE, "options": {"heuristic": "h2"}})

    def test_every_option_is_load_bearing(self):
        # Flipping any single schedule-changing option must move the hash.
        seen = {fp_of(self.BASE)}
        for options in (
            {"heuristic": "h1"},
            {"priority": "height"},
            {"backend": "views"},
            {"beta": 9},
            {"sigma": 3},
            {"cap": 1},
            {"unfold": 2},
            {"clock": 50},
            {"clock": 50, "chain_rotations": 4},
        ):
            fp = fp_of({**self.BASE, "options": options})
            assert fp not in seen, f"options {options} did not change the fingerprint"
            seen.add(fp)

    def test_model_details_are_load_bearing(self):
        # Count, latency and the pipelined flag each move the hash.
        fps = {fp_of({**self.BASE, "config": tag}) for tag in ("2A1M", "3A1M", "2A2M", "2A1Mp")}
        assert len(fps) == 4
        # ...and a structurally different unit spec with the same tag shape.
        spec = {"units": [{"name": "adder", "count": 2, "latency": 2},
                          {"name": "mult", "count": 1, "latency": 2}],
                "binding": {"add": "adder", "mul": "mult", "const": "adder",
                            "sub": "adder", "input": "adder", "output": "adder"}}
        assert fp_of({**self.BASE, "config": spec}) not in fps

    def test_exec_time_overrides_are_load_bearing(self):
        edited = {**self.BASE,
                  "edits": [{"edit": "set_exec_time", "node": 3, "time": 2}]}
        assert fp_of(edited) != fp_of(self.BASE)

    def test_edit_materialization_collapses_into_plain_request(self):
        # graph spec + edits fingerprints identically to the pre-edited
        # graph sent directly: the canonical form describes the solved
        # state, never the road taken to it.
        from repro.suite.registry import get_benchmark

        g = get_benchmark("diffeq").copy()
        g.set_exec_time(3, 2)
        direct = {"graph": dfg_io.to_json_dict(g), "config": "2A1M"}
        edited = {**self.BASE,
                  "edits": [{"edit": "set_exec_time", "node": 3, "time": 2}]}
        assert fp_of(direct) == fp_of(edited)

    def test_simulation_only_attrs_do_not_move_the_hash(self):
        # funcs / edge inits / graph name are simulation semantics, not
        # scheduling inputs — requests differing only there must collide.
        g1 = DFG("one")
        g1.add_node("a", "add", func=lambda x: x + 1.0)
        g1.add_node("m", "mul")
        g1.add_edge("a", "m", 0)
        g1.add_edge("m", "a", 1, init=[0.5])
        g2 = DFG("two")
        g2.add_node("a", "add")
        g2.add_node("m", "mul", func=lambda x: 2.0 * x)
        g2.add_edge("a", "m", 0)
        g2.add_edge("m", "a", 1, init=[9.9])
        p1 = {"graph": dfg_io.to_json_dict(g1), "config": "1A1M"}
        p2 = {"graph": dfg_io.to_json_dict(g2), "config": "1A1M"}
        assert fp_of(p1) == fp_of(p2)


class TestCanonicalRoundTrip:
    def test_worker_rebuild_matches_signature(self):
        # graph_from_canonical must reproduce exactly the state the
        # fingerprint hashed: re-canonicalizing the rebuilt graph is a
        # fixed point.
        payload = {"graph": {"benchmark": "elliptic"}, "config": "3A2M",
                   "options": {"priority": "combined"}}
        request = parse_request(payload)
        canonical = canonical_request(request)
        rebuilt = graph_from_canonical(canonical)
        model = model_from_canonical(canonical)
        from repro.serve.protocol import SolveRequest

        again = canonical_request(
            SolveRequest(graph=rebuilt, model=model, options=request.options)
        )
        assert again == canonical
        assert fingerprint(again) == fingerprint(canonical)

    def test_solve_canonical_modes(self):
        base = {"graph": {"benchmark": "diffeq"}, "config": "2A1M"}
        rotation = solve_canonical(canonical_request(parse_request(base)))
        assert rotation["mode"] == "rotation" and rotation["length"] > 0
        assert set(rotation["search"]) == {"initial_length", "optimal_count", "rotations"}
        chained = solve_canonical(canonical_request(parse_request(
            {**base, "options": {"clock": 50, "chain_rotations": 4}}
        )))
        assert chained["mode"] == "chained" and chained["cs_length"] == 50
        unfolded = solve_canonical(canonical_request(parse_request(
            {**base, "options": {"unfold": 2}}
        )))
        assert len(unfolded["starts"]) == 22  # 11 diffeq nodes x 2

    def test_schedule_bits_strips_trajectory(self):
        payload = {"graph": {"benchmark": "diffeq"}, "config": "2A1M"}
        result = solve_canonical(canonical_request(parse_request(payload)))
        bits = schedule_bits({**result, "session": {"repaired": True}})
        assert "search" not in bits and "session" not in bits
        assert bits["starts"] == result["starts"]
