"""Tests of the package surface: exports, errors, versioning, docstrings."""

import importlib
import inspect

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.dfg",
            "repro.schedule",
            "repro.core",
            "repro.baselines",
            "repro.bounds",
            "repro.suite",
            "repro.sim",
            "repro.report",
            "repro.binding",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_tutorial_quickstart_names_exist(self):
        # the names README/tutorial lean on
        for name in (
            "DFG", "DFGBuilder", "ResourceModel", "rotation_schedule",
            "verify_pipeline", "select_schedule", "unfold", "diffeq",
            "elliptic", "iteration_bound", "critical_path_length",
        ):
            assert hasattr(repro, name), name


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_zero_delay_cycle_carries_witness(self):
        exc = errors.ZeroDelayCycleError(["a", "b"])
        assert exc.cycle == ["a", "b"]
        assert "a -> b" in str(exc)

    def test_catching_the_base_class_works(self):
        from repro import DFG

        g = DFG()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        from repro.dfg import topological_order

        with pytest.raises(errors.ReproError):
            topological_order(g)


class TestDocstrings:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.dfg.graph", "repro.dfg.retiming", "repro.dfg.analysis",
            "repro.dfg.iteration_bound", "repro.dfg.unfold",
            "repro.schedule.resources", "repro.schedule.list_scheduler",
            "repro.schedule.verify", "repro.schedule.chaining",
            "repro.schedule.conditional", "repro.core.rotation",
            "repro.core.phases", "repro.core.wrapping", "repro.core.depth",
            "repro.core.nested", "repro.core.scheduler",
            "repro.baselines.modulo", "repro.baselines.exact",
            "repro.binding.lifetimes", "repro.binding.datapath",
            "repro.sim.executor", "repro.report.svg",
        ],
    )
    def test_every_module_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 60, module

    def test_public_classes_documented(self):
        from repro import (
            DFG, DFGBuilder, Retiming, ResourceModel, Schedule,
            RotationScheduler, WrappedSchedule,
        )

        for cls in (DFG, DFGBuilder, Retiming, ResourceModel, Schedule,
                    RotationScheduler, WrappedSchedule):
            assert cls.__doc__, cls.__name__
            public = [
                m for name, m in inspect.getmembers(cls, inspect.isfunction)
                if not name.startswith("_")
            ]
            undocumented = [m.__name__ for m in public if not m.__doc__]
            # tolerate tiny helpers but not a wholesale lack of docs
            assert len(undocumented) <= max(1, len(public) // 4), (
                cls.__name__, undocumented,
            )
