"""Unit tests for repro.obs.metrics: registry, schema, engine adapter."""

from repro.core.scheduler import rotation_schedule
from repro.obs import METRICS_SCHEMA, MetricsRegistry, engine_metrics, render_metrics
from repro.qa.runner import config_model
from repro.suite import get_benchmark


class TestMetricsRegistry:
    def test_counters_and_extras(self):
        reg = MetricsRegistry("test.source", mode="unit")
        reg.inc("a")
        reg.inc("a", 2)
        reg.set_counter("b", 7)
        reg.inc_extra("x", 4)
        reg.set_extra("y", 0)
        snap = reg.as_dict()
        assert snap["schema"] == METRICS_SCHEMA
        assert snap["source"] == "test.source"
        assert snap["mode"] == "unit"
        assert snap["counters"] == {"a": 3, "b": 7}
        assert snap["extras"] == {"x": 4, "y": 0}

    def test_gauges(self):
        reg = MetricsRegistry("g")
        reg.gauge("ratio", 0.5)
        reg.gauge("ratio", 0.75)
        assert reg.as_dict()["gauges"] == {"ratio": 0.75}

    def test_timer_accumulates(self):
        reg = MetricsRegistry("t")
        with reg.timer("cell"):
            pass
        reg.observe("cell", 0.25)
        t = reg.as_dict()["timers"]["cell"]
        assert t["count"] == 2
        assert t["total_s"] >= 0.25
        assert t["min_s"] <= t["max_s"]
        assert t["max_s"] >= 0.25

    def test_merge(self):
        a = MetricsRegistry("a")
        b = MetricsRegistry("b")
        a.inc("n", 1)
        b.inc("n", 2)
        b.observe("w", 0.1)
        a.merge(b)
        snap = a.as_dict()
        assert snap["counters"]["n"] == 3
        assert snap["timers"]["w"]["count"] == 1

    def test_render_metrics_text(self):
        reg = MetricsRegistry("r", backend="flat")
        reg.inc("rotations", 5)
        reg.observe("cell", 0.5)
        text = render_metrics(reg.as_dict())
        assert "rotations" in text and "cell" in text


class TestEngineMetrics:
    def test_engine_snapshot_schema(self):
        graph = get_benchmark("biquad")
        model = config_model("2A2M")
        result = rotation_schedule(graph, model, heuristic="h2", backend="flat")
        snap = result.engine_metrics
        assert snap is not None
        assert snap["schema"] == METRICS_SCHEMA
        assert snap["source"] == "repro.core.flat.engine"
        assert snap["backend"] == "flat"
        assert snap["counters"] == result.engine_stats
        assert snap["counters"]["rotations"] > 0
        # flat-only extras surfaced per satellite (b)
        for key in ("chain_tip_reuses", "wrap_interval_collapses", "dirty_walk_aborts"):
            assert key in snap["extras"]

    def test_views_backend_has_no_extras(self):
        graph = get_benchmark("diffeq")
        model = config_model("2A2M")
        result = rotation_schedule(graph, model, heuristic="h1", backend="views")
        snap = result.engine_metrics
        assert snap["source"] == "repro.core.engine"
        assert snap["backend"] == "views"
        assert snap["extras"] == {}

    def test_naive_backend_has_no_metrics(self):
        graph = get_benchmark("diffeq")
        model = config_model("2A2M")
        result = rotation_schedule(graph, model, heuristic="h1", backend="naive")
        assert result.engine_metrics is None

    def test_adapter_shapes_raw_stats(self):
        snap = engine_metrics({"a": 1}, "flat", "src.x", extras={"e": 2})
        assert snap["counters"] == {"a": 1}
        assert snap["extras"] == {"e": 2}
        assert snap["backend"] == "flat"


class TestFuzzRunnerMetrics:
    def test_fuzz_report_carries_metrics(self, tmp_path):
        from repro.qa.runner import run_fuzz, smoke_cases

        cases = smoke_cases()[:4]
        report = run_fuzz(cases, out_dir=str(tmp_path), shrink=False)
        snap = report.metrics
        assert snap is not None
        assert snap["schema"] == METRICS_SCHEMA
        assert snap["source"] == "repro.qa.runner"
        assert snap["counters"]["cells"] == report.cells
        cell = snap["timers"]["cell"]
        assert cell["count"] == report.cells
        assert cell["total_s"] >= 0
