"""Determinism: identical inputs give identical outputs, end to end.

Reproducibility is a headline requirement for a reproduction package:
every algorithm here is seedless-deterministic (insertion-order data
structures, explicit tie-breaks), so re-running any experiment must give
byte-identical artifacts.
"""

import pytest

from repro.schedule import ResourceModel
from repro.core import rotation_schedule
from repro.baselines import modulo_schedule, retime_then_schedule
from repro.binding import emit_datapath, select_schedule
from repro.report import render_schedule
from repro.report.svg import schedule_svg
from repro.suite import BENCHMARKS, get_benchmark


class TestDeterminism:
    @pytest.mark.parametrize("bench", list(BENCHMARKS))
    def test_rotation_schedule_is_deterministic(self, bench):
        model = ResourceModel.adders_mults(2, 2)
        a = rotation_schedule(get_benchmark(bench), model, beta=16)
        b = rotation_schedule(get_benchmark(bench), model, beta=16)
        assert a.length == b.length
        assert a.schedule.start_map == b.schedule.start_map
        assert dict(a.retiming.items_nonzero()) == dict(b.retiming.items_nonzero())
        assert len(a.alternates) == len(b.alternates)

    def test_baselines_are_deterministic(self):
        g1, g2 = get_benchmark("elliptic"), get_benchmark("elliptic")
        model = ResourceModel.adders_mults(2, 2)
        assert modulo_schedule(g1, model).start == modulo_schedule(g2, model).start
        assert (
            retime_then_schedule(g1, model).schedule.start_map
            == retime_then_schedule(g2, model).schedule.start_map
        )

    def test_artifacts_are_byte_identical(self):
        model = ResourceModel.adders_mults(2, 3)

        def build():
            res = rotation_schedule(get_benchmark("biquad"), model, beta=12)
            best = select_schedule(res).best
            return (
                render_schedule(best.schedule, model, retiming=best.retiming),
                schedule_svg(best.schedule, best.retiming, period=best.period),
                emit_datapath(best, module_name="bq").verilog,
            )

        assert build() == build()

    def test_q_order_is_stable(self):
        model = ResourceModel.unit_time(1, 1)
        a = rotation_schedule(get_benchmark("diffeq"), model)
        b = rotation_schedule(get_benchmark("diffeq"), model)
        assert [w.schedule.start_map for w in a.alternates] == [
            w.schedule.start_map for w in b.alternates
        ]
