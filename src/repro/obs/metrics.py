"""The unified metrics registry: counters, gauges and timers, one schema.

Every metrics producer in the repo — the views engine, the flat engine,
the QA fuzz runner — reports through this schema so downstream consumers
(the CLI, perfcheck, future serve/explore layers) read one shape::

    {
      "schema": "repro.obs/metrics/v1",
      "source": "repro.core.flat.engine",
      "backend": "flat",                  # producers may add tags
      "counters": {"rotations": 1173, ...},
      "gauges":   {"views_cached": 18, ...},
      "timers":   {"cell": {"count": 378, "total_s": 5.9,
                             "min_s": ..., "max_s": ...}, ...},
      "extras":   {"chain_tip_reuses": 1156, ...}   # per-source specifics
    }

``counters`` are monotonically increasing integers, ``gauges`` are
point-in-time values, ``timers`` accumulate wall-time observations, and
``extras`` holds source-specific counters that do not exist for every
producer (the flat backend's chain-tip protocol, the fuzz runner's shrink
steps) — split out so a consumer can tell shared semantics from
backend-specific ones without guessing from key names.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

#: Version tag embedded in every registry snapshot.
METRICS_SCHEMA = "repro.obs/metrics/v1"


class _TimerHandle:
    """Context manager that observes one interval into a timer stat."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """One producer's counters/gauges/timers, snapshot-able as a dict."""

    def __init__(self, source: str = "", **tags: Any):
        self.source = source
        self.tags: Dict[str, Any] = dict(tags)
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Any] = {}
        self.timers: Dict[str, Dict[str, float]] = {}
        self.extras: Dict[str, int] = {}

    # -- counters ------------------------------------------------------
    def inc(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def set_counter(self, name: str, value: int) -> None:
        self.counters[name] = value

    # -- extras (source-specific counters) -----------------------------
    def inc_extra(self, name: str, delta: int = 1) -> None:
        self.extras[name] = self.extras.get(name, 0) + delta

    def set_extra(self, name: str, value: int) -> None:
        self.extras[name] = value

    # -- gauges --------------------------------------------------------
    def gauge(self, name: str, value: Any) -> None:
        self.gauges[name] = value

    # -- timers --------------------------------------------------------
    def timer(self, name: str) -> _TimerHandle:
        """``with registry.timer("cell"): ...`` accumulates one observation."""
        return _TimerHandle(self, name)

    def observe(self, name: str, seconds: float) -> None:
        stat = self.timers.get(name)
        if stat is None:
            self.timers[name] = {
                "count": 1,
                "total_s": seconds,
                "min_s": seconds,
                "max_s": seconds,
            }
            return
        stat["count"] += 1
        stat["total_s"] += seconds
        if seconds < stat["min_s"]:
            stat["min_s"] = seconds
        if seconds > stat["max_s"]:
            stat["max_s"] = seconds

    # -- snapshot ------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """The self-describing snapshot (see module docstring for shape)."""
        out: Dict[str, Any] = {"schema": METRICS_SCHEMA, "source": self.source}
        out.update(self.tags)
        out["counters"] = dict(self.counters)
        out["gauges"] = dict(self.gauges)
        out["timers"] = {k: dict(v) for k, v in self.timers.items()}
        out["extras"] = dict(self.extras)
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's stats in (counters/extras add, gauges
        overwrite, timers combine observation streams)."""
        for k, v in other.counters.items():
            self.inc(k, v)
        for k, v in other.extras.items():
            self.inc_extra(k, v)
        self.gauges.update(other.gauges)
        for k, stat in other.timers.items():
            mine = self.timers.get(k)
            if mine is None:
                self.timers[k] = dict(stat)
                continue
            mine["count"] += stat["count"]
            mine["total_s"] += stat["total_s"]
            mine["min_s"] = min(mine["min_s"], stat["min_s"])
            mine["max_s"] = max(mine["max_s"], stat["max_s"])


def engine_metrics(
    stats: Dict[str, int],
    backend: str,
    source: str,
    extras: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Absorb an :class:`~repro.core.engine.EngineStats` snapshot into the
    unified schema.

    ``stats`` supplies the counters every backend shares; ``extras`` the
    backend-specific ones (the flat engine's chain-tip / wrap-interval /
    dirty-walk counters), kept apart so ``stats()`` consumers and metrics
    consumers agree on which semantics are portable across backends.
    """
    reg = MetricsRegistry(source, backend=backend)
    for k, v in stats.items():
        reg.set_counter(k, v)
    for k, v in (extras or {}).items():
        reg.set_extra(k, v)
    return reg.as_dict()


#: Record tag of an exploration metrics snapshot.
EXPLORE_RECORD = "explore/v1"

#: The counters every ``explore/v1`` record must carry (in this order).
EXPLORE_COUNTERS = (
    "cells_total",
    "solved",
    "pruned_bound",
    "pruned_dominated",
    "seeded_warm",
    "steal_count",
    "frontier_size",
)


def explore_metrics(
    counters: Dict[str, int],
    mode: str = "explore",
    elapsed: Optional[float] = None,
) -> Dict[str, Any]:
    """An ``explore/v1`` record in the unified metrics schema.

    ``counters`` is an :class:`repro.explore.ExploreReport` counter dict;
    the :data:`EXPLORE_COUNTERS` are always present (zero-filled), any
    further keys (``dedup_hits``, ``rounds``) ride along as extras.
    """
    reg = MetricsRegistry("repro.explore", record=EXPLORE_RECORD, mode=mode)
    for key in EXPLORE_COUNTERS:
        reg.set_counter(key, int(counters.get(key, 0)))
    for key in sorted(set(counters) - set(EXPLORE_COUNTERS)):
        reg.set_extra(key, int(counters[key]))
    if elapsed is not None:
        reg.observe("explore", elapsed)
    return reg.as_dict()


def render_metrics(snapshot: Dict[str, Any], indent: str = "  ") -> str:
    """Human-readable one-value-per-line rendering of a snapshot."""
    lines = [f"metrics [{snapshot.get('source', '?')}]"]
    for tag in sorted(
        k
        for k in snapshot
        if k not in ("schema", "source", "counters", "gauges", "timers", "extras")
    ):
        lines.append(f"{indent}{tag}: {snapshot[tag]}")
    for section in ("counters", "extras", "gauges"):
        for k in sorted(snapshot.get(section, ())):
            lines.append(f"{indent}{section[:-1]} {k} = {snapshot[section][k]}")
    for k in sorted(snapshot.get("timers", ())):
        stat = snapshot["timers"][k]
        lines.append(
            f"{indent}timer {k}: n={stat['count']} total={stat['total_s']:.4f}s "
            f"min={stat['min_s']:.4f}s max={stat['max_s']:.4f}s"
        )
    return "\n".join(lines)
