"""Reference (non-pipelined) execution of a DFG's loop semantics.

Each node carries a Python callable (``DFG.func``); edge ``(u, v)`` with
``d`` delays feeds ``u``'s value of iteration ``i - d`` into ``v`` at
iteration ``i`` — for ``i < d`` the edge's declared initial register
contents are used (oldest first), defaulting to 0.0.

The reference executor evaluates iterations strictly one at a time in
zero-delay topological order — the semantics of the *unpipelined* loop.
The pipeline executor in :mod:`repro.sim.executor` must reproduce these
value streams exactly; that equivalence is the strongest correctness
statement about rotation scheduling this library can test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.dfg.graph import DFG, Edge, NodeId
from repro.dfg.analysis import topological_order
from repro.errors import SimulationError


def validate_edge_inits(graph: DFG) -> None:
    """Reject declared initial values that cannot cover their edge's delay.

    ``DFG.add_edge`` enforces ``len(init) == delay`` at construction time,
    but graphs arriving through other channels (hand-built JSON, direct
    ``_edge_init`` manipulation) may disagree; without this check a short
    tuple surfaces as a bare ``IndexError`` deep inside ``run``.
    """
    for e in graph.edges:
        init = graph.edge_init(e)
        if init is not None and len(init) != e.delay:
            raise SimulationError(
                f"edge {e}: {len(init)} initial values for {e.delay} delays"
            )


def operand_value(
    graph: DFG,
    edge: Edge,
    iteration: int,
    history: Dict[NodeId, List[Any]],
) -> Any:
    """The value flowing along ``edge`` into iteration ``iteration``."""
    src_iter = iteration - edge.delay
    if src_iter >= 0:
        values = history[edge.src]
        if src_iter >= len(values):
            raise SimulationError(
                f"edge {edge}: value of {edge.src!r}@it{src_iter} not computed yet"
            )
        return values[src_iter]
    init = graph.edge_init(edge)
    if init is None:
        return 0.0
    return init[iteration]  # index i for i < d, oldest first


class ReferenceExecutor:
    """Evaluates a DFG iteration-by-iteration (no pipelining)."""

    def __init__(self, graph: DFG):
        for v in graph.nodes:
            if graph.func(v) is None:
                raise SimulationError(
                    f"node {v!r} has no func — attach semantics to simulate"
                )
        validate_edge_inits(graph)
        self.graph = graph
        self._order = topological_order(graph)

    def run(self, iterations: int) -> Dict[NodeId, List[Any]]:
        """Execute ``iterations`` loop iterations; returns per-node streams."""
        if iterations < 0:
            raise SimulationError("negative iteration count")
        graph = self.graph
        history: Dict[NodeId, List[Any]] = {v: [] for v in graph.nodes}
        for i in range(iterations):
            for v in self._order:
                args = [
                    operand_value(graph, e, i, history) for e in graph.in_edges(v)
                ]
                history[v].append(graph.func(v)(*args))
        return history


def reference_run(graph: DFG, iterations: int) -> Dict[NodeId, List[Any]]:
    """One-call reference execution."""
    return ReferenceExecutor(graph).run(iterations)
