"""Unit tests for the retime-then-schedule (Cathedral-II style) baseline."""

import pytest

from repro.dfg import DFG, Timing, critical_path_length, iteration_bound_ceil
from repro.schedule import ResourceModel
from repro.baselines import feas_retiming, min_period_retiming, retime_then_schedule
from repro.suite import all_benchmarks, diffeq, elliptic, PAPER_TIMING


class TestFeas:
    def test_feasible_period_found(self):
        g = diffeq()
        r = feas_retiming(g, 7, PAPER_TIMING)  # CP itself is feasible
        assert r is not None
        assert r.is_legal(g)
        assert critical_path_length(g, PAPER_TIMING, r) <= 7

    def test_reduces_cp_below_original(self):
        g = diffeq()
        r = feas_retiming(g, 6, PAPER_TIMING)
        assert r is not None
        assert critical_path_length(g, PAPER_TIMING, r) <= 6

    def test_infeasible_below_iteration_bound(self):
        g = diffeq()
        # IB=6: no retiming achieves CP 5
        assert feas_retiming(g, 5, PAPER_TIMING) is None

    def test_min_period_is_minimal_and_above_ib(self):
        """The binary-searched period is locally minimal (FEAS fails one
        below) and never beats the iteration bound.  Note the min *retimed
        CP* can exceed IB — e.g. the lattice filter retimes to CP 3 while
        wrapped schedules reach period 2: a 2-cycle multiplier with a
        zero-delay fan-in/out can never fit a CP-2 DAG."""
        expected_min_cp = {"elliptic": 16, "diffeq": 6, "lattice": 3, "allpole": 8, "biquad": 4}
        for g in all_benchmarks():
            r = min_period_retiming(g, PAPER_TIMING)
            cp = critical_path_length(g, PAPER_TIMING, r)
            ib = iteration_bound_ceil(g, PAPER_TIMING)
            assert cp >= ib, g.name
            assert feas_retiming(g, cp - 1, PAPER_TIMING) is None, g.name
            assert cp == expected_min_cp[g.name], g.name


class TestRetimeThenSchedule:
    def test_result_is_legal(self):
        model = ResourceModel.adders_mults(2, 2)
        res = retime_then_schedule(diffeq(), model)
        assert res.schedule.is_legal_dag_schedule(res.retiming)
        assert res.wrapped.violations() == []
        assert res.length >= 6

    def test_resource_blindness_hurts_under_tight_resources(self):
        """The paper's point about Cathedral II: retiming chosen without
        resources can be a poor fit — RS is never worse on the elliptic
        filter under tight resources."""
        from repro.core import rotation_schedule

        model = ResourceModel.adders_mults(2, 1)
        rts = retime_then_schedule(elliptic(), model)
        rs = rotation_schedule(elliptic(), model)
        assert rs.length <= rts.length

    def test_clock_period_reported(self):
        model = ResourceModel.adders_mults(2, 2)
        res = retime_then_schedule(diffeq(), model)
        assert res.clock_period == 6

    def test_depth_positive(self):
        model = ResourceModel.adders_mults(2, 2)
        res = retime_then_schedule(diffeq(), model)
        assert res.depth >= 1

    def test_acyclic_graph(self, diamond):
        model = ResourceModel.adders_mults(1, 1)
        res = retime_then_schedule(diamond, model)
        assert res.wrapped.violations() == []
