"""Deeper structural pinning of the benchmark reconstructions.

Beyond Table 1 (op counts, CP, IB), these tests pin the structural facts
the module docstrings claim — critical cycles, slack-free arcs, register
counts — so that any future edit to a benchmark graph that silently
changes its scheduling behaviour fails loudly here.
"""

import pytest
from fractions import Fraction

from repro.dfg import critical_cycle, critical_path_nodes, cycle_ratios
from repro.suite import PAPER_TIMING, allpole, biquad, diffeq, elliptic, lattice


class TestDiffeq:
    def test_loop_registers(self):
        assert diffeq().total_delay() == 8

    def test_critical_cycle_is_the_u_recurrence(self):
        ratio, cycle = critical_cycle(diffeq(), PAPER_TIMING)
        assert ratio == 6
        assert set(cycle) == {6, 0, 3, 5}

    def test_critical_path_is_gated_mult_chain(self):
        assert critical_path_nodes(diffeq(), PAPER_TIMING) == [10, 1, 3, 5, 6]

    def test_control_gating_edges(self):
        g = diffeq()
        gated = {e.dst for e in g.out_edges(10) if e.delay == 0}
        assert gated == {1, 0, 2, 8, 7}


class TestElliptic:
    def test_loop_registers(self):
        assert elliptic().total_delay() == 10

    def test_critical_cycle_is_the_adaptor_chain(self):
        ratio, cycle = critical_cycle(elliptic(), PAPER_TIMING)
        assert ratio == 16
        assert {"c1", "M1", "M2", "c12"} <= set(cycle)

    def test_slack_free_arcs_create_ratio_16_cycles(self):
        """f1, f2 and the g1-g2 arc each close a second ratio-16 cycle —
        the structure that forces 17 CS with two adders."""
        ratios = cycle_ratios(elliptic(), PAPER_TIMING)
        critical_members = [set(c) for r, c in ratios if r == 16]
        assert any("f1" in c for c in critical_members)
        assert any("f2" in c for c in critical_members)
        assert any({"g1", "g2"} <= c for c in critical_members)

    def test_head_gives_cp_17(self):
        path = critical_path_nodes(elliptic(), PAPER_TIMING)
        assert path[0] in ("h1", "f1", "f2")
        assert len(set(path)) == len(path)


class TestLattice:
    def test_all_cycles_at_most_ratio_2(self):
        assert all(r <= 2 for r, _ in cycle_ratios(lattice(), PAPER_TIMING))

    def test_stage_recursions_are_critical(self):
        critical = [set(c) for r, c in cycle_ratios(lattice(), PAPER_TIMING) if r == 2]
        for i in range(1, 5):
            assert any({f"mA{i}", f"f{i}", f"mB{i}", f"b{i}"} <= c for c in critical), i

    def test_output_sum_path_is_cp(self):
        path = critical_path_nodes(lattice(), PAPER_TIMING)
        assert path[-1] == "o4"


class TestAllpole:
    def test_slack_free_feedbacks_share_the_a1_slot(self):
        """u1 and v1 both close ratio-8 cycles through MB — the two arcs
        that pin three additions to one slot of the 8-step cadence."""
        critical = [set(c) for r, c in cycle_ratios(allpole(), PAPER_TIMING) if r == 8]
        assert any("u1" in c for c in critical)
        assert any("v1" in c for c in critical)
        assert any({"a1", "a2", "MA", "a3", "a4", "MB"} == c for c in critical)

    def test_cp_spans_head_core_tail(self):
        path = critical_path_nodes(allpole(), PAPER_TIMING)
        assert path[0] == "h1" and path[-1] == "t3"
        assert len(path) == 12


class TestBiquad:
    def test_two_section_recursions(self):
        critical = [set(c) for r, c in cycle_ratios(biquad(), PAPER_TIMING) if r == 4]
        assert any({"ma1_1", "s1a", "s1b"} == c for c in critical)
        assert any({"ma1_2", "s2a", "s2b"} == c for c in critical)

    def test_global_feedback_is_slack(self):
        ratios = sorted(r for r, _ in cycle_ratios(biquad(), PAPER_TIMING))
        assert max(ratios) == 4
        assert Fraction(3, 1) in ratios  # the o -> h outer loop (12 units / 4 delays)

    def test_sections_decoupled_by_pipeline_register(self):
        g = biquad()
        coupling = [e for e in g.edges if e.src == "y1" and e.dst == "s2a"]
        assert len(coupling) == 1 and coupling[0].delay == 1
