"""Ablation: **Heuristic 1 vs Heuristic 2** (paper Section 5 / Section 6:
"In most cases, the two heuristics get the same results. However, the
second heuristic gives better schedules in one of the cases [elliptic
2A 1Mp].").

The sweep runs through :func:`repro.explore.run_grid` — the same
cell-execution path the design-space explorer uses — with the heuristic
as a grid axis instead of a hand-rolled pair of calls.
"""

import pytest

from repro.explore import build_grid, cell_model, run_grid

from conftest import record, run_once

CASES = [
    ("diffeq", "1A2M"),
    ("elliptic", "3A2M"),
    ("elliptic", "2A1Mp"),   # the paper's H2-wins case
    ("allpole", "2A1M"),
    ("biquad", "2A3M"),
]


@pytest.mark.parametrize("bench,tag", CASES)
def test_h1_vs_h2(benchmark, bench, tag):
    cells = build_grid([bench], [tag], heuristics=("h1", "h2"))

    h1, h2 = run_once(benchmark, run_grid, cells, cold=True)
    record(
        benchmark,
        bench=bench,
        resources=cell_model(h1.spec).label(),
        H1=h1.length,
        H2=h2.length,
    )
    # H2 never loses to H1 on the paper suite
    assert h2.length <= h1.length


@pytest.mark.parametrize("priority", ["descendants", "height", "combined"])
def test_priority_ablation(benchmark, priority):
    """Extension ablation: the list priority barely matters once rotation
    is in play — all reach the elliptic 3A 2M optimum."""
    from repro.core import rotation_schedule
    from repro.suite import get_benchmark

    from conftest import model_for

    graph = get_benchmark("elliptic")
    model = model_for("3A2M")
    res = run_once(benchmark, rotation_schedule, graph, model, priority=priority)
    record(benchmark, priority=priority, length=res.length)
    assert res.length == 16
