"""Command-line interface: ``rotsched`` (or ``python -m repro.cli``).

Subcommands:

* ``schedule`` — rotation-schedule a benchmark (or a JSON DFG file) under
  a resource configuration and print the paper-style table.
* ``inspect`` — print a DFG's characteristics (ops, CP, IB, cycles).
* ``bench`` — run one benchmark across a list of resource configurations
  and print a Table 2/3-style matrix with lower bounds and baselines.
* ``simulate`` — schedule, then run the pipelined execution against the
  sequential reference and report the outcome.
* ``exact`` — prove the optimal initiation interval by branch and bound
  (small graphs).
* ``emit`` — schedule, bind registers, and write a Verilog datapath
  skeleton.
* ``svg`` — schedule and write an SVG Gantt chart.
* ``unfold`` — unfold a graph by a factor and write it as JSON.
* ``session`` — open a MutableSchedulingSession on a DFG, replay a JSON
  edit script (or a pinned script name), and print the repaired schedule
  after every edit (``--compare`` times each repair against the
  from-scratch solve of the edited graph).
* ``fuzz`` — differential fuzzing: push seeded random graphs through
  every scheduler path and certify them against the oracle stack
  (``--smoke`` is the bounded pre-merge tier; ``--jobs N`` fans cells out
  across worker processes; failures are delta-debugged to minimal repro
  bundles under ``artifacts/qa/``).
* ``trace`` — schedule under an active span tracer and export the span
  tree as JSONL (``repro.obs`` trace schema v1).
* ``profile`` — per-span self/cumulative profile of a scheduling run (or
  of a previously exported ``--input trace.jsonl``).
* ``perfcheck`` — re-run the pinned golden cells of the committed
  ``BENCH_*.json`` envelopes and fail on wall-time or counter
  regressions.
* ``gate`` — the single pre-merge entry point: tier-1 pytest, the golden
  engine-parity suite, ``fuzz --smoke --jobs 4``, ``perfcheck --smoke``,
  and a trace smoke (trace one cell, validate the schema).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.dfg import io as dfg_io
from repro.dfg.graph import DFG
from repro.dfg.analysis import critical_path_length
from repro.dfg.iteration_bound import iteration_bound
from repro.schedule.resources import ResourceModel
from repro.core.engine import BACKENDS
from repro.core.scheduler import rotation_schedule
from repro.bounds.lower_bounds import combined_lower_bound
from repro.suite.registry import BENCHMARKS, PAPER_TIMING, get_benchmark
from repro.report.tables import render_results_table, render_schedule
from repro.report.gantt import gantt


def _load_graph(spec: str) -> DFG:
    if spec in BENCHMARKS:
        return get_benchmark(spec)
    return dfg_io.load(spec)


def parse_config(text: str) -> Tuple[ResourceModel, str]:
    """Parse a paper-style config tag like ``3A2M`` or ``2A 1Mp``."""
    compact = text.replace(" ", "").upper()
    try:
        a_idx = compact.index("A")
        adders = int(compact[:a_idx])
        rest = compact[a_idx + 1 :]
        pipelined = rest.endswith("P")
        if pipelined:
            rest = rest[:-1]
        if not rest.endswith("M"):
            raise ValueError
        mults = int(rest[:-1])
    except (ValueError, IndexError):
        raise SystemExit(
            f"bad resource config {text!r}: expected like '3A2M' or '2A1Mp'"
        ) from None
    model = ResourceModel.adders_mults(adders, mults, pipelined_mults=pipelined)
    return model, model.label()


def _sched_kwargs(args: argparse.Namespace) -> dict:
    """Map the shared scheduler flags to ``rotation_schedule`` kwargs.

    Every subcommand that rotation-schedules threads the same flags
    through this one helper, so the bench matrix exercises exactly the
    code path the ``schedule`` command reports.
    """
    return {
        "heuristic": args.heuristic,
        "beta": args.beta,
        "priority": args.priority,
        "use_engine": not args.no_engine,
        "workers": args.workers,
        # An explicit --backend wins over --no-engine; without it the
        # scheduler resolves the backend from use_engine ("flat"/"naive").
        "backend": args.backend,
    }


def _print_engine_stats(result) -> None:
    """Shared ``--engine-stats`` reporting for schedule/bench/simulate.

    Never prints a dangling ``engine:`` line: all-zero counters are said
    out loud, and the flat backend's extras (unified metrics schema) are
    reported on their own labelled line.
    """
    stats = result.engine_stats
    if stats is None:
        print("engine stats: (no engine — naive backend)")
        return
    nonzero = ", ".join(f"{k}={v}" for k, v in stats.items() if v)
    print(f"engine stats: {nonzero}" if nonzero else "engine stats: (all zero)")
    metrics = result.engine_metrics
    if metrics and metrics.get("extras"):
        extras = ", ".join(f"{k}={v}" for k, v in sorted(metrics["extras"].items()))
        print(f"engine extras [{metrics.get('backend', '?')}]: {extras}")


def cmd_schedule(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    model, label = parse_config(args.resources)
    result = rotation_schedule(graph, model, **_sched_kwargs(args))
    print(result.summary())
    if args.engine_stats:
        _print_engine_stats(result)
    print()
    print(render_schedule(result.schedule, model, retiming=result.retiming))
    if args.gantt:
        print()
        print(gantt(result.schedule))
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    hist = graph.ops_histogram()
    mults = hist.get("mul", 0)
    adds = graph.num_nodes - mults
    cp = critical_path_length(graph, PAPER_TIMING)
    ib = iteration_bound(graph, PAPER_TIMING)
    print(f"graph {graph.name or args.graph}")
    print(f"  nodes: {graph.num_nodes} ({mults} mults, {adds} adder-class)")
    print(f"  edges: {graph.num_edges} ({graph.total_delay()} delays)")
    print(f"  critical path: {cp} CS   iteration bound: {ib}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    rows: List[List[object]] = []
    for cfg in args.resources:
        model, label = parse_config(cfg)
        lb = combined_lower_bound(graph, model)
        result = rotation_schedule(graph, model, **_sched_kwargs(args))
        if args.engine_stats:
            print(f"-- {label}")
            _print_engine_stats(result)
        row: List[object] = [label, lb.combined, f"{result.length} ({result.depth})"]
        if args.baselines:
            from repro.baselines import dag_list_schedule, modulo_schedule, retime_then_schedule

            row.append(dag_list_schedule(graph, model).length)
            row.append(modulo_schedule(graph, model).ii)
            row.append(retime_then_schedule(graph, model).length)
        rows.append(row)
    columns = ["Resources", "LB", "RS (depth)"]
    if args.baselines:
        columns += ["DAG-list", "Modulo", "Retime+LS"]
    print(render_results_table(f"Benchmark: {graph.name or args.graph}", columns, rows))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.executor import verify_pipeline
    from repro.sim.machine import simulate_machine

    graph = _load_graph(args.graph)
    model, label = parse_config(args.resources)
    result = rotation_schedule(graph, model, **_sched_kwargs(args))
    print(result.summary())
    if args.engine_stats:
        _print_engine_stats(result)
    report = verify_pipeline(
        result.schedule, result.retiming, iterations=args.iterations, period=result.length
    )
    print(report)
    machine = simulate_machine(
        result.schedule, result.retiming, iterations=max(args.iterations // 2, result.depth + 2),
        period=result.length,
    )
    print(machine.summary())
    return 0 if report.matches_reference and machine.ok else 1


def cmd_exact(args: argparse.Namespace) -> int:
    from repro.baselines.exact import exact_modulo_schedule

    graph = _load_graph(args.graph)
    model, label = parse_config(args.resources)
    result = exact_modulo_schedule(
        graph, model, step_limit=args.step_limit, node_limit=args.node_limit
    )
    print(
        f"{graph.name or args.graph} @ {label}: optimal II = {result.ii} "
        f"(proven; {result.steps_explored} search steps)"
    )
    print("slots:", {str(v): s for v, s in sorted(result.start.items(), key=lambda kv: str(kv[0]))})
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    from repro.binding import emit_datapath

    graph = _load_graph(args.graph)
    model, label = parse_config(args.resources)
    result = rotation_schedule(graph, model, **_sched_kwargs(args))
    report = emit_datapath(
        result.wrapped,
        module_name=args.module or (graph.name or "pipeline").replace("-", "_"),
        data_width=args.width,
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(report.verilog)
    print(f"{report} -> {args.output}")
    return 0


def cmd_svg(args: argparse.Namespace) -> int:
    from repro.report.svg import save_svg, schedule_svg

    graph = _load_graph(args.graph)
    model, label = parse_config(args.resources)
    result = rotation_schedule(graph, model, **_sched_kwargs(args))
    svg = schedule_svg(
        result.schedule,
        result.retiming,
        period=result.length,
        title=f"{graph.name or args.graph} @ {label} — II {result.length}, depth {result.depth}",
    )
    save_svg(svg, args.output)
    print(f"wrote {args.output} (II {result.length}, depth {result.depth})")
    return 0


def _trace_meta(args: argparse.Namespace, graph: DFG, label: str) -> dict:
    backend = args.backend or ("naive" if args.no_engine else "flat")
    return {
        "graph": graph.name or args.graph,
        "config": label,
        "heuristic": args.heuristic,
        "backend": backend,
    }


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Trace, tracing, validate_trace, write_trace

    graph = _load_graph(args.graph)
    model, label = parse_config(args.resources)
    with tracing(meta=_trace_meta(args, graph, label)) as tr:
        result = rotation_schedule(graph, model, **_sched_kwargs(args))
    print(result.summary())
    events = write_trace(tr, args.out)
    print(f"trace: {events} span event(s) -> {args.out}")
    if args.validate:
        problems = validate_trace(Trace.from_tracer(tr))
        if problems:
            for problem in problems[:10]:
                print(f"  INVALID: {problem}")
            return 1
        print("trace: schema valid")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import profile_of, read_trace, render_profile, tracing

    if args.input:
        from repro.explore.trace import is_explore_trace

        if is_explore_trace(args.input):
            # An exploration trace, not a span trace: render its decision
            # log and the explore/v1 metrics record instead of a profile.
            from repro.explore import read_explore_trace, render_explore_trace
            from repro.obs import explore_metrics, render_metrics

            xtrace = read_explore_trace(args.input)
            print(render_explore_trace(xtrace, top=args.top or 10))
            summaries = [
                e for e in xtrace["events"] if e.get("event") == "summary"
            ]
            if summaries:
                last = summaries[-1]
                print(render_metrics(explore_metrics(
                    last.get("counters", {}),
                    mode=xtrace["header"].get("mode", "explore"),
                    elapsed=last.get("elapsed"),
                )))
            return 0
        trace = read_trace(args.input)
        prof = profile_of(trace)
        meta = ", ".join(f"{k}={v}" for k, v in sorted(trace.meta.items()))
        title = f"profile of {args.input}" + (f" ({meta})" if meta else "")
    else:
        if not args.graph:
            raise SystemExit("profile: give a graph to run, or --input trace.jsonl")
        graph = _load_graph(args.graph)
        model, label = parse_config(args.resources)
        with tracing(meta=_trace_meta(args, graph, label)) as tr:
            result = rotation_schedule(graph, model, **_sched_kwargs(args))
        print(result.summary())
        prof = profile_of(tr)
        title = f"{graph.name or args.graph} @ {label}"
    print(render_profile(prof, top=args.top, title=title))
    return 0


def cmd_session(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.session import open_session
    from repro.qa.incremental import PINNED_EDIT_SCRIPTS

    graph = _load_graph(args.graph)
    model, label = parse_config(args.resources)
    if args.script in PINNED_EDIT_SCRIPTS:
        edits = PINNED_EDIT_SCRIPTS[args.script]
    else:
        with open(args.script, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        edits = data["edits"] if isinstance(data, dict) else data
    backend = args.backend or ("naive" if args.no_engine else None)
    session = open_session(
        graph,
        model,
        heuristic=args.heuristic,
        beta=args.beta,
        priority=args.priority,
        backend=backend,
    )
    t0 = time.perf_counter()
    result = session.resolve()
    base_ms = (time.perf_counter() - t0) * 1e3
    print(
        f"session {graph.name or args.graph} @ {label}: base solve "
        f"length {result.length} depth {result.depth}  [{base_ms:.1f} ms]"
    )
    for i, op in enumerate(edits):
        session.apply_edit(op)
        t0 = time.perf_counter()
        result = session.resolve(mode=args.mode)
        ms = (time.perf_counter() - t0) * 1e3
        line = (
            f"  edit {i} ({op['edit']}): length {result.length} "
            f"depth {result.depth}  [{ms:.1f} ms]"
        )
        if args.compare:
            t0 = time.perf_counter()
            scratch = rotation_schedule(
                session.graph, session.model,
                heuristic=args.heuristic, backend=backend,
            )
            scratch_ms = (time.perf_counter() - t0) * 1e3
            speedup = scratch_ms / ms if ms else float("inf")
            line += f"  vs scratch {scratch_ms:.1f} ms ({speedup:.1f}x)"
            if scratch.length != result.length:
                line += f"  [scratch length {scratch.length}]"
        print(line)
    m = session.metrics
    print(
        f"metrics: edits {m['edits_applied']}, repairs {m['repairs']}, "
        f"full solves {m['full_solves']}, invalidated {m['nodes_invalidated']}, "
        f"kept {m['nodes_kept']}, engine patches {m['engine_patches']}, "
        f"recompiles {m['engine_recompiles']}"
    )
    if args.render:
        print()
        print(render_schedule(result.schedule, session.model, retiming=result.retiming))
    if args.engine_stats:
        _print_engine_stats(result)
    return 0


def cmd_perfcheck(args: argparse.Namespace) -> int:
    from repro.obs import run_perfcheck

    report = run_perfcheck(
        root=args.root,
        tolerance=args.tolerance,
        repeats=args.repeats,
        smoke=args.smoke,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import run_fuzz, smoke_cases

    if args.smoke:
        cases = smoke_cases()
    else:
        from repro.qa import grid_cases

        cases = grid_cases(seeds=range(args.seed_base, args.seed_base + args.seeds))
    report = run_fuzz(
        cases,
        budget_seconds=args.budget,
        max_cells=args.max_cells,
        out_dir=args.out,
        jobs=args.jobs,
        batched=args.batched,
    )
    print(report.summary())
    for failure in report.failures:
        print(f"  FAIL {failure.case.tag()}: {failure.failures[0].oracle} -> {failure.bundle_path}")
    return 0 if not report.failures else 1


def cmd_gate(args: argparse.Namespace) -> int:
    """The single pre-merge entry point: tier-1 tests, the golden engine
    parity suite, the fuzz smoke tier, the perfcheck smoke, and a trace
    smoke, in that order, failing fast."""
    import os
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )

    def run_pytest(label: str, extra: List[str]) -> bool:
        cmd = [sys.executable, "-m", "pytest", "-q"] + extra
        print(f"gate: {label}: {' '.join(cmd)}")
        code = subprocess.call(cmd, env=env)
        print(f"gate: {label}: {'PASS' if code == 0 else f'FAIL (exit {code})'}")
        return code == 0

    if not args.skip_tests:
        if not run_pytest("tier-1 tests", ["-x"]):
            return 1
        if not run_pytest(
            "golden parity suite", ["tests/core/test_engine_parity.py"]
        ):
            return 1

    from repro.qa import run_fuzz, smoke_cases

    print(f"gate: fuzz smoke tier (--jobs {args.jobs})")
    report = run_fuzz(smoke_cases(), out_dir=args.out, jobs=args.jobs)
    print(report.summary())
    for failure in report.failures:
        print(f"  FAIL {failure.case.tag()}: {failure.failures[0].oracle} -> {failure.bundle_path}")
    if report.failures:
        print("gate: FAIL")
        return 1

    from repro.obs import Trace, run_perfcheck, tracing, validate_trace

    print("gate: perfcheck smoke tier (golden-cell envelopes, +/-50%)")
    perf = run_perfcheck(smoke=True)
    print(perf.render())
    if not perf.ok:
        print("gate: FAIL")
        return 1

    print("gate: trace smoke (biquad @ 2A2M, flat backend)")
    graph = get_benchmark("biquad")
    model, label = parse_config("2A2M")
    with tracing(meta={"graph": "biquad", "config": label, "backend": "flat"}) as tr:
        rotation_schedule(graph, model, heuristic="h2", backend="flat")
    problems = validate_trace(Trace.from_tracer(tr))
    if problems:
        for problem in problems[:10]:
            print(f"  INVALID: {problem}")
        print("gate: FAIL")
        return 1
    print(f"gate: trace smoke: {len(tr.events)} events, schema valid")

    print("gate: explore smoke (fixed diffeq+biquad grid, explore == exhaustive)")
    from repro.explore import build_grid, explore

    grid = build_grid(["diffeq", "biquad"], ["1A1M", "2A2M"], clocks=[40, 100])
    # round_size below the grid size so the second prune pass actually runs
    fast = explore(grid, mode="explore", round_size=4)
    full = explore(grid, mode="exhaustive")
    mismatched = [
        bench
        for bench in {spec.bench for spec in grid}
        if [p for p, _ in fast.frontiers.get(bench, [])]
        != [p for p, _ in full.frontiers.get(bench, [])]
    ]
    print(f"  explore:    {fast.counter_line()}")
    print(f"  exhaustive: {full.counter_line()}")
    if mismatched or fast.counters["solved"] + fast.counters["pruned_bound"] + (
        fast.counters["pruned_dominated"]
    ) != len(grid):
        for bench in mismatched:
            print(f"  FRONTIER MISMATCH: {bench}")
        print("gate: FAIL")
        return 1
    print("  frontiers equal, every cell accounted for")

    print("gate: serve smoke (golden requests, inline service, 2 rounds)")
    from repro.qa import check_serve_differential
    from repro.serve import build_service

    service = build_service(inline=True)
    try:
        oracle = check_serve_differential(service, rounds=2)
    finally:
        service.close()
    print(f"  {oracle.summary()}")
    hits = oracle.cache_levels.get("memory", 0) + oracle.cache_levels.get("disk", 0)
    if not oracle.ok or hits < oracle.requests // 2:
        print("gate: FAIL")
        return 1
    print("gate: PASS")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    import json

    from repro.explore import build_grid, explore, write_explore_trace
    from repro.explore.runner import ServeCellSolver
    from repro.obs import explore_metrics, render_metrics

    cells = build_grid(
        args.benchmarks,
        args.configs,
        clocks=args.clocks,
        unfolds=args.unfolds,
        heuristics=args.heuristics,
        sigmas=args.sigmas if args.sigmas else [None],
    )
    serve_solver = None
    if args.via == "serve":
        serve_solver = ServeCellSolver(args.host, args.port)
    try:
        report = explore(
            cells,
            mode=args.mode,
            workers=args.workers,
            backend=args.backend,
            round_size=args.round_size,
            serve_solver=serve_solver,
        )
    finally:
        if serve_solver is not None:
            serve_solver.close()
    via = "serve" if serve_solver is not None else "local"
    print(
        f"{report.mode}: {len(cells)} cell(s) in {report.elapsed:.3f}s "
        f"({via}, workers={args.workers})"
    )
    for bench, pts in report.frontiers.items():
        print(f"{bench}: {len(pts)} Pareto point(s)")
        for point, labels in pts:
            achievers = ", ".join(labels[:3]) + (" ..." if len(labels) > 3 else "")
            print(f"  {point.render():42s} <- {achievers}")
    print(report.counter_line())
    if args.trace:
        n = write_explore_trace(report, args.trace)
        print(f"trace: {n} event(s) -> {args.trace}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.as_json(), fh, indent=2, sort_keys=True)
        print(f"report -> {args.json}")
    if args.metrics:
        print(render_metrics(explore_metrics(
            report.counters, mode=report.mode, elapsed=report.elapsed
        )))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_server

    mode = "inline" if args.inline else f"{args.workers} worker shard(s)"
    print(
        f"rotsched serve: http://{args.host}:{args.port} ({mode}, "
        f"memory cache {args.cache_size}, artifacts "
        f"{args.artifacts or 'disabled'})"
    )
    run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        artifacts=args.artifacts,
        inline=args.inline,
        batch_window=args.batch_window,
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import demo_workload, run_loadgen

    workload = demo_workload(repeats=args.repeats)
    report = run_loadgen(
        host=args.host,
        port=args.port,
        workload=workload,
        concurrency=args.concurrency,
    )
    print(report.summary())
    return 0 if report.errors == 0 else 1


def cmd_unfold(args: argparse.Namespace) -> int:
    from repro.dfg.unfold import unfold

    graph = _load_graph(args.graph)
    unfolded = unfold(graph, args.factor)
    dfg_io.save(unfolded, args.output)
    print(
        f"unfolded {graph.name or args.graph} x{args.factor}: "
        f"{unfolded.num_nodes} nodes, {unfolded.num_edges} edges -> {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rotsched",
        description="Rotation scheduling: loop pipelining for cyclic data-flow graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sched_flags(p: argparse.ArgumentParser) -> None:
        # One definition for every subcommand that rotation-schedules —
        # cmd code consumes these via _sched_kwargs.
        p.add_argument("--heuristic", choices=["h1", "h2"], default="h2")
        p.add_argument("--beta", type=int, default=None, help="rotations per phase")
        p.add_argument("--priority", default="descendants")
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="process pool size for heuristic 1's independent phases",
        )
        p.add_argument(
            "--no-engine",
            action="store_true",
            help="disable the incremental rotation engine (recompute everything)",
        )
        p.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default=None,
            help="scheduling core: flat (integer kernels, default), vector "
            "(numpy kernels + rotation memos; needs numpy), views "
            "(dict engine), naive (recompute everything); all bit-identical",
        )
        p.add_argument(
            "--engine-stats",
            action="store_true",
            help="print the engine's cache counters (and backend extras)",
        )

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path")
        p.add_argument("-r", "--resources", default="2A2M", help="config like 3A2M / 2A1Mp")
        add_sched_flags(p)

    p = sub.add_parser("schedule", help="rotation-schedule a DFG and print the table")
    add_common(p)
    p.add_argument("--gantt", action="store_true", help="also print a unit-lane Gantt chart")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("inspect", help="print a DFG's characteristics")
    p.add_argument("graph", help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("bench", help="run one graph across resource configs")
    p.add_argument("graph", help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path")
    p.add_argument("resources", nargs="+", help="configs like 3A3M 2A1Mp ...")
    add_sched_flags(p)
    p.add_argument("--baselines", action="store_true", help="include baseline columns")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("simulate", help="schedule then verify by execution")
    add_common(p)
    p.add_argument("-n", "--iterations", type=int, default=40)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("exact", help="prove the optimal II by branch and bound")
    p.add_argument("graph", help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path")
    p.add_argument("-r", "--resources", default="2A2M")
    p.add_argument("--step-limit", type=int, default=500_000)
    p.add_argument("--node-limit", type=int, default=40)
    p.set_defaults(func=cmd_exact)

    p = sub.add_parser("emit", help="generate a Verilog datapath skeleton")
    add_common(p)
    p.add_argument("-o", "--output", default="pipeline.v")
    p.add_argument("--module", default=None)
    p.add_argument("--width", type=int, default=16)
    p.set_defaults(func=cmd_emit)

    p = sub.add_parser("svg", help="render the schedule as an SVG Gantt chart")
    add_common(p)
    p.add_argument("-o", "--output", default="schedule.svg")
    p.set_defaults(func=cmd_svg)

    p = sub.add_parser(
        "trace",
        help="schedule under a span tracer and export the span tree as JSONL",
    )
    p.add_argument("graph", help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path")
    p.add_argument(
        "-r", "--resources", "--config", default="2A2M",
        help="config like 3A2M / 2A1Mp",
    )
    add_sched_flags(p)
    p.add_argument("-o", "--out", default="trace.jsonl", help="output JSONL path")
    p.add_argument(
        "--validate",
        action="store_true",
        help="validate the exported span tree against the trace schema",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="per-span self/cumulative profile of a run (or of --input trace.jsonl)",
    )
    p.add_argument(
        "graph",
        nargs="?",
        default=None,
        help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path (omit with --input)",
    )
    p.add_argument(
        "-r", "--resources", "--config", default="2A2M",
        help="config like 3A2M / 2A1Mp",
    )
    add_sched_flags(p)
    p.add_argument("--input", default=None, help="profile an exported trace.jsonl instead")
    p.add_argument("--top", type=int, default=None, help="show only the top N span names")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "session",
        help="replay a JSON edit script through an incremental scheduling session",
    )
    p.add_argument("graph", help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path")
    p.add_argument(
        "script",
        help="JSON edit script (a list of edit ops, or {\"edits\": [...]}), "
        "or a pinned script name (tighten-adder, drop-mult, slow-node)",
    )
    p.add_argument("-r", "--resources", default="2A2M", help="config like 3A2M / 2A1Mp")
    add_sched_flags(p)
    p.add_argument(
        "--mode",
        choices=["repair", "solve"],
        default=None,
        help="force per-edit repair or full re-solve (default: repair)",
    )
    p.add_argument(
        "--compare",
        action="store_true",
        help="also time a from-scratch solve after each edit and print the speedup",
    )
    p.add_argument(
        "--render",
        action="store_true",
        help="print the final repaired schedule table",
    )
    p.set_defaults(func=cmd_session)

    p = sub.add_parser(
        "perfcheck",
        help="re-run the pinned golden cells and fail on perf/counter regressions",
    )
    p.add_argument(
        "--root", default=".", help="directory holding the committed BENCH_*.json files"
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed wall-time slack as a fraction of the baseline (0.5 = +50%%)",
    )
    p.add_argument("--repeats", type=int, default=3, help="min-of-N timing runs per cell")
    p.add_argument(
        "--smoke",
        action="store_true",
        help="pre-merge tier: flat+vector cells only, 2 repeats, tolerance floored at 50%%",
    )
    p.set_defaults(func=cmd_perfcheck)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: certify scheduler paths against the oracle stack",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="fixed-seed pre-merge tier (>= 200 cells, bounded runtime)",
    )
    p.add_argument("--seeds", type=int, default=3, help="seeds per generator cell")
    p.add_argument("--seed-base", type=int, default=0, help="first seed of the range")
    p.add_argument(
        "--budget", type=float, default=None, help="wall-clock budget in seconds"
    )
    p.add_argument("--max-cells", type=int, default=None, help="stop after N cells")
    p.add_argument(
        "--out", default="artifacts/qa", help="directory for minimized repro bundles"
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="certify cells across N worker processes (same verdict, "
        "deterministic case-ordered reporting)",
    )
    p.add_argument(
        "--batched",
        action="store_true",
        help="collapse vector-solving cells into per-config solve_batch "
        "cohorts up front (same verdicts; implies sequential execution)",
    )
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "gate",
        help="pre-merge gate: tier-1 tests + golden parity suite + fuzz smoke "
        "+ perfcheck smoke + trace smoke + serve smoke",
    )
    p.add_argument(
        "--jobs", type=int, default=4, help="worker processes for the fuzz tier"
    )
    p.add_argument(
        "--out", default="artifacts/qa", help="directory for minimized repro bundles"
    )
    p.add_argument(
        "--skip-tests",
        action="store_true",
        help="run only the fuzz smoke tier (assume pytest already ran)",
    )
    p.set_defaults(func=cmd_gate)

    p = sub.add_parser(
        "serve",
        help="run the scheduling daemon: HTTP/JSON solves behind a "
        "two-level (memory + artifact) cache",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8172)
    p.add_argument(
        "--workers", type=int, default=2, help="solver worker processes (fingerprint-sharded)"
    )
    p.add_argument(
        "--cache-size", type=int, default=256, help="in-process LRU capacity (responses)"
    )
    p.add_argument(
        "--artifacts",
        default=None,
        help="directory for the on-disk artifact tier (replayable qa bundles); "
        "omit to keep the cache memory-only",
    )
    p.add_argument(
        "--inline",
        action="store_true",
        help="solve in-process instead of in worker shards (debugging)",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.01,
        help="seconds to hold a miss open for cohort batching (0 disables)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a running daemon with the demo workload and report "
        "throughput, hit rate, and latency percentiles",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8172)
    p.add_argument(
        "--repeats", type=int, default=4, help="times each distinct cell is requested"
    )
    p.add_argument("--concurrency", type=int, default=4, help="client threads")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "explore",
        help="Pareto design-space exploration over (config x clock x unfold "
        "x heuristic x rotation size)",
    )
    p.add_argument(
        "benchmarks",
        nargs="+",
        help=f"benchmark keys ({', '.join(BENCHMARKS)})",
    )
    p.add_argument(
        "-c", "--configs", nargs="+", default=["1A1M", "2A1M", "2A2M", "3A2M"],
        help="resource configs like 3A2M 2A1Mp ...",
    )
    p.add_argument(
        "--clocks", type=int, nargs="+", default=[40, 50, 100],
        help="control-step lengths in ns (latencies = ceil(40/T), ceil(80/T))",
    )
    p.add_argument("--unfolds", type=int, nargs="+", default=[1])
    p.add_argument("--heuristics", nargs="+", choices=["h1", "h2"], default=["h2"])
    p.add_argument(
        "--sigmas", type=int, nargs="+", default=None,
        help="rotation sizes to sweep (default: the heuristic's own choice)",
    )
    p.add_argument(
        "--mode", choices=["explore", "exhaustive"], default="explore",
        help="feedback-guided search (default) or the full cold grid",
    )
    p.add_argument("--workers", type=int, default=1, help="work-stealing pool size")
    p.add_argument(
        "--round-size", type=int, default=None,
        help="cells solved between pruning passes (default max(8, 2*workers))",
    )
    p.add_argument(
        "--backend", choices=sorted(BACKENDS), default=None,
        help="cell-solver backend (default: vector when numpy is available)",
    )
    p.add_argument(
        "--via", choices=["local", "serve"], default="local",
        help="solve cells in-process or through a running serve daemon",
    )
    p.add_argument("--host", default="127.0.0.1", help="serve daemon host (--via serve)")
    p.add_argument("--port", type=int, default=8347, help="serve daemon port (--via serve)")
    p.add_argument("--trace", default=None, help="write the JSONL exploration trace here")
    p.add_argument("--json", default=None, help="write the full report as JSON here")
    p.add_argument(
        "--metrics", action="store_true",
        help="print the explore/v1 record in the unified metrics schema",
    )
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("unfold", help="unfold a graph and save it as JSON")
    p.add_argument("graph", help=f"benchmark key ({', '.join(BENCHMARKS)}) or JSON path")
    p.add_argument("-f", "--factor", type=int, default=2)
    p.add_argument("-o", "--output", default="unfolded.json")
    p.set_defaults(func=cmd_unfold)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
