#!/usr/bin/env python3
"""Head-to-head: rotation scheduling vs the classic alternatives.

Reproduces the comparison axis of the paper's Section 7 with open
re-implementations: plain list scheduling (no pipelining),
retime-then-schedule (the Cathedral-II flow), iterative modulo
scheduling (the VLIW software-pipelining flow) and force-directed
scheduling (the time-constrained flow), across all five paper
benchmarks.

Run:  python examples/compare_schedulers.py
"""

from repro import ResourceModel, lower_bound, rotation_schedule
from repro.baselines import (
    dag_list_schedule,
    force_directed_schedule,
    modulo_schedule,
    retime_then_schedule,
)
from repro.suite import BENCHMARKS, get_benchmark
from repro.report import render_results_table


def main() -> None:
    model = ResourceModel.adders_mults(2, 2)
    print(f"datapath: {model.describe()}\n")

    rows = []
    for key, info in BENCHMARKS.items():
        graph = get_benchmark(key)
        lb = lower_bound(graph, model)
        base = dag_list_schedule(graph, model).length
        rts = retime_then_schedule(graph, model).length
        ims = modulo_schedule(graph, model).ii
        rs = rotation_schedule(graph, model).length
        fds = force_directed_schedule(graph, model)
        rows.append(
            [
                info.title,
                lb,
                base,
                rts,
                ims,
                rs,
                "*" if rs == lb else "",
                f"{fds.peak_usage}",
            ]
        )

    print(
        render_results_table(
            "Schedule lengths (control steps); * = provably optimal",
            ["Benchmark", "LB", "List", "Retime+LS", "Modulo", "Rotation", "", "FDS peak @CP"],
            rows,
        )
    )
    print()
    print("Reading the table:")
    print(" - 'List' never overlaps iterations: the cost of no pipelining.")
    print(" - 'Retime+LS' picks its retiming blind to resources (Cathedral II);")
    print("   rotation explores retimings *under* the resource constraints.")
    print(" - 'Modulo' is the strong VLIW-style baseline; rotation matches it")
    print("   on every paper benchmark at this configuration.")
    print(" - 'FDS peak' shows the resources a time-constrained flow would")
    print("   provision to meet the critical path (a different trade-off).")


if __name__ == "__main__":
    main()
