"""Delta-debugging of failing fuzz graphs to minimal reproducers.

Given a graph on which some oracle fires and a *predicate* that rebuilds
the failing cell on a candidate graph and reports whether the same
failure persists, greedily drop nodes and edges one at a time until no
single removal keeps the failure alive.  The result is 1-minimal: every
remaining node and edge is necessary for the failure.

Removals can only break cycles, never create zero-delay ones, so every
candidate is itself a structurally legal DFG; a predicate that raises on
a degenerate candidate (empty graph, disconnected scheduling corner) is
treated as "failure not reproduced" and the removal is rolled back.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dfg.graph import DFG


Predicate = Callable[[DFG], bool]


def _holds(predicate: Predicate, graph: DFG) -> bool:
    try:
        return bool(predicate(graph))
    except Exception:
        return False


def _without_node(graph: DFG, index: int) -> DFG:
    cand = graph.copy()
    cand.remove_node(cand.nodes[index])
    return cand


def _without_edge(graph: DFG, index: int) -> DFG:
    # copy() re-assigns edge ids in insertion order, so removal goes by
    # position, not by the original Edge object.
    cand = graph.copy()
    cand.remove_edge(cand.edges[index])
    return cand


def shrink_graph(
    graph: DFG,
    predicate: Predicate,
    *,
    min_nodes: int = 1,
    max_steps: int = 10_000,
    stats: Optional[dict] = None,
) -> DFG:
    """Minimize ``graph`` while ``predicate`` keeps returning True.

    Args:
        graph: a graph on which ``predicate`` holds (if it does not, the
            input is returned unchanged).
        predicate: re-runs the failing scenario on a candidate and returns
            True when the *same* failure persists.  Exceptions count as
            False.
        min_nodes: stop removing nodes below this count.
        max_steps: hard cap on predicate evaluations (defensive).
        stats: optional counter dict; receives the number of predicate
            evaluations performed under ``"steps"`` (accumulating across
            calls) — observability only.

    Returns:
        A 1-minimal failing subgraph (possibly the input itself).
    """
    if not _holds(predicate, graph):
        if stats is not None:
            stats["steps"] = stats.get("steps", 0) + 1
        return graph
    current = graph
    steps = 0
    changed = True
    while changed and steps < max_steps:
        changed = False
        # nodes first: dropping a node removes its edges too, shrinking fast
        i = 0
        while i < current.num_nodes and steps < max_steps:
            if current.num_nodes <= min_nodes:
                break
            cand = _without_node(current, i)
            steps += 1
            if _holds(predicate, cand):
                current = cand
                changed = True
            else:
                i += 1
        i = 0
        while i < current.num_edges and steps < max_steps:
            cand = _without_edge(current, i)
            steps += 1
            if _holds(predicate, cand):
                current = cand
                changed = True
            else:
                i += 1
    if stats is not None:
        # +1 for the initial reproduction check before the removal loops.
        stats["steps"] = stats.get("steps", 0) + steps + 1
    return current
