"""JSONL trace export and import.

A trace file is line-delimited JSON: one header object followed by one
object per span event, in span *start* order::

    {"schema": "repro.obs/trace/v1", "meta": {...}, "events": 6204}
    {"i": 0, "parent": -1, "depth": 0, "name": "solve", "t0_ns": 0,
     "dur_ns": 131072345, "attrs": {"graph": "elliptic", ...}}
    {"i": 1, "parent": 0, "depth": 1, "name": "schedule.initial", ...}
    ...

The format round-trips exactly: parsing an emitted file reproduces the
same event tree (indices, parents, depths, names, attrs, durations).
:func:`validate_trace` checks the structural invariants the schema
promises — ``rotsched gate``'s trace smoke runs it on a freshly emitted
cell before every merge.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.tracer import TRACE_SCHEMA, SpanEvent, Tracer


class TraceError(ReproError):
    """A trace file violates the repro.obs trace schema."""


class Trace:
    """A parsed (or directly captured) span tree."""

    def __init__(self, meta: Dict[str, Any], events: List[SpanEvent]):
        self.meta = meta
        self.events = events

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "Trace":
        if tracer.open_spans:
            raise TraceError(
                f"cannot export a trace with {tracer.open_spans} open span(s)"
            )
        return cls(dict(tracer.meta), list(tracer.events))

    # ------------------------------------------------------------------
    def shape(self) -> Tuple:
        """Timing-free identity of the whole tree (determinism tests)."""
        return tuple(ev.shape() for ev in self.events)

    def children(self) -> List[List[int]]:
        """Child event indices per event, in start order."""
        kids: List[List[int]] = [[] for _ in self.events]
        for ev in self.events:
            if ev.parent >= 0:
                kids[ev.parent].append(ev.index)
        return kids

    def roots(self) -> List[SpanEvent]:
        return [ev for ev in self.events if ev.parent < 0]

    def render_tree(self, max_events: Optional[int] = None) -> str:
        """Indented one-line-per-span rendering (debugging / docs)."""
        lines = []
        for ev in self.events if max_events is None else self.events[:max_events]:
            dur_ms = ev.dur_ns / 1e6
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(ev.attrs.items()))
                if ev.attrs
                else ""
            )
            lines.append(f"{'  ' * ev.depth}{ev.name} {dur_ms:.3f}ms{attrs}")
        if max_events is not None and len(self.events) > max_events:
            lines.append(f"... {len(self.events) - max_events} more event(s)")
        return "\n".join(lines)


def write_trace(tracer: Tracer, path: str) -> int:
    """Emit a tracer's span tree as JSONL; returns the event count."""
    trace = Trace.from_tracer(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {"schema": TRACE_SCHEMA, "meta": trace.meta, "events": len(trace.events)}
            )
            + "\n"
        )
        for ev in trace.events:
            fh.write(json.dumps(ev.as_dict(), separators=(",", ":")) + "\n")
    return len(trace.events)


def parse_trace(lines: Iterable[str]) -> Trace:
    """Parse JSONL lines (header first) into a :class:`Trace`."""
    it = iter(lines)
    header_line = None
    for raw in it:
        raw = raw.strip()
        if raw:
            header_line = raw
            break
    if header_line is None:
        raise TraceError("empty trace: no header line")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"bad trace header: {exc}") from None
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        raise TraceError(
            f"unsupported trace schema {header.get('schema')!r} "
            f"(expected {TRACE_SCHEMA!r})" if isinstance(header, dict)
            else "trace header is not an object"
        )
    events: List[SpanEvent] = []
    for lineno, raw in enumerate(it, start=2):
        raw = raw.strip()
        if not raw:
            continue
        try:
            rec = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {lineno}: bad JSON: {exc}") from None
        try:
            events.append(
                SpanEvent(
                    rec["i"],
                    rec["parent"],
                    rec["depth"],
                    rec["name"],
                    rec["t0_ns"],
                    rec.get("attrs", {}),
                    rec["dur_ns"],
                )
            )
        except (KeyError, TypeError) as exc:
            raise TraceError(f"line {lineno}: missing event field: {exc}") from None
    trace = Trace(header.get("meta", {}), events)
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise TraceError(
            f"header declares {declared} event(s) but file holds {len(events)}"
        )
    return trace


def read_trace(path: str) -> Trace:
    """Load a JSONL trace file written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_trace(fh)


def validate_trace(trace: Trace) -> List[str]:
    """Structural schema violations (empty list == valid).

    Checks: contiguous indices in start order, parents precede children,
    depths equal parent depth + 1 (0 at roots), durations non-negative,
    and children nested inside their parent's interval.
    """
    problems: List[str] = []
    events = trace.events
    for pos, ev in enumerate(events):
        tag = f"event {pos} ({ev.name!r})"
        if ev.index != pos:
            problems.append(f"{tag}: index {ev.index} != position {pos}")
            continue
        if ev.dur_ns < 0:
            problems.append(f"{tag}: negative/open duration {ev.dur_ns}")
        if ev.parent < 0:
            if ev.depth != 0:
                problems.append(f"{tag}: root span with depth {ev.depth}")
            continue
        if ev.parent >= pos:
            problems.append(f"{tag}: parent {ev.parent} does not precede it")
            continue
        parent = events[ev.parent]
        if ev.depth != parent.depth + 1:
            problems.append(
                f"{tag}: depth {ev.depth} != parent depth {parent.depth} + 1"
            )
        if ev.t0_ns < parent.t0_ns or (
            parent.dur_ns >= 0
            and ev.dur_ns >= 0
            and ev.t0_ns + ev.dur_ns > parent.t0_ns + parent.dur_ns
        ):
            problems.append(f"{tag}: not nested inside parent interval")
    return problems
