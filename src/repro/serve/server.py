"""The scheduling service and its stdlib-asyncio HTTP/JSON front end.

:class:`SchedulingService` is the transport-independent core, one
pipeline per request::

    parse → canonicalize → fingerprint → L1/L2 cache → single-flight →
    micro-batcher → worker pool → cache insert → respond

* **Single-flight**: concurrent requests with one fingerprint share one
  in-flight solve (an ``asyncio.Future``); only the first dispatches.
* **Micro-batching**: misses arriving in the same event-loop tick (or
  inside ``batch_window`` seconds) that share a (model, options) cohort
  key are dispatched as *one* worker call through ``solve_batch``.
* **Warm path**: a request carrying ``base`` + ``edits`` routes to the
  shard whose worker holds the base session and repairs instead of
  re-searching.

Every response envelope carries the fingerprint, the cache level
(``"memory" | "disk" | "coalesced" | "solved"``) and the wall time;
``result`` holds only schedule bits (see
:func:`repro.serve.protocol.result_payload`) so the differential oracle
can compare cached and fresh answers bit for bit.

The HTTP layer is a hand-rolled HTTP/1.1 server over
``asyncio.start_server`` — requests and responses are small JSON bodies,
keep-alive is supported, and no third-party dependency is involved.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.obs import tracer as _obs
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry
from repro.serve.cache import ArtifactStore, TwoLevelCache
from repro.serve.pool import InlinePool, ShardedPool
from repro.serve.protocol import (
    PROTOCOL,
    ServeError,
    canonical_request,
    fingerprint,
    parse_request,
)

_MAX_BODY = 32 * 1024 * 1024


def _cohort_key(canonical: Mapping[str, Any]) -> str:
    """Requests sharing this key may solve as one ``solve_batch`` cohort."""
    return json.dumps(
        {"model": canonical["model"], "options": canonical["options"]},
        sort_keys=True,
        separators=(",", ":"),
    )


class SchedulingService:
    """The transport-independent solve pipeline (see module docstring)."""

    def __init__(
        self,
        pool=None,
        cache: Optional[TwoLevelCache] = None,
        batch_window: float = 0.0,
    ):
        self.pool = pool if pool is not None else InlinePool()
        self.cache = cache if cache is not None else TwoLevelCache()
        self.batch_window = batch_window
        self.metrics = MetricsRegistry("repro.serve")
        self._inflight: Dict[str, asyncio.Future] = {}
        #: cohort key -> [(fp, canonical, future)] awaiting dispatch
        self._pending: Dict[str, List[Tuple[str, Mapping[str, Any], asyncio.Future]]] = {}
        #: fingerprint -> shard that solved it (warm-path routing)
        self._residency: Dict[str, int] = {}

    # ------------------------------------------------------------------
    async def solve(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """One request, end to end; never raises for request-level faults —
        malformed input and solver errors come back as error envelopes."""
        t0 = time.perf_counter()
        self.metrics.inc("requests")
        tr = _obs.active
        traced = tr.enabled
        if traced:
            tr.begin("serve.request")
        try:
            try:
                request = parse_request(payload)
                canonical = canonical_request(request)
                fp = fingerprint(canonical)
            except ReproError as exc:
                self.metrics.inc("bad_requests")
                return self._envelope(None, "error", t0, error={
                    "type": type(exc).__name__, "message": str(exc),
                })
            if traced:
                tr.begin("serve.lookup", fp=fp[:12])
            cached, level = self.cache.lookup(fp)
            if traced:
                tr.end()
            if cached is not None:
                self.metrics.inc(f"hits_{level}")
                self.metrics.observe("serve.hit_seconds", time.perf_counter() - t0)
                return self._envelope(fp, level, t0, result=cached)

            existing = self._inflight.get(fp)
            if existing is not None:
                self.metrics.inc("coalesced")
                result = await asyncio.shield(existing)
                return self._envelope(fp, "coalesced", t0, result=result)

            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            self._inflight[fp] = future
            try:
                if traced:
                    tr.begin("serve.solve", fp=fp[:12])
                try:
                    result = await self._dispatch(fp, canonical, request, future)
                finally:
                    if traced:
                        tr.end()
            finally:
                self._inflight.pop(fp, None)
            if "error" in result:
                self.metrics.inc("errors")
                return self._envelope(fp, "error", t0, error=result["error"])
            self.metrics.inc("misses")
            self.metrics.observe("serve.solve_seconds", time.perf_counter() - t0)
            return self._envelope(fp, "solved", t0, result=result)
        finally:
            if traced:
                tr.end()

    async def solve_many(self, payloads: List[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        """Concurrent solves — misses sharing a cohort key batch together."""
        return list(await asyncio.gather(*(self.solve(p) for p in payloads)))

    # ------------------------------------------------------------------
    async def _dispatch(self, fp, canonical, request, future: asyncio.Future):
        """Route one miss (owns ``future``; always resolves it)."""
        try:
            if request.edits:
                shard = self._residency.get(request.base) if request.base else None
                result = await self.pool.solve_warm(
                    fp, canonical, request.base, request.edits, shard=shard
                )
                self.metrics.inc("warm_solves")
            else:
                result = await self._batched_solve(fp, canonical)
            self._residency[fp] = self.pool.shard_of(fp)
            if "error" not in result:
                self.cache.insert(fp, canonical, result)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            raise
        if not future.done():
            future.set_result(result)
        return result

    async def _batched_solve(self, fp, canonical) -> Dict[str, Any]:
        """Enqueue into the cohort micro-batcher and await the verdict."""
        loop = asyncio.get_running_loop()
        key = _cohort_key(canonical)
        slot: asyncio.Future = loop.create_future()
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = self._pending[key] = []
            if self.batch_window > 0:
                loop.call_later(self.batch_window, lambda: asyncio.ensure_future(self._drain(key)))
            else:
                loop.call_soon(lambda: asyncio.ensure_future(self._drain(key)))
        bucket.append((fp, canonical, slot))
        return await slot

    async def _drain(self, key: str) -> None:
        items = self._pending.pop(key, None)
        if not items:
            return
        try:
            if len(items) == 1:
                fp, canonical, slot = items[0]
                result = await self.pool.solve(fp, canonical)
                results = [result]
            else:
                self.metrics.inc("cohorts")
                self.metrics.inc("cohort_members", len(items))
                results = await self.pool.solve_cohort(
                    [(fp, canonical) for fp, canonical, _ in items]
                )
        except BaseException as exc:
            for _, _, slot in items:
                if not slot.done():
                    slot.set_exception(exc)
            return
        for (_, _, slot), result in zip(items, results):
            if not slot.done():
                slot.set_result(result)

    # ------------------------------------------------------------------
    def _envelope(self, fp, cache_level, t0, result=None, error=None) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "protocol": PROTOCOL,
            "fingerprint": fp,
            "cache": cache_level,
            "elapsed_seconds": round(time.perf_counter() - t0, 6),
        }
        if error is not None:
            out["error"] = dict(error)
        else:
            out["result"] = result
        return out

    def stats(self) -> Dict[str, Any]:
        counters = self.metrics.as_dict()["counters"]
        hits = sum(counters.get(k, 0) for k in ("hits_memory", "hits_disk")) + counters.get("coalesced", 0)
        answered = hits + counters.get("misses", 0) + counters.get("warm_solves", 0)
        return {
            "schema": METRICS_SCHEMA,
            "metrics": self.metrics.as_dict(),
            "cache": self.cache.stats(),
            "workers": getattr(self.pool, "workers", 1),
            "worker_crashes": getattr(self.pool, "crashes", 0),
            "hit_rate": round(hits / answered, 4) if answered else 0.0,
        }

    def close(self) -> None:
        self.pool.shutdown()


def build_service(
    workers: int = 2,
    cache_size: int = 512,
    artifacts: Optional[str] = None,
    inline: bool = False,
    batch_window: float = 0.0,
) -> SchedulingService:
    """Assemble a service: pool + two-level cache + metrics."""
    pool = InlinePool() if inline else ShardedPool(workers)
    store = ArtifactStore(artifacts) if artifacts else None
    return SchedulingService(
        pool=pool, cache=TwoLevelCache(cache_size, store), batch_window=batch_window
    )


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
async def _read_request(reader: asyncio.StreamReader):
    """``(method, path, body)`` of one HTTP/1.1 request, or ``None`` at EOF."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise ServeError(f"malformed request line {line!r}")
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise ServeError(f"bad Content-Length {value.strip()!r}")
    if length > _MAX_BODY:
        raise ServeError(f"request body of {length} bytes exceeds the {_MAX_BODY} limit")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, body


def _http_response(status: int, payload: Mapping[str, Any]) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def _handle_one(service: SchedulingService, method: str, path: str, body: bytes):
    """``(status, payload)`` for one parsed request."""
    if method == "GET" and path == "/healthz":
        return 200, {"ok": True, "protocol": PROTOCOL}
    if method == "GET" and path == "/stats":
        return 200, service.stats()
    if method == "POST" and path in ("/solve", "/solve/batch"):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except ValueError as exc:
            return 400, {"error": {"type": "BadJSON", "message": str(exc)}}
        if path == "/solve":
            envelope = await service.solve(payload)
        else:
            requests = payload.get("requests")
            if not isinstance(requests, list):
                return 400, {"error": {"type": "ServeError", "message": "/solve/batch body needs a 'requests' list"}}
            envelope = {"responses": await service.solve_many(requests)}
        status = 400 if "error" in envelope else 200
        return status, envelope
    return 404, {"error": {"type": "NotFound", "message": f"{method} {path}"}}


async def _handle_connection(service: SchedulingService, reader, writer) -> None:
    try:
        await _connection_loop(service, reader, writer)
    except asyncio.CancelledError:
        # Server shutdown cancels live keep-alive connections; that is a
        # normal exit, not an error worth a traceback.
        pass


async def _connection_loop(service: SchedulingService, reader, writer) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except (ServeError, asyncio.IncompleteReadError):
                break
            if parsed is None:
                break
            method, path, body = parsed
            try:
                status, payload = await _handle_one(service, method, path, body)
            except Exception as exc:  # pragma: no cover - last-resort guard
                status, payload = 500, {"error": {"type": "InternalError", "message": str(exc)}}
            writer.write(_http_response(status, payload))
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - client went away
            pass


async def start_server(service: SchedulingService, host: str = "127.0.0.1", port: int = 8347):
    """An ``asyncio.Server`` bound and listening (caller manages lifetime)."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


def run_server(
    host: str = "127.0.0.1",
    port: int = 8347,
    workers: int = 2,
    cache_size: int = 512,
    artifacts: Optional[str] = None,
    inline: bool = False,
    batch_window: float = 0.0,
    ready=None,
) -> None:
    """Blocking entry point (``rotsched serve``); Ctrl-C stops it."""

    async def main():
        service = build_service(workers, cache_size, artifacts, inline, batch_window)
        server = await start_server(service, host, port)
        if ready is not None:
            ready(server)
        try:
            async with server:
                await server.serve_forever()
        finally:
            service.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
