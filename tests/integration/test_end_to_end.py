"""End-to-end integration: schedule -> verify -> simulate, across the suite.

The strongest statement the library makes: for every benchmark and a
spread of resource configurations, rotation scheduling produces a wrapped
schedule that (a) passes the modulo legality checks, (b) executes on the
simulated datapath without hazards, and (c) computes bit-identical value
streams to the sequential reference loop.
"""

import pytest

from repro.schedule import ResourceModel
from repro.core import rotation_schedule
from repro.baselines import dag_list_schedule, modulo_schedule, retime_then_schedule
from repro.bounds import lower_bound
from repro.sim import simulate_machine, verify_pipeline
from repro.suite import BENCHMARKS, get_benchmark

CONFIGS = [
    (1, 1, False),
    (2, 2, False),
    (3, 2, False),
    (1, 1, True),
    (2, 2, True),
]


@pytest.mark.parametrize("bench", list(BENCHMARKS))
@pytest.mark.parametrize("adders,mults,pipelined", CONFIGS)
class TestScheduleSimulateVerify:
    def test_pipeline_preserves_semantics(self, bench, adders, mults, pipelined):
        g = get_benchmark(bench)
        model = ResourceModel.adders_mults(adders, mults, pipelined_mults=pipelined)
        res = rotation_schedule(g, model, beta=24)
        assert res.wrapped.violations() == []
        assert res.length >= lower_bound(g, model)

        report = verify_pipeline(
            res.schedule, res.retiming, iterations=res.depth + 20, period=res.length
        )
        assert report.matches_reference, f"{bench} @ {model.label()}"
        assert report.max_abs_error == 0.0

        machine = simulate_machine(
            res.schedule, res.retiming, iterations=res.depth + 10, period=res.length
        )
        assert machine.ok, f"{bench} @ {model.label()}: {machine.hazards[:2]}"


class TestCrossSchedulerConsistency:
    @pytest.mark.parametrize("bench", list(BENCHMARKS))
    def test_rotation_beats_or_ties_every_baseline(self, bench):
        g = get_benchmark(bench)
        model = ResourceModel.adders_mults(2, 2)
        rs = rotation_schedule(g, model).length
        assert rs <= dag_list_schedule(g, model).length
        assert rs <= retime_then_schedule(g, model).length

    @pytest.mark.parametrize("bench", ["diffeq", "allpole", "biquad"])
    def test_rotation_competitive_with_modulo(self, bench):
        """On the paper benchmarks RS matches IMS (both optimal) except in
        the deep-pipelining lattice corner."""
        g = get_benchmark(bench)
        model = ResourceModel.adders_mults(2, 2)
        rs = rotation_schedule(g, model).length
        ims = modulo_schedule(g, model).ii
        assert rs <= ims + 1

    def test_all_schedulers_respect_lower_bound(self):
        g = get_benchmark("elliptic")
        for a, m, p in CONFIGS:
            model = ResourceModel.adders_mults(a, m, pipelined_mults=p)
            lb = lower_bound(g, model)
            assert rotation_schedule(g, model, beta=16).length >= lb
            assert modulo_schedule(g, model).ii >= lb
            assert retime_then_schedule(g, model).length >= lb
