"""Solver-free lower bounds: cycles, registers, and their cell points."""

import pytest

from repro.core.scheduler import rotation_schedule
from repro.binding.lifetimes import register_requirement
from repro.explore import CellSpec, cell_bound, cell_cost, cell_model
from repro.explore.bounds import bound_graph, clear_caches


GRID = [
    CellSpec("diffeq", 1, 1, clock_ns=50),
    CellSpec("diffeq", 2, 2, clock_ns=100),
    CellSpec("biquad", 2, 1, clock_ns=40),
    CellSpec("biquad", 1, 1, clock_ns=50, unfold=2),
]


@pytest.mark.parametrize("spec", GRID, ids=lambda s: s.label())
def test_bound_never_exceeds_achieved(spec):
    """Soundness property: the cell bound is a true lower bound on every
    axis of the achieved objective point."""
    bound = cell_bound(spec)
    result = rotation_schedule(
        bound_graph(spec), cell_model(spec), heuristic=spec.heuristic, backend="flat"
    )
    registers = register_requirement(result.schedule, result.retiming, result.length)
    assert bound.lb_cycles <= result.length
    assert bound.lb_point.cost == cell_cost(spec)
    achieved_period = spec.clock_ns * result.length / spec.unfold
    assert bound.lb_point.period_ns <= achieved_period
    assert bound.lb_point.registers <= registers / spec.unfold


def test_critical_nodes_name_base_nodes():
    spec = CellSpec("biquad", 1, 1, clock_ns=50, unfold=2)
    crit = cell_bound(spec).critical_nodes
    assert crit  # the binding cycle exists
    base_nodes = {str(v) for v in bound_graph(CellSpec("biquad", 1, 1)).nodes}
    assert crit <= base_nodes  # unfolded copies fold back to base names


def test_bounds_are_cached():
    clear_caches()
    spec = GRID[0]
    assert cell_bound(spec) is cell_bound(spec)
    assert bound_graph(spec) is bound_graph(spec)
    clear_caches()
