"""Nested loop pipelining (paper Section 8).

"The rotation technique can be extended to handle nested loop pipelining.
We schedule loops from inside out.  The innermost loop is scheduled and
pipelined first, and partitioned into the prologue, static schedule, and
epilogue.  When rotations are applied on the outer loop, the
static-schedule part is treated as a compound node, which occupies
several functional units and takes several control steps to complete.
[...] Therefore, the schedules of the inner and outer loops blend
together."

Implementation: an inner loop is rotation-scheduled into a
:class:`~repro.core.wrapping.WrappedSchedule`; its full execution for a
given trip count unrolls into a **reservation profile** — for each
control step of the inner makespan, how many instances of each unit class
are busy.  The outer loop's DFG then contains a *compound node* carrying
that profile; a profile-aware list scheduler places ordinary outer
operations into the compound's idle unit slots (the "blending"), and the
rotation recipe (deallocate prefix, shift, partial reschedule) applies to
the outer loop unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dfg.graph import DFG, NodeId
from repro.dfg.retiming import Retiming
from repro.dfg.analysis import (
    topological_order,
    zero_delay_predecessors,
    zero_delay_successors,
)
from repro.schedule.resources import ResourceModel
from repro.schedule.priorities import get_priority
from repro.core.scheduler import RotationResult, rotation_schedule
from repro.errors import RotationError, SchedulingError


@dataclass(frozen=True)
class ReservationProfile:
    """Per-control-step unit usage of a (compound) operation.

    ``usage[t]`` maps unit-class name -> busy instance count at offset
    ``t``; ``latency`` is when the result is available (== len(usage) for
    compound nodes).
    """

    usage: Tuple[Mapping[str, int], ...]
    latency: int

    @property
    def duration(self) -> int:
        return len(self.usage)

    @classmethod
    def for_op(cls, model: ResourceModel, op: str) -> "ReservationProfile":
        unit = model.unit_for_op(op)
        usage = tuple(
            {unit.name: 1} if off in model.busy_offsets(op) else {}
            for off in range(unit.latency)
        )
        return cls(usage=usage, latency=unit.latency)


def inner_loop_profile(result: RotationResult, iterations: int) -> ReservationProfile:
    """Unroll an inner-loop pipeline into a reservation profile.

    The profile covers prologue + ``iterations`` overlapped bodies +
    epilogue on the global timeline; offset 0 is the earliest unit use.
    """
    from repro.schedule.unrolled import UnrolledSchedule

    depth = result.retiming.depth(result.graph)
    if iterations < depth:
        raise SchedulingError(
            f"inner loop needs at least depth={depth} iterations, got {iterations}"
        )
    unrolled = UnrolledSchedule(result.schedule.normalized(), result.retiming, iterations)
    model = result.model
    graph = result.graph
    lo = min(e.global_cs for e in unrolled.entries)
    hi = max(
        e.global_cs + model.latency(graph.op(e.node)) for e in unrolled.entries
    )
    usage: List[Dict[str, int]] = [dict() for _ in range(hi - lo)]
    for entry in unrolled.entries:
        op = graph.op(entry.node)
        unit = model.unit_for_op(op)
        for off in model.busy_offsets(op):
            slot = usage[entry.global_cs + off - lo]
            slot[unit.name] = slot.get(unit.name, 0) + 1
    return ReservationProfile(usage=tuple(usage), latency=hi - lo)


class NestedModel:
    """An outer-loop resource view: ordinary ops plus compound profiles."""

    def __init__(self, model: ResourceModel, compounds: Mapping[NodeId, ReservationProfile]):
        self.model = model
        self.compounds = dict(compounds)

    def profile(self, graph: DFG, node: NodeId) -> ReservationProfile:
        if node in self.compounds:
            return self.compounds[node]
        return ReservationProfile.for_op(self.model, graph.op(node))

    def latency(self, graph: DFG, node: NodeId) -> int:
        return self.profile(graph, node).latency


@dataclass
class NestedSchedule:
    """Outer-loop schedule with compound nodes, in plain start times."""

    graph: DFG
    nested: NestedModel
    start: Dict[NodeId, int]

    @property
    def length(self) -> int:
        lo = min(self.start.values())
        hi = max(
            self.start[v] + self.nested.latency(self.graph, v) for v in self.graph.nodes
        )
        return hi - lo

    def finish(self, node: NodeId) -> int:
        return self.start[node] + self.nested.latency(self.graph, node)

    def usage_table(self) -> Dict[Tuple[str, int], int]:
        table: Dict[Tuple[str, int], int] = {}
        for v in self.graph.nodes:
            profile = self.nested.profile(self.graph, v)
            for off, slot in enumerate(profile.usage):
                for unit, count in slot.items():
                    key = (unit, self.start[v] + off)
                    table[key] = table.get(key, 0) + count
        return table

    def violations(self, r: Optional[Retiming] = None) -> List[str]:
        out = []
        for e in self.graph.edges:
            dr = e.delay if r is None else r.dr(e)
            if dr == 0 and self.finish(e.src) > self.start[e.dst]:
                out.append(f"{e.src}->{e.dst}: starts before producer finishes")
        for (unit, cs), used in sorted(self.usage_table().items(), key=lambda kv: kv[0][1]):
            available = self.nested.model.unit(unit).count
            if used > available:
                out.append(f"CS {cs}: {used}/{available} {unit} busy")
        return out


def _profile_fits(
    table: Dict[Tuple[str, int], int],
    model: ResourceModel,
    profile: ReservationProfile,
    cs: int,
) -> bool:
    for off, slot in enumerate(profile.usage):
        for unit, count in slot.items():
            if table.get((unit, cs + off), 0) + count > model.unit(unit).count:
                return False
    return True


def _occupy(table: Dict[Tuple[str, int], int], profile: ReservationProfile, cs: int) -> None:
    for off, slot in enumerate(profile.usage):
        for unit, count in slot.items():
            key = (unit, cs + off)
            table[key] = table.get(key, 0) + count


def nested_full_schedule(
    graph: DFG,
    nested: NestedModel,
    r: Optional[Retiming] = None,
    priority="descendants",
    fixed: Optional[Mapping[NodeId, int]] = None,
    floor_cs: int = 0,
) -> NestedSchedule:
    """Profile-aware list scheduling of an outer loop.

    Ordinary outer operations may land inside a compound node's span
    whenever the inner pipeline leaves their unit class idle — the
    paper's inner/outer blending.  With ``fixed`` placements given, only
    the remaining nodes are scheduled (the partial form rotation needs).
    """
    model = nested.model
    prio = get_priority(priority)(graph, model.timing(), r)
    node_index = {v: i for i, v in enumerate(graph.nodes)}
    table: Dict[Tuple[str, int], int] = {}
    start: Dict[NodeId, int] = {}
    for v, cs in (fixed or {}).items():
        _occupy(table, nested.profile(graph, v), cs)
        start[v] = cs

    todo = [v for v in graph.nodes if v not in start]
    pending = {
        v: sum(1 for u in zero_delay_predecessors(graph, v, r) if u not in start)
        for v in todo
    }
    ready = {v for v in todo if pending[v] == 0}
    unplaced = set(todo)
    cs = floor_cs
    guard_limit = (
        floor_cs
        + sum(nested.latency(graph, v) for v in graph.nodes)
        + 8 * (graph.num_nodes + 2)
    )
    while unplaced:
        candidates = sorted(
            (
                v
                for v in ready
                if max(
                    [
                        start[u] + nested.latency(graph, u)
                        for u in zero_delay_predecessors(graph, v, r)
                    ],
                    default=floor_cs,
                )
                <= cs
            ),
            key=lambda v: (tuple(-x for x in prio[v]), node_index[v]),
        )
        for v in candidates:
            profile = nested.profile(graph, v)
            if not _profile_fits(table, model, profile, cs):
                continue
            _occupy(table, profile, cs)
            start[v] = cs
            ready.discard(v)
            unplaced.discard(v)
            for w in zero_delay_successors(graph, v, r):
                if w in unplaced:
                    pending[w] -= 1
                    if pending[w] == 0:
                        ready.add(w)
        cs += 1
        if cs > guard_limit:  # pragma: no cover - defensive
            raise SchedulingError("nested scheduler failed to converge")
    return NestedSchedule(graph, nested, start)


@dataclass
class NestedRotationState:
    """Rotation on an outer loop containing compound nodes."""

    graph: DFG
    nested: NestedModel
    retiming: Retiming
    schedule: NestedSchedule
    priority: object = "descendants"

    @classmethod
    def initial(cls, graph: DFG, nested: NestedModel, priority="descendants"):
        sched = nested_full_schedule(graph, nested, priority=priority)
        return cls(graph, nested, Retiming.zero(), sched, priority)

    @property
    def length(self) -> int:
        return self.schedule.length

    def down_rotate(self, size: int) -> "NestedRotationState":
        if size < 1 or size >= self.length:
            raise RotationError(f"illegal rotation size {size} for length {self.length}")
        lo = min(self.schedule.start.values())
        moved = [v for v in self.graph.nodes if self.schedule.start[v] - lo < size]
        new_r = self.retiming + Retiming.of_set(moved)
        fixed = {
            v: self.schedule.start[v] - lo - size
            for v in self.graph.nodes
            if v not in moved
        }
        new_sched = nested_full_schedule(
            self.graph, self.nested, new_r, self.priority, fixed=fixed, floor_cs=0
        )
        return NestedRotationState(self.graph, self.nested, new_r, new_sched, self.priority)


def pipeline_nested_loop(
    inner_graph: DFG,
    outer_graph: DFG,
    compound_node: NodeId,
    model: ResourceModel,
    inner_iterations: int,
    outer_rotations: int = 8,
) -> Tuple[RotationResult, NestedRotationState]:
    """End-to-end inside-out nested pipelining.

    Args:
        inner_graph: the innermost loop's DFG (rotation-scheduled first).
        outer_graph: the outer loop's DFG; ``compound_node`` stands for
            the entire inner loop.
        compound_node: the outer node representing the inner loop.
        model: shared functional units.
        inner_iterations: inner trip count (fixed, as in the paper's
            compound-node treatment).
        outer_rotations: size-1 rotations to apply to the outer loop.

    Returns:
        ``(inner result, best outer rotation state)``.
    """
    inner = rotation_schedule(inner_graph, model)
    profile = inner_loop_profile(inner, inner_iterations)
    nested = NestedModel(model, {compound_node: profile})
    state = NestedRotationState.initial(outer_graph, nested)
    best = state
    for _ in range(outer_rotations):
        if state.length <= 1:
            break
        state = state.down_rotate(1)
        if state.length < best.length:
            best = state
    return inner, best
