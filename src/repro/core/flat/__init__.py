"""Flat-array scheduling core: CSR snapshots + integer kernels.

``backend="flat"`` (the default) routes rotation scheduling through
:class:`FlatEngine`, which runs every hot kernel over the integer columns
of a :class:`FlatGraph`/:class:`FlatModel` snapshot — bit-identical to the
dict-based engine (``backend="views"``) and the cache-free naive path
(``backend="naive"``), as pinned by the golden parity suite.
"""

from repro.core.flat.graph import (
    FlatGraph,
    FlatModel,
    model_signature,
    structural_signature,
)
from repro.core.flat.kernels import (
    FlatGrid,
    flat_heights,
    flat_latest_fit,
    flat_list_schedule,
    flat_mobility,
    flat_priority_columns,
    flat_reach,
    flat_sort_keys,
    flat_topological_order,
    flat_wrap_period,
    retimed_delays,
    seed_grid,
    zero_delay_lists,
)
from repro.core.flat.engine import FlatEngine, FlatView

__all__ = [
    "FlatEngine",
    "FlatGraph",
    "FlatGrid",
    "FlatModel",
    "FlatView",
    "flat_heights",
    "flat_latest_fit",
    "flat_list_schedule",
    "flat_mobility",
    "flat_priority_columns",
    "flat_reach",
    "flat_sort_keys",
    "flat_topological_order",
    "flat_wrap_period",
    "model_signature",
    "retimed_delays",
    "seed_grid",
    "structural_signature",
    "zero_delay_lists",
]
