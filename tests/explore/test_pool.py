"""Work-stealing pool: parity with inline execution, error propagation."""

import pytest

from repro.explore import CellSpec, InlinePool, WorkStealingPool, build_grid, make_pool
from repro.explore.pool import execute_chunk
from repro.explore.runner import CellSolver
from repro.explore.space import ExploreError


def _chunks():
    grid = build_grid(["diffeq", "biquad"], ["1A1M", "2A1M"], clocks=[40, 100])
    fams = {}
    for spec in grid:
        fams.setdefault((spec.bench, spec.clock_ns), []).append(spec)
    return [("family", cells) for cells in fams.values()]


def test_make_pool_selects_by_worker_count():
    one = make_pool(1, None)
    assert isinstance(one, InlinePool)
    one.close()
    two = make_pool(2, "flat")
    try:
        assert isinstance(two, WorkStealingPool)
    finally:
        two.close()


def test_worker_pool_matches_inline():
    chunks = _chunks()
    inline = InlinePool(backend="flat")
    try:
        want = inline.run(chunks)
    finally:
        inline.close()
    pool = WorkStealingPool(workers=2, backend="flat")
    try:
        got = pool.run(chunks)
        assert pool.steal_count >= 0
    finally:
        pool.close()
    assert len(got) == len(want)
    for got_batch, want_batch in zip(got, want):
        assert [o.spec for o in got_batch] == [o.spec for o in want_batch]
        assert [o.point for o in got_batch] == [o.point for o in want_batch]


def test_worker_error_raises_in_parent():
    pool = WorkStealingPool(workers=2, backend="flat")
    try:
        with pytest.raises(ExploreError):
            # an unregistered benchmark explodes inside the worker
            pool.run([("cold", [CellSpec("no-such-bench", 1, 1)])])
    finally:
        pool.close()


def test_execute_chunk_rejects_unknown_kind():
    with pytest.raises(ExploreError):
        execute_chunk(CellSolver(backend="flat"), "weird", [CellSpec("diffeq", 1, 1)])
