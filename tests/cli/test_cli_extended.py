"""Unit tests for the extended CLI commands (exact/emit/svg/unfold)."""

import pytest

from repro.cli import main


class TestExact:
    def test_proves_diffeq(self, capsys):
        assert main(["exact", "diffeq", "-r", "1A2M"]) == 0
        out = capsys.readouterr().out
        assert "optimal II = 6" in out and "proven" in out

    def test_step_limit_flag(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            main(["exact", "allpole", "-r", "2A1M", "--step-limit", "100"])


class TestEmit:
    def test_writes_verilog(self, tmp_path, capsys):
        out_path = str(tmp_path / "dp.v")
        assert main(["emit", "diffeq", "-r", "1A1Mp", "-o", out_path, "--beta", "8"]) == 0
        text = open(out_path).read()
        assert "module diffeq" in text
        assert "endmodule" in text
        assert "II 6" in capsys.readouterr().out

    def test_custom_module_and_width(self, tmp_path):
        out_path = str(tmp_path / "dp.v")
        main([
            "emit", "biquad", "-r", "2A3M", "-o", out_path,
            "--module", "my_core", "--width", "24", "--beta", "8",
        ])
        text = open(out_path).read()
        assert "module my_core" in text
        assert "WIDTH = 24" in text


class TestSvg:
    def test_writes_svg(self, tmp_path, capsys):
        out_path = str(tmp_path / "s.svg")
        assert main(["svg", "biquad", "-r", "2A3M", "-o", out_path, "--beta", "8"]) == 0
        text = open(out_path).read()
        assert text.startswith("<svg")
        assert "</svg>" in text


class TestUnfold:
    def test_round_trips_through_inspect(self, tmp_path, capsys):
        out_path = str(tmp_path / "u.json")
        assert main(["unfold", "biquad", "-f", "3", "-o", out_path]) == 0
        assert main(["inspect", out_path]) == 0
        out = capsys.readouterr().out
        assert "48" in out  # 3 x 16 nodes

    def test_factor_preserves_delays(self, tmp_path, capsys):
        out_path = str(tmp_path / "u.json")
        main(["unfold", "diffeq", "-f", "2", "-o", out_path])
        out = capsys.readouterr().out
        assert "22 nodes" in out
