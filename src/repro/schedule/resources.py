"""Resource (functional-unit) models for resource-constrained scheduling.

The paper's model (Sections 4, 6):

* a *control step* (CS) is one clock cycle;
* a **single-cycle** unit (the adder) computes in 1 CS;
* a **multi-cycle** unit (the non-pipelined multiplier, latency 2) occupies
  its unit for every CS of its execution;
* a **pipelined** unit (the 2-stage multiplier ``Mp``) accepts a new
  operation every CS — it occupies the unit only in the start CS — but its
  *result* is available only after all stages ("the computation time of a
  pipelined operation is the number of stages multiplied by the length of a
  control step").

:class:`ResourceModel` binds operation types to unit classes and exposes the
latency/occupancy views the schedulers need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dfg.graph import Timing
from repro.errors import ResourceError


@dataclass(frozen=True)
class UnitSpec:
    """One class of functional units.

    Attributes:
        name: class name, e.g. ``"adder"``.
        count: number of unit instances available per control step.
        latency: control steps from operation start to result availability.
        pipelined: when True the unit has initiation interval 1 — it is
            busy only in the start CS; when False it is busy for all
            ``latency`` steps.
    """

    name: str
    count: int
    latency: int = 1
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ResourceError(f"unit {self.name!r}: nonpositive count {self.count}")
        if self.latency <= 0:
            raise ResourceError(f"unit {self.name!r}: nonpositive latency {self.latency}")

    @property
    def busy_offsets(self) -> range:
        """CS offsets (relative to start) during which an op holds the unit."""
        return range(1) if self.pipelined else range(self.latency)

    def describe(self) -> str:
        kind = f"pipelined({self.latency} stages)" if self.pipelined else f"latency {self.latency}"
        return f"{self.count}x {self.name} [{kind}]"


class ResourceModel:
    """Unit classes plus an op-type -> unit-class binding."""

    def __init__(self, units: Sequence[UnitSpec], binding: Mapping[str, str]):
        self._units: Dict[str, UnitSpec] = {}
        for spec in units:
            if spec.name in self._units:
                raise ResourceError(f"duplicate unit class {spec.name!r}")
            self._units[spec.name] = spec
        self._binding: Dict[str, str] = dict(binding)
        for op, unit in self._binding.items():
            if unit not in self._units:
                raise ResourceError(f"op {op!r} bound to unknown unit {unit!r}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def adders_mults(
        cls,
        adders: int,
        mults: int,
        *,
        pipelined_mults: bool = False,
        add_latency: int = 1,
        mult_latency: int = 2,
    ) -> "ResourceModel":
        """The paper's experimental configuration.

        ``adders_mults(3, 2)`` is the tables' "3A 2M";
        ``adders_mults(3, 2, pipelined_mults=True)`` is "3A 2Mp".
        """
        return cls(
            [
                UnitSpec("adder", adders, add_latency, False),
                UnitSpec("mult", mults, mult_latency, pipelined_mults),
            ],
            {"add": "adder", "sub": "adder", "cmp": "adder", "mul": "mult"},
        )

    @classmethod
    def unit_time(cls, adders: int, mults: int) -> "ResourceModel":
        """Unit-time adders and multipliers (the paper's Figure 2 setting)."""
        return cls.adders_mults(adders, mults, mult_latency=1)

    @classmethod
    def single_class(cls, name: str, count: int, ops: Iterable[str], latency: int = 1, pipelined: bool = False) -> "ResourceModel":
        """Homogeneous machine: every op runs on the same unit class."""
        return cls([UnitSpec(name, count, latency, pipelined)], {op: name for op in ops})

    # -- queries -------------------------------------------------------------
    @property
    def units(self) -> List[UnitSpec]:
        return list(self._units.values())

    @property
    def binding(self) -> Dict[str, str]:
        """The op-type -> unit-class binding (a copy)."""
        return dict(self._binding)

    def unit(self, name: str) -> UnitSpec:
        """Look a unit class up by name."""
        try:
            return self._units[name]
        except KeyError:
            raise ResourceError(f"unknown unit class {name!r}") from None

    def unit_for_op(self, op: str) -> UnitSpec:
        """The unit class an operation type executes on."""
        try:
            return self._units[self._binding[op]]
        except KeyError:
            raise ResourceError(f"op {op!r} is not bound to any unit class") from None

    def ops_for_unit(self, name: str) -> List[str]:
        """All op types bound to a unit class."""
        return [op for op, unit in self._binding.items() if unit == name]

    def latency(self, op: str) -> int:
        """Result latency of an op in control steps (drives precedences)."""
        return self.unit_for_op(op).latency

    def busy_offsets(self, op: str) -> range:
        """CS offsets during which an op of this type holds its unit."""
        return self.unit_for_op(op).busy_offsets

    def timing(self) -> Timing:
        """Timing model where t(op) = latency(op); feeds CP/IB analyses."""
        return Timing({op: self.unit(unit).latency for op, unit in self._binding.items()})

    def label(self) -> str:
        """Short tag in the paper's style, e.g. ``"3A 2Mp"``."""
        parts = []
        for spec in self._units.values():
            letter = spec.name[0].upper()
            suffix = "p" if spec.pipelined else ""
            parts.append(f"{spec.count}{letter}{suffix}")
        return " ".join(parts)

    def describe(self) -> str:
        """Long-form inventory, e.g. ``"3x adder [latency 1], ..."``."""
        return ", ".join(spec.describe() for spec in self._units.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResourceModel({self.label()})"
