"""Unit tests for DAG extraction, critical path and rotatable sets."""

import pytest

from repro.dfg import (
    DFG,
    Retiming,
    Timing,
    asap_times,
    alap_times,
    critical_path_length,
    critical_path_nodes,
    descendant_counts,
    height_times,
    is_down_rotatable,
    is_up_rotatable,
    is_zero_delay_acyclic,
    leaves,
    roots,
    topological_order,
    zero_delay_edges,
)
from repro.suite import diffeq
from repro.errors import ZeroDelayCycleError


class TestTopologicalOrder:
    def test_respects_zero_delay_edges(self, two_cycle):
        order = topological_order(two_cycle)
        assert order.index("a1") < order.index("m1")
        assert order.index("a1") < order.index("a2")

    def test_delayed_edges_ignored(self, tiny_loop):
        # m -> a has a delay, so 'a' may precede 'm'
        assert topological_order(tiny_loop) == ["a", "m"]

    def test_zero_delay_cycle_raises_with_witness(self):
        g = DFG()
        for n in "ab":
            g.add_node(n)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        with pytest.raises(ZeroDelayCycleError) as info:
            topological_order(g)
        assert set(info.value.cycle) == {"a", "b"}

    def test_retimed_order_changes(self, diamond):
        g = diamond
        g.add_edge("s", "r", 1)  # close the loop
        r = Retiming.of_set(["r"])  # rotate the root down
        order = topological_order(g, r)
        assert order.index("r") > order.index("s")

    def test_acyclicity_predicate(self, two_cycle):
        assert is_zero_delay_acyclic(two_cycle)
        two_cycle.add_edge("m1", "a1", 0)
        assert not is_zero_delay_acyclic(two_cycle)


class TestCriticalPath:
    def test_diamond_cp(self, diamond, paper_timing):
        # r(1) -> x(2) -> s(1) is the longest path
        assert critical_path_length(diamond, paper_timing) == 4
        assert critical_path_nodes(diamond, paper_timing) == ["r", "x", "s"]

    def test_unit_time_cp(self, diamond):
        assert critical_path_length(diamond, Timing.unit()) == 3

    def test_cp_of_retimed_graph(self, tiny_loop, paper_timing):
        # original: a(1) -> m(2) zero-delay: CP 3
        assert critical_path_length(tiny_loop, paper_timing) == 3
        # the single delay only moves around the 2-cycle: the zero-delay
        # chain flips direction (m -> a) but its length stays 3 = IB
        r = Retiming.of_set(["a"])
        assert critical_path_length(tiny_loop, paper_timing, r) == 3

    def test_empty_graph(self):
        assert critical_path_length(DFG()) == 0
        assert critical_path_nodes(DFG()) == []

    def test_asap_alap_consistency(self, diamond, paper_timing):
        asap = asap_times(diamond, paper_timing)
        cp = critical_path_length(diamond, paper_timing)
        alap = alap_times(diamond, cp, paper_timing)
        for v in diamond.nodes:
            assert asap[v] <= alap[v]
        # critical nodes have zero slack
        assert alap["x"] == asap["x"]


class TestWeights:
    def test_descendant_counts_diffeq(self):
        g = diffeq()
        counts = descendant_counts(g)
        # node 10 gates the whole body: all other 10 nodes are descendants
        assert counts[10] == 10
        assert counts[8] == 0  # x1 only feeds delayed edges
        assert counts[1] == 3  # {3, 5, 6}

    def test_height_times(self, diamond, paper_timing):
        h = height_times(diamond, paper_timing)
        assert h["s"] == 1
        assert h["x"] == 3  # x(2) + s(1)
        assert h["r"] == 4

    def test_roots_and_leaves(self, two_cycle):
        assert roots(two_cycle) == ["a1"]
        assert set(leaves(two_cycle)) == {"m1", "a2"}


class TestRotatableSets:
    def test_paper_examples(self):
        """Section 2: {10} and {10, 8, 1} rotatable; {8,1},{1},{8} not."""
        g = diffeq()
        assert is_down_rotatable(g, [10])
        assert is_down_rotatable(g, [10, 8, 1])
        assert not is_down_rotatable(g, [8, 1])
        assert not is_down_rotatable(g, [1])
        assert not is_down_rotatable(g, [8])

    def test_rotatable_iff_indicator_legal(self):
        g = diffeq()
        for nodes in ([10], [10, 8, 1], [8, 1], [1], [8]):
            indicator = Retiming.of_set(nodes)
            assert is_down_rotatable(g, nodes) == indicator.is_legal(g)

    def test_under_accumulated_retiming(self):
        g = diffeq()
        r = Retiming.of_set([10])
        # after rotating 10, the set {8, 1} becomes rotatable (Figure 3)
        assert is_down_rotatable(g, [8, 1], r)

    def test_up_rotatable_mirror(self, tiny_loop):
        # m's only outgoing edge carries a delay -> up-rotatable
        assert is_up_rotatable(tiny_loop, ["m"])
        assert not is_up_rotatable(tiny_loop, ["a"])

    def test_whole_graph_always_rotatable(self, two_cycle):
        assert is_down_rotatable(two_cycle, two_cycle.nodes)
        assert is_up_rotatable(two_cycle, two_cycle.nodes)

    def test_zero_delay_edges_listing(self, two_cycle):
        zd = zero_delay_edges(two_cycle)
        assert {(e.src, e.dst) for e in zd} == {("a1", "m1"), ("a1", "a2")}
