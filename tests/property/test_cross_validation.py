"""Cross-validation fuzzing: all schedulers against each other and the
exact optimum on small random graphs.

The strongest soundness net in the suite: on each random instance,

* the exact branch-and-bound optimum is a true lower bound for every
  heuristic (rotation, modulo, retime-then-schedule);
* the combined analytic lower bound never exceeds the exact optimum;
* every scheduler's output passes the full legality stack, and the
  rotation winner passes semantic execution when functions are attached.
"""

from hypothesis import given, settings, strategies as st

from repro.schedule import ResourceModel, is_legal_modulo_schedule
from repro.core import rotation_schedule
from repro.baselines import modulo_schedule, retime_then_schedule
from repro.baselines.exact import exact_modulo_schedule
from repro.bounds import lower_bound
from repro.suite import random_dfg, random_dsp_kernel

small_graphs = st.integers(0, 2_000).map(
    lambda seed: random_dfg(
        8, seed=seed, forward_density=0.2, backward_density=0.15, max_delay=2
    )
)
models = st.sampled_from(
    [
        ResourceModel.adders_mults(1, 1),
        ResourceModel.adders_mults(2, 1),
        ResourceModel.adders_mults(1, 1, pipelined_mults=True),
    ]
)


class TestCrossValidation:
    @given(small_graphs, models)
    @settings(max_examples=20, deadline=None)
    def test_exact_bounds_every_heuristic(self, graph, model):
        exact = exact_modulo_schedule(graph, model, step_limit=400_000)
        assert exact.ii >= lower_bound(graph, model)

        rs = rotation_schedule(graph, model, beta=12)
        assert rs.length >= exact.ii
        assert rs.wrapped.violations() == []

        ims = modulo_schedule(graph, model)
        assert ims.ii >= exact.ii
        assert is_legal_modulo_schedule(graph, model, ims.start, ims.ii)

        rts = retime_then_schedule(graph, model)
        assert rts.length >= exact.ii
        assert rts.wrapped.violations() == []

    @given(small_graphs, models)
    @settings(max_examples=15, deadline=None)
    def test_rotation_close_to_optimal_on_small_graphs(self, graph, model):
        """On 8-node graphs the heuristic lands within 2 CS of optimal —
        a regression tripwire for the rotation engine's search quality."""
        exact = exact_modulo_schedule(graph, model, step_limit=400_000)
        rs = rotation_schedule(graph, model, beta=16)
        assert rs.length <= exact.ii + 2

    @given(st.integers(0, 300), st.integers(3, 5))
    @settings(max_examples=10, deadline=None)
    def test_executable_kernels_fully_agree(self, seed, taps):
        """On simulatable kernels: exact <= RS, and RS's schedule executes
        bit-exactly."""
        from repro.sim import verify_pipeline

        graph = random_dsp_kernel(taps, seed=seed)
        model = ResourceModel.adders_mults(1, 1)
        exact = exact_modulo_schedule(graph, model, step_limit=400_000)
        rs = rotation_schedule(graph, model, beta=12)
        assert exact.ii <= rs.length
        report = verify_pipeline(
            rs.schedule, rs.retiming, iterations=rs.depth + 12, period=rs.length
        )
        assert report.matches_reference
