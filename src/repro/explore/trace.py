"""The JSONL exploration trace: every decision the explorer made.

Line 1 is a header object (``schema``, mode, counters stub); every
following line is one event — ``solved`` (cell, point, source, frontier
verdict), ``pruned`` (cell, its lower bound, the blocking achieved
point) or the closing ``summary`` (final counters).  The trace is an
audit log: the soundness tests replay ``pruned`` events by re-solving
the cells and checking the blocker still covers the real outcome, and
``rotsched profile --input trace.jsonl`` renders it (the header's
``schema`` key is how profile tells an exploration trace from a span
trace).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO, Union

from repro.explore.space import ExploreError, Point

EXPLORE_TRACE_SCHEMA = "repro.explore/trace/v1"


def write_explore_trace(report, out: Union[str, TextIO]) -> int:
    """Write a report's event log as JSONL; returns the event count."""
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            return write_explore_trace(report, fh)
    header = {
        "schema": EXPLORE_TRACE_SCHEMA,
        "mode": report.mode,
        "cells_total": len(report.cells),
    }
    out.write(json.dumps(header, sort_keys=True) + "\n")
    for event in report.events:
        out.write(json.dumps(event, sort_keys=True) + "\n")
    return len(report.events)


def read_explore_trace(path: Union[str, TextIO]) -> Dict[str, Any]:
    """Parse a trace file back into ``{"header": ..., "events": [...]}``."""
    if isinstance(path, str):
        with open(path, "r", encoding="utf-8") as fh:
            return read_explore_trace(fh)
    lines = [line for line in (raw.strip() for raw in path) if line]
    if not lines:
        raise ExploreError("empty exploration trace")
    header = json.loads(lines[0])
    if header.get("schema") != EXPLORE_TRACE_SCHEMA:
        raise ExploreError(
            f"not an exploration trace (schema {header.get('schema')!r}, "
            f"want {EXPLORE_TRACE_SCHEMA!r})"
        )
    return {"header": header, "events": [json.loads(line) for line in lines[1:]]}


def is_explore_trace(path: str) -> bool:
    """Cheap sniff: does this JSONL file lead with our schema header?"""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline().strip()
        return bool(first) and json.loads(first).get("schema") == EXPLORE_TRACE_SCHEMA
    except (OSError, ValueError):
        return False


def render_explore_trace(trace: Dict[str, Any], top: int = 10) -> str:
    """Human summary of a trace (the ``rotsched profile`` view)."""
    header = trace["header"]
    events = trace["events"]
    solved = [e for e in events if e.get("event") == "solved"]
    pruned = [e for e in events if e.get("event") == "pruned"]
    summaries = [e for e in events if e.get("event") == "summary"]
    lines: List[str] = [
        f"exploration trace: mode={header.get('mode')} "
        f"cells={header.get('cells_total')} "
        f"solved={len(solved)} pruned={len(pruned)}"
    ]
    if summaries:
        counters = summaries[-1].get("counters", {})
        lines.append(
            "counters: " + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        )
    sources: Dict[str, int] = {}
    for e in solved:
        sources[e.get("source", "?")] = sources.get(e.get("source", "?"), 0) + 1
    if sources:
        lines.append(
            "solve sources: "
            + ", ".join(f"{k}={v}" for k, v in sorted(sources.items()))
        )
    slow = sorted(solved, key=lambda e: -float(e.get("elapsed", 0.0)))[:top]
    if slow:
        lines.append(f"slowest {len(slow)} solve(s):")
        for e in slow:
            cell = e.get("cell", {})
            point = Point.from_json(e["point"]) if "point" in e else None
            lines.append(
                f"  {float(e.get('elapsed', 0.0)) * 1000.0:8.1f} ms  "
                f"{cell.get('bench')}@{cell.get('adders')}A{cell.get('mults')}M"
                f"{'p' if cell.get('pipelined') else ''}/{cell.get('clock_ns')}ns"
                f" J{cell.get('unfold')} [{e.get('source')}]"
                + (f" -> {point.render()}" if point else "")
            )
    if pruned:
        lines.append(f"first {min(top, len(pruned))} prune(s):")
        for e in pruned[:top]:
            cell = e.get("cell", {})
            lines.append(
                f"  {e.get('kind')}: {cell.get('bench')}@{cell.get('adders')}A"
                f"{cell.get('mults')}M/{cell.get('clock_ns')}ns "
                f"lb={Point.from_json(e['lb_point']).render()} "
                f"blocked by {Point.from_json(e['blocker']).render()}"
            )
    return "\n".join(lines)
