"""Property-based tests for list scheduling and schedule verification."""

from hypothesis import given, settings, strategies as st

from repro.dfg import Retiming
from repro.schedule import (
    ResourceModel,
    full_schedule,
    partial_schedule,
    realizing_retiming,
)
from repro.suite import random_dfg

graph_seeds = st.integers(0, 10_000)
models = st.sampled_from(
    [
        ResourceModel.adders_mults(1, 1),
        ResourceModel.adders_mults(3, 2),
        ResourceModel.adders_mults(1, 2, pipelined_mults=True),
        ResourceModel.unit_time(2, 2),
    ]
)
priorities = st.sampled_from(["descendants", "height", "mobility", "combined"])


class TestListSchedulerProps:
    @given(graph_seeds, models, priorities)
    @settings(max_examples=40, deadline=None)
    def test_always_legal(self, seed, model, priority):
        g = random_dfg(12, seed=seed)
        s = full_schedule(g, model, priority=priority)
        assert s.is_legal_dag_schedule()

    @given(graph_seeds, models)
    @settings(max_examples=30, deadline=None)
    def test_zero_retiming_realizes_dag_schedules(self, seed, model):
        g = random_dfg(12, seed=seed)
        s = full_schedule(g, model)
        r = realizing_retiming(s)
        assert all(r[v] == 0 for v in g.nodes)

    @given(graph_seeds, models, st.integers(0, 11))
    @settings(max_examples=30, deadline=None)
    def test_partial_schedule_freezes_complement(self, seed, model, k):
        g = random_dfg(12, seed=seed)
        base = full_schedule(g, model).normalized()
        moved = base.nodes_starting_in(0, 0)[: k + 1]  # a rotatable prefix
        out = partial_schedule(g, model, base, moved, floor_cs=base.first_cs)
        for v in g.nodes:
            if v not in moved:
                assert out.start(v) == base.start(v)
        assert out.is_legal_dag_schedule()

    @given(graph_seeds, models)
    @settings(max_examples=30, deadline=None)
    def test_length_at_least_resource_bound(self, seed, model):
        from repro.bounds import resource_bound

        g = random_dfg(12, seed=seed)
        s = full_schedule(g, model)
        assert s.length >= max(resource_bound(g, model).values())

    @given(graph_seeds, models)
    @settings(max_examples=30, deadline=None)
    def test_schedule_covers_all_nodes_once(self, seed, model):
        g = random_dfg(12, seed=seed)
        s = full_schedule(g, model)
        assert set(s.start_map) == set(g.nodes)


class TestRealizingRetimingProps:
    @given(graph_seeds)
    @settings(max_examples=30, deadline=None)
    def test_shifted_schedules_realized_by_deeper_retimings(self, seed):
        """Spreading a schedule over extra periods is still realizable and
        the found retiming is the shallow one."""
        g = random_dfg(10, seed=seed)
        model = ResourceModel.unit_time(1, 1)
        s = full_schedule(g, model)
        r = realizing_retiming(s)
        assert r.is_legal(g)
        assert s.is_legal_dag_schedule(r)
        assert min(r[v] for v in g.nodes) == 0

    @given(graph_seeds, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_realizing_retiming_minimality(self, seed, extra):
        """No realizing retiming can be shallower than the one returned:
        verify by checking that subtracting 1 from the max stage breaks
        legality or the schedule."""
        g = random_dfg(10, seed=seed)
        model = ResourceModel.unit_time(1, 1)
        base = full_schedule(g, model).normalized()
        r = realizing_retiming(base)
        depth = r.depth(g)
        assert depth == 1  # a DAG schedule of the original graph
