"""Unit tests for rotation over chained schedules (Section 3's claim)."""

import pytest

from repro.schedule.chaining import paper_technology
from repro.core.chained_rotation import ChainedRotationState, chained_rotation_schedule
from repro.suite import diffeq
from repro.errors import RotationError


@pytest.fixture
def tech50():
    return paper_technology(50)


class TestChainedRotation:
    def test_reproduces_integral_behaviour_at_50ns(self, tech50):
        """At the paper's 50 ns clock the chained engine mirrors the
        integral 1A 1M result: 14 CS initially, 12 after rotations."""
        timing, cs, units, binding = tech50
        state, best = chained_rotation_schedule(diffeq(), timing, cs, units, binding)
        assert best == 12
        assert state.schedule.violations(state.retiming) == []

    def test_rotation_improves_at_100ns(self, tech50):
        timing, _, units, binding = tech50
        initial = ChainedRotationState.initial(diffeq(), timing, 100, units, binding)
        state, best = chained_rotation_schedule(diffeq(), timing, 100, units, binding)
        assert best <= initial.length
        assert state.schedule.violations(state.retiming) == []

    def test_each_rotation_preserves_legality(self, tech50):
        timing, cs, units, binding = tech50
        state = ChainedRotationState.initial(diffeq(), timing, cs, units, binding)
        for _ in range(6):
            state = state.down_rotate(1)
            assert state.schedule.violations(state.retiming) == [], state.retiming

    def test_retiming_accumulates(self, tech50):
        timing, cs, units, binding = tech50
        state = ChainedRotationState.initial(diffeq(), timing, cs, units, binding)
        state = state.down_rotate(1)
        assert sum(k for _, k in state.retiming.items_nonzero()) >= 1

    def test_frozen_nodes_keep_placement(self, tech50):
        timing, cs, units, binding = tech50
        state = ChainedRotationState.initial(diffeq(), timing, cs, units, binding)
        first = state.schedule.first_cs
        moved = {v for v in state.graph.nodes if state.schedule.entry(v).cs == first}
        rotated = state.down_rotate(1)
        for v in state.graph.nodes:
            if v not in moved:
                assert (
                    rotated.schedule.entry(v).cs
                    == state.schedule.entry(v).cs - first - 1
                )
                assert rotated.schedule.entry(v).offset == state.schedule.entry(v).offset

    def test_size_bounds(self, tech50):
        timing, cs, units, binding = tech50
        state = ChainedRotationState.initial(diffeq(), timing, cs, units, binding)
        with pytest.raises(RotationError):
            state.down_rotate(0)
        with pytest.raises(RotationError):
            state.down_rotate(state.length)
