"""Unit tests for the unrolled (global) pipeline view — Figure 4."""

import pytest

from repro.dfg import Retiming
from repro.schedule import ResourceModel, Schedule, full_schedule, realizing_retiming, unroll
from repro.suite import diffeq
from repro.errors import SchedulingError


@pytest.fixture
def fig2c():
    """The optimal diffeq schedule (Figure 2-(c)) and its retiming."""
    g = diffeq()
    model = ResourceModel.unit_time(1, 1)
    start = {0: 0, 10: 0, 3: 1, 8: 1, 2: 2, 5: 2, 4: 3, 7: 4, 6: 4, 1: 5, 9: 5}
    sched = Schedule(g, model, start)
    return sched, realizing_retiming(sched)


class TestUnrolling:
    def test_depth_and_period(self, fig2c):
        sched, r = fig2c
        u = unroll(sched, r, 5)
        assert u.period == 6
        assert u.depth == 2

    def test_prologue_contains_rotated_nodes(self, fig2c):
        sched, r = fig2c
        u = unroll(sched, r, 5)
        prologue = {(e.node, e.iteration) for e in u.phase_entries("prologue")}
        assert prologue == {(10, 0), (8, 0), (1, 0)}
        assert u.prologue_length > 0

    def test_every_iteration_executed_once(self, fig2c):
        sched, r = fig2c
        n_iter = 6
        u = unroll(sched, r, n_iter)
        count = {}
        for e in u.entries:
            count[(e.node, e.iteration)] = count.get((e.node, e.iteration), 0) + 1
        assert all(c == 1 for c in count.values())
        assert len(count) == sched.graph.num_nodes * n_iter

    def test_ground_truth_dependences_hold(self, fig2c):
        sched, r = fig2c
        u = unroll(sched, r, 8)
        assert u.dependence_violations() == []
        assert u.resource_violations() == []

    def test_violations_detected_for_bogus_retiming(self, fig2c):
        sched, _ = fig2c
        bogus = Retiming.of_set([9])  # 9 executed an iteration early: wrong
        u = unroll(sched, bogus, 8)
        assert u.dependence_violations()

    def test_epilogue_symmetry(self, fig2c):
        sched, r = fig2c
        u = unroll(sched, r, 5)
        epilogue = {(e.node, e.iteration) for e in u.phase_entries("epilogue")}
        # nodes with r=0 finish iterations the prologue nodes pre-ran
        assert all(it == 4 for _, it in epilogue)
        assert len(epilogue) == 8  # the r=0 nodes

    def test_too_few_iterations_rejected(self, fig2c):
        sched, r = fig2c
        with pytest.raises(SchedulingError, match="at least depth"):
            unroll(sched, r, 1)

    def test_unnormalized_retiming_rejected(self, fig2c):
        sched, _ = fig2c
        with pytest.raises(SchedulingError, match="normalized"):
            unroll(sched, Retiming({10: -1}), 5)

    def test_makespan_and_rows(self, fig2c):
        sched, r = fig2c
        u = unroll(sched, r, 5)
        # steady state: one 6-CS body per iteration after the pipeline fills
        assert u.makespan <= 5 * 6 + u.prologue_length
        rows = u.rows()
        assert rows == sorted(rows)

    def test_plain_schedule_unrolls_without_overlap(self, two_cycle, small_model):
        s = full_schedule(two_cycle, small_model)
        u = unroll(s, Retiming.zero(), 3)
        assert u.depth == 1
        assert u.phase_entries("prologue") == []
        assert u.dependence_violations() == []
