"""The perf-regression gate: re-run pinned golden cells, compare envelopes.

``BENCH_flat.json`` and ``BENCH_engine.json`` pin the repo's performance
trajectory: each end-to-end entry records a (benchmark, config, heuristic,
backend) cell with its wall time and its deterministic outcome counters
(schedule length, rotations performed, and for some cells the engine's
grid counters).  :func:`run_perfcheck` re-runs those cells on the current
tree and fails when

* a *counter delta* appears — the deterministic outcome (length,
  rotations, pinned engine counters) no longer matches the envelope; or
* the *wall time* regresses past the tolerance band
  (``measured > baseline * (1 + tolerance)``).

Timing uses ``time.process_time`` with a min-of-N inner loop, the same
methodology the committed baselines were recorded with, so the comparison
is CPU time against CPU time.  ``rotsched gate`` runs the ``--smoke``
variant (flat cells only, generous ±50% tolerance) before every merge.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Engine counters a baseline entry may pin exactly (deterministic).
_PINNED_COUNTERS = ("view_derives", "grid_delta_rotations", "grid_reseeds")

#: Baseline files perfcheck knows how to read, with the backend their
#: end-to-end cells exercise and the extra_info key holding the timing.
BASELINE_SPECS: Tuple[Tuple[str, str, str], ...] = (
    ("BENCH_flat.json", "flat", "flat_seconds"),
    ("BENCH_engine.json", "views", "views_seconds"),
)


@dataclass(frozen=True)
class GoldenCell:
    """One pinned cell of a committed benchmark envelope."""

    source: str
    bench: str
    config: str
    heuristic: str
    backend: str
    baseline_seconds: float
    length: int
    rotations: int
    pinned: Tuple[Tuple[str, int], ...] = ()

    def label(self) -> str:
        return f"{self.bench}@{self.config}/{self.heuristic}/{self.backend}"


@dataclass
class CellResult:
    """Outcome of re-running one golden cell."""

    cell: GoldenCell
    measured_seconds: float = 0.0
    length: Optional[int] = None
    rotations: Optional[int] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def ratio(self) -> float:
        base = self.cell.baseline_seconds
        return self.measured_seconds / base if base else float("inf")


@dataclass
class PerfReport:
    """Aggregate perfcheck outcome."""

    results: List[CellResult] = field(default_factory=list)
    tolerance: float = 0.5
    repeats: int = 3
    elapsed: float = 0.0
    skipped_baselines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results) and bool(self.results)

    def summary(self) -> str:
        bad = sum(1 for r in self.results if not r.ok)
        head = (
            f"perfcheck: {len(self.results) - bad}/{len(self.results)} golden "
            f"cells within envelope (tolerance +{self.tolerance:.0%}, "
            f"min-of-{self.repeats}) in {self.elapsed:.1f}s"
        )
        if self.skipped_baselines:
            head += f"; missing baselines skipped: {', '.join(self.skipped_baselines)}"
        if bad:
            head += f"; {bad} REGRESSED cell(s)"
        if not self.results:
            head += "; NO CELLS RUN"
        return head

    def render(self) -> str:
        lines = [self.summary()]
        for r in self.results:
            status = "ok" if r.ok else "FAIL"
            lines.append(
                f"  {status:<4} {r.cell.label():<28} "
                f"baseline {r.cell.baseline_seconds:.4f}s  "
                f"measured {r.measured_seconds:.4f}s  (x{r.ratio:.2f})"
            )
            for p in r.problems:
                lines.append(f"       - {p}")
        return "\n".join(lines)


def load_golden_cells(
    path: str, backend: str, seconds_key: str
) -> List[GoldenCell]:
    """Extract pinned cells from one committed pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    cells: List[GoldenCell] = []
    source = os.path.basename(path)
    for entry in data.get("benchmarks", ()):
        info = entry.get("extra_info") or {}
        if not {"bench", "config", "heuristic", seconds_key} <= info.keys():
            continue
        pinned = tuple(
            (k, int(info[k])) for k in _PINNED_COUNTERS if k in info
        )
        cells.append(
            GoldenCell(
                source=source,
                bench=info["bench"],
                config=info["config"],
                heuristic=info["heuristic"],
                backend=backend,
                baseline_seconds=float(info[seconds_key]),
                length=int(info["length"]),
                rotations=int(info["rotations"]),
                pinned=pinned,
            )
        )
    if not cells:
        raise ReproError(f"no golden cells with '{seconds_key}' found in {path}")
    return cells


def _measure_cell(cell: GoldenCell, repeats: int) -> CellResult:
    from repro.core.scheduler import rotation_schedule
    from repro.qa.runner import config_model
    from repro.suite.registry import get_benchmark

    graph = get_benchmark(cell.bench)
    model = config_model(cell.config)
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        t0 = time.process_time()
        out = rotation_schedule(
            graph, model, heuristic=cell.heuristic, backend=cell.backend
        )
        dt = time.process_time() - t0
        if dt < best:
            best = dt
            result = out
    cr = CellResult(
        cell,
        measured_seconds=best,
        length=result.length,
        rotations=result.rotations_performed,
    )
    if result.length != cell.length:
        cr.problems.append(
            f"counter delta: length {result.length} != pinned {cell.length}"
        )
    if result.rotations_performed != cell.rotations:
        cr.problems.append(
            f"counter delta: rotations {result.rotations_performed} "
            f"!= pinned {cell.rotations}"
        )
    stats = result.engine_stats or {}
    for name, pinned_value in cell.pinned:
        if stats.get(name) != pinned_value:
            cr.problems.append(
                f"counter delta: {name} {stats.get(name)} != pinned {pinned_value}"
            )
    return cr


def run_perfcheck(
    root: str = ".",
    baselines: Sequence[Tuple[str, str, str]] = BASELINE_SPECS,
    tolerance: float = 0.5,
    repeats: int = 3,
    smoke: bool = False,
) -> PerfReport:
    """Re-run every pinned golden cell and compare against its envelope.

    Args:
        root: directory holding the committed ``BENCH_*.json`` files.
        baselines: ``(filename, backend, seconds_key)`` triples to read.
        tolerance: allowed wall-time slack as a fraction of the baseline
            (0.5 == fail past +50%).
        repeats: min-of-N timing runs per cell.
        smoke: the pre-merge tier — flat cells only, ``min(repeats, 2)``
            timing runs, and tolerance floored at ±50% so CI noise does
            not flake the gate.
    """
    t0 = time.perf_counter()
    if smoke:
        baselines = [spec for spec in baselines if spec[1] == "flat"]
        repeats = min(repeats, 2)
        tolerance = max(tolerance, 0.5)
    report = PerfReport(tolerance=tolerance, repeats=repeats)
    for filename, backend, seconds_key in baselines:
        path = os.path.join(root, filename)
        if not os.path.exists(path):
            report.skipped_baselines.append(filename)
            continue
        for cell in load_golden_cells(path, backend, seconds_key):
            cr = _measure_cell(cell, repeats)
            limit = cell.baseline_seconds * (1.0 + tolerance)
            if cr.measured_seconds > limit:
                cr.problems.append(
                    f"wall-time regression: {cr.measured_seconds:.4f}s > "
                    f"{cell.baseline_seconds:.4f}s * {1.0 + tolerance:.2f} "
                    f"= {limit:.4f}s"
                )
            report.results.append(cr)
    report.elapsed = time.perf_counter() - t0
    return report
