"""Schedule selection among tied-optimal rotation results.

The paper's closing argument for rotation scheduling: "through a sequence
of rotations, many optimal schedules can be found, which expose more
chances of optimization for the following stages of high-level
synthesis".  This module cashes that in: given a
:class:`~repro.core.scheduler.RotationResult` (whose ``wrapped`` +
``alternates`` hold every distinct optimal schedule the heuristic saw),
pick the one minimizing a downstream cost — by default the steady-state
register requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.scheduler import RotationResult
from repro.core.wrapping import WrappedSchedule
from repro.binding.lifetimes import LifetimeAnalyzer


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of scanning the optimal-schedule set Q."""

    best: WrappedSchedule
    best_cost: int
    costs: Tuple[int, ...]

    @property
    def spread(self) -> int:
        """How much the downstream cost varies across tied-optimal
        schedules — the paper's 'more chances of optimization'."""
        return max(self.costs) - min(self.costs) if self.costs else 0


def register_cost(wrapped: WrappedSchedule) -> int:
    """Steady-state register requirement of one schedule."""
    return LifetimeAnalyzer.from_wrapped(wrapped).analyze().requirement


def select_schedule(
    result: RotationResult,
    cost: Callable[[WrappedSchedule], int] = register_cost,
) -> SelectionReport:
    """Pick the minimum-cost schedule among all tied-optimal ones.

    Args:
        result: a rotation-scheduling result (its ``wrapped`` plus
            ``alternates`` form the candidate set Q).
        cost: downstream cost function (default: register requirement).
    """
    candidates: List[WrappedSchedule] = [result.wrapped, *result.alternates]
    costs = [cost(w) for w in candidates]
    best_index = min(range(len(candidates)), key=lambda i: (costs[i], i))
    return SelectionReport(
        best=candidates[best_index],
        best_cost=costs[best_index],
        costs=tuple(costs),
    )
