#!/usr/bin/env python3
"""Multi-cycle operations, wrapping and depth reduction (paper Sections
3.2 and 4) on the differential-equation solver.

Shows the three phenomena the paper devotes its middle sections to:

1. with a 2-stage multiplier, down-rotations leave execution *tails*
   hanging past the last control step (Figure 6);
2. *wrapping* folds the tails around the schedule cylinder, recovering
   the optimal initiation interval (Figure 8);
3. a long rotation sequence accumulates a needlessly deep rotation
   function; the shortest-path *depth reduction* finds the shallowest
   pipeline realizing the same schedule (Figure 5).

Run:  python examples/wrapping_and_depth.py
"""

from repro import ResourceModel, diffeq, reduce_depth, wrap
from repro.core import RotationState
from repro.report import render_schedule, retiming_stages


def main() -> None:
    graph = diffeq()
    model = ResourceModel.adders_mults(1, 1, pipelined_mults=True)
    print(f"== {graph.name} on {model.describe()}\n")

    state = RotationState.initial(graph, model)
    print(f"initial schedule: span {state.length} CS")
    print("rotating one control step at a time:\n")
    print("  step | span (with tails) | wrapped length")
    for step in range(1, 9):
        state = state.down_rotate(1)
        wrapped = wrap(state.schedule, state.retiming)
        print(f"  {step:4} | {state.length:17} | {wrapped.period}")
    print()

    wrapped = wrap(state.schedule, state.retiming)
    print(f"final wrapped schedule (period {wrapped.period}, paper's Figure 8):")
    print(render_schedule(wrapped.schedule, model))
    if wrapped.wrapped_nodes():
        print(f"wrapped tails: {', '.join(map(str, wrapped.wrapped_nodes()))}")
    print()

    accumulated = state.retiming.normalized(graph)
    shallow = reduce_depth(wrapped.schedule, wrapped.period)
    print(f"accumulated rotation function: depth {accumulated.depth(graph)}")
    print(retiming_stages(accumulated, graph.nodes))
    print()
    print(f"after depth reduction: depth {shallow.depth(graph)}")
    print(retiming_stages(shallow, graph.nodes))
    print()
    print(
        "the prologue/epilogue of the pipeline shrinks from "
        f"{(accumulated.depth(graph) - 1) * wrapped.period} to "
        f"{(shallow.depth(graph) - 1) * wrapped.period} control steps"
    )


if __name__ == "__main__":
    main()
