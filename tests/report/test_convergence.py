"""Unit tests for convergence tracking and the step chart."""

import xml.etree.ElementTree as ET

import pytest

from repro.schedule import ResourceModel
from repro.report.convergence import (
    ConvergenceCurve,
    RecordingTracker,
    convergence_svg,
    heuristic_sweep,
    phase_size_sweep,
)
from repro.core import RotationState
from repro.suite import diffeq


class TestRecordingTracker:
    def test_history_grows_per_offer(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        tracker = RecordingTracker()
        tracker.offer(st)
        tracker.offer(st.down_rotate(1))
        assert tracker.history == [8, 7]

    def test_history_is_monotone_nonincreasing(self):
        st = RotationState.initial(diffeq(), ResourceModel.unit_time(1, 1))
        tracker = RecordingTracker()
        tracker.offer(st)
        for _ in range(6):
            st = st.down_rotate(1)
            tracker.offer(st)
        assert all(a >= b for a, b in zip(tracker.history, tracker.history[1:]))


class TestSweeps:
    def test_phase_size_sweep(self):
        curves = phase_size_sweep(
            diffeq(), ResourceModel.unit_time(1, 1), sizes=[1, 2, 3], beta=12
        )
        assert [c.label for c in curves] == ["size 1", "size 2", "size 3"]
        assert all(c.final == 6 for c in curves)  # all sizes converge here

    def test_rotations_to_target(self):
        curves = phase_size_sweep(
            diffeq(), ResourceModel.unit_time(1, 1), sizes=[1], beta=12
        )
        steps = curves[0].rotations_to(6)
        assert steps is not None and steps >= 2  # two rotations needed
        assert curves[0].rotations_to(5) is None  # below the optimum

    def test_heuristic_sweep(self):
        curves = heuristic_sweep(diffeq(), ResourceModel.unit_time(1, 1), beta=8)
        labels = {c.label for c in curves}
        assert labels == {"H1", "H2"}
        assert all(c.final == 6 for c in curves)


class TestSvgChart:
    def test_well_formed(self):
        curves = [ConvergenceCurve("demo", (8, 7, 7, 6))]
        svg = convergence_svg(curves, title="demo run")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "polyline" in svg
        assert "demo run" in svg

    def test_legend_shows_final_values(self):
        svg = convergence_svg([ConvergenceCurve("size 2", (8, 6))])
        assert "size 2 (-&gt; 6)" in svg or "size 2 (-> 6)" in svg

    def test_multiple_series_colored(self):
        svg = convergence_svg(
            [ConvergenceCurve("a", (8, 7)), ConvergenceCurve("b", (8, 6))]
        )
        assert svg.count("<polyline") == 2
        assert "#4e79a7" in svg and "#f28e2b" in svg
