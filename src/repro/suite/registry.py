"""Registry of benchmark DFGs plus the paper's Table 1 reference data."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.dfg.graph import DFG, Timing
from repro.suite.diffeq import diffeq
from repro.suite.elliptic import elliptic
from repro.suite.lattice import lattice
from repro.suite.allpole import allpole
from repro.suite.biquad import biquad

#: the paper's experimental timing: adds/subs/compares 1 CS, multiplies 2 CS
PAPER_TIMING = Timing({"add": 1, "sub": 1, "cmp": 1, "mul": 2})

#: unit-time timing used by the paper's Figure 2 walkthrough
UNIT_TIMING = Timing({}, default=1)


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of the paper's Table 1."""

    key: str
    title: str
    build: Callable[[], DFG]
    mults: int
    adds: int
    critical_path: int
    iteration_bound: int


BENCHMARKS: Dict[str, BenchmarkInfo] = {
    info.key: info
    for info in [
        BenchmarkInfo("elliptic", "5-th Order Elliptic Filter", elliptic, 8, 26, 17, 16),
        BenchmarkInfo("diffeq", "Differential Equation", diffeq, 6, 5, 7, 6),
        BenchmarkInfo("lattice", "4-stage Lattice Filter", lattice, 15, 11, 10, 2),
        BenchmarkInfo("allpole", "All-pole Lattice Filter", allpole, 4, 11, 16, 8),
        BenchmarkInfo("biquad", "2-cascaded Biquad Filter", biquad, 8, 8, 7, 4),
    ]
}


def get_benchmark(key: str) -> DFG:
    """Build a benchmark DFG by registry key."""
    try:
        return BENCHMARKS[key].build()
    except KeyError:
        raise KeyError(f"unknown benchmark {key!r}; choose from {sorted(BENCHMARKS)}") from None


def all_benchmarks() -> List[DFG]:
    """Fresh instances of all five paper benchmarks, in Table 1 order."""
    return [info.build() for info in BENCHMARKS.values()]


def data_path(key: str) -> str:
    """Path of the shipped JSON netlist for a benchmark.

    The JSON copies (``repro/suite/data/*.json``) carry the pure structure
    (no simulation functions) for interchange with external tools; the
    Python builders remain the source of truth.
    """
    import os

    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {key!r}; choose from {sorted(BENCHMARKS)}")
    return os.path.join(os.path.dirname(__file__), "data", f"{key}.json")


def load_benchmark_json(key: str) -> DFG:
    """Load the shipped JSON copy of a benchmark (structure only)."""
    from repro.dfg import io as dfg_io

    return dfg_io.load(data_path(key))
