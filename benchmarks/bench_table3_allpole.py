"""Regenerates **Table 3 (all-pole lattice filter)**: 8 resource configs.

All eight rows match the paper exactly, including the 2A 1M row (10)
where the single non-pipelined multiplier and the slack-free adder arcs
interact.
"""

import pytest

from repro.bounds import combined_lower_bound
from repro.core import rotation_schedule
from repro.suite import get_benchmark

from conftest import model_for, record, run_once

#: tag -> (paper LB, MARS, paper RS, paper depth)
ROWS = {
    "3A2Mp": (8, 8, 8, 3),
    "2A2Mp": (9, None, 9, 2),
    "2A1Mp": (9, None, 9, 2),
    "1A1Mp": (11, None, 11, 2),
    "3A2M": (8, None, 8, 3),
    "2A2M": (9, None, 9, 2),
    "2A1M": (10, None, 10, 2),
    "1A1M": (11, None, 11, 2),
}


@pytest.mark.parametrize("tag", list(ROWS))
def test_table3_allpole_row(benchmark, tag):
    paper_lb, mars, paper_rs, paper_depth = ROWS[tag]
    graph = get_benchmark("allpole")
    model = model_for(tag)
    result = run_once(benchmark, rotation_schedule, graph, model)
    lb = combined_lower_bound(graph, model)
    record(
        benchmark,
        resources=model.label(),
        paper_LB=paper_lb,
        our_LB=lb.combined,
        MARS=mars,
        paper_RS=f"{paper_rs} ({paper_depth})",
        measured_RS=f"{result.length} ({result.depth})",
    )
    assert result.length == paper_rs
    assert result.length >= lb.combined
