"""Unit tests for CSV/JSON/Markdown export."""

import csv
import io
import json

from repro.schedule import ResourceModel, full_schedule
from repro.report import schedule_records, to_csv, to_json_records, to_markdown, write_text
from repro.suite import diffeq


class TestExports:
    def test_csv_round_trip(self):
        text = to_csv(["a", "b"], [[1, "x,y"], [2, "z"]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "x,y"], ["2", "z"]]

    def test_json_records(self):
        text = to_json_records(["name", "len"], [["diffeq", 6]])
        data = json.loads(text)
        assert data == [{"name": "diffeq", "len": 6}]

    def test_markdown_table(self):
        text = to_markdown(["A", "B"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| A | B |"
        assert lines[1].startswith("|---")
        assert lines[2] == "| 1 | 2 |"

    def test_schedule_records(self):
        model = ResourceModel.unit_time(1, 1)
        s = full_schedule(diffeq(), model)
        recs = schedule_records(s)
        assert len(recs) == 11
        assert {"node", "op", "start_cs", "unit"} <= set(recs[0])

    def test_schedule_records_with_retiming(self):
        from repro.dfg import Retiming

        model = ResourceModel.unit_time(1, 1)
        s = full_schedule(diffeq(), model)
        recs = schedule_records(s, Retiming.of_set([10]))
        by_node = {r["node"]: r for r in recs}
        assert by_node["10"]["rotation"] == 1
        assert by_node["9"]["rotation"] == 0

    def test_write_text(self, tmp_path):
        path = str(tmp_path / "out.txt")
        write_text(path, "hello")
        assert open(path).read() == "hello"
